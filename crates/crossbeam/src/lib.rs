//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel::unbounded` / [`channel::Sender`] /
//! [`channel::Receiver`] subset the cluster runtime uses, implemented over
//! `std::sync::mpsc`. Clone-able senders and blocking `recv` are all the
//! MPI-style collectives need; select, bounded channels, and the rest of
//! crossbeam are intentionally absent.

pub mod channel {
    //! Multi-producer single-consumer unbounded channels.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Sending half of an unbounded channel. Clone-able across ranks.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors only if every sender is
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn cloned_senders_fan_in() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        });
    }
}
