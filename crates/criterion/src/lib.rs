//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness subset the `mcs-bench` ablations use:
//! benchmark groups, throughput annotation, `iter` / `iter_batched`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is
//! simple calibrated sampling: a warm-up run sizes the iteration count so
//! each sample takes a few milliseconds, then `sample_size` samples are
//! timed and the median per-iteration time is reported (median resists
//! scheduler noise better than the mean on shared machines).
//!
//! No plots, no statistics beyond min/median/max, no baseline storage.
//! `--test` and `--list` invocations (as `cargo test` issues for bench
//! targets) skip measurement entirely.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time per measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; measurement here re-runs setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Criterion {
    /// Apply command-line arguments (`--test`/`--list` = run nothing
    /// measured; a positional argument filters benchmark names).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--list" => self.quick = true,
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benchmark outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            throughput: None,
            sample_size: 20,
        };
        g.bench_function(id, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            quick: self.criterion.quick,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.criterion.quick {
            println!("{full}: ok (test mode)");
            return self;
        }
        let Some(stats) = b.stats() else {
            println!("{full}: no samples");
            return self;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / stats.median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / stats.median.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{full}: median {:>12} [min {}, max {}] ({} samples){rate}",
            fmt_duration(stats.median),
            fmt_duration(stats.min),
            fmt_duration(stats.max),
            stats.n,
        );
        let _ = self.sample_size;
        self
    }

    /// Close the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// Per-iteration timing summary.
#[derive(Debug, Clone, Copy)]
pub struct SampleStats {
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Samples measured.
    pub n: usize,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Runs the closed-over routine and records per-iteration durations.
pub struct Bencher {
    quick: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmark `routine`, timed over whole iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            return;
        }
        // Warm up and calibrate: how many iterations make one sample of
        // roughly TARGET_SAMPLE?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let sample_count = 20usize;
        self.samples.clear();
        for _ in 0..sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let sample_count = 20usize;
        self.samples.clear();
        for _ in 0..sample_count {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }

    /// Summarize recorded samples.
    pub fn stats(&self) -> Option<SampleStats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        Some(SampleStats {
            median: s[s.len() / 2],
            min: s[0],
            max: s[s.len() - 1],
            n: s.len(),
        })
    }
}

/// Bundle benchmark functions into a group runner (criterion API).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (criterion API).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            quick: false,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        let stats = b.stats().unwrap();
        assert!(stats.n >= 10);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
    }

    #[test]
    fn quick_mode_runs_once_without_samples() {
        let mut b = Bencher {
            quick: true,
            samples: Vec::new(),
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.stats().is_none());
    }
}
