//! A single MPI rank's batch-time law.

/// One rank (a host CPU or a MIC device running one MPI process).
#[derive(Debug, Clone, PartialEq)]
pub struct Rank {
    /// Display label ("cpu", "mic0", ...).
    pub label: String,
    /// Asymptotic calculation rate, neutrons/second (measured in native
    /// mode with ≥10⁵ particles — Fig. 5's plateau).
    pub nominal_rate: f64,
    /// Particle count at which fixed per-batch costs halve the effective
    /// rate (Fig. 5's knee; much larger for the MIC, whose 244 threads
    /// starve below ~10⁴ particles).
    pub knee: f64,
}

impl Rank {
    /// A host-CPU rank.
    pub fn cpu(label: &str, nominal_rate: f64) -> Self {
        Self {
            label: label.to_string(),
            nominal_rate,
            knee: 200.0,
        }
    }

    /// A MIC rank.
    pub fn mic(label: &str, nominal_rate: f64) -> Self {
        Self {
            label: label.to_string(),
            nominal_rate,
            knee: 2_500.0,
        }
    }

    /// Batch wall time for `n` particles: `(n + knee) / nominal_rate`.
    #[inline]
    pub fn batch_time(&self, n: u64) -> f64 {
        (n as f64 + self.knee) / self.nominal_rate
    }

    /// Effective calculation rate at `n` particles.
    #[inline]
    pub fn effective_rate(&self, n: u64) -> f64 {
        n as f64 / self.batch_time(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_saturates_at_nominal() {
        let r = Rank::mic("m", 6641.0);
        let big = r.effective_rate(10_000_000);
        assert!((big / 6641.0 - 1.0).abs() < 0.001);
    }

    #[test]
    fn effective_rate_halves_at_knee() {
        let r = Rank::mic("m", 6641.0);
        let at_knee = r.effective_rate(2_500);
        assert!((at_knee / 6641.0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mic_collapses_sooner_than_cpu() {
        let cpu = Rank::cpu("c", 4050.0);
        let mic = Rank::mic("m", 6641.0);
        // At 3,000 particles/rank the MIC has lost nearly half its rate;
        // the CPU barely notices.
        assert!(mic.effective_rate(3_000) / mic.nominal_rate < 0.6);
        assert!(cpu.effective_rate(3_000) / cpu.nominal_rate > 0.9);
    }
}
