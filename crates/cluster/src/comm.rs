//! Per-batch communication: the tally reduction and fission-bank
//! synchronization every batch ends with.

/// Communication cost model for one batch synchronization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Point-to-point message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, GB/s.
    pub bandwidth_gb_s: f64,
    /// Bytes per banked fission site exchanged during bank
    /// redistribution.
    pub site_bytes: f64,
}

impl CommModel {
    /// FDR InfiniBand (Stampede): ~1 µs latency, ~6 GB/s effective.
    pub fn fdr_infiniband() -> Self {
        Self {
            latency_s: 1.5e-6,
            bandwidth_gb_s: 6.0,
            site_bytes: 64.0,
        }
    }

    /// Time for one batch synchronization across `ranks` ranks with
    /// `n_total` particles in flight: a log-tree of latency hops (tally
    /// reduction) plus a butterfly fission-bank exchange whose local
    /// share shrinks with rank count.
    pub fn batch_sync_time(&self, ranks: usize, n_total: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let hops = (ranks as f64).log2().ceil();
        let tree = hops * self.latency_s;
        let local_sites = n_total as f64 / ranks as f64;
        let exchange = hops * (local_sites * self.site_bytes) / (self.bandwidth_gb_s * 1e9);
        tree + exchange
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        let c = CommModel::fdr_infiniband();
        assert_eq!(c.batch_sync_time(1, 1_000_000), 0.0);
    }

    #[test]
    fn sync_grows_logarithmically_in_ranks() {
        let c = CommModel::fdr_infiniband();
        let t64 = c.batch_sync_time(64, 0);
        let t4096 = c.batch_sync_time(4096, 0);
        assert!((t4096 / t64 - 2.0).abs() < 1e-9); // 12 hops vs 6
    }

    #[test]
    fn sync_stays_far_below_batch_times() {
        // At the paper's largest scale (1,024 nodes × 2 ranks, 10⁷
        // particles) synchronization is milliseconds, not seconds.
        let c = CommModel::fdr_infiniband();
        let t = c.batch_sync_time(2048, 10_000_000);
        assert!(t < 0.05, "t = {t}");
        assert!(t > 0.0);
    }
}
