//! Per-batch communication: the tally reduction and fission-bank
//! synchronization every batch ends with.

/// Communication cost model for one batch synchronization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Point-to-point message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, GB/s.
    pub bandwidth_gb_s: f64,
    /// Bytes per banked fission site exchanged during bank
    /// redistribution.
    pub site_bytes: f64,
}

impl CommModel {
    /// FDR InfiniBand (Stampede): ~1 µs latency, ~6 GB/s effective.
    pub fn fdr_infiniband() -> Self {
        Self {
            latency_s: 1.5e-6,
            bandwidth_gb_s: 6.0,
            site_bytes: 64.0,
        }
    }

    /// Time for one batch synchronization across `ranks` ranks with
    /// `n_total` particles in flight: a log-tree of latency hops (tally
    /// reduction) plus a butterfly fission-bank exchange whose local
    /// share shrinks with rank count.
    pub fn batch_sync_time(&self, ranks: usize, n_total: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let hops = (ranks as f64).log2().ceil();
        let tree = hops * self.latency_s;
        let local_sites = n_total as f64 / ranks as f64;
        let exchange = hops * (local_sites * self.site_bytes) / (self.bandwidth_gb_s * 1e9);
        tree + exchange
    }

    /// [`CommModel::batch_sync_time`] for a degraded job: dead ranks have
    /// dropped out of the collective, so the tree shrinks, but the
    /// survivors now carry the dead ranks' particles — the per-rank bank
    /// share grows. Net effect: sync gets *cheaper* in latency and more
    /// expensive in exchange volume; the load-imbalance cost of the
    /// redistribution itself is priced by `balance::degraded_rate`, not
    /// here. Panics if no rank survives.
    pub fn degraded_sync_time(&self, alive: &[bool], n_total: u64) -> f64 {
        let survivors = alive.iter().filter(|&&a| a).count();
        assert!(survivors > 0, "every rank is dead; no collective to run");
        self.batch_sync_time(survivors, n_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        let c = CommModel::fdr_infiniband();
        assert_eq!(c.batch_sync_time(1, 1_000_000), 0.0);
    }

    #[test]
    fn sync_grows_logarithmically_in_ranks() {
        let c = CommModel::fdr_infiniband();
        let t64 = c.batch_sync_time(64, 0);
        let t4096 = c.batch_sync_time(4096, 0);
        assert!((t4096 / t64 - 2.0).abs() < 1e-9); // 12 hops vs 6
    }

    #[test]
    fn degraded_sync_shrinks_the_tree_but_keeps_the_particles() {
        let c = CommModel::fdr_infiniband();
        let full = c.batch_sync_time(8, 1_000_000);
        // Half the ranks die: same particle total over a 4-rank tree.
        let alive = [true, false, true, false, true, false, true, false];
        let degraded = c.degraded_sync_time(&alive, 1_000_000);
        assert_eq!(degraded, c.batch_sync_time(4, 1_000_000));
        // Fewer hops, but each survivor ships twice the sites; at this
        // scale the exchange term dominates, so the degraded sync is a
        // bit *slower* than the healthy one despite the smaller tree.
        assert!(degraded > full);
        // With no particles, only the latency tree remains — and that
        // strictly shrinks with the rank count.
        assert!(c.degraded_sync_time(&alive, 0) < c.batch_sync_time(8, 0));
    }

    #[test]
    #[should_panic(expected = "every rank is dead")]
    fn degraded_sync_rejects_total_loss() {
        CommModel::fdr_infiniband().degraded_sync_time(&[false, false], 1);
    }

    #[test]
    fn sync_stays_far_below_batch_times() {
        // At the paper's largest scale (1,024 nodes × 2 ranks, 10⁷
        // particles) synchronization is milliseconds, not seconds.
        let c = CommModel::fdr_infiniband();
        let t = c.batch_sync_time(2048, 10_000_000);
        assert!(t < 0.05, "t = {t}");
        assert!(t > 0.0);
    }
}
