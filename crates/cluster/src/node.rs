//! Node compositions: which ranks live on one compute node.

use crate::rank::Rank;

/// A compute node's rank composition.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// The ranks on this node (one per CPU and per attached MIC).
    pub ranks: Vec<Rank>,
}

impl NodeSpec {
    /// CPU-only node.
    pub fn cpu_only(cpu_rate: f64) -> Self {
        Self {
            ranks: vec![Rank::cpu("cpu", cpu_rate)],
        }
    }

    /// Host + one MIC (Stampede's 1,024-node partition).
    pub fn with_one_mic(cpu_rate: f64, mic_rate: f64) -> Self {
        Self {
            ranks: vec![Rank::cpu("cpu", cpu_rate), Rank::mic("mic0", mic_rate)],
        }
    }

    /// Host + two MICs (Stampede's 384-node partition; the JLSE nodes).
    pub fn with_two_mics(cpu_rate: f64, mic_rate: f64) -> Self {
        Self {
            ranks: vec![
                Rank::cpu("cpu", cpu_rate),
                Rank::mic("mic0", mic_rate),
                Rank::mic("mic1", mic_rate),
            ],
        }
    }

    /// Aggregate nominal rate of the node.
    pub fn nominal_rate(&self) -> f64 {
        self.ranks.iter().map(|r| r.nominal_rate).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions() {
        assert_eq!(NodeSpec::cpu_only(1.0).ranks.len(), 1);
        assert_eq!(NodeSpec::with_one_mic(1.0, 2.0).ranks.len(), 2);
        let two = NodeSpec::with_two_mics(1.0, 2.0);
        assert_eq!(two.ranks.len(), 3);
        assert_eq!(two.nominal_rate(), 5.0);
    }
}
