//! Distributed-memory execution model — the Stampede stand-in.
//!
//! Reproduces the paper's §III-B scaling studies (Fig. 6 strong scaling,
//! Fig. 7 weak scaling) with a model whose inputs are *measured*
//! single-rank calculation rates:
//!
//! * [`rank::Rank`] — a host CPU or MIC rank with an affine batch-time
//!   law `t(n) = (n + knee) / nominal_rate`. The `knee` captures Fig. 5's
//!   left side: calculation rates collapse below ~10⁴ particles per rank
//!   because fixed per-batch costs stop amortizing. This single term
//!   produces both the ≈5% strong-scaling loss at 128 nodes and the
//!   1-MIC curve's tail at 1,024 nodes (where Eq. 3 assigns the MIC only
//!   ~6,600 particles and its effective rate — hence α — drifts).
//! * [`comm::CommModel`] — per-batch synchronization: a log-tree latency
//!   term plus fission-bank exchange bandwidth.
//! * [`scaling`] — the strong/weak scaling drivers and efficiency
//!   accounting.

//! ```
//! use mcs_cluster::{strong_scaling, CommModel, NodeSpec};
//!
//! let node = NodeSpec::with_one_mic(3_200.0, 5_900.0);
//! let pts = strong_scaling(&node, &[4, 128], 10_000_000, &CommModel::fdr_infiniband());
//! assert!(pts[1].efficiency > 0.9); // near-perfect to 128 nodes
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod adaptive;
pub mod comm;
pub mod mpi;
pub mod node;
pub mod policy;
pub mod rank;
pub mod scaling;

pub use adaptive::AdaptiveBalancer;
pub use comm::CommModel;
pub use mpi::{distributed_result, DistributedBatch, DistributedResult, DistributedSettings};
pub use node::NodeSpec;
pub use policy::{DistributedPolicy, RankBatchDetail};
pub use rank::Rank;
pub use scaling::{batch_time_mixed, min_efficiency, strong_scaling, weak_scaling, ScalingPoint};
