//! The distributed [`ExecutionPolicy`]: simulated MPI ranks behind the
//! unified engine.
//!
//! One batch at a time, the engine hands this policy the full global
//! source bank and stream table; the policy partitions them into
//! contiguous, CHUNK-aligned per-rank slices, transports each slice on
//! its own OS thread, and runs the real collectives from [`crate::mpi`]
//! — fission-bank all-gather, chunk-keyed tally all-reduce, and a status
//! barrier — over channels. Because the all-reduce folds per-chunk
//! partials in global-start-index order, the distributed float reduction
//! rebuilds the serial summation tree **bitwise** for every
//! driver-chosen partition, so `Distributed == Threaded == Serial` to
//! the last bit for both transport algorithms.
//!
//! Everything *between* batches — resampling, entropy, k statistics,
//! checkpoints — is owned by the engine, exactly as for the thread-local
//! policies. What stays here is the distributed machinery itself: rank
//! liveness under a deterministic [`FaultPlan`], straggler-aware
//! adaptive rebalancing (§V's runtime α adaptation), and the per-rank
//! timing record the fault-tolerance reports are built from.

use std::time::Instant;

use mcs_core::balance::{chunk_aligned_split, redistribute_dead, split_among_alive};
use mcs_core::engine::{
    transport_chunks, BatchContext, BatchOutput, ExecutionPolicy, Halt, RunPlan,
};
use mcs_core::event::EventStats;
use mcs_core::history::{TransportOutcome, CHUNK};
use mcs_core::particle::Site;
use mcs_core::problem::Problem;
use mcs_core::tally::Tallies;
use mcs_device::catalog::DeviceSpec;
use mcs_device::TransportKind;
use mcs_faults::{FaultLog, FaultPlan, FaultRecord, FaultRecordKind};

use crate::mpi::Comm;

/// What one simulated rank hands back from a batch: the replicated
/// global fission sites and tallies, the all-gathered rank times, and
/// its local event-pipeline counters.
type RankOutput = (Vec<Site>, Tallies, Vec<f64>, Option<EventStats>);

/// Per-batch decomposition record: who computed what, how fast, and who
/// was alive. The `DistributedResult` view is rebuilt by zipping these
/// with the engine's batch records.
#[derive(Debug, Clone)]
pub struct RankBatchDetail {
    /// Batch index.
    pub index: usize,
    /// Per-rank particle assignment used this batch.
    pub assignments: Vec<u64>,
    /// Per-rank reported wall times (seconds; 0 for dead ranks;
    /// straggler-inflated — this is what the balancer sees).
    pub rank_times: Vec<f64>,
    /// Which ranks participated in this batch.
    pub alive: Vec<bool>,
}

/// Execute batches across simulated MPI ranks (one OS thread per rank,
/// channel-based collectives).
pub struct DistributedPolicy {
    n_ranks: usize,
    initial_assignments: Option<Vec<u64>>,
    // Per-rank device assignment: modeled rates weight the initial
    // split; ids label `describe`.
    device_rates: Option<Vec<f64>>,
    device_ids: Vec<&'static str>,
    adaptive: bool,
    fault_plan: FaultPlan,
    // Per-run state, reset by `begin`.
    assignments: Vec<u64>,
    alive: Vec<bool>,
    start_batch: usize,
    total_batches: usize,
    last_rank_times: Option<Vec<f64>>,
    fault_log: FaultLog,
    details: Vec<RankBatchDetail>,
}

impl DistributedPolicy {
    /// A healthy, evenly-split `n_ranks`-rank policy.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "a distributed run needs at least one rank");
        Self {
            n_ranks,
            initial_assignments: None,
            device_rates: None,
            device_ids: Vec::new(),
            adaptive: false,
            fault_plan: FaultPlan::new(0),
            assignments: Vec::new(),
            alive: Vec::new(),
            start_batch: 0,
            total_batches: 0,
            last_rank_times: None,
            fault_log: FaultLog::new(),
            details: Vec::new(),
        }
    }

    /// Fix the initial per-rank particle assignment (must sum to the
    /// plan's batch size); `None` keeps the chunk-aligned even split.
    pub fn with_assignments(mut self, assignments: Option<Vec<u64>>) -> Self {
        self.initial_assignments = assignments;
        self
    }

    /// Assign one device-catalog entry per rank (heterogeneous symmetric
    /// mode). The initial particle split is α-balanced proportionally to
    /// each device's modeled native rate in `kind` — and stays
    /// CHUNK-aligned, so the chunk-keyed all-reduce keeps the run
    /// `to_bits`-identical to serial regardless of the weights.
    ///
    /// # Panics
    /// If `devices.len()` differs from the policy's rank count.
    pub fn with_devices(mut self, devices: &[DeviceSpec], kind: TransportKind) -> Self {
        assert_eq!(
            devices.len(),
            self.n_ranks,
            "need exactly one device per rank"
        );
        self.device_rates = Some(
            devices
                .iter()
                .map(|d| d.modeled_native_rate(kind))
                .collect(),
        );
        self.device_ids = devices.iter().map(|d| d.id).collect();
        self
    }

    /// Rebalance between batches from measured rank times (chunk-aligned,
    /// so the bitwise reduction is preserved).
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Inject a deterministic fault schedule (deaths, stragglers).
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan.unwrap_or_else(|| FaultPlan::new(0));
        self
    }

    /// Number of ranks this policy simulates.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Per-batch decomposition records accumulated so far.
    pub fn details(&self) -> &[RankBatchDetail] {
        &self.details
    }

    /// Take the decomposition records, leaving the policy empty.
    pub fn take_details(&mut self) -> Vec<RankBatchDetail> {
        std::mem::take(&mut self.details)
    }

    /// Faults observed so far, in event order (identical to the legacy
    /// driver's log: a death is recorded at the first batch the rank
    /// misses, stragglers at the batch they slowed).
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Take the fault log, leaving the policy's copy empty.
    pub fn take_fault_log(&mut self) -> FaultLog {
        std::mem::take(&mut self.fault_log)
    }

    /// Process the batch-`b` boundary: apply deaths scheduled for `b`,
    /// then re-partition (adaptive from last batch's measured times, or
    /// minimally after a death).
    fn rebalance_for(&mut self, b: usize, n_total: usize) {
        let mut any_death = false;
        for r in 0..self.n_ranks {
            if self.alive[r]
                && self
                    .fault_plan
                    .death_batch(r)
                    // Deaths at or before the resume point belonged to the
                    // killed run; past-the-end deaths never fire.
                    .filter(|&d| d > self.start_batch && d <= self.total_batches)
                    == Some(b)
            {
                self.alive[r] = false;
                any_death = true;
                self.fault_log.push(FaultRecord {
                    batch: b,
                    rank: r,
                    kind: FaultRecordKind::Death,
                });
            }
        }
        if self.alive.iter().all(|&a| !a) {
            return; // nothing to rebalance; the caller halts the run
        }
        let Some(last_times) = self.last_rank_times.as_ref() else {
            return; // first batch of the run: keep the initial split
        };
        if self.adaptive {
            let rates: Vec<f64> = (0..self.n_ranks)
                .map(|r| {
                    if self.alive[r] && last_times[r] > 0.0 {
                        self.assignments[r] as f64 / last_times[r]
                    } else {
                        0.0
                    }
                })
                .collect();
            self.assignments = split_among_alive(n_total as u64, &rates, &self.alive, CHUNK as u64);
        } else if any_death {
            self.assignments = redistribute_dead(&self.assignments, &self.alive, CHUNK as u64);
        }
    }
}

impl ExecutionPolicy for DistributedPolicy {
    fn describe(&self) -> String {
        if self.device_ids.is_empty() {
            format!("distributed ({} ranks)", self.n_ranks)
        } else {
            format!(
                "distributed ({} ranks: {})",
                self.n_ranks,
                self.device_ids.join(", ")
            )
        }
    }

    fn begin(&mut self, plan: &RunPlan, start_batch: usize) {
        self.assignments = match &self.initial_assignments {
            Some(a) => {
                assert_eq!(a.len(), self.n_ranks);
                assert_eq!(
                    a.iter().sum::<u64>() as usize,
                    plan.particles,
                    "assignments must sum to total_particles"
                );
                a.clone()
            }
            None => {
                // Per-device modeled rates α-balance the heterogeneous
                // split; a device-less policy keeps the even split.
                let weights = match &self.device_rates {
                    Some(rates) => rates.clone(),
                    None => vec![1.0; self.n_ranks],
                };
                chunk_aligned_split(plan.particles as u64, &weights, CHUNK as u64)
            }
        };
        self.alive = vec![true; self.n_ranks];
        self.start_batch = start_batch;
        self.total_batches = plan.total_batches();
        self.last_rank_times = None;
        self.fault_log = FaultLog::new();
        self.details = Vec::new();
    }

    fn transport_batch(
        &mut self,
        problem: &Problem,
        ctx: &BatchContext<'_>,
    ) -> Result<BatchOutput, Halt> {
        if ctx.spectrum {
            return Err(Halt {
                reason: "the distributed policy does not score spectra".to_string(),
            });
        }
        assert!(
            ctx.mesh.is_none(),
            "the distributed policy does not score mesh tallies"
        );
        assert!(
            ctx.profiler.is_none(),
            "external profiling is a thread-local feature"
        );

        let b = ctx.index;
        self.rebalance_for(b, ctx.sources.len());
        let alive_ranks: Vec<usize> = (0..self.n_ranks).filter(|&r| self.alive[r]).collect();
        if alive_ranks.is_empty() {
            return Err(Halt {
                reason: "every rank has died".to_string(),
            });
        }

        let sources = ctx.sources;
        let streams = ctx.streams;
        let algorithm = ctx.algorithm;
        let queueing = ctx.queueing;
        let assignments = &self.assignments;
        let fault_plan = &self.fault_plan;

        // One OS thread per live rank; the collectives move real messages
        // over channels. Every rank ends up holding identical global
        // sites/tallies — rank 0's copy is returned.
        let comms = Comm::world(alive_ranks.len());
        let outputs: Vec<RankOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(&alive_ranks)
                .map(|(comm, &r)| {
                    scope.spawn(move || {
                        let offset: u64 = assignments[..r].iter().sum();
                        let count = assignments[r] as usize;
                        let lo = offset as usize;
                        let my_sources = &sources[lo..lo + count];
                        let my_streams = &streams[lo..lo + count];

                        let t0 = Instant::now();
                        let chunked =
                            transport_chunks(problem, my_sources, my_streams, algorithm, &queueing);
                        let mut wall = t0.elapsed().as_secs_f64();
                        // Straggler injection inflates the *reported*
                        // time (what the adaptive balancer sees).
                        let slow = fault_plan.straggler_factor(r, b);
                        if slow > 1.0 {
                            wall *= slow;
                        }

                        // Globalize: chunk partials keyed by global
                        // start index, site parents re-tagged with
                        // global particle indices.
                        let chunk_tallies: Vec<(u64, Tallies)> = chunked
                            .chunk_tallies
                            .iter()
                            .enumerate()
                            .map(|(i, t)| (offset + (i * CHUNK) as u64, *t))
                            .collect();
                        let mut local_sites = chunked.sites;
                        for s in &mut local_sites {
                            s.parent += offset as u32;
                        }

                        let global_sites = comm.allgather_sites(local_sites);
                        let global_tallies = comm.allreduce_chunks(chunk_tallies);
                        let (times, _) = comm.allgather_status(wall, false);
                        (global_sites, global_tallies, times, chunked.event_stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });

        // Dense (alive-only) rank times back onto the full rank space.
        let mut rank_times = vec![0.0; self.n_ranks];
        for (j, &r) in alive_ranks.iter().enumerate() {
            rank_times[r] = outputs[0].2[j];
        }
        // Stragglers logged for every live rank, from the shared plan.
        for &r in &alive_ranks {
            let f = fault_plan.straggler_factor(r, b);
            if f > 1.0 {
                self.fault_log.push(FaultRecord {
                    batch: b,
                    rank: r,
                    kind: FaultRecordKind::Straggler(f),
                });
            }
        }
        // Event-pipeline counters merge across ranks in rank order.
        let mut event_stats: Option<EventStats> = None;
        for (_, _, _, es) in &outputs {
            if let Some(s) = es {
                match event_stats.as_mut() {
                    Some(total) => total.merge(s),
                    None => event_stats = Some(*s),
                }
            }
        }

        self.details.push(RankBatchDetail {
            index: b,
            assignments: self.assignments.clone(),
            rank_times: rank_times.clone(),
            alive: self.alive.clone(),
        });
        self.last_rank_times = Some(rank_times);

        let mut outputs = outputs;
        let (sites, tallies, _, _) = outputs.swap_remove(0);
        Ok(BatchOutput {
            outcome: TransportOutcome { tallies, sites },
            mesh: None,
            spectrum: None,
            event_stats,
        })
    }
}
