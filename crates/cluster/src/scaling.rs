//! Strong- and weak-scaling studies (Fig. 6 and Fig. 7).
//!
//! Particle assignment uses the paper's *static* α balancing: Eq. 3
//! computed from the ranks' nominal (large-N) rates. At extreme scale the
//! per-rank particle counts fall onto Fig. 5's knee, the effective rates
//! drift away from the nominal ones, and the statically balanced split is
//! no longer balanced — which is exactly the 1-MIC tail at 1,024 nodes.

use mcs_core::balance::proportional_split;

use crate::comm::CommModel;
use crate::node::NodeSpec;

/// One point of a scaling study.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Total ranks.
    pub ranks: usize,
    /// Total particles per batch.
    pub n_total: u64,
    /// Modeled batch time, seconds.
    pub batch_time: f64,
    /// Aggregate calculation rate, neutrons/second.
    pub rate: f64,
    /// Parallel efficiency vs the study's baseline point.
    pub efficiency: f64,
}

/// Smallest parallel efficiency over a scaling curve (1.0 for an empty
/// curve). The Fig. 6/7 shape checks gate on this.
pub fn min_efficiency(points: &[ScalingPoint]) -> f64 {
    points.iter().map(|p| p.efficiency).fold(1.0, f64::min)
}

fn batch_time(node: &NodeSpec, n_nodes: usize, n_total: u64, comm: &CommModel) -> f64 {
    batch_time_mixed(&vec![node.clone(); n_nodes], n_total, comm)
}

/// Batch time for an arbitrary mix of node compositions (e.g. Stampede's
/// 1-MIC and 2-MIC partitions in one job), with the paper's static
/// α balancing applied globally across every rank.
pub fn batch_time_mixed(nodes: &[NodeSpec], n_total: u64, comm: &CommModel) -> f64 {
    let ranks: Vec<&crate::rank::Rank> = nodes.iter().flat_map(|n| n.ranks.iter()).collect();
    let rates: Vec<f64> = ranks.iter().map(|r| r.nominal_rate).collect();
    let split = proportional_split(n_total, &rates);
    let mut slowest = 0.0f64;
    for (rank, &n) in ranks.iter().zip(&split) {
        slowest = slowest.max(rank.batch_time(n));
    }
    slowest + comm.batch_sync_time(rates.len(), n_total)
}

/// Strong scaling: fixed `n_total`, growing node counts.
///
/// Efficiency is relative to the first (smallest) node count, as in the
/// paper ("95% of the expected ideal based on the 4 node measurement").
pub fn strong_scaling(
    node: &NodeSpec,
    node_counts: &[usize],
    n_total: u64,
    comm: &CommModel,
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let base_nodes = node_counts[0];
    let base_time = batch_time(node, base_nodes, n_total, comm);
    node_counts
        .iter()
        .map(|&p| {
            let t = batch_time(node, p, n_total, comm);
            let ideal_t = base_time * base_nodes as f64 / p as f64;
            ScalingPoint {
                nodes: p,
                ranks: p * node.ranks.len(),
                n_total,
                batch_time: t,
                rate: n_total as f64 / t,
                efficiency: ideal_t / t,
            }
        })
        .collect()
}

/// Weak scaling: fixed particles per node, growing node counts.
/// Efficiency is `t(1 node) / t(p nodes)`.
pub fn weak_scaling(
    node: &NodeSpec,
    node_counts: &[usize],
    n_per_node: u64,
    comm: &CommModel,
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let base_time = batch_time(node, 1, n_per_node, comm);
    node_counts
        .iter()
        .map(|&p| {
            let n_total = n_per_node * p as u64;
            let t = batch_time(node, p, n_total, comm);
            ScalingPoint {
                nodes: p,
                ranks: p * node.ranks.len(),
                n_total,
                batch_time: t,
                rate: n_total as f64 / t,
                efficiency: base_time / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stampede-like rates: CPU 3,200 n/s, MIC 5,900 n/s per rank on
    /// H.M. Large (scaled from the JLSE rates by clock).
    fn stampede_1mic() -> NodeSpec {
        NodeSpec::with_one_mic(3_200.0, 5_900.0)
    }

    #[test]
    fn fig6_near_perfect_scaling_to_128_nodes() {
        let comm = CommModel::fdr_infiniband();
        let pts = strong_scaling(
            &stampede_1mic(),
            &[4, 8, 16, 32, 64, 128],
            10_000_000,
            &comm,
        );
        let at_128 = pts.last().unwrap();
        assert!(
            at_128.efficiency > 0.93 && at_128.efficiency <= 1.0,
            "efficiency at 128 nodes = {:.3}",
            at_128.efficiency
        );
    }

    #[test]
    fn fig6_one_mic_curve_tails_at_1024_nodes() {
        // Paper: at 1,024 nodes Eq. 3 assigns the MIC ~6,600 particles,
        // its effective rate collapses, and the curve tails off.
        let comm = CommModel::fdr_infiniband();
        let pts = strong_scaling(&stampede_1mic(), &[4, 128, 1024], 10_000_000, &comm);
        let at_128 = &pts[1];
        let at_1024 = &pts[2];
        assert!(at_128.efficiency > 0.93);
        assert!(
            at_1024.efficiency < 0.85,
            "expected a visible tail, efficiency = {:.3}",
            at_1024.efficiency
        );
    }

    #[test]
    fn fig6_cpu_only_curve_stays_flat() {
        // "The effect is not seen in the CPU-only curve because we are
        // still safely simulating about 10⁴ particles per node."
        let comm = CommModel::fdr_infiniband();
        let pts = strong_scaling(
            &NodeSpec::cpu_only(3_200.0),
            &[4, 128, 1024],
            10_000_000,
            &comm,
        );
        assert!(pts.last().unwrap().efficiency > 0.95);
    }

    #[test]
    fn fig7_weak_scaling_holds_94_percent() {
        let comm = CommModel::fdr_infiniband();
        let pts = weak_scaling(
            &stampede_1mic(),
            &[1, 2, 4, 8, 16, 32, 64, 128],
            1_000_000,
            &comm,
        );
        for p in &pts {
            assert!(
                p.efficiency > 0.94,
                "weak efficiency at {} nodes = {:.3}",
                p.nodes,
                p.efficiency
            );
        }
    }

    #[test]
    fn weak_scaling_remains_flat_beyond_measured_range() {
        // The paper's footnote: confidence the weak curve stays flat to
        // 2^10 nodes.
        let comm = CommModel::fdr_infiniband();
        let pts = weak_scaling(&stampede_1mic(), &[1, 1024], 1_000_000, &comm);
        assert!(pts[1].efficiency > 0.9, "{}", pts[1].efficiency);
    }

    #[test]
    fn mixed_partitions_are_balanced_globally() {
        // A Stampede-like job spanning both partitions: 64 nodes with one
        // MIC + 32 with two. Global α balancing must beat per-node-even
        // treatment: total rate ≈ sum of all rank rates.
        let comm = CommModel::fdr_infiniband();
        let mut nodes = vec![NodeSpec::with_one_mic(3_200.0, 5_900.0); 64];
        nodes.extend(vec![NodeSpec::with_two_mics(3_200.0, 5_900.0); 32]);
        let n_total = 10_000_000;
        let t = batch_time_mixed(&nodes, n_total, &comm);
        let ideal_rate: f64 = nodes.iter().map(|n| n.nominal_rate()).sum();
        let achieved = n_total as f64 / t;
        assert!(
            achieved > 0.93 * ideal_rate,
            "achieved {achieved:.0} vs ideal {ideal_rate:.0}"
        );
    }

    #[test]
    fn two_mic_nodes_outrate_one_mic_nodes() {
        let comm = CommModel::fdr_infiniband();
        let one = strong_scaling(&stampede_1mic(), &[4], 10_000_000, &comm);
        let two = strong_scaling(
            &NodeSpec::with_two_mics(3_200.0, 5_900.0),
            &[4],
            10_000_000,
            &comm,
        );
        assert!(two[0].rate > 1.3 * one[0].rate);
    }

    #[test]
    fn strong_scaling_rate_is_monotone_until_the_tail() {
        let comm = CommModel::fdr_infiniband();
        let pts = strong_scaling(
            &stampede_1mic(),
            &[4, 8, 16, 32, 64, 128],
            10_000_000,
            &comm,
        );
        for w in pts.windows(2) {
            assert!(w[1].rate > w[0].rate);
        }
    }
}
