//! An *executed* message-passing runtime — the MPI substrate, for real.
//!
//! The paper's symmetric mode is "MPI for distributed memory
//! communication, and OpenMP for shared memory multi-threading" (§II-A).
//! Everywhere else in this crate the distributed machine is *modeled*;
//! this module actually runs the distributed algorithm: every rank is an
//! OS thread with its own transport state, and the collectives OpenMC's
//! eigenvalue loop needs — the fission-bank all-gather, the tally
//! all-reduce, and a per-batch status barrier — move real messages over
//! channels.
//!
//! The crucial design point is the same one that makes the single-process
//! engine reproducible: particle identity is *global*. Rank `r` owns a
//! contiguous slice of the batch's global particle indices, every
//! particle's RNG stream is derived from its global index, and banked
//! fission sites are re-tagged with global parent indices before the
//! all-gather. The tally all-reduce exchanges *per-chunk* partials keyed
//! by global start index and folds them in key order, so whenever rank
//! boundaries are `CHUNK`-aligned (every split this driver picks itself)
//! the distributed float reduction rebuilds the **serial summation tree
//! bitwise** — k-eff and all float tallies equal the serial driver's to
//! the last bit, for any rank count. User-supplied unaligned partitions
//! still agree to rounding (~1e-12).
//!
//! # Fault tolerance
//!
//! A seeded [`FaultPlan`] can kill ranks, slow stragglers, or both —
//! deterministically, so any failure replays. Deaths are detected at the
//! per-batch status barrier: a rank scheduled to die at batch `d`
//! completes batch `d-1` in full, announces its departure in that batch's
//! status exchange, and exits; every survivor marks it dead and
//! redistributes its quota (chunk-aligned, proportional to prior
//! assignments) before batch `d` begins. No particles are lost, so the
//! degraded run's physics — and k-eff — is bit-identical to the healthy
//! run's. Periodic [`Statepoint`] checkpoints (identical on every rank)
//! let a killed job resume via [`resume_distributed_eigenvalue`] or the
//! serial `resume_eigenvalue`, again bit-exactly.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use mcs_core::balance::{chunk_aligned_split, redistribute_dead, split_among_alive};
use mcs_core::eigenvalue::{resample_source, shannon_entropy};
use mcs_core::history::{run_histories_chunked, CHUNK};
use mcs_core::particle::{sort_sites, Site};
use mcs_core::problem::Problem;
use mcs_core::statepoint::Statepoint;
use mcs_core::tally::Tallies;
use mcs_faults::{FaultLog, FaultPlan, FaultRecord, FaultRecordKind};
use mcs_rng::Lcg63;

/// A message between ranks. The `u32` is the sender's rank.
enum Message {
    Sites(#[allow(dead_code)] u32, Vec<Site>),
    /// Per-chunk tally partials, keyed by global particle start index.
    Chunks(#[allow(dead_code)] u32, Vec<(u64, Tallies)>),
    /// End-of-batch status: measured wall time and whether the sender
    /// departs (dies) after this batch.
    Status(u32, f64, bool),
}

/// One rank's communicator endpoint.
struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Liveness view, updated at status barriers; identical on every
    /// surviving rank.
    alive: Vec<bool>,
}

impl Comm {
    /// Build all endpoints for a `size`-rank job.
    fn world(size: usize) -> Vec<Comm> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..size).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| Comm {
                rank,
                size,
                txs: txs.clone(),
                rx,
                alive: vec![true; size],
            })
            .collect()
    }

    fn n_alive_peers(&self) -> usize {
        self.alive
            .iter()
            .enumerate()
            .filter(|&(r, &a)| a && r != self.rank)
            .count()
    }

    fn send_to_alive_peers(&self, mut make: impl FnMut() -> Message) {
        for (r, tx) in self.txs.iter().enumerate() {
            if r != self.rank && self.alive[r] {
                tx.send(make()).expect("peer alive");
            }
        }
    }

    /// All-gather fission sites: returns the union in canonical (parent,
    /// seq) order, identical on every rank.
    fn allgather_sites(&self, local: Vec<Site>) -> Vec<Site> {
        self.send_to_alive_peers(|| Message::Sites(self.rank as u32, local.clone()));
        let mut all = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Sites(_, sites) => {
                    all.extend(sites);
                    received += 1;
                }
                other => pending.push(other), // not ours; re-deliver below
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        sort_sites(&mut all);
        all
    }

    /// All-reduce tallies from per-chunk partials: every rank receives
    /// every chunk and folds them in global-start-index order. With
    /// chunk-aligned rank boundaries this reproduces the serial chunk
    /// fold exactly (bitwise); unaligned boundaries still give a
    /// deterministic, partition-stable-to-rounding sum.
    fn allreduce_chunks(&self, local: Vec<(u64, Tallies)>) -> Tallies {
        self.send_to_alive_peers(|| Message::Chunks(self.rank as u32, local.clone()));
        let mut all = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Chunks(_, chunks) => {
                    all.extend(chunks);
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        all.sort_by_key(|&(start, _)| start);
        let mut merged = Tallies::default();
        for (_, t) in &all {
            merged.merge(t);
        }
        merged
    }

    /// Status barrier: gather every live rank's batch wall time and
    /// departure flag. Dead ranks report (0.0, false).
    fn allgather_status(&self, wall: f64, departing: bool) -> (Vec<f64>, Vec<bool>) {
        self.send_to_alive_peers(|| Message::Status(self.rank as u32, wall, departing));
        let mut times = vec![0.0; self.size];
        let mut departs = vec![false; self.size];
        times[self.rank] = wall;
        departs[self.rank] = departing;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Status(from, t, d) => {
                    times[from as usize] = t;
                    departs[from as usize] = d;
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        (times, departs)
    }
}

/// Settings for a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedSettings {
    /// Total particles per batch (across all ranks).
    pub total_particles: usize,
    /// Source-convergence batches.
    pub inactive: usize,
    /// Tallied batches.
    pub active: usize,
    /// Initial per-rank particle assignment (must sum to
    /// `total_particles`); `None` = chunk-aligned even split.
    pub assignments: Option<Vec<u64>>,
    /// Rebalance between batches from measured rank times (§V's runtime
    /// α adaptation), chunk-aligned.
    pub adaptive: bool,
    /// Injected fault schedule (deaths, stragglers). `None` = healthy.
    pub fault_plan: Option<FaultPlan>,
    /// Write a [`Statepoint`] after every `n` completed batches.
    pub checkpoint_every: Option<usize>,
}

impl DistributedSettings {
    /// A healthy, checkpoint-free run (the pre-fault-layer default).
    pub fn simple(total_particles: usize, inactive: usize, active: usize) -> Self {
        Self {
            total_particles,
            inactive,
            active,
            assignments: None,
            adaptive: false,
            fault_plan: None,
            checkpoint_every: None,
        }
    }
}

/// Per-batch record of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedBatch {
    /// Batch index.
    pub index: usize,
    /// Active (tallied)?
    pub active: bool,
    /// Global track-length k estimate.
    pub k_track: f64,
    /// Shannon entropy of the global fission bank.
    pub entropy: f64,
    /// Per-rank particle assignment used this batch.
    pub assignments: Vec<u64>,
    /// Per-rank wall times (seconds; 0 for dead ranks).
    pub rank_times: Vec<f64>,
    /// Which ranks participated in this batch.
    pub alive: Vec<bool>,
}

/// Result of a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Per-batch records.
    pub batches: Vec<DistributedBatch>,
    /// Mean k over completed active batches.
    pub k_mean: f64,
    /// Merged global tallies over completed active batches.
    pub tallies: Tallies,
    /// Periodic checkpoints, oldest first (identical on every rank).
    pub checkpoints: Vec<Statepoint>,
    /// Faults observed during the run, in event order.
    pub fault_log: FaultLog,
    /// Whether the full batch plan completed (false = the job aborted
    /// because every rank died; resume from `checkpoints.last()`).
    pub completed: bool,
}

fn default_assignments(settings: &DistributedSettings, n_ranks: usize) -> Vec<u64> {
    match &settings.assignments {
        Some(a) => {
            assert_eq!(a.len(), n_ranks);
            assert_eq!(
                a.iter().sum::<u64>() as usize,
                settings.total_particles,
                "assignments must sum to total_particles"
            );
            a.clone()
        }
        None => chunk_aligned_split(
            settings.total_particles as u64,
            &vec![1.0; n_ranks],
            CHUNK as u64,
        ),
    }
}

/// Run a k-eigenvalue calculation across `n_ranks` rank threads with real
/// collectives. Physics is bit-identical to the serial driver whenever
/// rank boundaries are chunk-aligned (all driver-chosen splits), and
/// identical to rounding for arbitrary user partitions.
pub fn run_distributed_eigenvalue(
    problem: &Arc<Problem>,
    n_ranks: usize,
    settings: &DistributedSettings,
) -> DistributedResult {
    let init = RankInit {
        start_batch: 0,
        source: None,
        k_history: Vec::new(),
        tallies: Tallies::default(),
    };
    launch(problem, n_ranks, settings, init)
}

/// Resume a distributed run from a checkpoint (e.g. one written by a
/// run that lost all its ranks), running the remaining batches of the
/// plan. The resumed run may use any rank count; results are bit-exact
/// against the uninterrupted run for driver-chosen partitions.
pub fn resume_distributed_eigenvalue(
    problem: &Arc<Problem>,
    n_ranks: usize,
    settings: &DistributedSettings,
    checkpoint: &Statepoint,
) -> DistributedResult {
    assert_eq!(
        checkpoint.seed, problem.seed,
        "statepoint belongs to a different problem seed"
    );
    assert_eq!(
        checkpoint.source.len(),
        settings.total_particles,
        "statepoint bank size does not match the batch size"
    );
    let total = settings.inactive + settings.active;
    assert!(checkpoint.completed_batches < total, "nothing left to run");
    let init = RankInit {
        start_batch: checkpoint.completed_batches,
        source: Some(checkpoint.source.clone()),
        k_history: checkpoint.k_history.clone(),
        tallies: checkpoint.tallies,
    };
    launch(problem, n_ranks, settings, init)
}

/// Shared per-rank starting state (cold start or checkpoint).
#[derive(Clone)]
struct RankInit {
    start_batch: usize,
    source: Option<Vec<mcs_core::particle::SourceSite>>,
    k_history: Vec<f64>,
    tallies: Tallies,
}

struct RankOutcome {
    result: DistributedResult,
    survived: bool,
}

fn launch(
    problem: &Arc<Problem>,
    n_ranks: usize,
    settings: &DistributedSettings,
    init: RankInit,
) -> DistributedResult {
    assert!(n_ranks > 0);
    let init_assignments = default_assignments(settings, n_ranks);

    let comms = Comm::world(n_ranks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let problem = Arc::clone(problem);
                let settings = settings.clone();
                let assignments = init_assignments.clone();
                let init = init.clone();
                scope.spawn(move || rank_main(&problem, comm, &settings, assignments, init))
            })
            .collect();
        let outcomes: Vec<RankOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        // Surviving ranks hold identical complete results; take the
        // lowest-numbered one. If every rank died, take the longest
        // partial record (the last ranks standing saw the most batches).
        let pick = outcomes.iter().position(|o| o.survived).unwrap_or_else(|| {
            outcomes
                .iter()
                .enumerate()
                .max_by_key(|(i, o)| (o.result.batches.len(), usize::MAX - i))
                .map(|(i, _)| i)
                .unwrap()
        });
        outcomes.into_iter().nth(pick).unwrap().result
    })
}

fn rank_main(
    problem: &Problem,
    mut comm: Comm,
    settings: &DistributedSettings,
    mut assignments: Vec<u64>,
    init: RankInit,
) -> RankOutcome {
    let n_total = settings.total_particles;
    let total_batches = settings.inactive + settings.active;
    let plan = settings
        .fault_plan
        .clone()
        .unwrap_or_else(|| FaultPlan::new(0));
    // A death scheduled at or before the resume point is ignored (the
    // plan belonged to the killed run).
    let my_death = plan
        .death_batch(comm.rank)
        .filter(|&d| d > init.start_batch && d <= total_batches);

    // The global source is identical on all ranks (deterministic in the
    // problem seed / checkpoint); each rank transports only its slice.
    let mut global_source = init
        .source
        .unwrap_or_else(|| problem.sample_initial_source(n_total, 0));
    let mut k_history = init.k_history;
    let mut tallies = init.tallies;

    let mut batches = Vec::new();
    let mut checkpoints = Vec::new();
    let mut fault_log = FaultLog::new();
    let mut survived = true;

    for b in init.start_batch..total_batches {
        let active = b >= settings.inactive;
        let offset: u64 = assignments[..comm.rank].iter().sum();
        let count = assignments[comm.rank] as usize;
        let my_source = &global_source[offset as usize..offset as usize + count];
        // Streams from GLOBAL particle indices: partition-independent.
        let streams: Vec<Lcg63> = (0..count)
            .map(|i| {
                Lcg63::for_history(
                    problem.seed,
                    b as u64 * n_total as u64 + offset + i as u64,
                    mcs_rng::STREAM_STRIDE,
                )
            })
            .collect();

        let t0 = std::time::Instant::now();
        let chunked = run_histories_chunked(problem, my_source, &streams);
        let mut wall = t0.elapsed().as_secs_f64();
        // Straggler injection: inflate the *reported* time (what the
        // adaptive balancer sees), deterministically from the plan.
        let slow = plan.straggler_factor(comm.rank, b);
        if slow > 1.0 {
            wall *= slow;
        }

        // Globalize: chunk partials keyed by global start index, site
        // parents re-tagged with global particle indices.
        let chunk_tallies: Vec<(u64, Tallies)> = chunked
            .iter()
            .enumerate()
            .map(|(i, out)| (offset + (i * CHUNK) as u64, out.tallies))
            .collect();
        let mut local_sites: Vec<Site> = Vec::new();
        for out in chunked {
            local_sites.extend(out.sites);
        }
        for s in &mut local_sites {
            s.parent += offset as u32;
        }

        let global_sites = comm.allgather_sites(local_sites);
        let global_tallies = comm.allreduce_chunks(chunk_tallies);
        let departing = my_death == Some(b + 1);
        let (rank_times, departs) = comm.allgather_status(wall, departing);

        let k = global_tallies.k_track_estimate();
        let entropy = shannon_entropy(&global_sites, problem.geometry.bounds, (8, 8, 4));
        batches.push(DistributedBatch {
            index: b,
            active,
            k_track: k,
            entropy,
            assignments: assignments.clone(),
            rank_times: rank_times.clone(),
            alive: comm.alive.clone(),
        });
        k_history.push(k);
        if active {
            tallies.merge(&global_tallies);
        }

        // Identical resampling on every rank (same bank, same seed —
        // and the same constant the serial driver uses, so a 1-rank
        // distributed run IS the serial run).
        global_source = resample_source(
            &global_sites,
            n_total,
            problem.seed ^ (0xbeef << 8) ^ b as u64,
        );

        // Checkpoint cadence: the statepoint matches the serial
        // driver's exactly, so `resume_eigenvalue` consumes it too.
        if let Some(every) = settings.checkpoint_every {
            if every > 0 && (b + 1) % every == 0 {
                checkpoints.push(Statepoint {
                    seed: problem.seed,
                    completed_batches: b + 1,
                    source: global_source.clone(),
                    k_history: k_history.clone(),
                    tallies,
                });
            }
        }

        // Deterministic fault records, identical on every rank: the plan
        // is shared, so stragglers are logged from it, deaths from the
        // barrier's departure flags.
        for r in 0..comm.size {
            if comm.alive[r] {
                let f = plan.straggler_factor(r, b);
                if f > 1.0 {
                    fault_log.push(FaultRecord {
                        batch: b,
                        rank: r,
                        kind: FaultRecordKind::Straggler(f),
                    });
                }
            }
        }
        let mut any_death = false;
        for (r, &d) in departs.iter().enumerate() {
            if d {
                comm.alive[r] = false;
                any_death = true;
                fault_log.push(FaultRecord {
                    batch: b + 1,
                    rank: r,
                    kind: FaultRecordKind::Death,
                });
            }
        }

        if departing {
            // This rank dies here: its record ends at batch b.
            survived = false;
            break;
        }
        if b + 1 == total_batches {
            break;
        }
        if comm.alive.iter().all(|&a| !a) {
            unreachable!("a live rank is iterating");
        }

        // Re-partition for the next batch: adaptive from measured rates,
        // or minimally after a death. Driver-chosen splits are always
        // chunk-aligned, preserving the bitwise reduction.
        if settings.adaptive {
            let rates: Vec<f64> = (0..comm.size)
                .map(|r| {
                    if comm.alive[r] && rank_times[r] > 0.0 {
                        assignments[r] as f64 / rank_times[r]
                    } else {
                        0.0
                    }
                })
                .collect();
            assignments = split_among_alive(n_total as u64, &rates, &comm.alive, CHUNK as u64);
        } else if any_death {
            assignments = redistribute_dead(&assignments, &comm.alive, CHUNK as u64);
        }
    }

    let active_ks: Vec<f64> = k_history
        .iter()
        .enumerate()
        .filter(|(i, _)| *i >= settings.inactive)
        .map(|(_, &k)| k)
        .collect();
    let k_mean = active_ks.iter().sum::<f64>() / active_ks.len().max(1) as f64;
    let completed = survived && batches.last().map(|b| b.index + 1) == Some(total_batches);

    RankOutcome {
        result: DistributedResult {
            batches,
            k_mean,
            tallies,
            checkpoints,
            fault_log,
            completed,
        },
        survived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Arc<Problem> {
        Arc::new(Problem::test_small())
    }

    fn settings(n: usize) -> DistributedSettings {
        DistributedSettings::simple(n, 1, 2)
    }

    #[test]
    fn distributed_matches_any_rank_count() {
        let p = problem();
        let r1 = run_distributed_eigenvalue(&p, 1, &settings(300));
        let r2 = run_distributed_eigenvalue(&p, 2, &settings(300));
        let r4 = run_distributed_eigenvalue(&p, 4, &settings(300));
        // Integer tallies identical — and with the chunk-keyed reduce
        // over chunk-aligned default splits the float sums are now
        // bitwise identical too, not merely close.
        assert_eq!(r1.tallies.collisions, r2.tallies.collisions);
        assert_eq!(r1.tallies.collisions, r4.tallies.collisions);
        assert_eq!(r1.tallies.absorptions, r4.tallies.absorptions);
        assert_eq!(r1.tallies.fissions, r4.tallies.fissions);
        assert_eq!(r1.tallies, r2.tallies);
        assert_eq!(r1.tallies, r4.tallies);
        for (a, b) in [(&r1, &r2), (&r1, &r4)] {
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert_eq!(x.k_track.to_bits(), y.k_track.to_bits());
                assert_eq!(x.entropy, y.entropy);
            }
        }
        assert!(r1.completed && r2.completed && r4.completed);
    }

    #[test]
    fn distributed_equals_the_serial_driver() {
        // The strongest cross-check: the executed MPI runtime with any
        // rank count reproduces the serial eigenvalue driver's per-batch
        // k bitwise (identical streams, identical resampling, identical
        // summation tree via the chunk-keyed all-reduce).
        use mcs_core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
        let p = problem();
        let serial = run_eigenvalue(
            &p,
            &EigenvalueSettings {
                particles: 300,
                inactive: 1,
                active: 2,
                mode: TransportMode::History,
                entropy_mesh: (8, 8, 4),
                mesh_tally: None,
            },
        );
        let dist = run_distributed_eigenvalue(&p, 3, &settings(300));
        for (a, b) in serial.batches.iter().zip(&dist.batches) {
            assert_eq!(
                a.k_track.to_bits(),
                b.k_track.to_bits(),
                "batch {}: serial {} vs distributed {}",
                a.index,
                a.k_track,
                b.k_track
            );
        }
        assert_eq!(serial.tallies, dist.tallies);
        assert_eq!(serial.k_mean.to_bits(), dist.k_mean.to_bits());
    }

    #[test]
    fn distributed_run_is_backend_invariant() {
        // The grid backend rides along inside the problem's `XsContext`;
        // since every backend resolves identical grid intervals, the
        // distributed per-batch k must be bit-identical across backends.
        use mcs_core::problem::GridBackendKind;
        let results: Vec<DistributedResult> = GridBackendKind::ALL
            .iter()
            .map(|&kind| {
                let p = Arc::new(Problem::test_small_with_backend(kind));
                run_distributed_eigenvalue(&p, 2, &settings(300))
            })
            .collect();
        for other in &results[1..] {
            assert_eq!(results[0].tallies, other.tallies);
            for (a, b) in results[0].batches.iter().zip(&other.batches) {
                assert_eq!(a.k_track.to_bits(), b.k_track.to_bits());
            }
        }
    }

    #[test]
    fn distributed_is_partition_invariant() {
        let p = problem();
        let mut s = settings(300);
        s.assignments = Some(vec![250, 50]);
        let skewed = run_distributed_eigenvalue(&p, 2, &s);
        s.assignments = Some(vec![10, 290]);
        let skewed2 = run_distributed_eigenvalue(&p, 2, &s);
        assert_eq!(skewed.tallies.collisions, skewed2.tallies.collisions);
        for (x, y) in skewed.batches.iter().zip(&skewed2.batches) {
            assert!((x.k_track - y.k_track).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_rebalancing_runs_and_preserves_physics() {
        let p = problem();
        let mut s = settings(600);
        s.adaptive = true;
        s.inactive = 1;
        s.active = 3;
        let adaptive = run_distributed_eigenvalue(&p, 2, &s);
        s.adaptive = false;
        let fixed = run_distributed_eigenvalue(&p, 2, &s);
        // Rebalancing changes who computes what, never what is computed.
        assert_eq!(adaptive.tallies, fixed.tallies);
        for (x, y) in adaptive.batches.iter().zip(&fixed.batches) {
            assert_eq!(x.k_track.to_bits(), y.k_track.to_bits());
        }
        // And the later batches' assignments must still sum to the total.
        for b in &adaptive.batches {
            assert_eq!(b.assignments.iter().sum::<u64>(), 600);
        }
    }

    #[test]
    fn bad_assignments_are_rejected() {
        let p = problem();
        let mut s = settings(100);
        s.assignments = Some(vec![50, 49]); // sums to 99
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_distributed_eigenvalue(&p, 2, &s)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rank_death_degrades_gracefully_and_preserves_physics() {
        let p = problem();
        let mut s = settings(600);
        s.inactive = 1;
        s.active = 3;
        let healthy = run_distributed_eigenvalue(&p, 3, &s);

        s.fault_plan = Some(FaultPlan::new(11).with_rank_death(1, 2));
        let degraded = run_distributed_eigenvalue(&p, 3, &s);
        assert!(degraded.completed);
        assert_eq!(degraded.fault_log.n_deaths(), 1);
        // Bit-identical physics: the dead rank's quota moved, nothing
        // was lost.
        assert_eq!(healthy.tallies, degraded.tallies);
        assert_eq!(healthy.k_mean.to_bits(), degraded.k_mean.to_bits());
        // The dead rank has no work from its death batch on.
        for b in &degraded.batches {
            if b.index >= 2 {
                assert_eq!(b.assignments[1], 0, "batch {}", b.index);
                assert!(!b.alive[1]);
            }
            assert_eq!(b.assignments.iter().sum::<u64>(), 600);
        }
    }

    #[test]
    fn all_ranks_dead_aborts_with_checkpoint() {
        let p = problem();
        let mut s = settings(300);
        s.inactive = 1;
        s.active = 3;
        s.checkpoint_every = Some(2);
        s.fault_plan = Some(
            FaultPlan::new(5)
                .with_rank_death(0, 3)
                .with_rank_death(1, 3),
        );
        let r = run_distributed_eigenvalue(&p, 2, &s);
        assert!(!r.completed, "the job lost every rank");
        assert_eq!(r.batches.len(), 3); // batches 0..3 ran
        assert_eq!(r.checkpoints.len(), 1);
        assert_eq!(r.checkpoints[0].completed_batches, 2);
    }

    #[test]
    fn checkpoints_match_the_serial_statepoint() {
        use mcs_core::eigenvalue::{EigenvalueSettings, TransportMode};
        use mcs_core::statepoint::run_eigenvalue_checkpointed;
        let p = problem();
        let mut s = settings(600);
        s.inactive = 1;
        s.active = 2;
        s.checkpoint_every = Some(2);
        let dist = run_distributed_eigenvalue(&p, 2, &s);
        let (_, serial_sp) = run_eigenvalue_checkpointed(
            &p,
            &EigenvalueSettings {
                particles: 600,
                inactive: 1,
                active: 2,
                mode: TransportMode::History,
                entropy_mesh: (8, 8, 4),
                mesh_tally: None,
            },
            2,
        );
        let sp = &dist.checkpoints[0];
        assert_eq!(
            sp, &serial_sp,
            "distributed checkpoint == serial checkpoint"
        );
    }

    #[test]
    fn straggler_slows_reported_time_only() {
        let p = problem();
        let mut s = settings(600);
        s.fault_plan = Some(FaultPlan::new(3).with_straggler(0, 1, 1000.0));
        let r = run_distributed_eigenvalue(&p, 2, &s);
        let healthy = run_distributed_eigenvalue(&p, 2, &settings(600));
        assert_eq!(r.tallies, healthy.tallies);
        // The straggler batch reports a grossly inflated rank-0 time.
        let b1 = &r.batches[1];
        assert!(b1.rank_times[0] > 100.0 * b1.rank_times[1].max(1e-9));
        assert!(r
            .fault_log
            .records
            .iter()
            .any(|rec| matches!(rec.kind, FaultRecordKind::Straggler(f) if f == 1000.0)));
    }
}
