//! An *executed* message-passing runtime — the MPI substrate, for real.
//!
//! The paper's symmetric mode is "MPI for distributed memory
//! communication, and OpenMP for shared memory multi-threading" (§II-A).
//! Everywhere else in this crate the distributed machine is *modeled*;
//! this module actually runs the distributed algorithm: every rank is an
//! OS thread with its own transport state, and the two collectives
//! OpenMC's eigenvalue loop needs — the fission-bank all-gather and the
//! tally all-reduce — move real messages over channels.
//!
//! The crucial design point is the same one that makes the single-process
//! engine reproducible: particle identity is *global*. Rank `r` owns a
//! contiguous slice of the batch's global particle indices, every
//! particle's RNG stream is derived from its global index, and banked
//! fission sites are re-tagged with global parent indices before the
//! all-gather. Consequently the distributed run produces **bit-identical
//! physics to the serial run, for any rank count and any particle
//! partition** — the test suite asserts it.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use mcs_core::eigenvalue::{resample_source, shannon_entropy};
use mcs_core::history::{run_histories, TransportOutcome};
use mcs_core::particle::{sort_sites, Site};
use mcs_core::problem::Problem;
use mcs_core::tally::Tallies;
use mcs_rng::Lcg63;

use crate::adaptive::AdaptiveBalancer;

/// A message between ranks. The `u32` is the sender's rank (carried for
/// by-rank ordering where it matters; the site gather is order-free).
enum Message {
    Sites(#[allow(dead_code)] u32, Vec<Site>),
    Tallies(u32, Box<Tallies>),
    Time(u32, f64),
}

/// One rank's communicator endpoint.
struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Message>>,
    rx: Receiver<Message>,
}

impl Comm {
    /// Build all endpoints for a `size`-rank job.
    fn world(size: usize) -> Vec<Comm> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..size).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| Comm {
                rank,
                size,
                txs: txs.clone(),
                rx,
            })
            .collect()
    }

    /// All-gather fission sites: returns the union in canonical (parent,
    /// seq) order, identical on every rank.
    fn allgather_sites(&self, local: Vec<Site>) -> Vec<Site> {
        for (r, tx) in self.txs.iter().enumerate() {
            if r != self.rank {
                tx.send(Message::Sites(self.rank as u32, local.clone()))
                    .expect("peer alive");
            }
        }
        let mut all = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.size - 1 {
            match self.rx.recv().expect("peer alive") {
                Message::Sites(_, sites) => {
                    all.extend(sites);
                    received += 1;
                }
                other => pending.push(other), // not ours; re-deliver below
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        sort_sites(&mut all);
        all
    }

    /// All-reduce tallies (sum), deterministic: contributions are merged
    /// in rank order on every rank.
    fn allreduce_tallies(&self, local: Tallies) -> Tallies {
        for (r, tx) in self.txs.iter().enumerate() {
            if r != self.rank {
                tx.send(Message::Tallies(self.rank as u32, Box::new(local)))
                    .expect("peer alive");
            }
        }
        let mut by_rank: Vec<Option<Tallies>> = vec![None; self.size];
        by_rank[self.rank] = Some(local);
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.size - 1 {
            match self.rx.recv().expect("peer alive") {
                Message::Tallies(from, t) => {
                    by_rank[from as usize] = Some(*t);
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        let mut merged = Tallies::default();
        for t in by_rank.into_iter().flatten() {
            merged.merge(&t);
        }
        merged
    }

    /// Gather every rank's batch wall time (for the adaptive balancer).
    fn allgather_times(&self, local: f64) -> Vec<f64> {
        for (r, tx) in self.txs.iter().enumerate() {
            if r != self.rank {
                tx.send(Message::Time(self.rank as u32, local))
                    .expect("peer alive");
            }
        }
        let mut times = vec![0.0; self.size];
        times[self.rank] = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.size - 1 {
            match self.rx.recv().expect("peer alive") {
                Message::Time(from, t) => {
                    times[from as usize] = t;
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        times
    }
}

/// Settings for a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedSettings {
    /// Total particles per batch (across all ranks).
    pub total_particles: usize,
    /// Source-convergence batches.
    pub inactive: usize,
    /// Tallied batches.
    pub active: usize,
    /// Initial per-rank particle assignment (must sum to
    /// `total_particles`); `None` = even split.
    pub assignments: Option<Vec<u64>>,
    /// Rebalance between batches from measured rank times (§V's runtime
    /// α adaptation).
    pub adaptive: bool,
}

/// Per-batch record of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedBatch {
    /// Batch index.
    pub index: usize,
    /// Active (tallied)?
    pub active: bool,
    /// Global track-length k estimate.
    pub k_track: f64,
    /// Shannon entropy of the global fission bank.
    pub entropy: f64,
    /// Per-rank particle assignment used this batch.
    pub assignments: Vec<u64>,
    /// Per-rank wall times (seconds).
    pub rank_times: Vec<f64>,
}

/// Result of a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Per-batch records.
    pub batches: Vec<DistributedBatch>,
    /// Mean k over active batches.
    pub k_mean: f64,
    /// Merged global tallies over active batches.
    pub tallies: Tallies,
}

/// Run a k-eigenvalue calculation across `n_ranks` rank threads with real
/// collectives. Physics is bit-identical to the serial driver for any
/// rank count or assignment.
pub fn run_distributed_eigenvalue(
    problem: &Arc<Problem>,
    n_ranks: usize,
    settings: &DistributedSettings,
) -> DistributedResult {
    assert!(n_ranks > 0);
    let n_total = settings.total_particles;
    let init_assignments = match &settings.assignments {
        Some(a) => {
            assert_eq!(a.len(), n_ranks);
            assert_eq!(a.iter().sum::<u64>() as usize, n_total);
            a.clone()
        }
        None => {
            let mut a = vec![(n_total / n_ranks) as u64; n_ranks];
            for x in a.iter_mut().take(n_total % n_ranks) {
                *x += 1;
            }
            a
        }
    };

    let comms = Comm::world(n_ranks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let problem = Arc::clone(problem);
                let settings = settings.clone();
                let init = init_assignments.clone();
                scope.spawn(move || rank_main(&problem, comm, &settings, init))
            })
            .collect();
        let mut results: Vec<DistributedResult> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        // Every rank computed identical global results; return rank 0's.
        results.swap_remove(0)
    })
}

fn rank_main(
    problem: &Problem,
    comm: Comm,
    settings: &DistributedSettings,
    init_assignments: Vec<u64>,
) -> DistributedResult {
    let n_total = settings.total_particles;
    let total_batches = settings.inactive + settings.active;
    let mut balancer = AdaptiveBalancer::new(comm.size, n_total as u64);
    let mut assignments = init_assignments;

    // The global source is identical on all ranks (deterministic in the
    // problem seed); each rank transports only its slice.
    let mut global_source = problem.sample_initial_source(n_total, 0);

    let mut batches = Vec::new();
    let mut k_sum = 0.0;
    let mut tallies = Tallies::default();

    for b in 0..total_batches {
        let active = b >= settings.inactive;
        let offset: u64 = assignments[..comm.rank].iter().sum();
        let count = assignments[comm.rank] as usize;
        let my_source = &global_source[offset as usize..offset as usize + count];
        // Streams from GLOBAL particle indices: partition-independent.
        let streams: Vec<Lcg63> = (0..count)
            .map(|i| {
                Lcg63::for_history(
                    problem.seed,
                    b as u64 * n_total as u64 + offset + i as u64,
                    mcs_rng::STREAM_STRIDE,
                )
            })
            .collect();

        let t0 = std::time::Instant::now();
        let mut local: TransportOutcome = run_histories(problem, my_source, &streams);
        let wall = t0.elapsed().as_secs_f64();

        // Globalize site parent tags before the exchange.
        for s in &mut local.sites {
            s.parent += offset as u32;
        }

        let global_sites = comm.allgather_sites(local.sites);
        let global_tallies = comm.allreduce_tallies(local.tallies);
        let rank_times = comm.allgather_times(wall);

        let k = global_tallies.k_track_estimate();
        let entropy = shannon_entropy(&global_sites, problem.geometry.bounds, (8, 8, 4));
        batches.push(DistributedBatch {
            index: b,
            active,
            k_track: k,
            entropy,
            assignments: assignments.clone(),
            rank_times: rank_times.clone(),
        });
        if active {
            k_sum += k;
            tallies.merge(&global_tallies);
        }

        // Identical resampling on every rank (same bank, same seed —
        // and the same constant the serial driver uses, so a 1-rank
        // distributed run IS the serial run).
        global_source = resample_source(
            &global_sites,
            n_total,
            problem.seed ^ (0xbeef << 8) ^ b as u64,
        );

        if settings.adaptive {
            // Same observation on every rank ⇒ same next assignment.
            balancer.observe_with_assignments(&assignments, &rank_times);
            assignments = balancer.assignments().to_vec();
        }
    }

    DistributedResult {
        batches,
        k_mean: k_sum / settings.active.max(1) as f64,
        tallies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Arc<Problem> {
        Arc::new(Problem::test_small())
    }

    fn settings(n: usize) -> DistributedSettings {
        DistributedSettings {
            total_particles: n,
            inactive: 1,
            active: 2,
            assignments: None,
            adaptive: false,
        }
    }

    #[test]
    fn distributed_matches_any_rank_count() {
        let p = problem();
        let r1 = run_distributed_eigenvalue(&p, 1, &settings(300));
        let r2 = run_distributed_eigenvalue(&p, 2, &settings(300));
        let r4 = run_distributed_eigenvalue(&p, 4, &settings(300));
        // Integer tallies identical; float sums identical too because
        // the all-reduce merges in rank order over identical per-particle
        // chunks... but chunk boundaries differ, so compare to tolerance.
        assert_eq!(r1.tallies.collisions, r2.tallies.collisions);
        assert_eq!(r1.tallies.collisions, r4.tallies.collisions);
        assert_eq!(r1.tallies.absorptions, r4.tallies.absorptions);
        assert_eq!(r1.tallies.fissions, r4.tallies.fissions);
        for (a, b) in [(&r1, &r2), (&r1, &r4)] {
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert!(
                    (x.k_track - y.k_track).abs() < 1e-12,
                    "{} vs {}",
                    x.k_track,
                    y.k_track
                );
                assert_eq!(x.entropy, y.entropy);
            }
        }
    }

    #[test]
    fn distributed_equals_the_serial_driver() {
        // The strongest cross-check: the executed MPI runtime with any
        // rank count reproduces the serial eigenvalue driver's per-batch
        // k exactly (identical streams, identical resampling).
        use mcs_core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
        let p = problem();
        let serial = run_eigenvalue(
            &p,
            &EigenvalueSettings {
                particles: 300,
                inactive: 1,
                active: 2,
                mode: TransportMode::History,
                entropy_mesh: (8, 8, 4),
                mesh_tally: None,
            },
        );
        let dist = run_distributed_eigenvalue(&p, 3, &settings(300));
        for (a, b) in serial.batches.iter().zip(&dist.batches) {
            assert!(
                (a.k_track - b.k_track).abs() < 1e-12,
                "batch {}: serial {} vs distributed {}",
                a.index,
                a.k_track,
                b.k_track
            );
        }
        assert_eq!(serial.tallies.collisions, dist.tallies.collisions);
        assert_eq!(serial.tallies.fissions, dist.tallies.fissions);
    }

    #[test]
    fn distributed_is_partition_invariant() {
        let p = problem();
        let mut s = settings(300);
        s.assignments = Some(vec![250, 50]);
        let skewed = run_distributed_eigenvalue(&p, 2, &s);
        s.assignments = Some(vec![10, 290]);
        let skewed2 = run_distributed_eigenvalue(&p, 2, &s);
        assert_eq!(skewed.tallies.collisions, skewed2.tallies.collisions);
        for (x, y) in skewed.batches.iter().zip(&skewed2.batches) {
            assert!((x.k_track - y.k_track).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_rebalancing_runs_and_preserves_physics() {
        let p = problem();
        let mut s = settings(300);
        s.adaptive = true;
        s.inactive = 1;
        s.active = 3;
        let adaptive = run_distributed_eigenvalue(&p, 2, &s);
        s.adaptive = false;
        let fixed = run_distributed_eigenvalue(&p, 2, &s);
        // Rebalancing changes who computes what, never what is computed.
        assert_eq!(adaptive.tallies.collisions, fixed.tallies.collisions);
        for (x, y) in adaptive.batches.iter().zip(&fixed.batches) {
            assert!((x.k_track - y.k_track).abs() < 1e-12);
        }
        // And the later batches' assignments must still sum to the total.
        for b in &adaptive.batches {
            assert_eq!(b.assignments.iter().sum::<u64>(), 300);
        }
    }

    #[test]
    fn bad_assignments_are_rejected() {
        let p = problem();
        let mut s = settings(100);
        s.assignments = Some(vec![50, 49]); // sums to 99
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_distributed_eigenvalue(&p, 2, &s)
        }));
        assert!(r.is_err());
    }
}
