//! An *executed* message-passing runtime — the MPI substrate, for real.
//!
//! The paper's symmetric mode is "MPI for distributed memory
//! communication, and OpenMP for shared memory multi-threading" (§II-A).
//! Everywhere else in this crate the distributed machine is *modeled*;
//! this module actually runs the distributed algorithm: every rank is an
//! OS thread with its own transport state, and the collectives OpenMC's
//! eigenvalue loop needs — the fission-bank all-gather, the tally
//! all-reduce, and a per-batch status barrier — move real messages over
//! channels.
//!
//! The crucial design point is the same one that makes the single-process
//! engine reproducible: particle identity is *global*. Rank `r` owns a
//! contiguous slice of the batch's global particle indices, every
//! particle's RNG stream is derived from its global index, and banked
//! fission sites are re-tagged with global parent indices before the
//! all-gather. The tally all-reduce exchanges *per-chunk* partials keyed
//! by global start index and folds them in key order, so whenever rank
//! boundaries are `CHUNK`-aligned (every split this driver picks itself)
//! the distributed float reduction rebuilds the **serial summation tree
//! bitwise** — k-eff and all float tallies equal the serial driver's to
//! the last bit, for any rank count. User-supplied unaligned partitions
//! still agree to rounding (~1e-12).
//!
//! # Fault tolerance
//!
//! A seeded [`FaultPlan`] can kill ranks, slow stragglers, or both —
//! deterministically, so any failure replays. Deaths are detected at the
//! per-batch status barrier: a rank scheduled to die at batch `d`
//! completes batch `d-1` in full, announces its departure in that batch's
//! status exchange, and exits; every survivor marks it dead and
//! redistributes its quota (chunk-aligned, proportional to prior
//! assignments) before batch `d` begins. No particles are lost, so the
//! degraded run's physics — and k-eff — is bit-identical to the healthy
//! run's. Periodic [`Statepoint`] checkpoints (identical on every rank)
//! let a killed job resume via `mcs_core::engine::resume_with_problem`
//! under any policy — distributed or serial — again bit-exactly.

use crossbeam::channel::{unbounded, Receiver, Sender};
use mcs_core::engine::{self, PolicySpec, RunPlan};
use mcs_core::particle::{sort_sites, Site};
use mcs_core::statepoint::Statepoint;
use mcs_core::tally::Tallies;
use mcs_faults::{FaultLog, FaultPlan};

use crate::policy::DistributedPolicy;

/// A message between ranks. The `u32` is the sender's rank.
enum Message {
    Sites(#[allow(dead_code)] u32, Vec<Site>),
    /// Per-chunk tally partials, keyed by global particle start index.
    Chunks(#[allow(dead_code)] u32, Vec<(u64, Tallies)>),
    /// End-of-batch status: measured wall time and whether the sender
    /// departs (dies) after this batch.
    Status(u32, f64, bool),
}

/// One rank's communicator endpoint.
pub(crate) struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Liveness view, updated at status barriers; identical on every
    /// surviving rank.
    alive: Vec<bool>,
}

impl Comm {
    /// Build all endpoints for a `size`-rank job.
    pub(crate) fn world(size: usize) -> Vec<Comm> {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..size).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| Comm {
                rank,
                size,
                txs: txs.clone(),
                rx,
                alive: vec![true; size],
            })
            .collect()
    }

    fn n_alive_peers(&self) -> usize {
        self.alive
            .iter()
            .enumerate()
            .filter(|&(r, &a)| a && r != self.rank)
            .count()
    }

    fn send_to_alive_peers(&self, mut make: impl FnMut() -> Message) {
        for (r, tx) in self.txs.iter().enumerate() {
            if r != self.rank && self.alive[r] {
                tx.send(make()).expect("peer alive");
            }
        }
    }

    /// All-gather fission sites: returns the union in canonical (parent,
    /// seq) order, identical on every rank.
    pub(crate) fn allgather_sites(&self, local: Vec<Site>) -> Vec<Site> {
        self.send_to_alive_peers(|| Message::Sites(self.rank as u32, local.clone()));
        let mut all = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Sites(_, sites) => {
                    all.extend(sites);
                    received += 1;
                }
                other => pending.push(other), // not ours; re-deliver below
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        sort_sites(&mut all);
        all
    }

    /// All-reduce tallies from per-chunk partials: every rank receives
    /// every chunk and folds them in global-start-index order. With
    /// chunk-aligned rank boundaries this reproduces the serial chunk
    /// fold exactly (bitwise); unaligned boundaries still give a
    /// deterministic, partition-stable-to-rounding sum.
    pub(crate) fn allreduce_chunks(&self, local: Vec<(u64, Tallies)>) -> Tallies {
        self.send_to_alive_peers(|| Message::Chunks(self.rank as u32, local.clone()));
        let mut all = local;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Chunks(_, chunks) => {
                    all.extend(chunks);
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        all.sort_by_key(|&(start, _)| start);
        let mut merged = Tallies::default();
        for (_, t) in &all {
            merged.merge(t);
        }
        merged
    }

    /// Status barrier: gather every live rank's batch wall time and
    /// departure flag. Dead ranks report (0.0, false).
    pub(crate) fn allgather_status(&self, wall: f64, departing: bool) -> (Vec<f64>, Vec<bool>) {
        self.send_to_alive_peers(|| Message::Status(self.rank as u32, wall, departing));
        let mut times = vec![0.0; self.size];
        let mut departs = vec![false; self.size];
        times[self.rank] = wall;
        departs[self.rank] = departing;
        let mut received = 0;
        let mut pending = Vec::new();
        while received < self.n_alive_peers() {
            match self.rx.recv().expect("peer alive") {
                Message::Status(from, t, d) => {
                    times[from as usize] = t;
                    departs[from as usize] = d;
                    received += 1;
                }
                other => pending.push(other),
            }
        }
        for msg in pending {
            self.txs[self.rank].send(msg).unwrap();
        }
        (times, departs)
    }
}

/// Settings for a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedSettings {
    /// Total particles per batch (across all ranks).
    pub total_particles: usize,
    /// Source-convergence batches.
    pub inactive: usize,
    /// Tallied batches.
    pub active: usize,
    /// Initial per-rank particle assignment (must sum to
    /// `total_particles`); `None` = chunk-aligned even split.
    pub assignments: Option<Vec<u64>>,
    /// Rebalance between batches from measured rank times (§V's runtime
    /// α adaptation), chunk-aligned.
    pub adaptive: bool,
    /// Injected fault schedule (deaths, stragglers). `None` = healthy.
    pub fault_plan: Option<FaultPlan>,
    /// Write a [`Statepoint`] after every `n` completed batches.
    pub checkpoint_every: Option<usize>,
}

impl DistributedSettings {
    /// A healthy, checkpoint-free run (the pre-fault-layer default).
    pub fn simple(total_particles: usize, inactive: usize, active: usize) -> Self {
        Self {
            total_particles,
            inactive,
            active,
            assignments: None,
            adaptive: false,
            fault_plan: None,
            checkpoint_every: None,
        }
    }
}

/// Per-batch record of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedBatch {
    /// Batch index.
    pub index: usize,
    /// Active (tallied)?
    pub active: bool,
    /// Global track-length k estimate.
    pub k_track: f64,
    /// Shannon entropy of the global fission bank.
    pub entropy: f64,
    /// Per-rank particle assignment used this batch.
    pub assignments: Vec<u64>,
    /// Per-rank wall times (seconds; 0 for dead ranks).
    pub rank_times: Vec<f64>,
    /// Which ranks participated in this batch.
    pub alive: Vec<bool>,
}

/// Result of a distributed eigenvalue run.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Per-batch records.
    pub batches: Vec<DistributedBatch>,
    /// Mean k over completed active batches.
    pub k_mean: f64,
    /// Merged global tallies over completed active batches.
    pub tallies: Tallies,
    /// Periodic checkpoints, oldest first (identical on every rank).
    pub checkpoints: Vec<Statepoint>,
    /// Faults observed during the run, in event order.
    pub fault_log: FaultLog,
    /// Whether the full batch plan completed (false = the job aborted
    /// because every rank died; resume from `checkpoints.last()`).
    pub completed: bool,
}

impl DistributedSettings {
    /// The engine [`RunPlan`] this settings struct describes (history
    /// algorithm, (8,8,4) entropy mesh — the legacy distributed driver's
    /// hardcoded choices). Run it with
    /// `mcs_core::engine::run_with_problem` and [`Self::to_policy`].
    pub fn to_plan(&self, n_ranks: usize) -> RunPlan {
        RunPlan {
            particles: self.total_particles,
            inactive: self.inactive,
            active: self.active,
            entropy_mesh: (8, 8, 4),
            checkpoint_every: self.checkpoint_every,
            policy: PolicySpec::Distributed { ranks: n_ranks },
            ..RunPlan::default()
        }
    }

    /// The [`DistributedPolicy`] this settings struct describes.
    pub fn to_policy(&self, n_ranks: usize) -> DistributedPolicy {
        DistributedPolicy::new(n_ranks)
            .with_assignments(self.assignments.clone())
            .with_adaptive(self.adaptive)
            .with_fault_plan(self.fault_plan.clone())
    }
}

/// Assemble the [`DistributedResult`] view from an engine report plus
/// the policy's per-rank decomposition records.
pub fn distributed_result(
    report: engine::RunReport,
    policy: &mut DistributedPolicy,
) -> DistributedResult {
    let details = policy.take_details();
    let batches = report
        .batches
        .iter()
        .zip(details)
        .map(|(b, d)| {
            debug_assert_eq!(b.index, d.index);
            DistributedBatch {
                index: b.index,
                active: b.active,
                k_track: b.k_track,
                entropy: b.entropy,
                assignments: d.assignments,
                rank_times: d.rank_times,
                alive: d.alive,
            }
        })
        .collect();
    DistributedResult {
        batches,
        k_mean: report.result.k_mean,
        tallies: report.result.tallies,
        checkpoints: report.checkpoints,
        fault_log: policy.take_fault_log(),
        completed: report.completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::problem::Problem;
    use mcs_faults::FaultRecordKind;
    use std::sync::Arc;

    fn problem() -> Arc<Problem> {
        Arc::new(Problem::test_small())
    }

    fn settings(n: usize) -> DistributedSettings {
        DistributedSettings::simple(n, 1, 2)
    }

    /// Run the settings through the engine under a distributed policy
    /// (the composition the removed legacy driver used to hide).
    fn run_distributed_eigenvalue(
        problem: &Arc<Problem>,
        n_ranks: usize,
        settings: &DistributedSettings,
    ) -> DistributedResult {
        let plan = settings.to_plan(n_ranks);
        let mut policy = settings.to_policy(n_ranks);
        let report = engine::run_with_problem(problem, &plan, &mut policy).into_eigenvalue();
        distributed_result(report, &mut policy)
    }

    #[test]
    fn distributed_matches_any_rank_count() {
        let p = problem();
        let r1 = run_distributed_eigenvalue(&p, 1, &settings(300));
        let r2 = run_distributed_eigenvalue(&p, 2, &settings(300));
        let r4 = run_distributed_eigenvalue(&p, 4, &settings(300));
        // Integer tallies identical — and with the chunk-keyed reduce
        // over chunk-aligned default splits the float sums are now
        // bitwise identical too, not merely close.
        assert_eq!(r1.tallies.collisions, r2.tallies.collisions);
        assert_eq!(r1.tallies.collisions, r4.tallies.collisions);
        assert_eq!(r1.tallies.absorptions, r4.tallies.absorptions);
        assert_eq!(r1.tallies.fissions, r4.tallies.fissions);
        assert_eq!(r1.tallies, r2.tallies);
        assert_eq!(r1.tallies, r4.tallies);
        for (a, b) in [(&r1, &r2), (&r1, &r4)] {
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert_eq!(x.k_track.to_bits(), y.k_track.to_bits());
                assert_eq!(x.entropy, y.entropy);
            }
        }
        assert!(r1.completed && r2.completed && r4.completed);
    }

    #[test]
    fn distributed_equals_the_serial_driver() {
        // The strongest cross-check: the executed MPI runtime with any
        // rank count reproduces the serial eigenvalue driver's per-batch
        // k bitwise (identical streams, identical resampling, identical
        // summation tree via the chunk-keyed all-reduce).
        let p = problem();
        let serial_plan = RunPlan {
            particles: 300,
            inactive: 1,
            active: 2,
            entropy_mesh: (8, 8, 4),
            ..RunPlan::default()
        };
        let serial = engine::run_with_problem(&p, &serial_plan, &mut engine::Threaded::ambient())
            .into_eigenvalue()
            .result;
        let dist = run_distributed_eigenvalue(&p, 3, &settings(300));
        for (a, b) in serial.batches.iter().zip(&dist.batches) {
            assert_eq!(
                a.k_track.to_bits(),
                b.k_track.to_bits(),
                "batch {}: serial {} vs distributed {}",
                a.index,
                a.k_track,
                b.k_track
            );
        }
        assert_eq!(serial.tallies, dist.tallies);
        assert_eq!(serial.k_mean.to_bits(), dist.k_mean.to_bits());
    }

    #[test]
    fn distributed_run_is_backend_invariant() {
        // The grid backend rides along inside the problem's `XsContext`;
        // since every backend resolves identical grid intervals, the
        // distributed per-batch k must be bit-identical across backends.
        use mcs_core::problem::GridBackendKind;
        let results: Vec<DistributedResult> = GridBackendKind::ALL
            .iter()
            .map(|&kind| {
                let p = Arc::new(Problem::test_small_with_backend(kind));
                run_distributed_eigenvalue(&p, 2, &settings(300))
            })
            .collect();
        for other in &results[1..] {
            assert_eq!(results[0].tallies, other.tallies);
            for (a, b) in results[0].batches.iter().zip(&other.batches) {
                assert_eq!(a.k_track.to_bits(), b.k_track.to_bits());
            }
        }
    }

    #[test]
    fn distributed_is_partition_invariant() {
        let p = problem();
        let mut s = settings(300);
        s.assignments = Some(vec![250, 50]);
        let skewed = run_distributed_eigenvalue(&p, 2, &s);
        s.assignments = Some(vec![10, 290]);
        let skewed2 = run_distributed_eigenvalue(&p, 2, &s);
        assert_eq!(skewed.tallies.collisions, skewed2.tallies.collisions);
        for (x, y) in skewed.batches.iter().zip(&skewed2.batches) {
            assert!((x.k_track - y.k_track).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_rebalancing_runs_and_preserves_physics() {
        let p = problem();
        let mut s = settings(600);
        s.adaptive = true;
        s.inactive = 1;
        s.active = 3;
        let adaptive = run_distributed_eigenvalue(&p, 2, &s);
        s.adaptive = false;
        let fixed = run_distributed_eigenvalue(&p, 2, &s);
        // Rebalancing changes who computes what, never what is computed.
        assert_eq!(adaptive.tallies, fixed.tallies);
        for (x, y) in adaptive.batches.iter().zip(&fixed.batches) {
            assert_eq!(x.k_track.to_bits(), y.k_track.to_bits());
        }
        // And the later batches' assignments must still sum to the total.
        for b in &adaptive.batches {
            assert_eq!(b.assignments.iter().sum::<u64>(), 600);
        }
    }

    #[test]
    fn bad_assignments_are_rejected() {
        let p = problem();
        let mut s = settings(100);
        s.assignments = Some(vec![50, 49]); // sums to 99
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_distributed_eigenvalue(&p, 2, &s)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn rank_death_degrades_gracefully_and_preserves_physics() {
        let p = problem();
        let mut s = settings(600);
        s.inactive = 1;
        s.active = 3;
        let healthy = run_distributed_eigenvalue(&p, 3, &s);

        s.fault_plan = Some(FaultPlan::new(11).with_rank_death(1, 2));
        let degraded = run_distributed_eigenvalue(&p, 3, &s);
        assert!(degraded.completed);
        assert_eq!(degraded.fault_log.n_deaths(), 1);
        // Bit-identical physics: the dead rank's quota moved, nothing
        // was lost.
        assert_eq!(healthy.tallies, degraded.tallies);
        assert_eq!(healthy.k_mean.to_bits(), degraded.k_mean.to_bits());
        // The dead rank has no work from its death batch on.
        for b in &degraded.batches {
            if b.index >= 2 {
                assert_eq!(b.assignments[1], 0, "batch {}", b.index);
                assert!(!b.alive[1]);
            }
            assert_eq!(b.assignments.iter().sum::<u64>(), 600);
        }
    }

    #[test]
    fn all_ranks_dead_aborts_with_checkpoint() {
        let p = problem();
        let mut s = settings(300);
        s.inactive = 1;
        s.active = 3;
        s.checkpoint_every = Some(2);
        s.fault_plan = Some(
            FaultPlan::new(5)
                .with_rank_death(0, 3)
                .with_rank_death(1, 3),
        );
        let r = run_distributed_eigenvalue(&p, 2, &s);
        assert!(!r.completed, "the job lost every rank");
        assert_eq!(r.batches.len(), 3); // batches 0..3 ran
        assert_eq!(r.checkpoints.len(), 1);
        assert_eq!(r.checkpoints[0].completed_batches, 2);
    }

    #[test]
    fn checkpoints_match_the_serial_statepoint() {
        let p = problem();
        let mut s = settings(600);
        s.inactive = 1;
        s.active = 2;
        s.checkpoint_every = Some(2);
        let dist = run_distributed_eigenvalue(&p, 2, &s);
        let serial_plan = RunPlan {
            particles: 600,
            inactive: 1,
            active: 2,
            entropy_mesh: (8, 8, 4),
            ..RunPlan::default()
        };
        let serial_sp = engine::run_batches(
            &p,
            &serial_plan,
            &mut engine::Threaded::ambient(),
            0,
            2,
            None,
        )
        .statepoint;
        let sp = &dist.checkpoints[0];
        assert_eq!(
            sp, &serial_sp,
            "distributed checkpoint == serial checkpoint"
        );
    }

    #[test]
    fn straggler_slows_reported_time_only() {
        let p = problem();
        let mut s = settings(600);
        s.fault_plan = Some(FaultPlan::new(3).with_straggler(0, 1, 1000.0));
        let r = run_distributed_eigenvalue(&p, 2, &s);
        let healthy = run_distributed_eigenvalue(&p, 2, &settings(600));
        assert_eq!(r.tallies, healthy.tallies);
        // The straggler batch reports a grossly inflated rank-0 time.
        let b1 = &r.batches[1];
        assert!(b1.rank_times[0] > 100.0 * b1.rank_times[1].max(1e-9));
        assert!(r
            .fault_log
            .records
            .iter()
            .any(|rec| matches!(rec.kind, FaultRecordKind::Straggler(f) if f == 1000.0)));
    }
}
