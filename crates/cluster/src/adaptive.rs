//! Runtime-adaptive load balancing — the paper's §V proposal, implemented.
//!
//! > "α can be determined at runtime by setting it to 1/p on the first
//! > batch, and using the measured calculation rates to determine an
//! > appropriate α for subsequent batches."
//!
//! [`AdaptiveBalancer`] starts from the even split, observes each batch's
//! per-rank wall times, and reassigns particles proportionally to the
//! *measured effective rates*. Because effective rates depend on the
//! assignment (the Fig. 5 knee), this is a fixed-point iteration; on the
//! affine rank law it converges in a few batches and strictly beats the
//! static Eq. 3 split whenever per-rank counts sit on the knee — exactly
//! the regime where the paper's 1,024-node curve tails off.

use mcs_core::balance::proportional_split;

use crate::rank::Rank;

/// Batch-by-batch adaptive balancer.
#[derive(Debug, Clone)]
pub struct AdaptiveBalancer {
    n_total: u64,
    assignments: Vec<u64>,
}

impl AdaptiveBalancer {
    /// Start with the even (1/p) split, as the paper proposes.
    pub fn new(n_ranks: usize, n_total: u64) -> Self {
        assert!(n_ranks > 0);
        let mut assignments = vec![n_total / n_ranks as u64; n_ranks];
        for a in assignments
            .iter_mut()
            .take((n_total % n_ranks as u64) as usize)
        {
            *a += 1;
        }
        Self {
            n_total,
            assignments,
        }
    }

    /// Current per-rank assignment.
    pub fn assignments(&self) -> &[u64] {
        &self.assignments
    }

    /// Feed back the measured per-rank batch times; reassigns particles
    /// proportionally to the measured effective rates (n_i / t_i).
    pub fn observe(&mut self, batch_times: &[f64]) {
        assert_eq!(batch_times.len(), self.assignments.len());
        let measured: Vec<Option<f64>> = self
            .assignments
            .iter()
            .zip(batch_times)
            .map(|(&n, &t)| {
                if t > 0.0 && n > 0 {
                    Some(n as f64 / t)
                } else {
                    None
                }
            })
            .collect();
        // Ranks with no measurement (they were assigned nothing) re-enter
        // at the mean measured rate, so a degenerate observation cannot
        // starve them forever.
        let known: Vec<f64> = measured.iter().flatten().copied().collect();
        let fallback = if known.is_empty() {
            1.0
        } else {
            known.iter().sum::<f64>() / known.len() as f64
        };
        let rates: Vec<f64> = measured.iter().map(|m| m.unwrap_or(fallback)).collect();
        self.assignments = proportional_split(self.n_total, &rates);
    }

    /// [`AdaptiveBalancer::observe`] against an externally supplied
    /// assignment (for drivers that manage the assignment themselves,
    /// like the executed MPI runtime).
    pub fn observe_with_assignments(&mut self, assignments: &[u64], batch_times: &[f64]) {
        assert_eq!(assignments.len(), self.assignments.len());
        self.assignments = assignments.to_vec();
        self.observe(batch_times);
    }
}

/// One step of a simulated batch on the affine rank law.
fn simulate_batch(ranks: &[Rank], assignments: &[u64]) -> (f64, Vec<f64>) {
    let times: Vec<f64> = ranks
        .iter()
        .zip(assignments)
        .map(|(r, &n)| r.batch_time(n))
        .collect();
    let wall = times.iter().cloned().fold(0.0, f64::max);
    (wall, times)
}

/// Simulate `batches` adaptive batches; returns each batch's wall time.
pub fn simulate_adaptive(ranks: &[Rank], n_total: u64, batches: usize) -> Vec<f64> {
    let mut balancer = AdaptiveBalancer::new(ranks.len(), n_total);
    let mut walls = Vec::with_capacity(batches);
    for _ in 0..batches {
        let (wall, times) = simulate_batch(ranks, balancer.assignments());
        walls.push(wall);
        balancer.observe(&times);
    }
    walls
}

/// The static Eq.-3 split's wall time (α from nominal rates, ignoring the
/// knee) for comparison.
pub fn static_alpha_wall(ranks: &[Rank], n_total: u64) -> f64 {
    let rates: Vec<f64> = ranks.iter().map(|r| r.nominal_rate).collect();
    let split = proportional_split(n_total, &rates);
    simulate_batch(ranks, &split).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jlse_ranks() -> Vec<Rank> {
        vec![Rank::cpu("cpu", 4_050.0), Rank::mic("mic", 6_641.0)]
    }

    #[test]
    fn first_batch_is_even_split() {
        let b = AdaptiveBalancer::new(3, 10);
        assert_eq!(b.assignments(), &[4, 3, 3]);
        assert_eq!(b.assignments().iter().sum::<u64>(), 10);
    }

    #[test]
    fn one_observation_recovers_eq3_at_large_n() {
        // With plenty of particles the knee is negligible, so measured
        // rates ≈ nominal and the second batch matches the paper's static
        // Eq. 3 split.
        let ranks = jlse_ranks();
        let mut b = AdaptiveBalancer::new(2, 10_000_000);
        let (_, times) = simulate_batch(&ranks, b.assignments());
        b.observe(&times);
        let total_rate: f64 = 4_050.0 + 6_641.0;
        let want_cpu = (10_000_000.0 * 4_050.0 / total_rate).round() as i64;
        let got_cpu = b.assignments()[0] as i64;
        assert!(
            (got_cpu - want_cpu).abs() < 3_000,
            "{got_cpu} vs {want_cpu}"
        );
    }

    #[test]
    fn adaptive_walls_are_monotone_nonincreasing_and_converge() {
        let ranks = jlse_ranks();
        let walls = simulate_adaptive(&ranks, 50_000, 8);
        for w in walls.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "{} -> {}", w[0], w[1]);
        }
        // Converged: the last two batches agree to 0.1%.
        let last = walls[walls.len() - 1];
        let prev = walls[walls.len() - 2];
        assert!((last - prev).abs() / last < 1e-3);
    }

    #[test]
    fn adaptive_beats_static_alpha_on_the_knee() {
        // The paper's 1,024-node regime: ~9,800 particles per node means
        // the MIC rank sits on its knee; the static α split overloads it,
        // the adaptive split corrects.
        let ranks = jlse_ranks();
        let n = 9_800;
        let static_wall = static_alpha_wall(&ranks, n);
        let adaptive_wall = *simulate_adaptive(&ranks, n, 6).last().unwrap();
        assert!(
            adaptive_wall < static_wall * 0.995,
            "adaptive {adaptive_wall:.5} !< static {static_wall:.5}"
        );
    }

    #[test]
    fn adaptive_matches_static_away_from_the_knee() {
        // With 10⁷ particles the knee is irrelevant: both schemes land on
        // the same split, within rounding.
        let ranks = jlse_ranks();
        let n = 10_000_000;
        let static_wall = static_alpha_wall(&ranks, n);
        let adaptive_wall = *simulate_adaptive(&ranks, n, 4).last().unwrap();
        assert!((adaptive_wall - static_wall).abs() / static_wall < 1e-3);
    }

    #[test]
    fn zero_assignment_ranks_recover() {
        // Degenerate feedback must not wedge a rank at zero forever.
        let mut b = AdaptiveBalancer::new(2, 100);
        b.observe(&[1e-9, 1.0]); // rank 0 looks infinitely fast
                                 // rank 0 now holds everything; next observation rebalances.
        let (_, times) = simulate_batch(&jlse_ranks(), b.assignments());
        b.observe(&times);
        assert!(b.assignments().iter().all(|&n| n > 0));
    }
}
