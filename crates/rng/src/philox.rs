//! Philox-4x32-10 counter-based random number generator.
//!
//! From Salmon et al., *Parallel Random Numbers: As Easy as 1, 2, 3*
//! (SC'11, the "Random123" generators). A counter-based generator is a pure
//! function `block = bijection(counter, key)`: there is no carried state
//! between blocks, so any number of blocks can be generated independently
//! and in any order. That is exactly the property the paper exploits via
//! MKL/VSL streams — it lets a buffer of `N` uniforms be filled by many
//! threads and by SIMD lanes with no sequential dependency.
//!
//! `key` plays the role of a *stream id* (the paper's `VSL_BRNG_MT2203`
//! stream index); `counter` enumerates positions within the stream.

use crate::u32_to_open_f32;
use crate::u64_to_open_f64;

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
/// Number of rounds in the standard Philox-4x32-10 configuration.
pub const ROUNDS: u32 = 10;

#[inline(always)]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

/// One application of the Philox-4x32 bijection: 10 rounds over a 128-bit
/// counter with a 64-bit key.
#[inline]
pub fn philox4x32_10(counter: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let mut x = counter;
    let mut k = key;
    for _ in 0..ROUNDS {
        let (hi0, lo0) = mulhilo(PHILOX_M0, x[0]);
        let (hi1, lo1) = mulhilo(PHILOX_M1, x[2]);
        x = [hi1 ^ x[1] ^ k[0], lo1, hi0 ^ x[3] ^ k[1], lo0];
        k[0] = k[0].wrapping_add(PHILOX_W0);
        k[1] = k[1].wrapping_add(PHILOX_W1);
    }
    x
}

/// A sequential view over one Philox stream: yields the blocks of
/// `bijection(counter++, key)` one 32-bit word at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: u128,
    block: [u32; 4],
    /// Next word within `block`; 4 means "exhausted, generate the next block".
    cursor: u8,
}

impl Philox4x32 {
    /// Create the stream with the given 64-bit stream id.
    #[inline]
    pub fn new(stream: u64) -> Self {
        Self::with_counter(stream, 0)
    }

    /// Create the stream positioned at an arbitrary 128-bit counter value.
    #[inline]
    pub fn with_counter(stream: u64, counter: u128) -> Self {
        Self {
            key: [stream as u32, (stream >> 32) as u32],
            counter,
            block: [0; 4],
            cursor: 4,
        }
    }

    /// The stream id this generator draws from.
    #[inline]
    pub fn stream(&self) -> u64 {
        (self.key[0] as u64) | ((self.key[1] as u64) << 32)
    }

    /// Index of the next 32-bit word to be produced (counter*4 + cursor).
    #[inline]
    pub fn position(&self) -> u128 {
        // `counter` has already advanced past the buffered block.
        let consumed_blocks = if self.cursor == 4 {
            self.counter
        } else {
            self.counter - 1
        };
        consumed_blocks * 4
            + if self.cursor == 4 {
                0
            } else {
                self.cursor as u128
            }
    }

    /// Generate the block at an absolute counter without touching stream
    /// state.
    #[inline]
    pub fn block_at(&self, counter: u128) -> [u32; 4] {
        philox4x32_10(split_counter(counter), self.key)
    }

    /// Next raw 32-bit word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor == 4 {
            self.block = philox4x32_10(split_counter(self.counter), self.key);
            self.counter = self.counter.wrapping_add(1);
            self.cursor = 0;
        }
        let w = self.block[self.cursor as usize];
        self.cursor += 1;
        w
    }

    /// Next raw 64-bit word (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Next uniform double on (0, 1).
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        u64_to_open_f64(self.next_u64())
    }

    /// Next uniform single on (0, 1).
    #[inline]
    pub fn next_uniform_f32(&mut self) -> f32 {
        u32_to_open_f32(self.next_u32())
    }
}

/// Eight consecutive Philox blocks, computed lane-parallel.
///
/// Produces exactly `[philox4x32_10(counter0 + l, key) for l in 0..8]`,
/// but with every round's arithmetic laid out across 8 lanes so the
/// compiler vectorizes the widening multiplies (this is what makes the
/// batched VSL-style fills fast). Bit-identical to the scalar path.
#[inline]
#[allow(clippy::needless_range_loop)] // explicit lane indices keep the rounds vectorizable
pub fn philox4x32_10_x8(counter0: u128, key: [u32; 2]) -> [[u32; 8]; 4] {
    let mut x0 = [0u32; 8];
    let mut x1 = [0u32; 8];
    let mut x2 = [0u32; 8];
    let mut x3 = [0u32; 8];
    for l in 0..8 {
        let c = split_counter(counter0.wrapping_add(l as u128));
        x0[l] = c[0];
        x1[l] = c[1];
        x2[l] = c[2];
        x3[l] = c[3];
    }
    let mut k0 = key[0];
    let mut k1 = key[1];
    for _ in 0..ROUNDS {
        let mut n0 = [0u32; 8];
        let mut n1 = [0u32; 8];
        let mut n2 = [0u32; 8];
        let mut n3 = [0u32; 8];
        for l in 0..8 {
            let p0 = (PHILOX_M0 as u64) * (x0[l] as u64);
            let p1 = (PHILOX_M1 as u64) * (x2[l] as u64);
            n0[l] = (p1 >> 32) as u32 ^ x1[l] ^ k0;
            n1[l] = p1 as u32;
            n2[l] = (p0 >> 32) as u32 ^ x3[l] ^ k1;
            n3[l] = p0 as u32;
        }
        x0 = n0;
        x1 = n1;
        x2 = n2;
        x3 = n3;
        k0 = k0.wrapping_add(PHILOX_W0);
        k1 = k1.wrapping_add(PHILOX_W1);
    }
    [x0, x1, x2, x3]
}

#[inline(always)]
fn split_counter(counter: u128) -> [u32; 4] {
    [
        counter as u32,
        (counter >> 32) as u32,
        (counter >> 64) as u32,
        (counter >> 96) as u32,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer tests from the Random123 distribution (kat_vectors).
    #[test]
    fn kat_zero() {
        let out = philox4x32_10([0, 0, 0, 0], [0, 0]);
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    #[test]
    fn kat_ones() {
        let out = philox4x32_10([0xffff_ffff; 4], [0xffff_ffff, 0xffff_ffff]);
        assert_eq!(out, [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]);
    }

    #[test]
    fn kat_pi_digits() {
        let out = philox4x32_10(
            [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
            [0xa409_3822, 0x299f_31d0],
        );
        assert_eq!(out, [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]);
    }

    #[test]
    fn lane_parallel_blocks_match_scalar() {
        let key = [0xdead_beef, 0x0bad_cafe];
        for &base in &[0u128, 1, 7, u32::MAX as u128 - 3, u64::MAX as u128 - 2] {
            let lanes = philox4x32_10_x8(base, key);
            for l in 0..8 {
                let want = philox4x32_10(
                    [
                        (base + l as u128) as u32,
                        ((base + l as u128) >> 32) as u32,
                        ((base + l as u128) >> 64) as u32,
                        ((base + l as u128) >> 96) as u32,
                    ],
                    key,
                );
                assert_eq!(
                    [lanes[0][l], lanes[1][l], lanes[2][l], lanes[3][l]],
                    want,
                    "base={base} lane={l}"
                );
            }
        }
    }

    #[test]
    fn sequential_view_matches_blocks() {
        let mut g = Philox4x32::new(7);
        let b0 = g.block_at(0);
        let b1 = g.block_at(1);
        let words: Vec<u32> = (0..8).map(|_| g.next_u32()).collect();
        assert_eq!(&words[0..4], &b0);
        assert_eq!(&words[4..8], &b1);
    }

    #[test]
    fn streams_differ() {
        let mut a = Philox4x32::new(0);
        let mut b = Philox4x32::new(1);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn with_counter_seeks() {
        let mut a = Philox4x32::new(9);
        for _ in 0..12 {
            a.next_u32();
        }
        // 12 words = 3 full blocks.
        let mut b = Philox4x32::with_counter(9, 3);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn uniform_statistics() {
        let mut g = Philox4x32::new(2026);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.next_uniform();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn f32_uniforms_open_interval() {
        let mut g = Philox4x32::new(3);
        for _ in 0..10_000 {
            let u = g.next_uniform_f32();
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
