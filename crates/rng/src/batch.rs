//! Batched uniform generation — the stand-in for Intel VSL's
//! `vsRngUniform` (Algorithm 4, lines 1–8 of the paper).
//!
//! The paper's optimized kernel pre-fills an `R[nstreams][N/nstreams]`
//! array of uniforms, one independent stream per section, with each
//! section filled by a different OpenMP thread. [`StreamPartition`]
//! reproduces that structure: it owns `nstreams` Philox streams and hands
//! out disjoint `(stream, section)` pairs, so a caller can fill the
//! sections in parallel (e.g. with rayon) and the result is identical to a
//! serial fill.

use crate::lcg::Lcg63;
use crate::philox::Philox4x32;
use crate::{u32_to_open_f32, u64_to_open_f64};

/// Advance a gathered batch of per-particle LCG streams by one draw each,
/// writing the uniforms to `out` — the banked form of
/// [`Lcg63::next_uniform`] used by the event loop's distance stage.
///
/// Stream `k` contributes exactly one draw to `out[k]`, so the draw order
/// *within each stream* is identical to calling `next_uniform` in a
/// scalar loop: the result is bit-identical to per-particle sampling for
/// any batching of the bank. The loop body is branch-free and
/// independent across lanes, which lets the compiler vectorize the state
/// update (the paper's Algorithm 4 batched-uniform structure, applied to
/// skip-ahead LCG streams instead of VSL streams).
pub fn lcg_fill_uniform(streams: &mut [Lcg63], out: &mut [f64]) {
    assert_eq!(streams.len(), out.len());
    for (s, o) in streams.iter_mut().zip(out.iter_mut()) {
        *o = s.next_uniform();
    }
}

/// Fill `out` with uniforms in (0,1) from one Philox stream, starting at
/// block `counter0`. Returns the first unused block counter.
///
/// Words are consumed block-by-block (4 per block), so a fill of length
/// `n` is position-reproducible: filling `[0..n]` in one call equals
/// filling `[0..k]` and `[k..n]` in two calls iff `k % 4 == 0`.
#[allow(clippy::needless_range_loop)] // lane-major unpack of the 8-block kernel
pub fn fill_uniform_f32(stream: u64, counter0: u128, out: &mut [f32]) -> u128 {
    let g = Philox4x32::with_counter(stream, 0);
    let key = [stream as u32, (stream >> 32) as u32];
    let mut counter = counter0;

    // Fast path: 8 blocks (32 values) at a time, lane-parallel.
    let mut wide = out.chunks_exact_mut(32);
    for chunk in &mut wide {
        let lanes = crate::philox::philox4x32_10_x8(counter, key);
        counter = counter.wrapping_add(8);
        for l in 0..8 {
            for w in 0..4 {
                chunk[l * 4 + w] = u32_to_open_f32(lanes[w][l]);
            }
        }
    }

    let tail = wide.into_remainder();
    let mut chunks = tail.chunks_exact_mut(4);
    for chunk in &mut chunks {
        let b = g.block_at(counter);
        counter = counter.wrapping_add(1);
        for (dst, w) in chunk.iter_mut().zip(b) {
            *dst = u32_to_open_f32(w);
        }
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let b = g.block_at(counter);
        counter = counter.wrapping_add(1);
        for (dst, w) in rem.iter_mut().zip(b) {
            *dst = u32_to_open_f32(w);
        }
    }
    counter
}

/// Double-precision variant: 2 words per value, 2 values per block.
pub fn fill_uniform_f64(stream: u64, counter0: u128, out: &mut [f64]) -> u128 {
    let g = Philox4x32::with_counter(stream, 0);
    let mut counter = counter0;
    let mut chunks = out.chunks_exact_mut(2);
    for chunk in &mut chunks {
        let b = g.block_at(counter);
        counter = counter.wrapping_add(1);
        chunk[0] = u64_to_open_f64((b[0] as u64) | ((b[1] as u64) << 32));
        chunk[1] = u64_to_open_f64((b[2] as u64) | ((b[3] as u64) << 32));
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let b = g.block_at(counter);
        counter = counter.wrapping_add(1);
        rem[0] = u64_to_open_f64((b[0] as u64) | ((b[1] as u64) << 32));
    }
    counter
}

/// A buffer-filling plan mirroring VSL's multi-stream usage: `nstreams`
/// independent streams, each responsible for one contiguous section of the
/// output buffer.
#[derive(Debug, Clone)]
pub struct StreamPartition {
    base_stream: u64,
    nstreams: usize,
    /// Per-stream next block counter (advances across iterations so
    /// successive fills draw fresh numbers, like VSL stream state).
    counters: Vec<u128>,
}

impl StreamPartition {
    /// Create a partition of `nstreams` streams derived from `base_stream`.
    pub fn new(base_stream: u64, nstreams: usize) -> Self {
        assert!(nstreams > 0, "need at least one stream");
        Self {
            base_stream,
            nstreams,
            counters: vec![0; nstreams],
        }
    }

    /// Number of streams.
    #[inline]
    pub fn nstreams(&self) -> usize {
        self.nstreams
    }

    /// Split `out` into per-stream sections; section `k` belongs to stream
    /// `k`. Sections differ in length by at most one element-rounding
    /// chunk.
    pub fn sections<'a>(&self, out: &'a mut [f32]) -> Vec<(usize, &'a mut [f32])> {
        let n = out.len();
        let per = n.div_ceil(self.nstreams);
        out.chunks_mut(per.max(1)).enumerate().collect()
    }

    /// Fill the whole buffer serially (reference implementation).
    pub fn fill_f32(&mut self, out: &mut [f32]) {
        let per = out.len().div_ceil(self.nstreams).max(1);
        for (k, section) in out.chunks_mut(per).enumerate() {
            let stream = self.base_stream.wrapping_add(k as u64);
            self.counters[k] = fill_uniform_f32(stream, self.counters[k], section);
        }
    }

    /// Fill one section (for parallel callers that obtained sections via
    /// [`StreamPartition::sections`]); returns the new counter, which the
    /// caller must store back with [`StreamPartition::set_counter`].
    pub fn fill_section(&self, k: usize, section: &mut [f32]) -> u128 {
        let stream = self.base_stream.wrapping_add(k as u64);
        fill_uniform_f32(stream, self.counters[k], section)
    }

    /// Store a counter returned by [`StreamPartition::fill_section`].
    pub fn set_counter(&mut self, k: usize, counter: u128) {
        self.counters[k] = counter;
    }
}

/// Convenience: the "batched uniforms" abstraction used by the optimized
/// Table-I kernels. Owns the buffer and refills it on demand.
#[derive(Debug, Clone)]
pub struct BatchUniform {
    partition: StreamPartition,
    buf: Vec<f32>,
}

impl BatchUniform {
    /// Allocate a batch of `n` uniforms backed by `nstreams` streams.
    pub fn new(base_stream: u64, nstreams: usize, n: usize) -> Self {
        Self {
            partition: StreamPartition::new(base_stream, nstreams),
            buf: vec![0.0; n],
        }
    }

    /// Refill the buffer with fresh uniforms.
    pub fn refill(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        self.partition.fill_f32(&mut buf);
        self.buf = buf;
    }

    /// Current buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_fill_matches_scalar_draws() {
        // The banked fill must be bit-identical to calling next_uniform
        // per stream, and leave each stream in the same state.
        let mut batched: Vec<Lcg63> = (0..37).map(|i| Lcg63::for_history(11, i, 3)).collect();
        let mut scalar = batched.clone();
        let mut out = vec![0.0f64; 37];
        lcg_fill_uniform(&mut batched, &mut out);
        for (s, &o) in scalar.iter_mut().zip(&out) {
            assert_eq!(s.next_uniform(), o);
        }
        assert_eq!(batched, scalar);
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = vec![0.0f32; 1003];
        let mut b = vec![0.0f32; 1003];
        fill_uniform_f32(5, 0, &mut a);
        fill_uniform_f32(5, 0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn fill_respects_counter_offset() {
        let mut whole = vec![0.0f32; 64];
        let end = fill_uniform_f32(5, 0, &mut whole);
        assert_eq!(end, 16); // 64 values / 4 per block

        let mut lo = vec![0.0f32; 32];
        let mid = fill_uniform_f32(5, 0, &mut lo);
        let mut hi = vec![0.0f32; 32];
        fill_uniform_f32(5, mid, &mut hi);
        assert_eq!(&whole[..32], &lo[..]);
        assert_eq!(&whole[32..], &hi[..]);
    }

    #[test]
    fn fill_f64_deterministic_and_open() {
        let mut a = vec![0.0f64; 513];
        fill_uniform_f64(9, 0, &mut a);
        assert!(a.iter().all(|&u| u > 0.0 && u < 1.0));
        let mut b = vec![0.0f64; 513];
        fill_uniform_f64(9, 0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_serial_matches_sectionwise() {
        let mut p1 = StreamPartition::new(100, 4);
        let mut serial = vec![0.0f32; 1000];
        p1.fill_f32(&mut serial);

        let mut p2 = StreamPartition::new(100, 4);
        let mut sectionwise = vec![0.0f32; 1000];
        let mut new_counters = Vec::new();
        for (k, section) in p2.sections(&mut sectionwise) {
            new_counters.push((k, p2.fill_section(k, section)));
        }
        for (k, c) in new_counters {
            p2.set_counter(k, c);
        }
        assert_eq!(serial, sectionwise);
    }

    #[test]
    fn successive_refills_differ() {
        let mut b = BatchUniform::new(1, 2, 256);
        b.refill();
        let first = b.as_slice().to_vec();
        b.refill();
        assert_ne!(first, b.as_slice());
    }

    #[test]
    fn batch_values_open_interval() {
        let mut b = BatchUniform::new(77, 8, 4096);
        b.refill();
        assert!(b.as_slice().iter().all(|&u| u > 0.0 && u < 1.0));
    }
}
