//! Faithful re-implementation of glibc's `rand_r`, the generator used by
//! the paper's *naive* distance-sampling kernel (Algorithm 3).
//!
//! `rand_r` is a weak, short-period generator whose one call produces only
//! 15 useful bits via three dependent LCG sub-steps — every call is a serial
//! dependency chain, which is why Table I shows it devastating the MIC
//! (8,243 s vs 21 s). Reproducing that column requires reproducing the
//! generator's *call structure*, not just any slow RNG.

/// glibc `rand_r` state (a single `unsigned int`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveRandR {
    state: u32,
}

/// `RAND_MAX` for glibc `rand_r`.
pub const RAND_MAX: u32 = 0x7fff_ffff;

impl NaiveRandR {
    /// Seed exactly as C code would: `unsigned int seed = s;`.
    #[inline]
    pub fn new(seed: u32) -> Self {
        Self { state: seed }
    }

    /// One `rand_r(&seed)` call: returns a value in `[0, RAND_MAX]`.
    ///
    /// Transcribed from glibc `stdlib/rand_r.c` — three dependent
    /// multiplicative steps producing 10+10+10 bits.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberately named after rand_r's call
    pub fn next(&mut self) -> u32 {
        let mut next = self.state;
        let mut result: u32;

        next = next.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        result = (next / 65_536) % 2_048;

        next = next.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        result <<= 10;
        result ^= (next / 65_536) % 1_024;

        next = next.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        result <<= 10;
        result ^= (next / 65_536) % 1_024;

        self.state = next;
        result
    }

    /// The paper's `rand_r() / RAND_MAX` conversion, clamped into the open
    /// interval so `-ln(u)` stays finite.
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        let r = self.next();
        ((r as f64) + 0.5) / ((RAND_MAX as f64) + 1.0)
    }

    /// Single-precision variant used by the float kernels.
    #[inline]
    pub fn next_uniform_f32(&mut self) -> f32 {
        self.next_uniform() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_glibc_reference_sequence() {
        // First values of glibc rand_r with seed 1, computed from the
        // transcription above and cross-checked by direct evaluation of the
        // three-step recurrence.
        let mut g = NaiveRandR::new(1);
        let first: Vec<u32> = (0..4).map(|_| g.next()).collect();
        // Recompute independently.
        let mut s: u32 = 1;
        let mut expect = Vec::new();
        for _ in 0..4 {
            s = s.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let mut r = (s / 65_536) % 2_048;
            s = s.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            r = (r << 10) ^ ((s / 65_536) % 1_024);
            s = s.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            r = (r << 10) ^ ((s / 65_536) % 1_024);
            expect.push(r);
        }
        assert_eq!(first, expect);
    }

    #[test]
    fn values_in_range() {
        let mut g = NaiveRandR::new(42);
        for _ in 0..10_000 {
            assert!(g.next() <= RAND_MAX);
        }
    }

    #[test]
    fn uniforms_open_interval() {
        let mut g = NaiveRandR::new(7);
        for _ in 0..10_000 {
            let u = g.next_uniform();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut g = NaiveRandR::new(5);
            (0..8).map(|_| g.next()).collect()
        };
        let b: Vec<u32> = {
            let mut g = NaiveRandR::new(5);
            (0..8).map(|_| g.next()).collect()
        };
        assert_eq!(a, b);
    }
}
