//! The 63-bit linear congruential generator used by OpenMC.
//!
//! State update: `s' = (g*s + c) mod 2^63` with `g = 2806196910506780709`
//! and `c = 1` (L'Ecuyer, *Tables of linear congruential generators of
//! different sizes and good lattice structure*, 1999). This is the exact
//! generator the paper's OpenMC baseline uses for every physics decision.
//!
//! The important feature for parallel Monte Carlo is [`Lcg63::skip`]:
//! jumping `n` draws forward in O(log n), so particle history `i` can be
//! assigned the deterministic sub-sequence starting at draw
//! `i * STREAM_STRIDE` no matter which thread simulates it.

use crate::u64_to_open_f64;

/// LCG multiplier `g`.
pub const MULTIPLIER: u64 = 2_806_196_910_506_780_709;
/// LCG increment `c`.
pub const INCREMENT: u64 = 1;
/// Modulus mask: the generator works modulo 2^63.
pub const MASK: u64 = (1u64 << 63) - 1;

/// A 63-bit LCG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg63 {
    seed: u64,
}

impl Lcg63 {
    /// Create a stream from a master seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed: seed & MASK }
    }

    /// Create the stream for particle history `index`, offset from the
    /// master seed by `index * stride` draws.
    #[inline]
    pub fn for_history(master_seed: u64, index: u64, stride: u64) -> Self {
        let mut s = Self::new(master_seed);
        s.skip(index.wrapping_mul(stride));
        s
    }

    /// Current raw state.
    #[inline]
    pub fn state(&self) -> u64 {
        self.seed
    }

    /// Advance one step and return the new raw state.
    #[inline(always)]
    pub fn next_state(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(MULTIPLIER).wrapping_add(INCREMENT) & MASK;
        self.seed
    }

    /// Next uniform double on (0, 1).
    #[inline(always)]
    pub fn next_uniform(&mut self) -> f64 {
        // The state has 63 significant bits; shift left one so the top 53
        // bits used by the conversion are the high bits of the state.
        let s = self.next_state();
        u64_to_open_f64(s << 1)
    }

    /// Jump `n` draws forward in O(log n).
    ///
    /// Computes `g^n mod 2^63` and `c*(g^n - 1)/(g - 1) mod 2^63` by
    /// iterated squaring (the standard Brown 1994 algorithm used by MCNP
    /// and OpenMC).
    pub fn skip(&mut self, n: u64) {
        let mut g = MULTIPLIER;
        let mut c = INCREMENT;
        let mut g_new: u64 = 1;
        let mut c_new: u64 = 0;
        let mut n = n & MASK;
        while n > 0 {
            if n & 1 == 1 {
                g_new = g_new.wrapping_mul(g) & MASK;
                c_new = (c_new.wrapping_mul(g).wrapping_add(c)) & MASK;
            }
            c = (g.wrapping_add(1)).wrapping_mul(c) & MASK;
            g = g.wrapping_mul(g) & MASK;
            n >>= 1;
        }
        self.seed = (g_new.wrapping_mul(self.seed).wrapping_add(c_new)) & MASK;
    }

    /// Return a copy advanced by `n` draws, leaving `self` untouched.
    #[inline]
    pub fn skipped(&self, n: u64) -> Self {
        let mut s = *self;
        s.skip(n);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_ahead_matches_sequential_small() {
        for n in [0u64, 1, 2, 3, 10, 63, 64, 1000, 152_917] {
            let mut seq = Lcg63::new(0xDEAD_BEEF);
            for _ in 0..n {
                seq.next_state();
            }
            let jump = Lcg63::new(0xDEAD_BEEF).skipped(n);
            assert_eq!(seq.state(), jump.state(), "n = {n}");
        }
    }

    #[test]
    fn skip_is_additive() {
        let base = Lcg63::new(7);
        let a = base.skipped(1234).skipped(5678);
        let b = base.skipped(1234 + 5678);
        assert_eq!(a, b);
    }

    #[test]
    fn history_streams_are_disjoint_prefixes() {
        // Stream i's first draws equal the master sequence draws starting
        // at i*stride.
        let master = 999;
        let stride = 17;
        let mut seq = Lcg63::new(master);
        let mut all = Vec::new();
        for _ in 0..100 {
            all.push(seq.next_uniform());
        }
        for i in 0..5u64 {
            let mut s = Lcg63::for_history(master, i, stride);
            for k in 0..10 {
                assert_eq!(s.next_uniform(), all[(i * stride) as usize + k]);
            }
        }
    }

    #[test]
    fn uniforms_lie_in_open_interval() {
        let mut s = Lcg63::new(1);
        for _ in 0..10_000 {
            let u = s.next_uniform();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn mean_and_variance_are_sane() {
        let mut s = Lcg63::new(12345);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let u = s.next_uniform();
            sum += u;
            sum2 += u * u;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var = {var}");
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut s = Lcg63::new(0);
        let a = s.next_state();
        let b = s.next_state();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
