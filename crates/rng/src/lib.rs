//! Reproducible random number generation for Monte Carlo neutron transport.
//!
//! Two generator families are provided, mirroring the two RNG strategies the
//! paper contrasts (§III-A2):
//!
//! * [`Lcg63`] — the 63-bit linear congruential generator used by OpenMC and
//!   MCNP, with O(log n) [`Lcg63::skip`]. Each particle history gets a
//!   dedicated, deterministic stream regardless of how histories are
//!   scheduled onto threads, which makes history-based transport results
//!   independent of the thread count.
//! * [`Philox4x32`] — a counter-based generator in the style of Random123,
//!   used here as the stand-in for Intel MKL/VSL's batched `MT2203` streams.
//!   Counter-based generation has no sequential carried dependency, so large
//!   buffers of uniforms can be filled in SIMD-friendly batches from
//!   independent streams (see [`batch`]).
//!
//! The naive per-call strategy of `rand_r()` from the paper's Algorithm 3 is
//! reproduced by [`NaiveRandR`], a faithful re-implementation of the glibc
//! `rand_r` so the "Naive" column of Table I can be regenerated.
//!
//! ```
//! use mcs_rng::Lcg63;
//!
//! // Jumping 1,000,000 draws ahead costs O(log n) ...
//! let jumped = Lcg63::new(42).skipped(1_000_000);
//! // ... and lands exactly where sequential stepping would.
//! let mut stepped = Lcg63::new(42);
//! for _ in 0..1_000_000 {
//!     stepped.next_state();
//! }
//! assert_eq!(jumped, stepped);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod lcg;
pub mod naive;
pub mod philox;

pub use batch::{BatchUniform, StreamPartition};
pub use lcg::Lcg63;
pub use naive::NaiveRandR;
pub use philox::Philox4x32;

/// Default stride between per-particle LCG streams.
///
/// The same constant OpenMC uses: consecutive particle histories are placed
/// `STREAM_STRIDE` draws apart in the master LCG sequence, which is far more
/// draws than any single history consumes.
pub const STREAM_STRIDE: u64 = 152_917;

/// Convert 64 random bits to a double-precision uniform on the open
/// interval (0, 1).
///
/// The top 52 bits are used with a half-ulp offset; `n + 0.5` is exactly
/// representable for all 52-bit `n`, so the result is strictly inside the
/// interval and `-ln(u)` is always finite.
#[inline(always)]
pub fn u64_to_open_f64(bits: u64) -> f64 {
    (((bits >> 12) as f64) + 0.5) * (1.0 / (1u64 << 52) as f64)
}

/// Convert 32 random bits to a single-precision uniform on the open
/// interval (0, 1).
#[inline(always)]
pub fn u32_to_open_f32(bits: u32) -> f32 {
    (((bits >> 9) as f32) + 0.5) * (1.0 / (1u32 << 23) as f32)
}

/// A minimal trait for anything that can produce a uniform f64 in (0, 1).
///
/// The transport kernels are generic over this so the same physics code can
/// be driven by per-history LCG streams or by pre-filled batch buffers.
pub trait UniformSource {
    /// Next uniform double on the open interval (0, 1).
    fn next_f64(&mut self) -> f64;

    /// Next uniform single on the open interval (0, 1).
    #[inline]
    fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }
}

impl UniformSource for Lcg63 {
    #[inline(always)]
    fn next_f64(&mut self) -> f64 {
        self.next_uniform()
    }
}

impl UniformSource for Philox4x32 {
    #[inline(always)]
    fn next_f64(&mut self) -> f64 {
        self.next_uniform()
    }
}

impl UniformSource for NaiveRandR {
    #[inline(always)]
    fn next_f64(&mut self) -> f64 {
        self.next_uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_interval_f64_excludes_endpoints() {
        assert!(u64_to_open_f64(0) > 0.0);
        assert!(u64_to_open_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn open_interval_f32_excludes_endpoints() {
        assert!(u32_to_open_f32(0) > 0.0);
        assert!(u32_to_open_f32(u32::MAX) < 1.0);
    }

    #[test]
    fn uniform_source_trait_objects_agree_with_inherent() {
        let mut a = Lcg63::new(42);
        let mut b = Lcg63::new(42);
        let via_trait: f64 = UniformSource::next_f64(&mut a);
        assert_eq!(via_trait, b.next_uniform());
    }
}
