//! Property tests for the geometry substrate.

use mcs_geom::{hm_core, HmConfig, Surface, Vec3};
use proptest::prelude::*;

fn arb_dir() -> impl Strategy<Value = Vec3> {
    (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| Vec3::isotropic(a, b))
}

fn arb_point(r: f64) -> impl Strategy<Value = Vec3> {
    (-r..r, -r..r, -r..r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn surface_crossings_land_on_the_surface(
        p in arb_point(3.0),
        dir in arb_dir(),
        r in 0.5..4.0f64,
        x0 in -1.0..1.0f64,
        y0 in -1.0..1.0f64,
    ) {
        let surfaces = [
            Surface::XPlane { x0 },
            Surface::YPlane { y0 },
            Surface::ZPlane { z0: x0 },
            Surface::ZCylinder { x0, y0, r },
            Surface::Sphere { x0, y0, z0: 0.0, r },
        ];
        for s in surfaces {
            let d = s.distance(p, dir);
            if d.is_finite() {
                let hit = p + dir * d;
                let f = s.evaluate(hit);
                // Scale tolerance with the surface function's magnitude.
                prop_assert!(f.abs() < 1e-7 * (1.0 + r * r), "{s:?}: f={f}");
                prop_assert!(d > 0.0);
            }
        }
    }

    #[test]
    fn cylinder_distance_from_inside_always_hits(
        dir in arb_dir(),
        r in 0.5..4.0f64,
        frac in 0.0..0.99f64,
        angle in 0.0..std::f64::consts::TAU,
    ) {
        // From strictly inside an infinite z-cylinder, every non-axial
        // direction must cross the wall.
        let c = Surface::ZCylinder { x0: 0.0, y0: 0.0, r };
        let p = Vec3::new(frac * r * angle.cos(), frac * r * angle.sin(), 0.0);
        prop_assume!(dir.x.abs() + dir.y.abs() > 1e-6);
        let d = c.distance(p, dir);
        prop_assert!(d.is_finite(), "inside must exit");
    }

    #[test]
    fn rotate_scatter_composes_correctly(
        dir in arb_dir(),
        mu in -0.999..0.999f64,
        phi in 0.0..std::f64::consts::TAU,
    ) {
        let out = dir.rotate_scatter(mu, phi);
        prop_assert!((out.norm() - 1.0).abs() < 1e-10);
        prop_assert!((out.dot(dir) - mu).abs() < 1e-8);
    }

    #[test]
    fn find_is_stable_under_tiny_perturbations(
        p in arb_point(150.0),
        eps_dir in arb_dir(),
    ) {
        // Points well inside a material region resolve to the same
        // material after a sub-nanometre nudge (no boundary within 1e-7).
        let g = hm_core(&HmConfig::default());
        if let Some(a) = g.find(p) {
            let d_to_boundary = g.distance_to_boundary(p, eps_dir);
            prop_assume!(d_to_boundary > 1e-6);
            let q = p + eps_dir * 1e-9;
            let b = g.find(q);
            prop_assert_eq!(b.map(|c| c.material), Some(a.material));
        }
    }
}

#[test]
fn every_material_is_reachable_in_the_core() {
    let g = hm_core(&HmConfig::default());
    let mut seen = [false; 3];
    let mut rng = mcs_rng::Lcg63::new(3);
    for _ in 0..20_000 {
        let p = Vec3::new(
            400.0 * (rng.next_uniform() - 0.5),
            400.0 * (rng.next_uniform() - 0.5),
            300.0 * (rng.next_uniform() - 0.5),
        );
        if let Some(c) = g.find(p) {
            seen[c.material as usize] = true;
        }
        if seen.iter().all(|&s| s) {
            return;
        }
    }
    panic!("not all materials sampled: {seen:?}");
}

#[test]
fn core_volume_fractions_are_pwr_like() {
    // Monte Carlo volume estimate inside the active lattice region:
    // water should dominate, fuel ~25-35%, clad small.
    let g = hm_core(&HmConfig::default());
    let mut rng = mcs_rng::Lcg63::new(9);
    let mut counts = [0u64; 3];
    let n = 200_000;
    // Sample within the central assembly to avoid the water reflector.
    for _ in 0..n {
        let p = Vec3::new(
            21.42 * (rng.next_uniform() - 0.5),
            21.42 * (rng.next_uniform() - 0.5),
            100.0 * (rng.next_uniform() - 0.5),
        );
        if let Some(c) = g.find(p) {
            counts[c.material as usize] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    let frac = |i: usize| counts[i] as f64 / total as f64;
    assert!((0.20..0.40).contains(&frac(0)), "fuel fraction {}", frac(0));
    assert!((0.03..0.15).contains(&frac(1)), "clad fraction {}", frac(1));
    assert!(frac(2) > 0.5, "water fraction {}", frac(2));
}
