//! Equivalence and edge-case tests for the traversal seam.
//!
//! The contract under test: for every catalog model, the flattened and
//! nested treatments return the same `find(p)` result and bit-identical
//! `distance_to_boundary(p, dir)` at every point — and both match the
//! plain `Geometry` reference implementation.

use mcs_geom::{CoreSpec, GeomTraversal, Geometry, RodPattern, TraversalKind, Vec3};
use proptest::prelude::*;

/// Every catalog shape, including a rodded-everywhere stress variant.
fn catalog_models() -> Vec<(&'static str, Geometry)> {
    vec![
        (
            "hm-single",
            CoreSpec::hm(&mcs_geom::HmConfig::single_assembly())
                .build()
                .geometry,
        ),
        (
            "hm-full",
            CoreSpec::hm(&mcs_geom::HmConfig::default())
                .build()
                .geometry,
        ),
        ("smr", CoreSpec::smr().build().geometry),
        ("shield", CoreSpec::shield().build().geometry),
        (
            "smr-checkerboard",
            CoreSpec {
                rods: RodPattern::Checkerboard,
                ..CoreSpec::smr()
            }
            .build()
            .geometry,
        ),
    ]
}

fn assert_agree_at(name: &str, g: &Geometry, p: Vec3, dir: Vec3) {
    let flat = GeomTraversal::new(TraversalKind::Flattened, g);
    let nested = GeomTraversal::new(TraversalKind::Nested, g);
    let reference = g.find(p);
    assert_eq!(
        flat.find(g, p),
        reference,
        "{name}: flattened find diverges at {p:?}"
    );
    assert_eq!(
        nested.find(g, p),
        reference,
        "{name}: nested find diverges at {p:?}"
    );
    let d_ref = g.distance_to_boundary(p, dir);
    let d_flat = flat.distance_to_boundary(g, p, dir);
    let d_nested = nested.distance_to_boundary(g, p, dir);
    assert_eq!(
        d_flat.to_bits(),
        d_ref.to_bits(),
        "{name}: flattened distance diverges at {p:?} along {dir:?}"
    );
    assert_eq!(
        d_nested.to_bits(),
        d_ref.to_bits(),
        "{name}: nested distance diverges at {p:?} along {dir:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn treatments_agree_on_random_points_in_every_catalog_model(
        fx in -1.1..1.1f64,
        fy in -1.1..1.1f64,
        fz in -1.1..1.1f64,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let dir = Vec3::isotropic(a, b);
        for (name, g) in catalog_models() {
            // Scale the unit-cube draw to each model's bounding box
            // (slightly beyond it, so leaked points are exercised too).
            let (lo, hi) = g.bounds;
            let c = (lo + hi) * 0.5;
            let h = (hi - lo) * 0.5;
            let p = Vec3::new(c.x + fx * h.x, c.y + fy * h.y, c.z + fz * h.z);
            assert_agree_at(name, &g, p, dir);
        }
    }
}

#[test]
fn particle_exactly_on_a_lattice_wall_agrees() {
    // x = pin_pitch/2 in the central assembly: exactly on the wall
    // between pin columns 8 and 9. Both treatments must resolve it the
    // same way (whichever element the floor-division picks).
    for (name, g) in catalog_models() {
        let dir = Vec3::new(1.0, 0.0, 0.0);
        for &x in &[0.63, -0.63, 1.26, 10.71, -10.71] {
            assert_agree_at(name, &g, Vec3::new(x, 0.2, 0.0), dir);
            assert_agree_at(name, &g, Vec3::new(0.2, x, 0.0), dir);
        }
    }
}

#[test]
fn corner_crossings_agree() {
    // Exact lattice corners (both walls at once) and diagonal travel.
    let diag = Vec3::new(1.0, 1.0, 0.0).normalized();
    for (name, g) in catalog_models() {
        for &c in &[0.63, 10.71] {
            assert_agree_at(name, &g, Vec3::new(c, c, 0.0), diag);
            assert_agree_at(name, &g, Vec3::new(-c, c, 0.0), diag);
        }
    }
}

#[test]
fn empty_assembly_slots_resolve_to_water_under_both_treatments() {
    // Shield: only the centre slot is occupied; a neighbouring slot is
    // an all-water universe.
    let g = CoreSpec::shield().build().geometry;
    let flat = GeomTraversal::new(TraversalKind::Flattened, &g);
    let nested = GeomTraversal::new(TraversalKind::Nested, &g);
    let p = Vec3::new(21.42, 21.42, 0.0);
    let a = flat.find(&g, p).expect("inside the tank");
    let b = nested.find(&g, p).expect("inside the tank");
    assert_eq!(a, b);
    assert_eq!(a.material, mcs_geom::hm::MAT_WATER);
}

#[test]
fn ray_march_is_bitwise_identical_under_both_treatments() {
    // Step a ray across each model with both treatments side by side;
    // every find and every boundary distance must match bit for bit.
    for (name, g) in catalog_models() {
        let flat = GeomTraversal::new(TraversalKind::Flattened, &g);
        let nested = GeomTraversal::new(TraversalKind::Nested, &g);
        let dir = Vec3::new(1.0, 0.17, 0.003).normalized();
        let (lo, _) = g.bounds;
        let mut p = Vec3::new(lo.x + 1e-6, 1.7, 0.4);
        let mut steps = 0usize;
        while let Some(a) = flat.find(&g, p) {
            let b = nested.find(&g, p).expect("nested agrees on containment");
            assert_eq!(a, b, "{name}: cell mismatch at {p:?}");
            let da = flat.distance_to_boundary(&g, p, dir);
            let db = nested.distance_to_boundary(&g, p, dir);
            assert_eq!(da.to_bits(), db.to_bits(), "{name}: distance at {p:?}");
            assert!(da.is_finite());
            p += dir * (da + mcs_geom::BOUNDARY_EPS);
            steps += 1;
            assert!(steps < 100_000, "{name}: ray failed to exit");
        }
        assert!(nested.find(&g, p).is_none(), "{name}: exit disagreement");
        assert!(steps > 10, "{name}: ray crossed too few boundaries");
    }
}

#[test]
fn counters_record_work_and_flattened_does_no_more_steps() {
    let g = CoreSpec::smr().build().geometry;
    let flat = GeomTraversal::new(TraversalKind::Flattened, &g);
    let nested = GeomTraversal::new(TraversalKind::Nested, &g);
    let mut rng = mcs_rng::Lcg63::new(41);
    for _ in 0..2_000 {
        let p = Vec3::new(
            160.0 * (rng.next_uniform() - 0.5),
            160.0 * (rng.next_uniform() - 0.5),
            200.0 * (rng.next_uniform() - 0.5),
        );
        flat.find(&g, p);
        nested.find(&g, p);
    }
    let (mut cf, mut cn) = (mcs_prof::Counters::new(), mcs_prof::Counters::new());
    flat.export_counters(&mut cf);
    nested.export_counters(&mut cn);
    assert_eq!(cf.get("geom.finds"), 2_000);
    assert_eq!(cn.get("geom.finds"), 2_000);
    assert!(cf.get("geom.find_steps") > 0);
    // The flattened treatment exists to do fewer cell visits: wrapper
    // universes are pass-throughs and universe fills are pre-inlined.
    assert!(
        cf.get("geom.find_steps") < cn.get("geom.find_steps"),
        "flattened {} vs nested {}",
        cf.get("geom.find_steps"),
        cn.get("geom.find_steps")
    );
    // Clone resets.
    let fresh = flat.clone();
    let mut c = mcs_prof::Counters::new();
    fresh.export_counters(&mut c);
    assert_eq!(c.get("geom.finds"), 0);
}
