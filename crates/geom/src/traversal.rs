//! The two lattice-lookup treatments the ORNL nested-geometry study
//! compares, behind one instrumented seam.
//!
//! [`GeomTraversal`] answers the same two queries as
//! [`Geometry`] — `find` and
//! `distance_to_boundary` — under either of two treatments:
//!
//! * [`TraversalKind::Nested`] — the universe hierarchy is searched
//!   recursively, exactly as [`Geometry::find`](crate::model::Geometry::find)
//!   does: test the cells of the current universe in order, commit to the
//!   first containing cell, descend through universe fills one level at a
//!   time.
//! * [`TraversalKind::Flattened`] — `Fill::Universe` indirections are
//!   inlined ahead of time into per-universe flattened cell lists (a child
//!   cell's region is appended after its parent's, so the surface
//!   evaluation order — and therefore every f64 `min` fold — is
//!   unchanged), and trivial single-cell lattice-wrapper universes become
//!   pass-throughs that skip the containment test entirely. Lattices stay
//!   descent points in both treatments: translating their contents into a
//!   global frame would re-associate coordinate arithmetic and break the
//!   bitwise contract.
//!
//! Both treatments return bit-identical results; only the *work* differs,
//! and the seam counts that work (`geom.finds`, `geom.find_steps`,
//! `geom.surface_tests`, `geom.boundary_calls`) the same way the
//! cross-section layer's `XsContext` counts lookups — relaxed atomics,
//! drained once per query, reset on clone.
//!
//! **Equivalence precondition.** The flattened scan may keep testing
//! cells after a nested search would have committed to a branch and
//! failed inside it. The two treatments agree whenever sibling cells in
//! every universe have mutually exclusive regions — true for every model
//! the [catalog](crate::catalog) generates (pins, tubes, and rod stacks
//! partition space by shared cylinders) and property-tested in
//! `tests/traversal_props.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::model::{CellRef, Fill, Geometry};
use crate::vec3::Vec3;

/// Which lattice-lookup treatment to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalKind {
    /// Precomputed flattened cell lists (universe indirections inlined).
    #[default]
    Flattened,
    /// Recursive nested universe search.
    Nested,
}

impl TraversalKind {
    /// All treatments, for ablation sweeps.
    pub const ALL: [TraversalKind; 2] = [TraversalKind::Flattened, TraversalKind::Nested];

    /// Stable keyword (TOML / CLI / JSON).
    pub fn name(self) -> &'static str {
        match self {
            TraversalKind::Flattened => "flattened",
            TraversalKind::Nested => "nested",
        }
    }

    /// Parse a keyword produced by [`TraversalKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "flattened" => Some(TraversalKind::Flattened),
            "nested" => Some(TraversalKind::Nested),
            _ => None,
        }
    }
}

/// What a flattened cell resolves to.
#[derive(Debug, Clone)]
enum FlatFill {
    /// A material, plus the deepest original cell index (for `CellRef`).
    Material { material: u32, cell: u32 },
    /// A lattice: descend into the element's flattened universe.
    Lattice(u32),
}

/// One entry of a flattened universe: the conjunction of every region
/// constraint on the path from the universe's own cells down through
/// `Fill::Universe` indirections to a material or lattice.
#[derive(Debug, Clone)]
struct FlatCell {
    region: Vec<(u32, i8)>,
    fill: FlatFill,
}

/// A universe with its `Fill::Universe` indirections inlined.
#[derive(Debug, Clone, Default)]
struct FlatUniverse {
    cells: Vec<FlatCell>,
    /// When the universe is exactly one unbounded cell filled by a
    /// lattice (the common assembly-wrapper shape), skip the containment
    /// test and descend straight into this lattice.
    passthrough: Option<u32>,
}

/// Scratch tallies for one query, drained into the atomics once.
#[derive(Default)]
struct Tally {
    steps: u64,
    surfaces: u64,
}

/// An instrumented geometry-lookup seam over a [`Geometry`].
///
/// Construction precomputes the flattened lists (cheap: proportional to
/// the static cell count, not the lattice element count); queries then
/// dispatch on [`TraversalKind`]. Counters follow the `XsContext`
/// pattern: monotonic relaxed atomics, `Clone` resets them so cached
/// problems start counter-fresh.
#[derive(Debug)]
pub struct GeomTraversal {
    kind: TraversalKind,
    flat: Vec<FlatUniverse>,
    finds: AtomicU64,
    find_steps: AtomicU64,
    surface_tests: AtomicU64,
    boundary_calls: AtomicU64,
}

impl Clone for GeomTraversal {
    fn clone(&self) -> Self {
        Self {
            kind: self.kind,
            flat: self.flat.clone(),
            finds: AtomicU64::new(0),
            find_steps: AtomicU64::new(0),
            surface_tests: AtomicU64::new(0),
            boundary_calls: AtomicU64::new(0),
        }
    }
}

impl GeomTraversal {
    /// Build the seam for `geometry` under `kind`.
    pub fn new(kind: TraversalKind, geometry: &Geometry) -> Self {
        let flat = geometry
            .universes
            .iter()
            .map(|u| flatten_universe(geometry, &u.cells))
            .collect();
        Self {
            kind,
            flat,
            finds: AtomicU64::new(0),
            find_steps: AtomicU64::new(0),
            surface_tests: AtomicU64::new(0),
            boundary_calls: AtomicU64::new(0),
        }
    }

    /// The active treatment.
    pub fn kind(&self) -> TraversalKind {
        self.kind
    }

    /// Find the material at a point (treatment-dispatched, counted).
    /// Bit-identical to [`Geometry::find`] under both treatments.
    pub fn find(&self, g: &Geometry, p: Vec3) -> Option<CellRef> {
        let mut t = Tally::default();
        let out = match self.kind {
            TraversalKind::Nested => self.find_nested(g, 0, p, &mut t),
            TraversalKind::Flattened => self.find_flat(g, 0, p, &mut t),
        };
        self.finds.fetch_add(1, Ordering::Relaxed);
        self.find_steps.fetch_add(t.steps, Ordering::Relaxed);
        self.surface_tests.fetch_add(t.surfaces, Ordering::Relaxed);
        out
    }

    /// Distance to the nearest boundary (treatment-dispatched, counted).
    /// Bit-identical to [`Geometry::distance_to_boundary`] under both
    /// treatments.
    pub fn distance_to_boundary(&self, g: &Geometry, p: Vec3, dir: Vec3) -> f64 {
        let mut t = Tally::default();
        let out = match self.kind {
            TraversalKind::Nested => self.boundary_nested(g, p, dir, &mut t),
            TraversalKind::Flattened => self.boundary_flat(g, p, dir, &mut t),
        };
        self.boundary_calls.fetch_add(1, Ordering::Relaxed);
        self.find_steps.fetch_add(t.steps, Ordering::Relaxed);
        self.surface_tests.fetch_add(t.surfaces, Ordering::Relaxed);
        out
    }

    /// Zero the counters in place (cache hand-out hygiene).
    pub fn reset_counters(&self) {
        self.finds.store(0, Ordering::Relaxed);
        self.find_steps.store(0, Ordering::Relaxed);
        self.surface_tests.store(0, Ordering::Relaxed);
        self.boundary_calls.store(0, Ordering::Relaxed);
    }

    /// Export the counters under the `geom.` namespace.
    pub fn export_counters(&self, out: &mut mcs_prof::Counters) {
        out.add("geom.finds", self.finds.load(Ordering::Relaxed));
        out.add("geom.find_steps", self.find_steps.load(Ordering::Relaxed));
        out.add(
            "geom.surface_tests",
            self.surface_tests.load(Ordering::Relaxed),
        );
        out.add(
            "geom.boundary_calls",
            self.boundary_calls.load(Ordering::Relaxed),
        );
    }

    /// Counted containment test — same strict-inequality semantics as
    /// [`Geometry::cell_contains`], tallying one cell step and one
    /// surface test per half-space actually evaluated.
    #[inline]
    fn contains(&self, g: &Geometry, region: &[(u32, i8)], p: Vec3, t: &mut Tally) -> bool {
        t.steps += 1;
        for &(s, sense) in region {
            t.surfaces += 1;
            let f = g.surfaces[s as usize].evaluate(p);
            if !(if sense < 0 { f < 0.0 } else { f > 0.0 }) {
                return false;
            }
        }
        true
    }

    fn find_nested(&self, g: &Geometry, universe: u32, p: Vec3, t: &mut Tally) -> Option<CellRef> {
        let u = &g.universes[universe as usize];
        for &ci in &u.cells {
            let cell = &g.cells[ci as usize];
            if !self.contains(g, &cell.region, p, t) {
                continue;
            }
            return match cell.fill {
                Fill::Material(m) => Some(CellRef {
                    material: m,
                    cell: ci,
                }),
                Fill::Universe(uu) => self.find_nested(g, uu, p, t),
                Fill::Lattice(l) => {
                    let lat = &g.lattices[l as usize];
                    let (i, j) = lat.element(p)?;
                    let local = p - lat.center(i, j);
                    self.find_nested(g, lat.universes[j * lat.nx + i], local, t)
                }
            };
        }
        None
    }

    fn find_flat(&self, g: &Geometry, universe: u32, p: Vec3, t: &mut Tally) -> Option<CellRef> {
        let mut universe = universe;
        let mut p = p;
        'universe: loop {
            let fu = &self.flat[universe as usize];
            if let Some(l) = fu.passthrough {
                let lat = &g.lattices[l as usize];
                let (i, j) = lat.element(p)?;
                p = p - lat.center(i, j);
                universe = lat.universes[j * lat.nx + i];
                continue 'universe;
            }
            for fc in &fu.cells {
                if !self.contains(g, &fc.region, p, t) {
                    continue;
                }
                match fc.fill {
                    FlatFill::Material { material, cell } => {
                        return Some(CellRef { material, cell })
                    }
                    FlatFill::Lattice(l) => {
                        let lat = &g.lattices[l as usize];
                        let (i, j) = lat.element(p)?;
                        p = p - lat.center(i, j);
                        universe = lat.universes[j * lat.nx + i];
                        continue 'universe;
                    }
                }
            }
            return None;
        }
    }

    fn boundary_nested(&self, g: &Geometry, p: Vec3, dir: Vec3, t: &mut Tally) -> f64 {
        let mut dist = f64::INFINITY;
        let mut universe = 0u32;
        let mut p_loc = p;
        'descend: loop {
            let u = &g.universes[universe as usize];
            for &ci in &u.cells {
                let cell = &g.cells[ci as usize];
                if !self.contains(g, &cell.region, p_loc, t) {
                    continue;
                }
                for &(s, _) in &cell.region {
                    t.surfaces += 1;
                    dist = dist.min(g.surfaces[s as usize].distance(p_loc, dir));
                }
                match cell.fill {
                    Fill::Material(_) => break 'descend,
                    Fill::Universe(uu) => {
                        universe = uu;
                        continue 'descend;
                    }
                    Fill::Lattice(l) => {
                        let lat = &g.lattices[l as usize];
                        let Some((i, j)) = lat.element(p_loc) else {
                            break 'descend;
                        };
                        let local = p_loc - lat.center(i, j);
                        dist = dist.min(lat.wall_distance(local, dir));
                        universe = lat.universes[j * lat.nx + i];
                        p_loc = local;
                        continue 'descend;
                    }
                }
            }
            break; // no containing cell: outside
        }
        dist
    }

    fn boundary_flat(&self, g: &Geometry, p: Vec3, dir: Vec3, t: &mut Tally) -> f64 {
        let mut dist = f64::INFINITY;
        let mut universe = 0u32;
        let mut p_loc = p;
        'descend: loop {
            let fu = &self.flat[universe as usize];
            if let Some(l) = fu.passthrough {
                let lat = &g.lattices[l as usize];
                let Some((i, j)) = lat.element(p_loc) else {
                    break 'descend;
                };
                let local = p_loc - lat.center(i, j);
                dist = dist.min(lat.wall_distance(local, dir));
                universe = lat.universes[j * lat.nx + i];
                p_loc = local;
                continue 'descend;
            }
            for fc in &fu.cells {
                if !self.contains(g, &fc.region, p_loc, t) {
                    continue;
                }
                for &(s, _) in &fc.region {
                    t.surfaces += 1;
                    dist = dist.min(g.surfaces[s as usize].distance(p_loc, dir));
                }
                match fc.fill {
                    FlatFill::Material { .. } => break 'descend,
                    FlatFill::Lattice(l) => {
                        let lat = &g.lattices[l as usize];
                        let Some((i, j)) = lat.element(p_loc) else {
                            break 'descend;
                        };
                        let local = p_loc - lat.center(i, j);
                        dist = dist.min(lat.wall_distance(local, dir));
                        universe = lat.universes[j * lat.nx + i];
                        p_loc = local;
                        continue 'descend;
                    }
                }
            }
            break; // no containing cell: outside
        }
        dist
    }
}

/// Inline a universe's `Fill::Universe` indirections into a flat cell
/// list, and detect the single-cell lattice-wrapper pass-through shape.
fn flatten_universe(g: &Geometry, cells: &[u32]) -> FlatUniverse {
    if let [only] = cells {
        let cell = &g.cells[*only as usize];
        if cell.region.is_empty() {
            if let Fill::Lattice(l) = cell.fill {
                return FlatUniverse {
                    cells: Vec::new(),
                    passthrough: Some(l),
                };
            }
        }
    }
    let mut out = Vec::new();
    for &ci in cells {
        flatten_cell(g, ci, &[], &mut out);
    }
    FlatUniverse {
        cells: out,
        passthrough: None,
    }
}

fn flatten_cell(g: &Geometry, ci: u32, prefix: &[(u32, i8)], out: &mut Vec<FlatCell>) {
    let cell = &g.cells[ci as usize];
    let mut region = prefix.to_vec();
    region.extend_from_slice(&cell.region);
    match cell.fill {
        Fill::Material(m) => out.push(FlatCell {
            region,
            fill: FlatFill::Material {
                material: m,
                cell: ci,
            },
        }),
        Fill::Lattice(l) => out.push(FlatCell {
            region,
            fill: FlatFill::Lattice(l),
        }),
        Fill::Universe(uu) => {
            for &child in &g.universes[uu as usize].cells {
                flatten_cell(g, child, &region, out);
            }
        }
    }
}
