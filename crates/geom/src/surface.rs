//! Quadric surfaces: signed evaluation and ray-distance queries.

use crate::vec3::Vec3;

/// A surface dividing space into a negative and a positive half-space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surface {
    /// Plane `x = x0`.
    XPlane {
        /// Plane position.
        x0: f64,
    },
    /// Plane `y = y0`.
    YPlane {
        /// Plane position.
        y0: f64,
    },
    /// Plane `z = z0`.
    ZPlane {
        /// Plane position.
        z0: f64,
    },
    /// Infinite cylinder along z: `(x−x0)² + (y−y0)² = r²`.
    ZCylinder {
        /// Axis x.
        x0: f64,
        /// Axis y.
        y0: f64,
        /// Radius.
        r: f64,
    },
    /// Sphere centred at `(x0,y0,z0)` with radius `r`.
    Sphere {
        /// Centre x.
        x0: f64,
        /// Centre y.
        y0: f64,
        /// Centre z.
        z0: f64,
        /// Radius.
        r: f64,
    },
    /// Cone along z with apex at `(x0,y0,z0)`:
    /// `(x−x0)² + (y−y0)² = r²·(z−z0)²` (both nappes).
    ZCone {
        /// Apex x.
        x0: f64,
        /// Apex y.
        y0: f64,
        /// Apex z.
        z0: f64,
        /// Squared tangent of the half-angle.
        r2: f64,
    },
    /// General quadric
    /// `a·x² + b·y² + c·z² + d·xy + e·yz + f·xz + g·x + h·y + j·z + k = 0`.
    Quadric {
        /// Coefficients `[a, b, c, d, e, f, g, h, j, k]`.
        coeffs: [f64; 10],
    },
}

impl Surface {
    /// Signed evaluation: negative inside/below, positive outside/above.
    #[inline]
    pub fn evaluate(&self, p: Vec3) -> f64 {
        match *self {
            Surface::XPlane { x0 } => p.x - x0,
            Surface::YPlane { y0 } => p.y - y0,
            Surface::ZPlane { z0 } => p.z - z0,
            Surface::ZCylinder { x0, y0, r } => {
                let dx = p.x - x0;
                let dy = p.y - y0;
                dx * dx + dy * dy - r * r
            }
            Surface::Sphere { x0, y0, z0, r } => {
                let d = p - Vec3::new(x0, y0, z0);
                d.dot(d) - r * r
            }
            Surface::ZCone { x0, y0, z0, r2 } => {
                let dx = p.x - x0;
                let dy = p.y - y0;
                let dz = p.z - z0;
                dx * dx + dy * dy - r2 * dz * dz
            }
            Surface::Quadric { coeffs: q } => {
                let (x, y, z) = (p.x, p.y, p.z);
                q[0] * x * x
                    + q[1] * y * y
                    + q[2] * z * z
                    + q[3] * x * y
                    + q[4] * y * z
                    + q[5] * x * z
                    + q[6] * x
                    + q[7] * y
                    + q[8] * z
                    + q[9]
            }
        }
    }

    /// Distance along `dir` (unit) from `p` to the first strictly-positive
    /// crossing of this surface, or `f64::INFINITY` if the ray never
    /// crosses.
    pub fn distance(&self, p: Vec3, dir: Vec3) -> f64 {
        const TINY: f64 = 1.0e-12;
        match *self {
            Surface::XPlane { x0 } => plane_distance(p.x, dir.x, x0),
            Surface::YPlane { y0 } => plane_distance(p.y, dir.y, y0),
            Surface::ZPlane { z0 } => plane_distance(p.z, dir.z, z0),
            Surface::ZCylinder { x0, y0, r } => {
                let dx = p.x - x0;
                let dy = p.y - y0;
                let a = dir.x * dir.x + dir.y * dir.y;
                if a < TINY {
                    return f64::INFINITY; // flying parallel to the axis
                }
                let k = dx * dir.x + dy * dir.y;
                let c = dx * dx + dy * dy - r * r;
                quadratic_min_positive(a, k, c)
            }
            Surface::Sphere { x0, y0, z0, r } => {
                let d = p - Vec3::new(x0, y0, z0);
                let k = d.dot(dir);
                let c = d.dot(d) - r * r;
                quadratic_min_positive(1.0, k, c)
            }
            Surface::ZCone { x0, y0, z0, r2 } => {
                let dx = p.x - x0;
                let dy = p.y - y0;
                let dz = p.z - z0;
                let a = dir.x * dir.x + dir.y * dir.y - r2 * dir.z * dir.z;
                let k = dx * dir.x + dy * dir.y - r2 * dz * dir.z;
                let c = dx * dx + dy * dy - r2 * dz * dz;
                if a.abs() < TINY {
                    // Ray parallel to the cone surface: linear equation.
                    if k.abs() < TINY {
                        return f64::INFINITY;
                    }
                    let t = -c / (2.0 * k);
                    return if t > TINY { t } else { f64::INFINITY };
                }
                quadratic_min_positive(a, k, c)
            }
            Surface::Quadric { coeffs: q } => {
                let (x, y, z) = (p.x, p.y, p.z);
                let (u, v, w) = (dir.x, dir.y, dir.z);
                // f(p + t·dir) = A t² + 2 K t + C.
                let a2 = q[0] * u * u
                    + q[1] * v * v
                    + q[2] * w * w
                    + q[3] * u * v
                    + q[4] * v * w
                    + q[5] * u * w;
                let k2 = q[0] * x * u
                    + q[1] * y * v
                    + q[2] * z * w
                    + 0.5
                        * (q[3] * (x * v + y * u)
                            + q[4] * (y * w + z * v)
                            + q[5] * (x * w + z * u)
                            + q[6] * u
                            + q[7] * v
                            + q[8] * w);
                let c2 = self.evaluate(p);
                if a2.abs() < TINY {
                    if k2.abs() < TINY {
                        return f64::INFINITY;
                    }
                    let t = -c2 / (2.0 * k2);
                    return if t > TINY { t } else { f64::INFINITY };
                }
                quadratic_min_positive(a2, k2, c2)
            }
        }
    }
}

#[inline]
fn plane_distance(coord: f64, dcomp: f64, plane: f64) -> f64 {
    if dcomp.abs() < 1.0e-12 {
        return f64::INFINITY;
    }
    let t = (plane - coord) / dcomp;
    if t > 1.0e-12 {
        t
    } else {
        f64::INFINITY
    }
}

/// Smallest strictly positive root of `a t² + 2 k t + c = 0`.
///
/// Handles negative leading coefficients (cone nappes) by ordering the
/// roots explicitly.
#[inline]
fn quadratic_min_positive(a: f64, k: f64, c: f64) -> f64 {
    let disc = k * k - a * c;
    if disc < 0.0 {
        return f64::INFINITY;
    }
    let sq = disc.sqrt();
    let t1 = (-k - sq) / a;
    let t2 = (-k + sq) / a;
    let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
    const TINY: f64 = 1.0e-12;
    if lo > TINY {
        lo
    } else if hi > TINY {
        hi
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_senses() {
        let s = Surface::XPlane { x0: 2.0 };
        assert!(s.evaluate(Vec3::new(1.0, 0.0, 0.0)) < 0.0);
        assert!(s.evaluate(Vec3::new(3.0, 0.0, 0.0)) > 0.0);
    }

    #[test]
    fn plane_distance_forward_only() {
        let s = Surface::ZPlane { z0: 5.0 };
        let up = Vec3::new(0.0, 0.0, 1.0);
        assert!((s.distance(Vec3::ZERO, up) - 5.0).abs() < 1e-12);
        assert_eq!(s.distance(Vec3::ZERO, -up), f64::INFINITY);
        // Parallel flight never crosses.
        assert_eq!(
            s.distance(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
            f64::INFINITY
        );
    }

    #[test]
    fn cylinder_from_inside_and_outside() {
        let c = Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: 1.0,
        };
        let x = Vec3::new(1.0, 0.0, 0.0);
        // From centre outward: distance = r.
        assert!((c.distance(Vec3::ZERO, x) - 1.0).abs() < 1e-12);
        // From outside pointing at it: enters at 1.0.
        assert!((c.distance(Vec3::new(-2.0, 0.0, 0.0), x) - 1.0).abs() < 1e-12);
        // From outside pointing away: no crossing.
        assert_eq!(c.distance(Vec3::new(2.0, 0.0, 0.0), x), f64::INFINITY);
        // Missing ray.
        assert_eq!(c.distance(Vec3::new(-2.0, 5.0, 0.0), x), f64::INFINITY);
        // Axis-parallel flight.
        assert_eq!(
            c.distance(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
            f64::INFINITY
        );
    }

    #[test]
    fn sphere_distances() {
        let s = Surface::Sphere {
            x0: 0.0,
            y0: 0.0,
            z0: 0.0,
            r: 2.0,
        };
        let x = Vec3::new(1.0, 0.0, 0.0);
        assert!((s.distance(Vec3::ZERO, x) - 2.0).abs() < 1e-12);
        assert!((s.distance(Vec3::new(-5.0, 0.0, 0.0), x) - 3.0).abs() < 1e-12);
        assert!(s.evaluate(Vec3::new(0.0, 0.0, 1.0)) < 0.0);
        assert!(s.evaluate(Vec3::new(0.0, 0.0, 3.0)) > 0.0);
    }

    #[test]
    fn cone_senses_and_distances() {
        let c = Surface::ZCone {
            x0: 0.0,
            y0: 0.0,
            z0: 0.0,
            r2: 1.0,
        }; // 45° cone
           // Inside the upper nappe (close to axis): f < 0.
        assert!(c.evaluate(Vec3::new(0.1, 0.0, 1.0)) < 0.0);
        // Outside: f > 0.
        assert!(c.evaluate(Vec3::new(2.0, 0.0, 1.0)) > 0.0);
        // Ray from inside the nappe outward hits the surface where
        // x = z: start (0, 0, 1) along +x → hit at x=1.
        let d = c.distance(Vec3::new(0.0, 0.0, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn cone_negative_leading_coefficient_returns_nearest_crossing() {
        // A steep ray (|dz| dominant) makes the quadratic's leading
        // coefficient negative; the nearest crossing must still win.
        let c = Surface::ZCone {
            x0: 0.0,
            y0: 0.0,
            z0: 0.0,
            r2: 1.0,
        };
        // From inside the upper nappe heading steeply downward: it
        // crosses the upper nappe wall first (t ≈ 1.595 for this ray),
        // then would cross the lower nappe later — the solver must pick
        // the first.
        let p = Vec3::new(0.0, 0.0, 2.0);
        let dir = Vec3::new(0.3, 0.0, -0.953_939_2).normalized();
        let d = c.distance(p, dir);
        assert!(d.is_finite());
        assert!((d - 2.0 / (0.3 + 0.953_939_2)).abs() < 1e-6, "d = {d}");
        let hit = p + dir * d;
        assert!(c.evaluate(hit).abs() < 1e-9);
        // And no earlier crossing exists.
        let half = p + dir * (0.5 * d);
        assert!(c.evaluate(half) < 0.0, "stayed inside until the hit");

        // A steep upward ray from inside the nappe never exits it.
        let up = Vec3::new(0.5, 0.0, 0.866_025_4).normalized();
        assert_eq!(c.distance(p, up), f64::INFINITY);
    }

    #[test]
    fn quadric_reproduces_a_sphere() {
        // x² + y² + z² − 4 = 0 ≡ sphere of radius 2.
        let q = Surface::Quadric {
            coeffs: [1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -4.0],
        };
        let s = Surface::Sphere {
            x0: 0.0,
            y0: 0.0,
            z0: 0.0,
            r: 2.0,
        };
        let pts = [
            Vec3::new(0.3, -0.2, 0.5),
            Vec3::new(-3.0, 1.0, 0.0),
            Vec3::new(1.9, 0.0, 0.0),
        ];
        let dir = Vec3::new(0.6, 0.64, 0.48).normalized();
        for p in pts {
            assert!((q.evaluate(p) - s.evaluate(p)).abs() < 1e-12);
            let dq = q.distance(p, dir);
            let ds = s.distance(p, dir);
            if ds.is_finite() {
                assert!((dq - ds).abs() < 1e-9, "{dq} vs {ds}");
            } else {
                assert!(!dq.is_finite());
            }
        }
    }

    #[test]
    fn crossing_lands_on_surface() {
        // Position + d·u must satisfy |f(p)| ≈ 0 for every surface type.
        let surfaces = [
            Surface::XPlane { x0: 1.5 },
            Surface::ZCylinder {
                x0: 0.3,
                y0: -0.2,
                r: 2.2,
            },
            Surface::Sphere {
                x0: 0.1,
                y0: 0.2,
                z0: -0.4,
                r: 3.0,
            },
            Surface::ZCone {
                x0: 0.0,
                y0: 0.1,
                z0: -2.0,
                r2: 0.5,
            },
            Surface::Quadric {
                coeffs: [1.0, 2.0, 0.5, 0.1, 0.0, 0.2, -0.3, 0.0, 0.1, -5.0],
            },
        ];
        let p = Vec3::new(-0.9, 0.7, 0.3);
        let dir = Vec3::new(0.7, -0.5, 0.2).normalized();
        for s in surfaces {
            let d = s.distance(p, dir);
            assert!(d.is_finite(), "{s:?}");
            let hit = p + dir * d;
            assert!(s.evaluate(hit).abs() < 1e-9, "{s:?} f={}", s.evaluate(hit));
        }
    }
}
