//! Constructive solid geometry for full-core reactor models.
//!
//! OpenMC-style hierarchy: quadric [`surface::Surface`]s bound
//! [`model::Cell`]s; cells live in universes; a universe can fill a cell
//! directly or tile a rectangular [`model::Lattice`]. Particle tracking
//! needs exactly two queries, both provided by [`model::Geometry`]:
//!
//! * [`model::Geometry::find`] — which material is at a point?
//! * [`model::Geometry::distance_to_boundary`] — how far along a direction
//!   until *any* bounding surface (cell surface or lattice wall) is hit?
//!
//! [`hm`] builds the Hoogenboom–Martin performance benchmark geometry the
//! paper simulates: a PWR core of 241 assemblies on a 19×19 grid, each a
//! 17×17 pin lattice with 24 guide tubes + 1 instrumentation tube, fuel
//! pins with natural-zirconium cladding, borated water everywhere else.

//! ```
//! use mcs_geom::{hm_core, HmConfig, Vec3};
//!
//! let core = hm_core(&HmConfig::default());
//! // The exact core centre is the central assembly's instrumentation
//! // tube: water.
//! let c = core.find(Vec3::ZERO).unwrap();
//! assert_eq!(c.material, mcs_geom::hm::MAT_WATER);
//! // Ray distance to the first surface is finite inside the core.
//! let d = core.distance_to_boundary(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
//! assert!(d.is_finite());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod hm;
pub mod model;
pub mod surface;
pub mod traversal;
pub mod vec3;

pub use catalog::{CoreModel, CoreSpec, MaterialRole, RodPattern};
pub use hm::{hm_core, HmConfig};
pub use model::{CellRef, Fill, Geometry, Lattice, Universe};
pub use surface::Surface;
pub use traversal::{GeomTraversal, TraversalKind};
pub use vec3::Vec3;

/// Nudge distance (cm) used to push a particle across a boundary after a
/// surface crossing, so the next cell search lands on the far side.
pub const BOUNDARY_EPS: f64 = 1.0e-9;
