//! Parameterized pin → assembly → core model generator.
//!
//! [`CoreSpec`] generalizes the hard-wired Hoogenboom–Martin builder in
//! [`hm`](crate::hm) into a catalog of PWR-style cores: pin dimensions,
//! pins per assembly, assembly map, radial enrichment zoning, and
//! control-rod patterns are all parameters. Three shapes matter:
//!
//! * [`CoreSpec::hm`] — the paper's HM benchmark. `build()` reproduces
//!   [`hm_core`](crate::hm::hm_core) **bit-identically** (same surfaces,
//!   cells, universes, lattices, bounds, in the same construction order),
//!   so every existing golden result is preserved through the catalog
//!   path. The old builder stays as an independent oracle; the equality
//!   is asserted in this module's tests.
//! * [`CoreSpec::smr`] — an ExaSMR-style small modular reactor: 37
//!   assemblies on a 7×7 grid, three radial enrichment zones, a rodded
//!   central assembly. The control rods use genuine `Fill::Universe`
//!   nesting (rod stack inside the guide-tube bore), so nested vs
//!   flattened traversal do different amounts of work here.
//! * [`CoreSpec::shield`] — a fixed-source-style shielding variant: one
//!   assembly in the middle of a 5×5 water tank, most of the model being
//!   deep-penetration reflector.
//!
//! `build()` returns a [`CoreModel`]: the geometry plus a
//! [`MaterialRole`] per material index, so the problem-assembly layer can
//! mix the right physical material (fuel at a zone's enrichment, clad,
//! water, rod absorber) for each slot without the geometry crate knowing
//! anything about nuclides.

use crate::hm::{HmConfig, GUIDE_TUBE_POSITIONS, MAT_CLAD, MAT_WATER};
use crate::model::{Cell, Fill, Geometry, Lattice, Universe};
use crate::surface::Surface;
use crate::vec3::Vec3;

/// Control-rod insertion pattern over the occupied assembly positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RodPattern {
    /// No control rods anywhere.
    #[default]
    None,
    /// Rods inserted in the central assembly only.
    Center,
    /// Rods inserted in every occupied position with even `i + j`.
    Checkerboard,
}

impl RodPattern {
    /// All patterns, for sweeps.
    pub const ALL: [RodPattern; 3] = [
        RodPattern::None,
        RodPattern::Center,
        RodPattern::Checkerboard,
    ];

    /// Stable keyword (TOML / CLI / JSON).
    pub fn name(self) -> &'static str {
        match self {
            RodPattern::None => "none",
            RodPattern::Center => "center",
            RodPattern::Checkerboard => "checkerboard",
        }
    }

    /// Parse a keyword produced by [`RodPattern::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "none" => Some(RodPattern::None),
            "center" => Some(RodPattern::Center),
            "checkerboard" => Some(RodPattern::Checkerboard),
            _ => None,
        }
    }

    /// Is the occupied position `(i, j)` of an `n × n` core rodded?
    fn rodded(self, n: usize, i: usize, j: usize) -> bool {
        match self {
            RodPattern::None => false,
            RodPattern::Center => i == n / 2 && j == n / 2,
            RodPattern::Checkerboard => (i + j).is_multiple_of(2),
        }
    }
}

/// What each material index in a generated model physically is. The
/// problem-assembly layer maps roles to nuclide inventories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaterialRole {
    /// UO₂ fuel; `enrichment` scales the fissile number density
    /// (1.0 = the HM baseline inventory).
    Fuel {
        /// U-235 density multiplier relative to the HM baseline.
        enrichment: f64,
    },
    /// Zirconium cladding.
    Clad,
    /// Borated water.
    Water,
    /// Control-rod absorber.
    Absorber,
}

/// A generated model: geometry plus the role of every material index.
#[derive(Debug, Clone)]
pub struct CoreModel {
    /// The geometry; material ids index into `roles`.
    pub geometry: Geometry,
    /// Role of each material index.
    pub roles: Vec<MaterialRole>,
}

/// Parameterized pin → assembly → core specification (lengths in cm).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Fuel pellet radius.
    pub fuel_radius: f64,
    /// Clad outer radius.
    pub clad_radius: f64,
    /// Guide-tube inner radius.
    pub gt_inner_radius: f64,
    /// Guide-tube outer radius.
    pub gt_outer_radius: f64,
    /// Control-rod radius (inside the guide-tube bore).
    pub rod_radius: f64,
    /// Pin lattice pitch.
    pub pin_pitch: f64,
    /// Pins per assembly side. Guide tubes are placed only for the
    /// Westinghouse 17×17 layout ([`GUIDE_TUBE_POSITIONS`]).
    pub pins_per_side: usize,
    /// Assembly pitch.
    pub assembly_pitch: f64,
    /// Assemblies across the core lattice (odd).
    pub core_lattice_n: usize,
    /// Number of occupied assembly positions (nearest the axis first).
    pub n_assemblies: usize,
    /// Axial half-height of the active core.
    pub half_height: f64,
    /// Radial enrichment zones, innermost first: occupied assemblies are
    /// split into `len()` equal-count radial groups, and group `z` fuels
    /// its pins at `enrichment_zones[z]` × the baseline fissile density.
    /// Must be non-empty; `vec![1.0]` reproduces single-zone HM fuel.
    pub enrichment_zones: Vec<f64>,
    /// Control-rod insertion pattern.
    pub rods: RodPattern,
}

impl CoreSpec {
    /// The Hoogenboom–Martin core for `cfg`; `build()` is bit-identical
    /// to [`hm_core`](crate::hm::hm_core)`(cfg)`.
    pub fn hm(cfg: &HmConfig) -> Self {
        Self {
            fuel_radius: cfg.fuel_radius,
            clad_radius: cfg.clad_radius,
            gt_inner_radius: cfg.gt_inner_radius,
            gt_outer_radius: cfg.gt_outer_radius,
            rod_radius: 0.4331,
            pin_pitch: cfg.pin_pitch,
            pins_per_side: 17,
            assembly_pitch: cfg.assembly_pitch,
            core_lattice_n: cfg.core_lattice_n,
            n_assemblies: cfg.n_assemblies,
            half_height: cfg.half_height,
            enrichment_zones: vec![1.0],
            rods: RodPattern::None,
        }
    }

    /// ExaSMR-style small modular reactor: 37 assemblies on a 7×7 grid,
    /// three radial enrichment zones, rodded central assembly.
    pub fn smr() -> Self {
        Self {
            core_lattice_n: 7,
            n_assemblies: 37,
            half_height: 120.0,
            enrichment_zones: vec![1.0, 1.12, 1.25],
            rods: RodPattern::Center,
            ..Self::hm(&HmConfig::default())
        }
    }

    /// Shielding variant: a single assembly in the middle of a 5×5
    /// water tank — most of the model is deep-penetration reflector.
    pub fn shield() -> Self {
        Self {
            core_lattice_n: 5,
            n_assemblies: 1,
            half_height: 40.0,
            ..Self::hm(&HmConfig::default())
        }
    }

    /// Number of materials `build()` will emit.
    pub fn n_materials(&self) -> usize {
        let rodded = self.any_rodded();
        3 + (self.enrichment_zones.len() - 1) + usize::from(rodded)
    }

    /// Does the rod pattern insert rods into at least one occupied
    /// position?
    fn any_rodded(&self) -> bool {
        let n = self.core_lattice_n;
        let map = crate::hm::core_map(n, self.n_assemblies);
        (0..n * n).any(|idx| map[idx] && self.rods.rodded(n, idx % n, idx / n))
    }

    /// Material index for fuel zone `z` (zone 0 is material 0, the HM
    /// fuel slot; later zones follow clad and water).
    fn zone_material(z: usize) -> u32 {
        if z == 0 {
            0
        } else {
            (2 + z) as u32
        }
    }

    /// Zone of each occupied position: occupied positions ranked by
    /// distance from the axis (the same `(r², index)` order
    /// [`core_map`](crate::hm::core_map) uses) and split into
    /// `enrichment_zones.len()` equal-count groups, innermost first.
    fn zone_map(&self) -> Vec<Option<usize>> {
        let n = self.core_lattice_n;
        let nz = self.enrichment_zones.len();
        let c = (n as f64 - 1.0) / 2.0;
        let mut order: Vec<(f64, usize)> = (0..n * n)
            .map(|idx| {
                let i = (idx % n) as f64;
                let j = (idx / n) as f64;
                let r2 = (i - c) * (i - c) + (j - c) * (j - c);
                (r2, idx)
            })
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let n_occ = self.n_assemblies.min(n * n);
        let mut zones = vec![None; n * n];
        for (rank, &(_, idx)) in order.iter().take(n_occ).enumerate() {
            zones[idx] = Some((rank * nz / n_occ).min(nz - 1));
        }
        zones
    }

    /// Generate the geometry and the material-role table.
    ///
    /// Construction order matches [`hm_core`](crate::hm::hm_core) exactly
    /// when the spec degenerates to an HM config (one zone, no rods), so
    /// the emitted `Geometry` is structurally bit-identical to the
    /// hand-written builder's.
    pub fn build(&self) -> CoreModel {
        assert!(
            !self.enrichment_zones.is_empty(),
            "CoreSpec needs at least one enrichment zone"
        );
        let nz = self.enrichment_zones.len();
        assert!(
            self.n_materials() <= 8,
            "tally arrays hold at most 8 materials ({} requested)",
            self.n_materials()
        );
        let rodded_any = self.any_rodded();
        let npin = self.pins_per_side;

        let mut g = Geometry::default();

        // --- universes: reserve root as universe 0 ---
        g.push_universe(Universe::default());

        // Fuel pin universes, one per enrichment zone. Zone 0 is the HM
        // pin verbatim (names included, so the oracle comparison covers
        // the whole structure).
        let fuel_cyl = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: self.fuel_radius,
        });
        let clad_cyl = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: self.clad_radius,
        });
        let mut u_pin = Vec::with_capacity(nz);
        for z in 0..nz {
            let tag = if z == 0 {
                "pin".to_string()
            } else {
                format!("pin:z{z}")
            };
            let c_fuel = g.push_cell(Cell {
                name: format!("{tag}:fuel"),
                region: vec![(fuel_cyl, -1)],
                fill: Fill::Material(Self::zone_material(z)),
            });
            let c_clad = g.push_cell(Cell {
                name: format!("{tag}:clad"),
                region: vec![(fuel_cyl, 1), (clad_cyl, -1)],
                fill: Fill::Material(MAT_CLAD),
            });
            let c_pin_water = g.push_cell(Cell {
                name: format!("{tag}:water"),
                region: vec![(clad_cyl, 1)],
                fill: Fill::Material(MAT_WATER),
            });
            u_pin.push(g.push_universe(Universe {
                cells: vec![c_fuel, c_clad, c_pin_water],
            }));
        }

        // Guide-tube universe: water | clad tube | water.
        let gt_in = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: self.gt_inner_radius,
        });
        let gt_out = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: self.gt_outer_radius,
        });
        let c_gt_bore = g.push_cell(Cell {
            name: "gt:bore".into(),
            region: vec![(gt_in, -1)],
            fill: Fill::Material(MAT_WATER),
        });
        let c_gt_wall = g.push_cell(Cell {
            name: "gt:wall".into(),
            region: vec![(gt_in, 1), (gt_out, -1)],
            fill: Fill::Material(MAT_CLAD),
        });
        let c_gt_water = g.push_cell(Cell {
            name: "gt:water".into(),
            region: vec![(gt_out, 1)],
            fill: Fill::Material(MAT_WATER),
        });
        let u_gt = g.push_universe(Universe {
            cells: vec![c_gt_bore, c_gt_wall, c_gt_water],
        });

        // Rodded guide-tube universe: the absorber stack lives in its own
        // universe filled *into* the bore cell — deliberate extra nesting
        // so the traversal treatments do measurably different work.
        let absorber_mat = (2 + nz) as u32;
        let u_rgt = if rodded_any {
            let rod_cyl = g.push_surface(Surface::ZCylinder {
                x0: 0.0,
                y0: 0.0,
                r: self.rod_radius,
            });
            let c_rod = g.push_cell(Cell {
                name: "rod:absorber".into(),
                region: vec![(rod_cyl, -1)],
                fill: Fill::Material(absorber_mat),
            });
            let c_rod_gap = g.push_cell(Cell {
                name: "rod:gap".into(),
                region: vec![(rod_cyl, 1)],
                fill: Fill::Material(MAT_WATER),
            });
            let u_rod = g.push_universe(Universe {
                cells: vec![c_rod, c_rod_gap],
            });
            let c_rgt_bore = g.push_cell(Cell {
                name: "rgt:bore".into(),
                region: vec![(gt_in, -1)],
                fill: Fill::Universe(u_rod),
            });
            let c_rgt_wall = g.push_cell(Cell {
                name: "rgt:wall".into(),
                region: vec![(gt_in, 1), (gt_out, -1)],
                fill: Fill::Material(MAT_CLAD),
            });
            let c_rgt_water = g.push_cell(Cell {
                name: "rgt:water".into(),
                region: vec![(gt_out, 1)],
                fill: Fill::Material(MAT_WATER),
            });
            Some(g.push_universe(Universe {
                cells: vec![c_rgt_bore, c_rgt_wall, c_rgt_water],
            }))
        } else {
            None
        };

        // All-water universe for unoccupied core positions.
        let c_all_water = g.push_cell(Cell {
            name: "water:all".into(),
            region: Vec::new(),
            fill: Fill::Material(MAT_WATER),
        });
        let u_water = g.push_universe(Universe {
            cells: vec![c_all_water],
        });

        // Assembly universes: a pin lattice per (zone, rodded) variant in
        // use. Unrodded variants first (zone order), then rodded.
        let half_asm = 0.5 * self.assembly_pitch;
        let zones = self.zone_map();
        let n = self.core_lattice_n;
        let map = crate::hm::core_map(n, self.n_assemblies);
        let mut asm_of_zone = vec![None; nz];
        let mut rodded_asm_of_zone = vec![None; nz];
        for (rodded, slot) in [(false, &mut asm_of_zone), (true, &mut rodded_asm_of_zone)] {
            for z in 0..nz {
                let used = (0..n * n).any(|idx| {
                    map[idx]
                        && zones[idx] == Some(z)
                        && self.rods.rodded(n, idx % n, idx / n) == rodded
                });
                if !used {
                    continue;
                }
                let tube = if rodded { u_rgt.unwrap() } else { u_gt };
                let mut pin_unis = vec![u_pin[z]; npin * npin];
                if npin == 17 {
                    for &(r, c) in &GUIDE_TUBE_POSITIONS {
                        pin_unis[r * 17 + c] = tube;
                    }
                }
                let pin_lat = g.push_lattice(Lattice {
                    x0: -half_asm,
                    y0: -half_asm,
                    pitch_x: self.pin_pitch,
                    pitch_y: self.pin_pitch,
                    nx: npin,
                    ny: npin,
                    universes: pin_unis,
                });
                let name = match (z, rodded) {
                    (0, false) => "assembly".to_string(),
                    (z, false) => format!("assembly:z{z}"),
                    (z, true) => format!("assembly:z{z}:rodded"),
                };
                let c_asm = g.push_cell(Cell {
                    name,
                    region: Vec::new(),
                    fill: Fill::Lattice(pin_lat),
                });
                slot[z] = Some(g.push_universe(Universe { cells: vec![c_asm] }));
            }
        }

        // Core lattice of assemblies.
        let half_core = 0.5 * n as f64 * self.assembly_pitch;
        let core_unis: Vec<u32> = (0..n * n)
            .map(|idx| {
                if !map[idx] {
                    return u_water;
                }
                let z = zones[idx].expect("occupied position has a zone");
                if self.rods.rodded(n, idx % n, idx / n) {
                    rodded_asm_of_zone[z].expect("rodded assembly built")
                } else {
                    asm_of_zone[z].expect("assembly built")
                }
            })
            .collect();
        let core_lat = g.push_lattice(Lattice {
            x0: -half_core,
            y0: -half_core,
            pitch_x: self.assembly_pitch,
            pitch_y: self.assembly_pitch,
            nx: n,
            ny: n,
            universes: core_unis,
        });

        // Root cell: box with vacuum boundary, filled by the core lattice.
        let x_lo = g.push_surface(Surface::XPlane { x0: -half_core });
        let x_hi = g.push_surface(Surface::XPlane { x0: half_core });
        let y_lo = g.push_surface(Surface::YPlane { y0: -half_core });
        let y_hi = g.push_surface(Surface::YPlane { y0: half_core });
        let z_lo = g.push_surface(Surface::ZPlane {
            z0: -self.half_height,
        });
        let z_hi = g.push_surface(Surface::ZPlane {
            z0: self.half_height,
        });
        let c_root = g.push_cell(Cell {
            name: "root".into(),
            region: vec![
                (x_lo, 1),
                (x_hi, -1),
                (y_lo, 1),
                (y_hi, -1),
                (z_lo, 1),
                (z_hi, -1),
            ],
            fill: Fill::Lattice(core_lat),
        });
        g.universes[0].cells.push(c_root);
        g.bounds = (
            Vec3::new(-half_core, -half_core, -self.half_height),
            Vec3::new(half_core, half_core, self.half_height),
        );

        let mut roles = vec![
            MaterialRole::Fuel {
                enrichment: self.enrichment_zones[0],
            },
            MaterialRole::Clad,
            MaterialRole::Water,
        ];
        for &e in &self.enrichment_zones[1..] {
            roles.push(MaterialRole::Fuel { enrichment: e });
        }
        if rodded_any {
            roles.push(MaterialRole::Absorber);
        }

        CoreModel { geometry: g, roles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hm::{hm_core, MAT_FUEL};

    /// The whole-structure bit-equality oracle: `Debug` for `f64` prints
    /// the shortest round-trip representation, which is injective over
    /// the finite values these builders produce, so equal debug strings
    /// ⇒ bit-identical geometries.
    fn assert_geometry_identical(a: &Geometry, b: &Geometry) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn hm_default_is_bit_identical_to_the_oracle() {
        let cfg = HmConfig::default();
        let model = CoreSpec::hm(&cfg).build();
        assert_geometry_identical(&model.geometry, &hm_core(&cfg));
        assert_eq!(
            model.roles,
            vec![
                MaterialRole::Fuel { enrichment: 1.0 },
                MaterialRole::Clad,
                MaterialRole::Water
            ]
        );
    }

    #[test]
    fn hm_single_assembly_is_bit_identical_to_the_oracle() {
        let cfg = HmConfig::single_assembly();
        let model = CoreSpec::hm(&cfg).build();
        assert_geometry_identical(&model.geometry, &hm_core(&cfg));
    }

    #[test]
    fn smr_builds_with_zones_and_rods() {
        let spec = CoreSpec::smr();
        let model = spec.build();
        assert_eq!(model.roles.len(), 6);
        assert_eq!(model.roles[5], MaterialRole::Absorber);
        // Central assembly is rodded: the instrumentation-tube position
        // holds absorber at the pin centre.
        let g = &model.geometry;
        let c = g.find(Vec3::ZERO).unwrap();
        assert_eq!(model.roles[c.material as usize], MaterialRole::Absorber);
        // A fuel-pin centre in the central assembly is zone-0 fuel.
        let x = -8.0 * spec.pin_pitch;
        let c = g.find(Vec3::new(x, x, 0.0)).unwrap();
        assert_eq!(c.material, MAT_FUEL);
        // An outer assembly's fuel is a higher zone: assembly (0, 3) is
        // occupied (edge of the 37-assembly map) and unrodded.
        let ax = -3.0 * spec.assembly_pitch;
        let c = g.find(Vec3::new(ax + x, x, 0.0)).unwrap();
        assert!(
            matches!(model.roles[c.material as usize], MaterialRole::Fuel { enrichment } if enrichment > 1.0),
            "outer-zone fuel role, got {:?}",
            model.roles[c.material as usize]
        );
    }

    #[test]
    fn smr_zone_counts_are_balanced() {
        let spec = CoreSpec::smr();
        let zones = spec.zone_map();
        let mut counts = [0usize; 3];
        for z in zones.into_iter().flatten() {
            counts[z] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 37);
        // Equal-count split up to rounding.
        for c in counts {
            assert!((12..=13).contains(&c), "zone counts {counts:?}");
        }
    }

    #[test]
    fn shield_is_mostly_water() {
        let model = CoreSpec::shield().build();
        let g = &model.geometry;
        // Centre of a neighbouring (unoccupied) lattice position: water.
        let c = g.find(Vec3::new(21.42, 0.0, 0.0)).unwrap();
        assert_eq!(c.material, MAT_WATER);
        // Fuel exists at the centre assembly.
        let x = -8.0 * 1.26;
        assert_eq!(g.find(Vec3::new(x, x, 0.0)).unwrap().material, MAT_FUEL);
        // Far corner of the tank leaks only outside the box.
        assert!(g.find(Vec3::new(0.0, 0.0, 50.0)).is_none());
        assert_eq!(model.roles.len(), 3);
    }

    #[test]
    fn checkerboard_rodded_positions_follow_parity() {
        let spec = CoreSpec {
            rods: RodPattern::Checkerboard,
            ..CoreSpec::shield()
        };
        assert!(spec.any_rodded());
        let model = spec.build();
        // The single occupied assembly sits at (2,2): even parity, so
        // its instrumentation tube holds absorber.
        let c = model.geometry.find(Vec3::ZERO).unwrap();
        assert_eq!(model.roles[c.material as usize], MaterialRole::Absorber);
    }

    #[test]
    fn material_budget_is_enforced() {
        let spec = CoreSpec {
            enrichment_zones: vec![1.0; 6],
            rods: RodPattern::Center,
            ..CoreSpec::smr()
        };
        assert!(spec.n_materials() > 8);
        assert!(std::panic::catch_unwind(|| spec.build()).is_err());
    }

    #[test]
    fn rod_pattern_keywords_round_trip() {
        for p in RodPattern::ALL {
            assert_eq!(RodPattern::from_name(p.name()), Some(p));
        }
        assert_eq!(RodPattern::from_name("bogus"), None);
    }
}
