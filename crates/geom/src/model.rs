//! Hierarchical cell/universe/lattice geometry with ray tracing.

use crate::surface::Surface;
use crate::vec3::Vec3;

/// What a cell is filled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// A homogeneous material (index into the problem's material list).
    Material(u32),
    /// Another universe (same coordinate frame).
    Universe(u32),
    /// A rectangular lattice of universes.
    Lattice(u32),
}

/// A region bounded by surface half-spaces, with a fill.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display name.
    pub name: String,
    /// Intersection of half-spaces: `(surface index, sense)` where sense
    /// −1 requires `f(p) < 0` and +1 requires `f(p) > 0`.
    pub region: Vec<(u32, i8)>,
    /// The fill.
    pub fill: Fill,
}

/// A set of cells sharing a coordinate frame.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    /// Indices into the geometry's cell list.
    pub cells: Vec<u32>,
}

/// A 2-D rectangular lattice (infinite in z within its enclosing cell).
#[derive(Debug, Clone)]
pub struct Lattice {
    /// x of the lattice's lower-left corner.
    pub x0: f64,
    /// y of the lattice's lower-left corner.
    pub y0: f64,
    /// Element pitch in x.
    pub pitch_x: f64,
    /// Element pitch in y.
    pub pitch_y: f64,
    /// Elements in x.
    pub nx: usize,
    /// Elements in y.
    pub ny: usize,
    /// Universe per element, row-major (`j * nx + i`).
    pub universes: Vec<u32>,
}

impl Lattice {
    /// Element containing the (enclosing-frame) point, or `None` outside.
    #[inline]
    pub fn element(&self, p: Vec3) -> Option<(usize, usize)> {
        let fx = (p.x - self.x0) / self.pitch_x;
        let fy = (p.y - self.y0) / self.pitch_y;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let i = fx as usize;
        let j = fy as usize;
        if i >= self.nx || j >= self.ny {
            return None;
        }
        Some((i, j))
    }

    /// Centre of element `(i, j)` in the enclosing frame.
    #[inline]
    pub fn center(&self, i: usize, j: usize) -> Vec3 {
        Vec3::new(
            self.x0 + (i as f64 + 0.5) * self.pitch_x,
            self.y0 + (j as f64 + 0.5) * self.pitch_y,
            0.0,
        )
    }

    /// Distance from element-local point `p` along `dir` to the element's
    /// walls (local frame: walls at ±pitch/2).
    #[inline]
    pub fn wall_distance(&self, p: Vec3, dir: Vec3) -> f64 {
        let mut d = f64::INFINITY;
        if dir.x > 1e-12 {
            d = d.min((0.5 * self.pitch_x - p.x) / dir.x);
        } else if dir.x < -1e-12 {
            d = d.min((-0.5 * self.pitch_x - p.x) / dir.x);
        }
        if dir.y > 1e-12 {
            d = d.min((0.5 * self.pitch_y - p.y) / dir.y);
        } else if dir.y < -1e-12 {
            d = d.min((-0.5 * self.pitch_y - p.y) / dir.y);
        }
        d.max(0.0)
    }
}

/// Result of a cell search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRef {
    /// Material at the point.
    pub material: u32,
    /// Deepest (material-filled) cell index.
    pub cell: u32,
}

/// A complete geometry.
#[derive(Debug, Clone, Default)]
pub struct Geometry {
    /// All surfaces.
    pub surfaces: Vec<Surface>,
    /// All cells.
    pub cells: Vec<Cell>,
    /// All universes; index 0 is the root.
    pub universes: Vec<Universe>,
    /// All lattices.
    pub lattices: Vec<Lattice>,
    /// Axis-aligned bounding box of the root cell, for source sampling:
    /// `(min, max)`.
    pub bounds: (Vec3, Vec3),
}

impl Geometry {
    /// Add a surface, returning its index.
    pub fn push_surface(&mut self, s: Surface) -> u32 {
        self.surfaces.push(s);
        (self.surfaces.len() - 1) as u32
    }

    /// Add a cell, returning its index.
    pub fn push_cell(&mut self, c: Cell) -> u32 {
        self.cells.push(c);
        (self.cells.len() - 1) as u32
    }

    /// Add a universe, returning its index.
    pub fn push_universe(&mut self, u: Universe) -> u32 {
        self.universes.push(u);
        (self.universes.len() - 1) as u32
    }

    /// Add a lattice, returning its index.
    pub fn push_lattice(&mut self, l: Lattice) -> u32 {
        self.lattices.push(l);
        (self.lattices.len() - 1) as u32
    }

    /// Does `cell`'s region contain local point `p`?
    #[inline]
    pub fn cell_contains(&self, cell: &Cell, p: Vec3) -> bool {
        cell.region.iter().all(|&(s, sense)| {
            let f = self.surfaces[s as usize].evaluate(p);
            if sense < 0 {
                f < 0.0
            } else {
                f > 0.0
            }
        })
    }

    /// Find the material at a point, descending from the root universe.
    /// `None` means the point is outside the geometry (leaked).
    pub fn find(&self, p: Vec3) -> Option<CellRef> {
        self.find_in(0, p)
    }

    fn find_in(&self, universe: u32, p: Vec3) -> Option<CellRef> {
        let u = &self.universes[universe as usize];
        for &ci in &u.cells {
            let cell = &self.cells[ci as usize];
            if !self.cell_contains(cell, p) {
                continue;
            }
            return match cell.fill {
                Fill::Material(m) => Some(CellRef {
                    material: m,
                    cell: ci,
                }),
                Fill::Universe(uu) => self.find_in(uu, p),
                Fill::Lattice(l) => {
                    let lat = &self.lattices[l as usize];
                    let (i, j) = lat.element(p)?;
                    let local = p - lat.center(i, j);
                    self.find_in(lat.universes[j * lat.nx + i], local)
                }
            };
        }
        None
    }

    /// Distance along `dir` to the nearest bounding surface at any level
    /// of the hierarchy (cell surfaces and lattice walls). Infinite if the
    /// point is outside the geometry.
    pub fn distance_to_boundary(&self, p: Vec3, dir: Vec3) -> f64 {
        let mut dist = f64::INFINITY;
        let mut universe = 0u32;
        let mut p_loc = p;
        'descend: loop {
            let u = &self.universes[universe as usize];
            for &ci in &u.cells {
                let cell = &self.cells[ci as usize];
                if !self.cell_contains(cell, p_loc) {
                    continue;
                }
                for &(s, _) in &cell.region {
                    dist = dist.min(self.surfaces[s as usize].distance(p_loc, dir));
                }
                match cell.fill {
                    Fill::Material(_) => break 'descend,
                    Fill::Universe(uu) => {
                        universe = uu;
                        continue 'descend;
                    }
                    Fill::Lattice(l) => {
                        let lat = &self.lattices[l as usize];
                        let Some((i, j)) = lat.element(p_loc) else {
                            break 'descend;
                        };
                        let local = p_loc - lat.center(i, j);
                        dist = dist.min(lat.wall_distance(local, dir));
                        universe = lat.universes[j * lat.nx + i];
                        p_loc = local;
                        continue 'descend;
                    }
                }
            }
            break; // no containing cell: outside
        }
        dist
    }
}

impl Geometry {
    /// Monte Carlo volume estimation: sample `n` uniform points in the
    /// bounding box and return the estimated volume (cm³) per material id
    /// (ids ≥ the returned length were not seen). Deterministic in `seed`.
    /// This is OpenMC's stochastic-volume-calculation mode in miniature.
    pub fn estimate_volumes(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = mcs_rng_local::SplitMix(seed);
        let (lo, hi) = self.bounds;
        let span = hi - lo;
        let box_volume = span.x * span.y * span.z;
        let mut counts: Vec<u64> = Vec::new();
        for _ in 0..n {
            let p = Vec3::new(
                lo.x + span.x * rng.next_f64(),
                lo.y + span.y * rng.next_f64(),
                lo.z + span.z * rng.next_f64(),
            );
            if let Some(c) = self.find(p) {
                let m = c.material as usize;
                if m >= counts.len() {
                    counts.resize(m + 1, 0);
                }
                counts[m] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / n as f64 * box_volume)
            .collect()
    }
}

/// A tiny local splitmix64 so this crate needs no RNG dependency for the
/// volume estimator.
mod mcs_rng_local {
    pub struct SplitMix(pub u64);
    impl SplitMix {
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nested z-cylinders inside a box: pin-cell-like fixture.
    fn pin_cell() -> Geometry {
        let mut g = Geometry::default();
        let fuel_cyl = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: 0.4,
        });
        let clad_cyl = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: 0.5,
        });
        let x_lo = g.push_surface(Surface::XPlane { x0: -1.0 });
        let x_hi = g.push_surface(Surface::XPlane { x0: 1.0 });
        let y_lo = g.push_surface(Surface::YPlane { y0: -1.0 });
        let y_hi = g.push_surface(Surface::YPlane { y0: 1.0 });
        let z_lo = g.push_surface(Surface::ZPlane { z0: -10.0 });
        let z_hi = g.push_surface(Surface::ZPlane { z0: 10.0 });

        let box_region = vec![
            (x_lo, 1i8),
            (x_hi, -1),
            (y_lo, 1),
            (y_hi, -1),
            (z_lo, 1),
            (z_hi, -1),
        ];
        let fuel = g.push_cell(Cell {
            name: "fuel".into(),
            region: {
                let mut r = box_region.clone();
                r.push((fuel_cyl, -1));
                r
            },
            fill: Fill::Material(0),
        });
        let clad = g.push_cell(Cell {
            name: "clad".into(),
            region: {
                let mut r = box_region.clone();
                r.push((fuel_cyl, 1));
                r.push((clad_cyl, -1));
                r
            },
            fill: Fill::Material(1),
        });
        let water = g.push_cell(Cell {
            name: "water".into(),
            region: {
                let mut r = box_region;
                r.push((clad_cyl, 1));
                r
            },
            fill: Fill::Material(2),
        });
        g.push_universe(Universe {
            cells: vec![fuel, clad, water],
        });
        g.bounds = (Vec3::new(-1.0, -1.0, -10.0), Vec3::new(1.0, 1.0, 10.0));
        g
    }

    #[test]
    fn find_resolves_materials() {
        let g = pin_cell();
        assert_eq!(g.find(Vec3::ZERO).unwrap().material, 0);
        assert_eq!(g.find(Vec3::new(0.45, 0.0, 0.0)).unwrap().material, 1);
        assert_eq!(g.find(Vec3::new(0.9, 0.9, 0.0)).unwrap().material, 2);
        assert!(g.find(Vec3::new(5.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn boundary_distance_hits_fuel_surface() {
        let g = pin_cell();
        let d = g.distance_to_boundary(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 0.4).abs() < 1e-12);
        // From clad outward: clad surface at 0.5.
        let d = g.distance_to_boundary(Vec3::new(0.45, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 0.05).abs() < 1e-12);
        // From water to box wall.
        let d = g.distance_to_boundary(Vec3::new(0.9, 0.9, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn stepping_across_boundaries_traverses_all_materials() {
        let g = pin_cell();
        let dir = Vec3::new(1.0, 0.0, 0.0);
        let mut p = Vec3::new(-0.95, 0.0, 0.0);
        let mut seen = Vec::new();
        for _ in 0..16 {
            match g.find(p) {
                Some(c) => seen.push(c.material),
                None => break,
            }
            let d = g.distance_to_boundary(p, dir);
            if !d.is_finite() {
                break;
            }
            p += dir * (d + crate::BOUNDARY_EPS);
        }
        assert_eq!(seen, vec![2, 1, 0, 1, 2]);
    }

    fn lattice_geometry() -> Geometry {
        // 2x2 lattice of pin universes inside a box.
        let mut g = Geometry::default();
        let cyl = g.push_surface(Surface::ZCylinder {
            x0: 0.0,
            y0: 0.0,
            r: 0.3,
        });
        let fuel = g.push_cell(Cell {
            name: "pin_fuel".into(),
            region: vec![(cyl, -1)],
            fill: Fill::Material(0),
        });
        let water = g.push_cell(Cell {
            name: "pin_water".into(),
            region: vec![(cyl, 1)],
            fill: Fill::Material(2),
        });
        // Root must be universe 0: reserve it first.
        g.push_universe(Universe::default());
        let pin_u = g.push_universe(Universe {
            cells: vec![fuel, water],
        });
        let lat = g.push_lattice(Lattice {
            x0: -1.0,
            y0: -1.0,
            pitch_x: 1.0,
            pitch_y: 1.0,
            nx: 2,
            ny: 2,
            universes: vec![pin_u; 4],
        });
        let x_lo = g.push_surface(Surface::XPlane { x0: -1.0 });
        let x_hi = g.push_surface(Surface::XPlane { x0: 1.0 });
        let y_lo = g.push_surface(Surface::YPlane { y0: -1.0 });
        let y_hi = g.push_surface(Surface::YPlane { y0: 1.0 });
        let z_lo = g.push_surface(Surface::ZPlane { z0: -5.0 });
        let z_hi = g.push_surface(Surface::ZPlane { z0: 5.0 });
        let root_cell = g.push_cell(Cell {
            name: "root".into(),
            region: vec![
                (x_lo, 1),
                (x_hi, -1),
                (y_lo, 1),
                (y_hi, -1),
                (z_lo, 1),
                (z_hi, -1),
            ],
            fill: Fill::Lattice(lat),
        });
        g.universes[0].cells.push(root_cell);
        g.bounds = (Vec3::new(-1.0, -1.0, -5.0), Vec3::new(1.0, 1.0, 5.0));
        g
    }

    #[test]
    fn lattice_find_translates_into_elements() {
        let g = lattice_geometry();
        // Element centres host fuel.
        for &(x, y) in &[(-0.5, -0.5), (0.5, -0.5), (-0.5, 0.5), (0.5, 0.5)] {
            let c = g.find(Vec3::new(x, y, 0.0)).unwrap();
            assert_eq!(c.material, 0, "({x},{y})");
        }
        // Element corners host water.
        assert_eq!(g.find(Vec3::new(-0.05, -0.05, 0.0)).unwrap().material, 2);
        // Outside.
        assert!(g.find(Vec3::new(1.5, 0.0, 0.0)).is_none());
    }

    #[test]
    fn lattice_boundary_includes_walls() {
        let g = lattice_geometry();
        // In water inside element (0,0), heading +x: wall at x=0 (local
        // +pitch/2) comes before anything else.
        let p = Vec3::new(-0.1, -0.9, 0.0);
        let d = g.distance_to_boundary(p, Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 0.1).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn lattice_element_lookup_edges() {
        let lat = Lattice {
            x0: 0.0,
            y0: 0.0,
            pitch_x: 2.0,
            pitch_y: 2.0,
            nx: 3,
            ny: 2,
            universes: vec![0; 6],
        };
        assert_eq!(lat.element(Vec3::new(0.1, 0.1, 0.0)), Some((0, 0)));
        assert_eq!(lat.element(Vec3::new(5.9, 3.9, 0.0)), Some((2, 1)));
        assert_eq!(lat.element(Vec3::new(-0.1, 1.0, 0.0)), None);
        assert_eq!(lat.element(Vec3::new(6.1, 1.0, 0.0)), None);
    }

    #[test]
    fn wall_distance_from_centre() {
        let lat = Lattice {
            x0: 0.0,
            y0: 0.0,
            pitch_x: 2.0,
            pitch_y: 4.0,
            nx: 1,
            ny: 1,
            universes: vec![0],
        };
        let d = lat.wall_distance(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12);
        let diag = Vec3::new(0.6, 0.8, 0.0);
        let d = lat.wall_distance(Vec3::ZERO, diag);
        // x wall at t=1/0.6, y wall at t=2/0.8=2.5 → min is 1.666...
        assert!((d - 1.0 / 0.6).abs() < 1e-12);
    }
}
