//! Minimal 3-vector for positions and flight directions.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 3-vector (cm for positions, unit-norm for directions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction. Panics on the zero vector in debug.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self * (1.0 / n)
    }

    /// An isotropically distributed unit vector from two uniforms.
    ///
    /// `μ = 2ξ₁ − 1` is the polar cosine (the paper's scattering-cosine
    /// formula) and `φ = 2πξ₂` the azimuth.
    #[inline]
    pub fn isotropic(xi1: f64, xi2: f64) -> Vec3 {
        let mu = 2.0 * xi1 - 1.0;
        let phi = 2.0 * std::f64::consts::PI * xi2;
        let s = (1.0 - mu * mu).max(0.0).sqrt();
        Vec3::new(s * phi.cos(), s * phi.sin(), mu)
    }

    /// Rotate this unit vector to a new direction that makes angle
    /// `acos(mu)` with it, with azimuth `phi` about it (standard MC
    /// scattering rotation).
    pub fn rotate_scatter(self, mu: f64, phi: f64) -> Vec3 {
        let (u, v, w) = (self.x, self.y, self.z);
        let sin_t = (1.0 - mu * mu).max(0.0).sqrt();
        let (cp, sp) = (phi.cos(), phi.sin());
        let denom = (1.0 - w * w).sqrt();
        if denom > 1e-10 {
            Vec3::new(
                mu * u + sin_t * (u * w * cp - v * sp) / denom,
                mu * v + sin_t * (v * w * cp + u * sp) / denom,
                mu * w - sin_t * denom * cp,
            )
        } else {
            // Flight nearly along ±z: rotate about x instead.
            let sign = if w > 0.0 { 1.0 } else { -1.0 };
            Vec3::new(sign * sin_t * cp, sin_t * sp, sign * mu)
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn isotropic_is_unit_and_covers_hemispheres() {
        let mut up = 0;
        let mut down = 0;
        let mut rng = mcs_rng::Lcg63::new(7);
        for _ in 0..1000 {
            let d = Vec3::isotropic(rng.next_uniform(), rng.next_uniform());
            assert!((d.norm() - 1.0).abs() < 1e-12);
            if d.z > 0.0 {
                up += 1;
            } else {
                down += 1;
            }
        }
        assert!(up > 350 && down > 350, "up={up} down={down}");
    }

    #[test]
    fn rotate_scatter_preserves_unit_norm_and_angle() {
        let d = Vec3::new(0.267, 0.534, 0.802).normalized();
        for &(mu, phi) in &[(0.5, 1.0), (-0.9, 2.5), (0.99, 0.1), (0.0, 3.0)] {
            let out = d.rotate_scatter(mu, phi);
            assert!((out.norm() - 1.0).abs() < 1e-12);
            assert!((out.dot(d) - mu).abs() < 1e-10, "mu={mu}");
        }
    }

    #[test]
    fn rotate_scatter_handles_polar_flight() {
        let d = Vec3::new(0.0, 0.0, 1.0);
        let out = d.rotate_scatter(0.3, 1.2);
        assert!((out.norm() - 1.0).abs() < 1e-12);
        assert!((out.dot(d) - 0.3).abs() < 1e-10);
        let d = Vec3::new(0.0, 0.0, -1.0);
        let out = d.rotate_scatter(-0.7, 0.4);
        assert!((out.dot(d) + 0.7).abs() < 1e-10);
    }
}
