//! The Hoogenboom–Martin full-core PWR benchmark geometry.
//!
//! From the paper §III: "a pressurized water reactor core with 241
//! identical fuel assemblies (each 21.42 × 21.42 cm). Each assembly
//! consists of a 17 by 17 lattice of fuel pins including 24 control rod
//! guide tubes and an instrumentation tube. A thin cladding composed of
//! natural zirconium surrounds each fuel pin."
//!
//! Three universes (fuel pin, guide tube, water) tile a 17×17 pin lattice;
//! assemblies tile a 19×19 core lattice with 241 positions occupied (the
//! 241 grid positions closest to the core axis); everything sits in a
//! water-filled box with vacuum boundaries.

use crate::model::{Cell, Fill, Geometry, Lattice, Universe};
use crate::surface::Surface;
use crate::vec3::Vec3;

/// Material index for UO₂ fuel.
pub const MAT_FUEL: u32 = 0;
/// Material index for zirconium cladding.
pub const MAT_CLAD: u32 = 1;
/// Material index for borated water.
pub const MAT_WATER: u32 = 2;

/// Geometry parameters (all cm). Defaults follow the benchmark spec.
#[derive(Debug, Clone)]
pub struct HmConfig {
    /// Fuel pellet radius.
    pub fuel_radius: f64,
    /// Clad outer radius.
    pub clad_radius: f64,
    /// Guide-tube inner radius.
    pub gt_inner_radius: f64,
    /// Guide-tube outer radius.
    pub gt_outer_radius: f64,
    /// Pin lattice pitch.
    pub pin_pitch: f64,
    /// Assembly pitch (= 17 × pin pitch).
    pub assembly_pitch: f64,
    /// Assemblies across the core lattice (odd).
    pub core_lattice_n: usize,
    /// Number of occupied assembly positions.
    pub n_assemblies: usize,
    /// Axial half-height of the active core.
    pub half_height: f64,
}

impl Default for HmConfig {
    fn default() -> Self {
        Self {
            fuel_radius: 0.4095,
            clad_radius: 0.4750,
            gt_inner_radius: 0.5610,
            gt_outer_radius: 0.6020,
            pin_pitch: 1.26,
            assembly_pitch: 21.42,
            core_lattice_n: 19,
            n_assemblies: 241,
            half_height: 183.0,
        }
    }
}

impl HmConfig {
    /// A reduced model (single assembly, short axial extent) for tests.
    pub fn single_assembly() -> Self {
        Self {
            core_lattice_n: 1,
            n_assemblies: 1,
            half_height: 20.0,
            ..Self::default()
        }
    }
}

/// The 25 special positions (24 guide tubes + 1 central instrumentation
/// tube) in a Westinghouse-style 17×17 assembly, as `(row, col)`.
pub const GUIDE_TUBE_POSITIONS: [(usize, usize); 25] = [
    (2, 5),
    (2, 8),
    (2, 11),
    (3, 3),
    (3, 13),
    (5, 2),
    (5, 5),
    (5, 8),
    (5, 11),
    (5, 14),
    (8, 2),
    (8, 5),
    (8, 8), // instrumentation tube
    (8, 11),
    (8, 14),
    (11, 2),
    (11, 5),
    (11, 8),
    (11, 11),
    (11, 14),
    (13, 3),
    (13, 13),
    (14, 5),
    (14, 8),
    (14, 11),
];

/// Which positions of an `n × n` core lattice hold assemblies: the
/// `n_assemblies` grid positions nearest the axis (ties broken by index,
/// deterministically).
pub fn core_map(n: usize, n_assemblies: usize) -> Vec<bool> {
    let c = (n as f64 - 1.0) / 2.0;
    let mut order: Vec<(f64, usize)> = (0..n * n)
        .map(|idx| {
            let i = (idx % n) as f64;
            let j = (idx / n) as f64;
            let r2 = (i - c) * (i - c) + (j - c) * (j - c);
            (r2, idx)
        })
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut map = vec![false; n * n];
    for &(_, idx) in order.iter().take(n_assemblies.min(n * n)) {
        map[idx] = true;
    }
    map
}

/// Build the full-core geometry. Material indices are
/// [`MAT_FUEL`], [`MAT_CLAD`], [`MAT_WATER`].
pub fn hm_core(cfg: &HmConfig) -> Geometry {
    let mut g = Geometry::default();

    // --- universes: reserve root as universe 0 ---
    g.push_universe(Universe::default());

    // Fuel pin universe: fuel | clad | water, unbounded (lattice clips it).
    let fuel_cyl = g.push_surface(Surface::ZCylinder {
        x0: 0.0,
        y0: 0.0,
        r: cfg.fuel_radius,
    });
    let clad_cyl = g.push_surface(Surface::ZCylinder {
        x0: 0.0,
        y0: 0.0,
        r: cfg.clad_radius,
    });
    let c_fuel = g.push_cell(Cell {
        name: "pin:fuel".into(),
        region: vec![(fuel_cyl, -1)],
        fill: Fill::Material(MAT_FUEL),
    });
    let c_clad = g.push_cell(Cell {
        name: "pin:clad".into(),
        region: vec![(fuel_cyl, 1), (clad_cyl, -1)],
        fill: Fill::Material(MAT_CLAD),
    });
    let c_pin_water = g.push_cell(Cell {
        name: "pin:water".into(),
        region: vec![(clad_cyl, 1)],
        fill: Fill::Material(MAT_WATER),
    });
    let u_pin = g.push_universe(Universe {
        cells: vec![c_fuel, c_clad, c_pin_water],
    });

    // Guide-tube universe: water | clad tube | water.
    let gt_in = g.push_surface(Surface::ZCylinder {
        x0: 0.0,
        y0: 0.0,
        r: cfg.gt_inner_radius,
    });
    let gt_out = g.push_surface(Surface::ZCylinder {
        x0: 0.0,
        y0: 0.0,
        r: cfg.gt_outer_radius,
    });
    let c_gt_bore = g.push_cell(Cell {
        name: "gt:bore".into(),
        region: vec![(gt_in, -1)],
        fill: Fill::Material(MAT_WATER),
    });
    let c_gt_wall = g.push_cell(Cell {
        name: "gt:wall".into(),
        region: vec![(gt_in, 1), (gt_out, -1)],
        fill: Fill::Material(MAT_CLAD),
    });
    let c_gt_water = g.push_cell(Cell {
        name: "gt:water".into(),
        region: vec![(gt_out, 1)],
        fill: Fill::Material(MAT_WATER),
    });
    let u_gt = g.push_universe(Universe {
        cells: vec![c_gt_bore, c_gt_wall, c_gt_water],
    });

    // All-water universe for unoccupied core positions.
    let c_all_water = g.push_cell(Cell {
        name: "water:all".into(),
        region: Vec::new(),
        fill: Fill::Material(MAT_WATER),
    });
    let u_water = g.push_universe(Universe {
        cells: vec![c_all_water],
    });

    // Assembly universe: 17×17 pin lattice.
    let half_asm = 0.5 * cfg.assembly_pitch;
    let mut pin_unis = vec![u_pin; 17 * 17];
    for &(r, c) in &GUIDE_TUBE_POSITIONS {
        pin_unis[r * 17 + c] = u_gt;
    }
    let pin_lat = g.push_lattice(Lattice {
        x0: -half_asm,
        y0: -half_asm,
        pitch_x: cfg.pin_pitch,
        pitch_y: cfg.pin_pitch,
        nx: 17,
        ny: 17,
        universes: pin_unis,
    });
    let c_asm = g.push_cell(Cell {
        name: "assembly".into(),
        region: Vec::new(),
        fill: Fill::Lattice(pin_lat),
    });
    let u_asm = g.push_universe(Universe { cells: vec![c_asm] });

    // Core lattice of assemblies.
    let n = cfg.core_lattice_n;
    let half_core = 0.5 * n as f64 * cfg.assembly_pitch;
    let map = core_map(n, cfg.n_assemblies);
    let core_unis: Vec<u32> = map
        .iter()
        .map(|&occ| if occ { u_asm } else { u_water })
        .collect();
    let core_lat = g.push_lattice(Lattice {
        x0: -half_core,
        y0: -half_core,
        pitch_x: cfg.assembly_pitch,
        pitch_y: cfg.assembly_pitch,
        nx: n,
        ny: n,
        universes: core_unis,
    });

    // Root cell: box with vacuum boundary, filled by the core lattice.
    let x_lo = g.push_surface(Surface::XPlane { x0: -half_core });
    let x_hi = g.push_surface(Surface::XPlane { x0: half_core });
    let y_lo = g.push_surface(Surface::YPlane { y0: -half_core });
    let y_hi = g.push_surface(Surface::YPlane { y0: half_core });
    let z_lo = g.push_surface(Surface::ZPlane {
        z0: -cfg.half_height,
    });
    let z_hi = g.push_surface(Surface::ZPlane {
        z0: cfg.half_height,
    });
    let c_root = g.push_cell(Cell {
        name: "root".into(),
        region: vec![
            (x_lo, 1),
            (x_hi, -1),
            (y_lo, 1),
            (y_hi, -1),
            (z_lo, 1),
            (z_hi, -1),
        ],
        fill: Fill::Lattice(core_lat),
    });
    g.universes[0].cells.push(c_root);
    g.bounds = (
        Vec3::new(-half_core, -half_core, -cfg.half_height),
        Vec3::new(half_core, half_core, cfg.half_height),
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_map_has_exact_count_and_symmetry() {
        let map = core_map(19, 241);
        assert_eq!(map.iter().filter(|&&b| b).count(), 241);
        // Centre occupied, corners empty.
        assert!(map[9 * 19 + 9]);
        assert!(!map[0]);
        assert!(!map[19 * 19 - 1]);
        // Four-fold symmetry.
        for i in 0..19 {
            for j in 0..19 {
                assert_eq!(map[j * 19 + i], map[j * 19 + (18 - i)]);
                assert_eq!(map[j * 19 + i], map[(18 - j) * 19 + i]);
            }
        }
    }

    #[test]
    fn full_core_centre_pin_is_guide_tube_water() {
        let g = hm_core(&HmConfig::default());
        // Exact core centre is the central assembly's instrumentation
        // tube bore: water.
        let c = g.find(Vec3::ZERO).unwrap();
        assert_eq!(c.material, MAT_WATER);
    }

    #[test]
    fn full_core_fuel_pin_resolves() {
        let g = hm_core(&HmConfig::default());
        let cfg = HmConfig::default();
        // Centre of pin (0,0) of the central assembly: offset from
        // assembly centre by (-8, -8) pitches.
        let x = -8.0 * cfg.pin_pitch;
        let p = Vec3::new(x, x, 0.0);
        assert_eq!(g.find(p).unwrap().material, MAT_FUEL);
        // Slightly off-centre into clad.
        let p = Vec3::new(x + cfg.fuel_radius + 0.01, x, 0.0);
        assert_eq!(g.find(p).unwrap().material, MAT_CLAD);
        // Pin-cell corner is water.
        let p = Vec3::new(
            x + 0.5 * cfg.pin_pitch - 1e-4,
            x + 0.5 * cfg.pin_pitch - 1e-4,
            0.0,
        );
        assert_eq!(g.find(p).unwrap().material, MAT_WATER);
    }

    #[test]
    fn corner_assembly_position_is_water() {
        let g = hm_core(&HmConfig::default());
        let cfg = HmConfig::default();
        let half = 0.5 * 19.0 * cfg.assembly_pitch;
        // Middle of the corner lattice position.
        let p = Vec3::new(
            half - 0.5 * cfg.assembly_pitch,
            half - 0.5 * cfg.assembly_pitch,
            0.0,
        );
        assert_eq!(g.find(p).unwrap().material, MAT_WATER);
    }

    #[test]
    fn outside_root_box_leaks() {
        let g = hm_core(&HmConfig::default());
        assert!(g.find(Vec3::new(0.0, 0.0, 200.0)).is_none());
        assert!(g.find(Vec3::new(250.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn ray_march_through_core_terminates() {
        let g = hm_core(&HmConfig::default());
        let mut p = Vec3::new(-150.0, 3.0, 1.0);
        let dir = Vec3::new(1.0, 0.02, 0.001).normalized();
        let mut steps = 0usize;
        let mut total = 0.0;
        while g.find(p).is_some() {
            let d = g.distance_to_boundary(p, dir);
            assert!(d.is_finite(), "infinite step inside geometry at {p:?}");
            assert!(d >= 0.0);
            p += dir * (d + crate::BOUNDARY_EPS);
            total += d;
            steps += 1;
            assert!(steps < 200_000, "ray failed to exit");
        }
        // Crossed at least the core diameter.
        assert!(total > 300.0, "total path {total}");
        assert!(
            steps > 100,
            "too few crossings ({steps}) for a core traverse"
        );
    }

    #[test]
    fn single_assembly_config_builds() {
        let g = hm_core(&HmConfig::single_assembly());
        assert_eq!(g.find(Vec3::ZERO).unwrap().material, MAT_WATER); // IT bore
        let cfg = HmConfig::single_assembly();
        let x = -8.0 * cfg.pin_pitch;
        assert_eq!(g.find(Vec3::new(x, x, 0.0)).unwrap().material, MAT_FUEL);
    }

    #[test]
    fn stochastic_volumes_match_the_analytic_pin_areas() {
        // Single assembly: 264 fuel pins of radius 0.4095 in a
        // 21.42 cm square; the fuel volume fraction is exactly
        // 264·π·r² / 21.42².
        let cfg = HmConfig::single_assembly();
        let g = hm_core(&cfg);
        let vols = g.estimate_volumes(400_000, 7);
        let (lo, hi) = g.bounds;
        let total = (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
        let fuel_frac = vols[MAT_FUEL as usize] / total;
        let analytic = 264.0 * std::f64::consts::PI * cfg.fuel_radius * cfg.fuel_radius
            / (cfg.assembly_pitch * cfg.assembly_pitch);
        assert!(
            (fuel_frac - analytic).abs() < 0.01,
            "fuel fraction {fuel_frac:.4} vs analytic {analytic:.4}"
        );
        // Clad fraction: 264 pin annuli + 25 tube walls.
        let pin_annulus = std::f64::consts::PI
            * (cfg.clad_radius * cfg.clad_radius - cfg.fuel_radius * cfg.fuel_radius);
        let tube_wall = std::f64::consts::PI
            * (cfg.gt_outer_radius * cfg.gt_outer_radius
                - cfg.gt_inner_radius * cfg.gt_inner_radius);
        let analytic_clad =
            (264.0 * pin_annulus + 25.0 * tube_wall) / (cfg.assembly_pitch * cfg.assembly_pitch);
        let clad_frac = vols[MAT_CLAD as usize] / total;
        assert!(
            (clad_frac - analytic_clad).abs() < 0.005,
            "clad fraction {clad_frac:.4} vs analytic {analytic_clad:.4}"
        );
    }

    #[test]
    fn guide_tube_count_is_25() {
        assert_eq!(GUIDE_TUBE_POSITIONS.len(), 25);
        // All distinct.
        let mut v: Vec<_> = GUIDE_TUBE_POSITIONS.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 25);
    }
}
