//! Direct unit tests for the `mcs-check` harness itself: the invariant
//! scorer's band arithmetic, the per-column golden tolerance policy, and
//! the report plumbing CI's exit code hangs off. The validation layer is
//! load-bearing (every other crate's claims flow through it), so it gets
//! its own regression suite rather than trusting it by construction.

use mcs_bench::harness::Artifact;
use mcs_check::{check, compare, policy, render_csv, Band, CheckReport, ColumnPolicy};

// ---------------------------------------------------------------- bands

#[test]
fn bands_admit_their_boundaries() {
    let r = Band::Range { lo: 1.0, hi: 2.0 };
    assert!(r.admits(1.0) && r.admits(2.0) && r.admits(1.5));
    assert!(!r.admits(0.999_999) && !r.admits(2.000_001));
    assert!(Band::AtLeast(3.0).admits(3.0) && !Band::AtLeast(3.0).admits(2.999));
    assert!(Band::AtMost(3.0).admits(3.0) && !Band::AtMost(3.0).admits(3.001));
    assert!(Band::Holds.admits(1.0) && !Band::Holds.admits(0.0));
}

#[test]
fn every_band_rejects_nan() {
    // A NaN measurement must never pass a gate: the comparisons all come
    // out false, so `admits` fails for every band kind — including the
    // boolean one, where NaN != 1.0.
    for band in [
        Band::Range {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        },
        Band::AtLeast(f64::NEG_INFINITY),
        Band::AtMost(f64::INFINITY),
        Band::Holds,
    ] {
        assert!(!band.admits(f64::NAN), "{band} admitted NaN");
    }
}

#[test]
fn scorer_evaluates_the_band_and_nan_serializes_as_null() {
    let good = check("X.test", "unit", "a passing value", 1.5, Band::AtLeast(1.0));
    assert!(good.passed);
    let bad = check(
        "X.test",
        "unit",
        "a non-finite value",
        f64::NAN,
        Band::AtLeast(0.0),
    );
    assert!(!bad.passed);
    // The hand-rolled JSON writer must not emit bare `NaN` (invalid JSON).
    let report = CheckReport {
        scale: 0.1,
        threads: 1,
        invariants: vec![bad],
        counters: vec![],
        golden: vec![],
    };
    let json = report.to_json();
    assert!(json.contains("\"value\": null"), "{json}");
    assert!(!json.contains("NaN"), "{json}");
}

#[test]
fn perturbed_report_fails_and_says_so() {
    // The CI contract: any failed invariant flips the report's top-level
    // `passed` to false and n_failed goes non-zero — that is exactly what
    // the mcs-check binary turns into a non-zero exit code.
    let mut report = CheckReport {
        scale: 0.1,
        threads: 4,
        invariants: vec![check(
            "T3.headline",
            "table3",
            "CPU + 2 MICs balanced over CPU only",
            4.2,
            Band::Range { lo: 3.0, hi: 5.5 },
        )],
        counters: vec![],
        golden: vec![],
    };
    assert!(report.passed());
    assert_eq!(report.n_failed(), 0);
    assert!(report.to_json().contains("\"passed\": true"));

    report.invariants[0].value = 1.0; // perturb: balancing gain wiped out
    report.invariants[0].passed = report.invariants[0].band.admits(1.0);
    assert!(!report.passed());
    assert_eq!(report.n_failed(), 1);
    let json = report.to_json();
    assert!(json.contains("\"passed\": false"), "{json}");
    assert!(json.contains("\"n_failed\": 1"), "{json}");
}

// --------------------------------------------------- tolerance policies

#[test]
fn policy_distinguishes_exact_and_rel_columns() {
    // Key columns are exact; data columns carry the 2% band.
    assert_eq!(
        policy("table3_symmetric_balance", "hardware", "CPU only"),
        ColumnPolicy::Exact
    );
    assert_eq!(
        policy("table3_symmetric_balance", "degraded_rate", "CPU + MIC"),
        ColumnPolicy::Rel(0.02)
    );
    // Measured-throughput columns are sign-checked only (machine-speed
    // dependent), while modeled rows of the same artifact stay banded.
    assert_eq!(
        policy("fig2_lookup_rates", "mic_measured_per_s", "1000"),
        ColumnPolicy::Positive
    );
    assert_eq!(
        policy("table1_distance_sampling", "cpu_s", "modeled opt2"),
        ColumnPolicy::Rel(0.02)
    );
    // Unknown artifacts get the conservative default.
    assert_eq!(
        policy("nonexistent", "anything", ""),
        ColumnPolicy::Rel(0.02)
    );
}

fn table3_artifact() -> Artifact {
    Artifact {
        name: "table3_symmetric_balance",
        columns: vec![
            "hardware",
            "original_rate",
            "balanced_rate",
            "ideal_rate",
            "degraded_rate",
        ],
        rows: vec![
            vec![
                "CPU + MIC".into(),
                "27334".into(),
                "34341".into(),
                "34342".into(),
                "13667".into(),
            ],
            vec![
                "CPU + 2 MICs".into(),
                "41001".into(),
                "55016".into(),
                "55016".into(),
                "34341".into(),
            ],
        ],
    }
}

#[test]
fn rel_column_tolerates_small_drift_but_not_large() {
    let golden = render_csv(&table3_artifact());
    let mut fresh = table3_artifact();
    fresh.rows[0][4] = "13800".into(); // +0.97% < 2%
    assert!(compare(&fresh, &golden).passed);
    fresh.rows[0][4] = "15000".into(); // +9.8% > 2%
    let out = compare(&fresh, &golden);
    assert!(!out.passed);
    assert!(out.detail.contains("degraded_rate"), "{}", out.detail);
}

#[test]
fn exact_column_rejects_even_tiny_drift() {
    let golden = render_csv(&table3_artifact());
    let mut fresh = table3_artifact();
    fresh.rows[0][0] = "CPU + MIC ".into(); // trailing space
    assert!(!compare(&fresh, &golden).passed);
}

#[test]
fn nan_cells_never_pass_a_numeric_policy() {
    // A NaN in a Rel column is a numeric/non-numeric flip vs the golden
    // number — hard failure, not a parsed comparison.
    let golden = render_csv(&table3_artifact());
    let mut fresh = table3_artifact();
    fresh.rows[1][2] = "NaN".into();
    let out = compare(&fresh, &golden);
    assert!(!out.passed, "{}", out.detail);

    // And a Positive column rejects NaN, inf, zero, and negatives alike:
    // only a finite positive number proves the measurement ran.
    let base = Artifact {
        name: "fig2_lookup_rates",
        columns: vec!["bank_size", "mic_measured_per_s"],
        rows: vec![vec!["1000".into(), "123.0".into()]],
    };
    let golden = render_csv(&base);
    for bad in ["NaN", "inf", "0", "-5.0", "n/a"] {
        let mut fresh = base.clone();
        fresh.rows[0][1] = bad.into();
        assert!(
            !compare(&fresh, &golden).passed,
            "Positive policy admitted {bad:?}"
        );
    }
    // Any other positive value passes — the column is sign-checked only.
    let mut fresh = base.clone();
    fresh.rows[0][1] = "9999.0".into();
    assert!(compare(&fresh, &golden).passed);
}

#[test]
fn golden_header_and_shape_changes_fail_loudly() {
    let fresh = table3_artifact();
    // Header drift (e.g. this PR adding degraded_rate) must be caught —
    // that is what forces a deliberate re-bless.
    let old_header = "hardware,original_rate,balanced_rate,ideal_rate\n";
    let out = compare(&fresh, old_header);
    assert!(!out.passed);
    assert!(out.detail.contains("header changed"), "{}", out.detail);
    // Row-count drift too.
    let mut truncated = render_csv(&fresh);
    truncated = truncated.lines().take(2).collect::<Vec<_>>().join("\n") + "\n";
    let out = compare(&fresh, &truncated);
    assert!(!out.passed, "{}", out.detail);
}
