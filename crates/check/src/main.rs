//! The check runner: `cargo run --release -p mcs-check [-- --bless] [-- -v]`.
//!
//! Environment:
//! * `MCS_SCALE`       — workload scale (default [`mcs_check::DEFAULT_SCALE`]);
//! * `MCS_RESULTS_DIR` — where `check_report.json` and `check/*.csv` go
//!   (default `results/`);
//! * `MCS_GOLDEN_DIR`  — blessed goldens (default `results/golden/`);
//! * `MCS_BLESS`       — same as `--bless`: regenerate the goldens.
//!
//! Exit status is non-zero if any invariant or golden comparison fails.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use mcs_bench::harness::{
    device_catalog, event_queueing, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, futurework,
    geometry, grid_backend, serve_load, table1, table2, table3, Artifact,
};
use mcs_check::invariants as inv;
use mcs_check::{golden, CheckReport, GoldenOutcome};

fn env_path(key: &str, default: &str) -> PathBuf {
    PathBuf::from(std::env::var(key).unwrap_or_else(|_| default.to_string()))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bless = args.iter().any(|a| a == "--bless") || std::env::var("MCS_BLESS").is_ok();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(mcs_check::DEFAULT_SCALE);
    let results_dir = env_path("MCS_RESULTS_DIR", "results");
    let golden_dir = env_path("MCS_GOLDEN_DIR", "results/golden");

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut report = CheckReport {
        scale,
        threads,
        ..Default::default()
    };
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut profile_json: Option<String> = None;

    println!("mcs-check: scale {scale}, {threads} threads, bless: {bless}");
    let t_all = Instant::now();

    // Every harness, in figure/table order. Each contributes its typed
    // result to the invariant set and its CSV to the golden comparison.
    let mut step = |name: &str, f: &mut dyn FnMut(&mut CheckReport, &mut Vec<Artifact>)| {
        let t0 = Instant::now();
        f(&mut report, &mut artifacts);
        println!("  [{name:>10}] done in {:.2}s", t0.elapsed().as_secs_f64());
    };

    step("fig1", &mut |rep, arts| {
        let r = fig1::run(scale, verbose);
        rep.invariants.extend(inv::check_fig1(&r));
        arts.push(r.artifact);
    });
    step("fig2", &mut |rep, arts| {
        let r = fig2::run(scale, verbose);
        rep.invariants.extend(inv::check_fig2(&r, threads));
        arts.push(r.artifact);
    });
    step("fig3", &mut |rep, arts| {
        let r = fig3::run(scale, verbose);
        rep.invariants.extend(inv::check_fig3(&r));
        arts.push(r.artifact);
    });
    step("fig4", &mut |rep, arts| {
        let r = fig4::run(scale, verbose);
        rep.invariants.extend(inv::check_fig4(&r));
        profile_json = Some(r.host_profile.to_json());
        arts.push(r.artifact);
    });
    step("fig5", &mut |rep, arts| {
        let r = fig5::run(scale, verbose);
        rep.invariants.extend(inv::check_fig5(&r));
        arts.push(r.artifact);
    });
    step("fig6", &mut |rep, arts| {
        let r = fig6::run(scale, verbose);
        rep.invariants.extend(inv::check_fig6(&r));
        arts.push(r.artifact);
    });
    step("fig7", &mut |rep, arts| {
        let r = fig7::run(scale, verbose);
        rep.invariants.extend(inv::check_fig7(&r));
        arts.push(r.artifact);
    });
    step("fig8", &mut |rep, arts| {
        let r = fig8::run(scale, verbose);
        rep.invariants.extend(inv::check_fig8(&r, scale));
        arts.push(r.artifact);
    });
    step("table1", &mut |rep, arts| {
        let r = table1::run(scale, verbose);
        rep.invariants.extend(inv::check_table1(&r, scale));
        arts.push(r.artifact);
    });
    step("table2", &mut |rep, arts| {
        let r = table2::run(scale, verbose);
        rep.invariants.extend(inv::check_table2(&r));
        arts.push(r.artifact);
    });
    step("table3", &mut |rep, arts| {
        let r = table3::run(scale, verbose);
        rep.invariants.extend(inv::check_table3(&r));
        arts.push(r.artifact);
    });
    step("futurework", &mut |rep, arts| {
        let r = futurework::run(scale, verbose);
        rep.invariants.extend(inv::check_futurework(&r));
        arts.extend(r.artifacts);
    });
    step("eigenvalue", &mut |rep, _| {
        rep.invariants.extend(inv::check_event_history_keff(scale));
    });
    step("gridback", &mut |rep, arts| {
        let r = grid_backend::run(scale, verbose);
        rep.invariants.extend(inv::check_grid_backend(&r));
        arts.push(r.artifact);
    });
    step("eventqueue", &mut |rep, arts| {
        let r = event_queueing::run(scale, verbose);
        rep.invariants.extend(inv::check_event_queueing(&r));
        rep.counters = r.counters.clone();
        arts.push(r.artifact);
    });
    step("geometry", &mut |rep, arts| {
        let r = geometry::run(scale, verbose);
        rep.invariants.extend(inv::check_geometry(&r));
        // geom.* traversal counters ride alongside the xs.* set.
        rep.counters.extend(r.counters.clone());
        arts.push(r.artifact);
    });
    step("serve", &mut |rep, arts| {
        let r = serve_load::run(scale, verbose);
        rep.invariants.extend(inv::check_serve(&r));
        arts.push(r.artifact);
    });
    step("device", &mut |rep, arts| {
        let r = device_catalog::run(scale, verbose);
        rep.invariants.extend(inv::check_device(&r));
        arts.push(r.artifact);
    });

    // Fresh CSVs go under results/check/ so a CI artifact upload always
    // carries what this run actually produced (never clobbering the
    // committed full-scale results/*.csv).
    let check_dir = results_dir.join("check");
    fs::create_dir_all(&check_dir).expect("create results/check");
    for a in &artifacts {
        fs::write(
            check_dir.join(format!("{}.csv", a.name)),
            golden::render_csv(a),
        )
        .expect("write check csv");
    }
    if let Some(j) = &profile_json {
        fs::write(check_dir.join("fig4_host_profile.json"), j).expect("write profile json");
    }

    if bless {
        fs::create_dir_all(&golden_dir).expect("create golden dir");
        for a in &artifacts {
            fs::write(
                golden_dir.join(format!("{}.csv", a.name)),
                golden::render_csv(a),
            )
            .expect("write golden csv");
        }
        fs::write(golden_dir.join("MANIFEST"), format!("scale={scale}\n"))
            .expect("write golden manifest");
        println!(
            "blessed {} goldens at scale {scale} into {}",
            artifacts.len(),
            golden_dir.display()
        );
    } else {
        let blessed_scale = fs::read_to_string(golden_dir.join("MANIFEST"))
            .ok()
            .and_then(|m| {
                m.lines()
                    .find_map(|l| l.strip_prefix("scale=").and_then(|v| v.parse::<f64>().ok()))
            });
        match blessed_scale {
            Some(s) if (s - scale).abs() < 1e-12 => {
                for a in &artifacts {
                    let path = golden_dir.join(format!("{}.csv", a.name));
                    let out = match fs::read_to_string(&path) {
                        Ok(text) => golden::compare(a, &text),
                        Err(_) => GoldenOutcome {
                            artifact: a.name.to_string(),
                            passed: false,
                            detail: format!(
                                "missing golden {} — run `cargo run -p mcs-check -- --bless`",
                                path.display()
                            ),
                        },
                    };
                    report.golden.push(out);
                }
            }
            Some(s) => {
                // Goldens are scale-specific; at any other scale only the
                // invariants apply.
                for a in &artifacts {
                    report.golden.push(GoldenOutcome {
                        artifact: a.name.to_string(),
                        passed: true,
                        detail: format!(
                            "skipped (goldens blessed at scale {s}, running at {scale})"
                        ),
                    });
                }
            }
            None => {
                for a in &artifacts {
                    report.golden.push(GoldenOutcome {
                        artifact: a.name.to_string(),
                        passed: false,
                        detail: "no goldens found — run `cargo run -p mcs-check -- --bless`".into(),
                    });
                }
            }
        }
    }

    let report_path = results_dir.join("check_report.json");
    fs::create_dir_all(&results_dir).expect("create results dir");
    fs::write(&report_path, report.to_json()).expect("write check_report.json");

    // Human-readable summary.
    println!(
        "\n== mcs-check: {} invariants, {} golden artifacts, {:.1}s ==",
        report.invariants.len(),
        report.golden.len(),
        t_all.elapsed().as_secs_f64()
    );
    for c in &report.invariants {
        println!(
            "  {} {:<28} value {:<12.6} band {}",
            if c.passed {
                "PASS"
            } else if c.warn {
                "WARN"
            } else {
                "FAIL"
            },
            c.id,
            c.value,
            c.band
        );
        if !c.passed {
            println!("       {}: {}", c.harness, c.description);
        }
    }
    if report.n_warned() > 0 {
        println!(
            "mcs-check: {} warn-band invariant(s) out of band (reported, not gating)",
            report.n_warned()
        );
    }
    for g in &report.golden {
        println!(
            "  {} golden {:<28} {}",
            if g.passed { "PASS" } else { "FAIL" },
            g.artifact,
            g.detail
        );
    }
    println!("report: {}", report_path.display());

    if report.passed() {
        println!("mcs-check: all checks passed");
    } else {
        println!("mcs-check: {} check(s) FAILED", report.n_failed());
        std::process::exit(1);
    }
}
