//! The paper's evaluation as executable invariants.
//!
//! Each `check_*` function inspects one harness's typed result and
//! returns scored [`CheckOutcome`]s. The functions never assert or
//! panic on a violation — scoring is the runner's job (and the tests'
//! way of proving a deliberate perturbation flips the exit code).
//!
//! Invariant IDs are stable (`F2.mic_over_e5`, `T3.headline`, ...);
//! EXPERIMENTS.md's "continuously verified" column cites them.
//!
//! MEASURED invariants that only hold once the workload amortizes its
//! fixed overheads (Table I's 1.9x, Fig. 8's host vectorization win)
//! are gated on `scale >= 1.0`; at the reduced CI scale the MODELED
//! invariants carry those claims.

use crate::report::{check, check_warn, Band, CheckOutcome};
use mcs_bench::harness::{
    device_catalog, event_queueing, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, futurework,
    geometry, grid_backend, serve_load, table1, table2, table3,
};
use mcs_core::engine::{self, Algorithm, RunPlan, Threaded};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};

fn holds(p: bool) -> f64 {
    if p {
        1.0
    } else {
        0.0
    }
}

/// Fig. 1 — U-238 total cross section: 1/v rise and resonance forest.
pub fn check_fig1(r: &fig1::Fig1Result) -> Vec<CheckOutcome> {
    vec![
        check(
            "F1.peak_to_smooth",
            "fig1",
            "resonance forest: tallest peak / smooth fast range > 20x",
            r.peak_to_smooth,
            Band::AtLeast(20.0),
        ),
        check(
            "F1.one_over_v",
            "fig1",
            "1/v rise: sigma at the cold end / sigma at 1 MeV",
            r.sigma_cold / r.sigma_fast,
            Band::AtLeast(1.5),
        ),
    ]
}

/// Fig. 2 — banked/MIC vs history/E5 lookup rates.
///
/// `host_threads` is the runner's core count: on a single-core host the
/// measured banked/history kernel ratio is dominated by scheduling noise
/// (the banked kernel's only structural advantage is SIMD lane
/// occupancy, which a 1-thread timeshared runner cannot resolve), so
/// `F2.banked_ge_history_host` is scored on the warn band there —
/// reported, never gating. The same host condition drives the trend
/// gate's rate metrics ([`mcs_bench::trend::rate_gate_warn_only`]), so
/// check and trend always agree on which hosts can gate on timing.
/// See EXPERIMENTS.md ("Fig. 2" notes).
pub fn check_fig2(r: &fig2::Fig2Result, host_threads: usize) -> Vec<CheckOutcome> {
    let big = r.largest();
    let worst_checksum = r
        .rows
        .iter()
        .map(|row| row.checksum_rel_err)
        .fold(0.0, f64::max);
    let host_ratio = if mcs_bench::trend::rate_gate_warn_only(host_threads) {
        check_warn
    } else {
        check
    };
    vec![
        check(
            "F2.mic_over_e5",
            "fig2",
            "banked on MIC over history on E5-2687W at the largest bank (paper: ~10x)",
            big.mic_over_e5(),
            Band::Range { lo: 8.0, hi: 12.0 },
        ),
        host_ratio(
            "F2.banked_ge_history_host",
            "fig2",
            "banked kernel at least matches the history kernel on this host",
            big.banked_host / big.history_host,
            Band::AtLeast(0.95),
        ),
        check(
            "F2.checksum",
            "fig2",
            "scalar and SIMD lookup kernels agree (worst relative error)",
            worst_checksum,
            Band::AtMost(1e-10),
        ),
    ]
}

/// Fig. 3 — offload cost ratios vs particle count.
pub fn check_fig3(r: &fig3::Fig3Result) -> Vec<CheckOutcome> {
    let first = &r.rows[0];
    let last = r.rows.last().unwrap();
    vec![
        check(
            "F3.transfer_falls",
            "fig3",
            "PCIe transfer / generation time falls with particle count",
            last.transfer_over_gen / first.transfer_over_gen,
            Band::AtMost(0.999),
        ),
        check(
            "F3.host_rises",
            "fig3",
            "host lookup / generation time rises with particle count",
            last.host_xs_over_gen / first.host_xs_over_gen,
            Band::AtLeast(1.001),
        ),
        check(
            "F3.crossover",
            "fig3",
            "MIC lookup undercuts host lookup by 1e5 particles (paper: ~1e4)",
            r.crossover.map(|n| n as f64).unwrap_or(f64::INFINITY),
            Band::AtMost(1e5),
        ),
    ]
}

/// Fig. 4 — per-routine profile comparison.
pub fn check_fig4(r: &fig4::Fig4Result) -> Vec<CheckOutcome> {
    let bottleneck_tops = r.modeled[0].1 >= r.modeled[1].1 && r.modeled[0].1 >= r.modeled[2].1;
    vec![
        check(
            "F4.bottleneck_is_xs",
            "fig4",
            "calculate_xs tops the modeled CPU profile",
            holds(bottleneck_tops),
            Band::Holds,
        ),
        check(
            "F4.mic_wins_bottleneck",
            "fig4",
            "the MIC beats the CPU on the bottleneck routine",
            r.modeled[0].1 / r.modeled[0].2,
            Band::AtLeast(1.0),
        ),
        check(
            "F4.total_speedup",
            "fig4",
            "total MIC/CPU speedup (paper: 96 min / 65 min = 1.48x)",
            r.speedup(),
            Band::Range { lo: 1.2, hi: 2.2 },
        ),
    ]
}

/// Fig. 5 — calculation rates and the alpha ratio.
pub fn check_fig5(r: &fig5::Fig5Result) -> Vec<CheckOutcome> {
    let (small, large) = r.cpu_rate_extremes();
    vec![
        check(
            "F5.mean_alpha",
            "fig5",
            "large-batch alpha = CPU rate / MIC rate (paper: 0.61-0.67)",
            r.mean_alpha,
            Band::Range { lo: 0.5, hi: 0.8 },
        ),
        check(
            "F5.small_batch_collapse",
            "fig5",
            "rates collapse at small batches: smallest/largest CPU rate",
            small / large,
            Band::AtMost(0.5),
        ),
        check(
            "F5.k_near_critical",
            "fig5",
            "measured eigenvalue run is near criticality (paper: k = 1.005)",
            r.k_mean,
            Band::Range { lo: 0.9, hi: 1.1 },
        ),
    ]
}

/// Fig. 6 — strong scaling on Stampede.
pub fn check_fig6(r: &fig6::Fig6Result) -> Vec<CheckOutcome> {
    let one_mic = r.curve("CPU + 1 MIC");
    let cpu_only = r.curve("CPU only");
    vec![
        check(
            "F6.eff_128",
            "fig6",
            "CPU + 1 MIC efficiency at 128 nodes (paper: ~95%)",
            one_mic.at(128).map(|p| p.efficiency).unwrap_or(0.0),
            Band::AtLeast(0.93),
        ),
        check(
            "F6.tail_1024",
            "fig6",
            "CPU + 1 MIC efficiency sags by 1024 nodes (the Fig. 6 tail)",
            one_mic.at(1024).map(|p| p.efficiency).unwrap_or(1.0),
            Band::AtMost(0.85),
        ),
        check(
            "F6.cpu_only_flat",
            "fig6",
            "CPU-only curve stays flat out to 1024 nodes",
            cpu_only.at(1024).map(|p| p.efficiency).unwrap_or(0.0),
            Band::AtLeast(0.95),
        ),
    ]
}

/// Fig. 7 — weak scaling.
pub fn check_fig7(r: &fig7::Fig7Result) -> Vec<CheckOutcome> {
    vec![check(
        "F7.min_efficiency",
        "fig7",
        "weak-scaling efficiency at every node count up to 2^10 (paper: >94%)",
        r.min_efficiency(),
        Band::AtLeast(0.94),
    )]
}

/// Fig. 8 — RSBench original vs vectorized multipole lookups.
pub fn check_fig8(r: &fig8::Fig8Result, scale: f64) -> Vec<CheckOutcome> {
    let mut out = vec![
        check(
            "F8.checksum",
            "fig8",
            "original and vectorized multipole kernels agree",
            r.checksum_rel_err,
            Band::AtMost(1e-9),
        ),
        check(
            "F8.mic_gains_more",
            "fig8",
            "vectorization helps the MIC more than the CPU (modeled)",
            r.mic_modeled_speedup / r.cpu_modeled_speedup,
            Band::AtLeast(1.0),
        ),
        check(
            "F8.doppler_flattens",
            "fig8",
            "Doppler: resonance peak flattens monotonically with temperature",
            holds(
                r.doppler
                    .windows(2)
                    .all(|w| w[1].1.abs() < w[0].1.abs() * 1.001),
            ),
            Band::Holds,
        ),
    ];
    if scale >= 1.0 {
        out.push(check(
            "F8.measured_speedup",
            "fig8",
            "vectorized kernel beats the original on this host (full scale only)",
            r.measured_speedup(),
            Band::AtLeast(1.0),
        ));
    }
    out
}

/// Table I — distance-sampling kernel optimization.
pub fn check_table1(r: &table1::Table1Result, scale: f64) -> Vec<CheckOutcome> {
    let mut out = vec![
        check(
            "T1.naive_mic_over_cpu",
            "table1",
            "naive kernel is far slower on the MIC (paper: ~20x, modeled)",
            r.naive_mic_over_cpu(),
            Band::Range { lo: 5.0, hi: 30.0 },
        ),
        check(
            "T1.opt2_cpu_over_mic",
            "table1",
            "optimized-2 kernel flips the ratio: CPU/MIC (paper: 1.9x, modeled)",
            r.opt2_cpu_over_mic(),
            Band::Range { lo: 1.2, hi: 4.0 },
        ),
    ];
    if scale >= 1.0 {
        out.push(check(
            "T1.measured_opt2_speedup",
            "table1",
            "optimized-2 beats naive on this host (full scale only; paper: 1.9x)",
            r.opt2_speedup(),
            Band::AtLeast(1.1),
        ));
    }
    out
}

/// Table II — banking and offload overheads.
pub fn check_table2(r: &table2::Table2Result) -> Vec<CheckOutcome> {
    vec![
        check(
            "T2.transfer_dominates_small",
            "table2",
            "H.M. Small: transfer > device compute > host banking",
            holds(r.small.transfer_dominates()),
            Band::Holds,
        ),
        check(
            "T2.transfer_dominates_large",
            "table2",
            "H.M. Large: transfer > device compute > host banking",
            holds(r.large.transfer_dominates()),
            Band::Holds,
        ),
        check(
            "T2.grid_grows",
            "table2",
            "H.M. Large energy grid is several times H.M. Small's",
            r.repro_grid_bytes.1 / r.repro_grid_bytes.0,
            Band::AtLeast(1.5),
        ),
    ]
}

/// Table III — symmetric-mode load balancing.
pub fn check_table3(r: &table3::Table3Result) -> Vec<CheckOutcome> {
    let worst_vs_ideal = r
        .rows
        .iter()
        .filter_map(|row| row.balanced.map(|b| b / row.ideal))
        .fold(1.0, f64::min);
    let balanced_wins = r
        .rows
        .iter()
        .filter_map(|row| row.balanced.map(|b| b / row.original))
        .fold(f64::INFINITY, f64::min);
    // Degraded mode (kill-one-device column): the rebalanced survivors
    // must run at their own ideal rate, and the job must still be
    // measurably slower than the healthy balanced run — throughput was
    // genuinely lost, not papered over.
    let degraded_recovery = r
        .rows
        .iter()
        .filter_map(|row| row.degraded.zip(row.survivor_ideal).map(|(d, s)| d / s))
        .fold(1.0, f64::min);
    let degraded_cost = r
        .rows
        .iter()
        .filter_map(|row| row.balanced.zip(row.degraded).map(|(b, d)| b / d))
        .fold(f64::INFINITY, f64::min);
    vec![
        check(
            "T3.balanced_near_ideal",
            "table3",
            "Eq.-3 balanced split recovers the ideal sum-of-rates",
            worst_vs_ideal,
            Band::AtLeast(0.99),
        ),
        check(
            "T3.balanced_beats_even",
            "table3",
            "balancing beats the even split on every heterogeneous row",
            balanced_wins,
            Band::AtLeast(1.0),
        ),
        check(
            "T3.headline",
            "table3",
            "CPU + 2 MICs balanced over CPU only (paper: 4.2x)",
            r.headline,
            Band::Range { lo: 3.0, hi: 5.5 },
        ),
        check(
            "T3.degraded_recovers",
            "table3",
            "after a device death, rebalanced survivors recover their ideal rate",
            degraded_recovery,
            Band::AtLeast(0.99),
        ),
        check(
            "T3.degraded_cost",
            "table3",
            "losing a device costs real throughput vs the healthy balanced run",
            degraded_cost,
            Band::AtLeast(1.05),
        ),
    ]
}

/// §V — future-work projections.
pub fn check_futurework(r: &futurework::FutureworkResult) -> Vec<CheckOutcome> {
    vec![
        check(
            "FW.adaptive_gain",
            "futurework",
            "adaptive alpha beats the static Eq.-3 split in the knee regime",
            r.adaptive_gain,
            Band::AtLeast(1.001),
        ),
        check(
            "FW.knl_over_knc",
            "futurework",
            "projected KNL clearly outruns the KNC",
            r.r_knl / r.r_mic,
            Band::AtLeast(1.5),
        ),
        check(
            "FW.energy_mic_wins",
            "futurework",
            "MIC-only is the most energy-efficient configuration (n/J)",
            holds(r.energy.iter().all(|e| {
                e.label.contains("MIC only")
                    || e.neutrons_per_joule
                        <= r.energy
                            .iter()
                            .find(|m| m.label.contains("MIC only"))
                            .map(|m| m.neutrons_per_joule)
                            .unwrap_or(f64::INFINITY)
            })),
            Band::Holds,
        ),
    ]
}

/// Event-vs-history determinism: the two transport drivers walk the
/// same trajectories, so per-batch k-eff must agree bit-for-bit.
///
/// This runs its own small eigenvalue problem (it is not derived from a
/// figure harness) — the claim underpins every event-based result in
/// the paper reproduction.
pub fn check_event_history_keff(scale: f64) -> Vec<CheckOutcome> {
    let problem = Problem::hm(HmModel::Small, &ProblemConfig::default());
    let plan = RunPlan {
        particles: mcs_bench::scaled_by(2_000, scale).max(100),
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 2),
        ..RunPlan::default()
    };
    let rh = engine::run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    let re = engine::run_with_problem(
        &problem,
        &RunPlan {
            algorithm: Algorithm::EventBanking,
            ..plan
        },
        &mut Threaded::ambient(),
    )
    .into_eigenvalue()
    .result;
    let bitwise = rh
        .batches
        .iter()
        .zip(&re.batches)
        .all(|(a, b)| a.k_track.to_bits() == b.k_track.to_bits());
    let max_rel = rh
        .batches
        .iter()
        .zip(&re.batches)
        .map(|(a, b)| (a.k_track - b.k_track).abs() / a.k_track.abs().max(1e-300))
        .fold(0.0, f64::max);
    vec![
        check(
            "EV.k_bitwise",
            "eigenvalue",
            "per-batch k-eff is bit-identical between event and history transport",
            holds(bitwise),
            Band::Holds,
        ),
        check(
            "EV.k_max_rel_diff",
            "eigenvalue",
            "worst per-batch relative k disagreement between the two drivers",
            max_rel,
            Band::AtMost(1e-12),
        ),
    ]
}

/// Grid-backend ablation — the unified lookup context's determinism and
/// memory contracts across the three energy-grid search strategies.
pub fn check_grid_backend(r: &grid_backend::GridBackendResult) -> Vec<CheckOutcome> {
    let rates_positive = r
        .rows
        .iter()
        .all(|row| row.lookups_per_s > 0.0 && row.checksum > 0.0);
    vec![
        check(
            "GB.k_bitwise",
            "grid_backend",
            "per-batch k-eff is bit-identical across all three grid backends",
            holds(r.k_bits_identical()),
            Band::Holds,
        ),
        check(
            "GB.hash_index_fraction",
            "grid_backend",
            "hash-binned index bytes as a fraction of the unionized index",
            r.hash_index_fraction(),
            Band::AtMost(0.25),
        ),
        check(
            "GB.rates_positive",
            "grid_backend",
            "every backend x bank sample produced a positive lookup rate and checksum",
            holds(rates_positive),
            Band::Holds,
        ),
    ]
}

/// `BENCH_event_queueing` — Stage-2 particle queueing for the event
/// pipeline: bitwise-equivalence across queueing modes, and the
/// warm-start scan-locality payoff on the hash-binned backend.
pub fn check_event_queueing(r: &event_queueing::EventQueueingResult) -> Vec<CheckOutcome> {
    vec![
        check(
            "EQ.k_bitwise",
            "event_queueing",
            "per-batch k-eff is bit-identical across every queueing mode and backend",
            holds(r.k_bits_identical()),
            Band::Holds,
        ),
        check(
            "EQ.hash_scan_locality",
            "event_queueing",
            "hash-grid scan steps per lookup: material+energy over material (< 1 = payoff)",
            r.hash_scan_ratio(),
            Band::AtMost(0.95),
        ),
        check(
            "EQ.rates_positive",
            "event_queueing",
            "every backend x mode x bank sample produced a positive particle rate",
            holds(r.rates_positive()),
            Band::Holds,
        ),
    ]
}

/// `BENCH_geometry` — the model-catalog traversal ablation: the
/// flattened/nested bitwise contract, per-model k-eff plausibility
/// bands, and the flattening payoff.
///
/// The k bands are wide on purpose: a single-batch k_track at the
/// sweep's bank size moves with `MCS_SCALE`, so the band must admit
/// both the CI scale and full scale. The *bitwise* agreement across
/// treatments is the sharp check; the bands only catch a model whose
/// physics went off the rails (an absorber that stopped absorbing, a
/// zoning that doubled the fissile inventory).
pub fn check_geometry(r: &geometry::GeometryResult) -> Vec<CheckOutcome> {
    let mut out = vec![
        check(
            "GM.treatment_bitwise",
            "geometry",
            "per-batch k-eff is bit-identical between flattened and nested traversal on every model",
            holds(r.treatment_bitwise()),
            Band::Holds,
        ),
        check(
            "GM.rates_positive",
            "geometry",
            "every model x treatment x bank sample produced a positive particle rate",
            holds(r.rates_positive()),
            Band::Holds,
        ),
        check(
            "GM.flatten_no_more_steps",
            "geometry",
            "find_steps, flattened over nested, worst model (<= 1 = flattening never adds visits)",
            geometry::MODELS
                .iter()
                .map(|&m| r.flatten_step_ratio(m))
                .fold(0.0, f64::max),
            Band::AtMost(1.0),
        ),
    ];
    for (model, k) in r.k_by_model() {
        let (lo, hi) = match model {
            // Single unreflected assembly, tiny 7-nuclide library:
            // leakage-dominated, deeply subcritical on a batch-0
            // uniform source (observed ~0.51-0.55 across banks).
            "test" => (0.3, 0.8),
            // 37-assembly SMR with a rodded centre: near critical
            // (observed ~1.08).
            "smr" => (0.8, 1.3),
            // One assembly mid-tank: the deep water reflector returns
            // thermalized neutrons, so the assembly itself runs
            // slightly supercritical (observed ~1.09-1.11).
            "shield" => (0.8, 1.35),
            _ => (0.1, 2.0),
        };
        out.push(check(
            match model {
                "test" => "GM.keff_test",
                "smr" => "GM.keff_smr",
                "shield" => "GM.keff_shield",
                _ => "GM.keff_other",
            },
            "geometry",
            "largest-bank single-batch k_track sits in the model's plausibility band",
            k,
            Band::Range { lo, hi },
        ));
    }
    out
}

/// `BENCH_serve` — the plan-execution service under load: the cache's
/// bitwise/zero-relookup contract, the submission ledger, and the
/// engineered admission overflow.
pub fn check_serve(r: &serve_load::ServeLoadResult) -> Vec<CheckOutcome> {
    vec![
        check(
            "SV.cache_bitwise",
            "serve_load",
            "cached replay is bit-identical to the cold run of the same plan",
            holds(r.cache_bitwise),
            Band::Holds,
        ),
        check(
            "SV.relookup_free",
            "serve_load",
            "serving the cache-hit wave moved xs.lookups by exactly zero",
            holds(r.relookup_free),
            Band::Holds,
        ),
        check(
            "SV.ledger_balanced",
            "serve_load",
            "hits + coalesces + cold runs + rejects == submissions, and no plan ran twice",
            holds(r.ledger_balanced()),
            Band::Holds,
        ),
        check(
            "SV.rejects_bounded",
            "serve_load",
            "admission control rejected exactly the engineered overflow, nowhere else",
            holds(r.rejects_expected()),
            Band::Holds,
        ),
        check(
            "SV.hit_rate",
            "serve_load",
            "fraction of admitted submissions served without an engine run",
            r.saved_fraction(),
            Band::AtLeast(0.5),
        ),
        check(
            "SV.rates_positive",
            "serve_load",
            "every phase reported positive finite throughput and p99 >= p50 latency",
            holds(r.rates_positive()),
            Band::Holds,
        ),
    ]
}

/// `BENCH_device` — the calibrated device catalog: modeled rates,
/// calibration bands, legacy bit-identity, heterogeneous determinism.
pub fn check_device(r: &device_catalog::DeviceCatalogResult) -> Vec<CheckOutcome> {
    let (calibrated, in_band) = r.calibration_counts();
    vec![
        check(
            "DC.rates_positive",
            "device_catalog",
            "every modeled device rate on both legs is finite and positive",
            holds(r.rates_positive()),
            Band::Holds,
        ),
        check(
            "DC.calibrated_entries",
            "device_catalog",
            "the catalog carries at least three entries calibrated vs published rates",
            calibrated as f64,
            Band::AtLeast(3.0),
        ),
        check(
            "DC.calibration_band",
            "device_catalog",
            "every calibrated entry's modeled rate lands inside its documented band",
            holds(calibrated == in_band),
            Band::Holds,
        ),
        check(
            "DC.legacy_exact",
            "device_catalog",
            "host-e5-2687w/knc-7120a price kernels bit-identically to the MachineSpec oracles",
            holds(r.legacy_exact),
            Band::Holds,
        ),
        check(
            "DC.alpha_host_knc",
            "device_catalog",
            "reference-workload host/KNC alpha stays in the paper's plateau band",
            r.alpha_host_knc(),
            Band::Range { lo: 0.5, hi: 0.8 },
        ),
        check(
            "DC.gpu_ordering",
            "device_catalog",
            "every GPU-class entry outrates every legacy device on the reference workload",
            holds(r.gpus_outrate_legacy()),
            Band::Holds,
        ),
        check(
            "DC.hetero_bitwise",
            "device_catalog",
            "heterogeneous device ranks reproduce the serial run bit-identically",
            holds(r.hetero_bitwise),
            Band::Holds,
        ),
        check(
            "DC.balanced_gain",
            "device_catalog",
            "alpha-balancing the hetero mix never loses aggregate rate",
            r.balanced_gain,
            Band::AtLeast(1.0),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // One cheap real harness run shared by the perturbation tests.
    fn fig1_result() -> fig1::Fig1Result {
        fig1::run(0.05, false)
    }

    #[test]
    fn intact_fig1_passes_and_perturbed_fig1_fails() {
        let mut r = fig1_result();
        let before = check_fig1(&r);
        assert!(before.iter().all(|c| c.passed), "{before:?}");

        // Deliberately break the resonance-forest claim: this is the
        // non-zero-exit demonstration the CI gate relies on.
        r.peak_to_smooth = 3.0;
        let after = check_fig1(&r);
        let broken = after.iter().find(|c| c.id == "F1.peak_to_smooth").unwrap();
        assert!(!broken.passed);

        let mut report = crate::report::CheckReport {
            scale: 0.05,
            threads: 1,
            invariants: after,
            counters: vec![],
            golden: vec![],
        };
        assert!(
            !report.passed(),
            "a violated invariant must fail the report"
        );
        assert!(report.to_json().contains("\"passed\": false"));
        report.invariants = before;
        assert!(report.passed());
    }

    #[test]
    fn perturbed_table3_headline_fails() {
        // Fabricated result in the paper's shape...
        let good = table3::Table3Result {
            r_cpu: 13_667.0,
            r_mic: 20_675.0,
            alpha: 0.66,
            rows: vec![table3::Table3Row {
                hardware: "CPU + 2 MICs",
                original: 41_000.0,
                balanced: Some(55_016.0),
                ideal: 55_016.0,
                degraded: Some(34_342.0),
                survivor_ideal: Some(34_342.0),
            }],
            headline: 4.03,
            artifact: mcs_bench::harness::Artifact {
                name: "table3_symmetric_balance",
                columns: vec![],
                rows: vec![],
            },
        };
        assert!(check_table3(&good).iter().all(|c| c.passed));
        // ...then with the balancing gain wiped out.
        let mut bad = good.clone();
        bad.headline = 1.0;
        bad.rows[0].balanced = Some(30_000.0);
        let out = check_table3(&bad);
        assert!(!out.iter().find(|c| c.id == "T3.headline").unwrap().passed);
        assert!(
            !out.iter()
                .find(|c| c.id == "T3.balanced_beats_even")
                .unwrap()
                .passed
        );
        // And the degraded column: survivors falling short of their own
        // ideal rate must trip T3.degraded_recovers.
        let mut lossy = good.clone();
        lossy.rows[0].degraded = Some(20_000.0); // well under 34,342 ideal
        let out = check_table3(&lossy);
        assert!(
            !out.iter()
                .find(|c| c.id == "T3.degraded_recovers")
                .unwrap()
                .passed
        );
        // A "degraded" run as fast as the healthy one means the death
        // cost was papered over — T3.degraded_cost must catch it.
        let mut free_lunch = good;
        free_lunch.rows[0].degraded = Some(55_016.0);
        let out = check_table3(&free_lunch);
        assert!(
            !out.iter()
                .find(|c| c.id == "T3.degraded_cost")
                .unwrap()
                .passed
        );
    }

    #[test]
    fn measured_invariants_gate_on_full_scale() {
        let r = table1::Table1Result {
            n: 100,
            iters: 10,
            t_naive: 1.0,
            t_opt1: 0.9,
            t_opt2: 2.0, // inverted: typical at tiny workloads
            cpu_modeled: [236.2, 33.3, 33.3],
            mic_modeled: [2662.9, 11.8, 11.8],
            artifact: mcs_bench::harness::Artifact {
                name: "table1_distance_sampling",
                columns: vec![],
                rows: vec![],
            },
        };
        let reduced = check_table1(&r, 0.1);
        assert!(reduced.iter().all(|c| c.id != "T1.measured_opt2_speedup"));
        assert!(reduced.iter().all(|c| c.passed));
        let full = check_table1(&r, 1.0);
        let m = full
            .iter()
            .find(|c| c.id == "T1.measured_opt2_speedup")
            .unwrap();
        assert!(
            !m.passed,
            "inverted measured speedup must fail at full scale"
        );
    }

    #[test]
    fn event_history_keff_bitwise_holds() {
        let out = check_event_history_keff(0.02);
        for c in &out {
            assert!(c.passed, "{}: value {} not in {}", c.id, c.value, c.band);
        }
    }

    #[test]
    fn intact_device_passes_and_perturbed_device_fails() {
        // One real reduced-scale catalog sweep, then targeted
        // perturbations of the typed result — the exit-flip
        // demonstration for every DC gate.
        let good = device_catalog::run(0.05, false);
        let before = check_device(&good);
        assert!(before.iter().all(|c| c.passed), "{before:?}");

        let fails = |r: &device_catalog::DeviceCatalogResult, id: &str| {
            let out = check_device(r);
            assert!(
                !out.iter().find(|c| c.id == id).unwrap().passed,
                "{id} should fail after perturbation"
            );
        };
        let mut r = good.clone();
        r.rows[0].rate = -1.0;
        fails(&r, "DC.rates_positive");

        let mut r = good.clone();
        for row in &mut r.rows {
            row.within_band = None;
        }
        fails(&r, "DC.calibrated_entries");

        let mut r = good.clone();
        r.rows
            .iter_mut()
            .find(|x| x.within_band.is_some())
            .unwrap()
            .within_band = Some(false);
        fails(&r, "DC.calibration_band");

        let mut r = good.clone();
        r.legacy_exact = false;
        fails(&r, "DC.legacy_exact");

        // Drift the KNC alpha out of the paper's plateau.
        let mut r = good.clone();
        r.rows
            .iter_mut()
            .find(|x| x.model == "reference" && x.id == "knc-7120a")
            .unwrap()
            .alpha_vs_host = 0.3;
        fails(&r, "DC.alpha_host_knc");

        // A GPU falling below the KNL projection breaks the ordering.
        let mut r = good.clone();
        r.rows
            .iter_mut()
            .find(|x| x.model == "reference" && x.id == "a100")
            .unwrap()
            .rate = 10_000.0;
        fails(&r, "DC.gpu_ordering");

        let mut r = good.clone();
        r.hetero_bitwise = false;
        fails(&r, "DC.hetero_bitwise");

        let mut r = good;
        r.balanced_gain = 0.8;
        fails(&r, "DC.balanced_gain");
    }

    #[test]
    fn intact_serve_passes_and_perturbed_serve_fails() {
        // One real reduced-scale battery (live TCP servers on
        // ephemeral ports), then targeted perturbations of the typed
        // result — the exit-flip demonstration for every SV gate.
        let good = serve_load::run(0.05, false);
        let before = check_serve(&good);
        assert!(before.iter().all(|c| c.passed), "{before:?}");

        let fails = |r: &serve_load::ServeLoadResult, id: &str| {
            let out = check_serve(r);
            assert!(
                !out.iter().find(|c| c.id == id).unwrap().passed,
                "{id} should fail after perturbation"
            );
        };
        let mut r = good.clone();
        r.cache_bitwise = false;
        fails(&r, "SV.cache_bitwise");

        let mut r = good.clone();
        r.relookup_free = false;
        fails(&r, "SV.relookup_free");

        // A phantom duplicate run: the ledger stops balancing.
        let mut r = good.clone();
        r.rows[0].cold_runs += 1;
        fails(&r, "SV.ledger_balanced");

        // A reject outside the engineered admission overflow.
        let mut r = good.clone();
        r.rows[0].rejects += 1;
        fails(&r, "SV.rejects_bounded");

        // A stalled phase: zero throughput must trip the timing check.
        let mut r = good;
        r.rows[1].plans_per_second = 0.0;
        fails(&r, "SV.rates_positive");
    }
}
