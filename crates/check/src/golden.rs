//! Golden-CSV comparison with per-column tolerance policies.
//!
//! Goldens live in `results/golden/` and are regenerated with
//! `cargo run -p mcs-check -- --bless` (or `MCS_BLESS=1`). A golden is
//! compared at the SAME `MCS_SCALE` it was blessed at — the committed
//! set is blessed at the default check scale.
//!
//! Columns fall into three classes, reflecting the repo's MEASURED vs
//! MODELED split:
//!
//! * key columns (bank sizes, node counts, row labels) — exact match;
//! * MEASURED wall-time/rate columns — host-dependent noise, so the only
//!   stable property is positivity;
//! * MODELED columns (machine-model pricing of deterministic counts) —
//!   compared with a small relative tolerance, because the scalar CI leg
//!   (no `-C target-cpu=native`) may contract floating point differently
//!   and shift a transport branch, perturbing counts well under 1%.

use mcs_bench::harness::Artifact;

/// How one CSV cell is compared against its golden counterpart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnPolicy {
    /// Byte-for-byte equal (keys, labels).
    Exact,
    /// Fresh value must parse to a finite number > 0 (measured noise).
    Positive,
    /// Numeric prefixes agree to this relative tolerance and any unit
    /// suffix (`"ms"`, `"GB"`) matches exactly.
    Rel(f64),
}

/// Per-cell policy table for every artifact the harnesses emit.
///
/// `row_key` is the first cell of the row, which distinguishes the
/// measured from the modeled rows in the mixed tables (Table I, Fig. 8).
pub fn policy(artifact: &str, column: &str, row_key: &str) -> ColumnPolicy {
    use ColumnPolicy::*;
    match artifact {
        "fig1_u238_total_xs" => match column {
            "energy_mev" => Rel(1e-9),
            _ => Rel(1e-6),
        },
        "fig2_lookup_rates" => match column {
            "bank_size" => Exact,
            c if c.ends_with("_measured_per_s") => Positive,
            _ => Rel(0.02),
        },
        "fig3_offload_asymptotics" | "futurework_adaptive" => match column {
            "particles" | "batch" => Exact,
            _ => Rel(0.02),
        },
        "fig4_profile_compare" => match column {
            "routine" => Exact,
            _ => Rel(0.02),
        },
        "fig5_calc_rates" => match column {
            "particles" | "batch_kind" => Exact,
            _ => Rel(0.02),
        },
        "fig6_strong_scaling" => match column {
            "curve" | "nodes" => Exact,
            _ => Rel(0.02),
        },
        "fig7_weak_scaling" => match column {
            "nodes" => Exact,
            _ => Rel(0.02),
        },
        "fig8_rsbench" | "table1_distance_sampling" => match column {
            "row" => Exact,
            _ if row_key.contains("modeled") => Rel(0.02),
            _ => Positive,
        },
        "futurework_energy" => match column {
            "configuration" => Exact,
            _ => Rel(0.02),
        },
        "table2_offload_overhead" => match column {
            "operation" => Exact,
            _ => Rel(0.02),
        },
        "table3_symmetric_balance" => match column {
            "hardware" => Exact,
            _ => Rel(0.02),
        },
        "BENCH_grid_backend" => match column {
            "backend" | "bank_size" | "index_bytes" => Exact,
            c if c.ends_with("_measured_per_s") => Positive,
            // The checksum is a deterministic float reduction, identical
            // across hosts up to print precision.
            "checksum" => Rel(1e-9),
            _ => Rel(0.02),
        },
        "BENCH_event_queueing" => match column {
            "backend" | "mode" | "bank_size" => Exact,
            c if c.ends_with("_measured_per_s") => Positive,
            // k is a deterministic float reduction; the lookup/scan/span
            // counts are deterministic per leg but a scalar-leg FP
            // contraction can shift a transport branch and perturb them
            // well under 1%.
            "k_track" => Rel(1e-9),
            _ => Rel(0.02),
        },
        "BENCH_geometry" => match column {
            "model" | "treatment" | "bank_size" => Exact,
            c if c.ends_with("_measured_per_s") => Positive,
            // k is a deterministic float reduction; the traversal-work
            // counters are deterministic per leg but a scalar-leg FP
            // contraction can shift a transport branch and perturb them
            // well under 1%.
            "k_track" => Rel(1e-9),
            _ => Rel(0.02),
        },
        "BENCH_serve" => match column {
            // Pure counting, no FP: exact on every host and ISA leg.
            // The throughput and latency quantiles are wall-clock
            // measurements — any positive finite value passes.
            "phase" | "submissions" | "unique_plans" | "served_saved" | "cold_runs" | "rejects" => {
                Exact
            }
            _ => Positive,
        },
        "BENCH_device" => match column {
            "model" | "device" | "class" | "transport" => Exact,
            // Pure analytic arithmetic rounded to two decimals — no
            // transport branches involved, byte-stable across ISA legs.
            "calibration_ratio" | "in_band" => Exact,
            // Modeled rates: reference rows are analytic, smr rows price
            // deterministic transport counts that a scalar-leg FP
            // contraction can perturb well under 1%.
            _ => Rel(0.02),
        },
        _ => Rel(0.02),
    }
}

/// Result of comparing one artifact against its golden.
#[derive(Debug, Clone)]
pub struct GoldenOutcome {
    pub artifact: String,
    pub passed: bool,
    /// `"N rows, worst rel err E"` on pass; first mismatch on fail.
    pub detail: String,
}

/// Render an artifact exactly as `mcs_bench::write_csv` does.
pub fn render_csv(a: &Artifact) -> String {
    let mut s = String::new();
    s.push_str(&a.columns.join(","));
    s.push('\n');
    for row in &a.rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    s
}

fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text.lines().map(|l| l.trim_end_matches('\r'));
    let header = lines
        .next()
        .unwrap_or("")
        .split(',')
        .map(str::to_string)
        .collect();
    let rows = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    (header, rows)
}

/// Split a cell into its numeric prefix and unit suffix:
/// `"386.712 ms"` → `(Some(386.712), "ms")`; `"N/A"` → `(None, "N/A")`.
fn split_numeric(cell: &str) -> (Option<f64>, &str) {
    let cell = cell.trim();
    let end = cell
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(cell.len());
    match cell[..end].parse::<f64>() {
        Ok(v) => (Some(v), cell[end..].trim()),
        Err(_) => (None, cell),
    }
}

fn cell_matches(policy: ColumnPolicy, fresh: &str, gold: &str) -> Result<f64, String> {
    match policy {
        ColumnPolicy::Exact => {
            if fresh == gold {
                Ok(0.0)
            } else {
                Err(format!("expected {gold:?}, got {fresh:?}"))
            }
        }
        ColumnPolicy::Positive => match split_numeric(fresh).0 {
            Some(v) if v > 0.0 && v.is_finite() => Ok(0.0),
            _ => Err(format!("expected a positive measurement, got {fresh:?}")),
        },
        ColumnPolicy::Rel(tol) => {
            let (fv, fs) = split_numeric(fresh);
            let (gv, gs) = split_numeric(gold);
            match (fv, gv) {
                (Some(f), Some(g)) => {
                    let rel = (f - g).abs() / f.abs().max(g.abs()).max(1e-300);
                    if fs != gs {
                        Err(format!("unit changed: {gold:?} -> {fresh:?}"))
                    } else if rel > tol {
                        Err(format!(
                            "{fresh:?} vs golden {gold:?} (rel err {rel:.3e} > {tol:.0e})"
                        ))
                    } else {
                        Ok(rel)
                    }
                }
                // Non-numeric sentinel cells ("N/A") must agree exactly.
                (None, None) => {
                    if fresh == gold {
                        Ok(0.0)
                    } else {
                        Err(format!("expected {gold:?}, got {fresh:?}"))
                    }
                }
                _ => Err(format!("numeric/non-numeric flip: {gold:?} -> {fresh:?}")),
            }
        }
    }
}

/// Compare a freshly produced artifact against golden CSV text.
pub fn compare(artifact: &Artifact, golden_text: &str) -> GoldenOutcome {
    let name = artifact.name.to_string();
    let (gold_header, gold_rows) = parse_csv(golden_text);
    if gold_header != artifact.columns {
        return GoldenOutcome {
            artifact: name,
            passed: false,
            detail: format!(
                "header changed: golden {:?} vs fresh {:?}",
                gold_header, artifact.columns
            ),
        };
    }
    if gold_rows.len() != artifact.rows.len() {
        return GoldenOutcome {
            artifact: name,
            passed: false,
            detail: format!(
                "row count changed: golden {} vs fresh {}",
                gold_rows.len(),
                artifact.rows.len()
            ),
        };
    }
    let mut worst = 0.0f64;
    for (ri, (fresh_row, gold_row)) in artifact.rows.iter().zip(&gold_rows).enumerate() {
        if fresh_row.len() != gold_row.len() {
            return GoldenOutcome {
                artifact: name,
                passed: false,
                detail: format!("row {ri}: cell count changed"),
            };
        }
        let key = fresh_row.first().map(String::as_str).unwrap_or("");
        for (ci, (fresh, gold)) in fresh_row.iter().zip(gold_row).enumerate() {
            let col = artifact.columns[ci];
            match cell_matches(policy(artifact.name, col, key), fresh, gold) {
                Ok(rel) => worst = worst.max(rel),
                Err(why) => {
                    return GoldenOutcome {
                        artifact: name,
                        passed: false,
                        detail: format!("row {ri} ({key}), column {col}: {why}"),
                    }
                }
            }
        }
    }
    GoldenOutcome {
        artifact: name,
        passed: true,
        detail: format!("{} rows, worst rel err {:.3e}", artifact.rows.len(), worst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> Artifact {
        Artifact {
            name: "table3_symmetric_balance",
            columns: vec!["hardware", "original_rate", "balanced_rate", "ideal_rate"],
            rows: vec![
                vec![
                    "CPU only".into(),
                    "13667".into(),
                    "N/A".into(),
                    "13667".into(),
                ],
                vec![
                    "CPU + MIC".into(),
                    "27334".into(),
                    "34341".into(),
                    "34342".into(),
                ],
            ],
        }
    }

    #[test]
    fn identical_csv_passes() {
        let a = artifact();
        let out = compare(&a, &render_csv(&a));
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn within_tolerance_passes_outside_fails() {
        let a = artifact();
        let mut nudged = a.clone();
        nudged.rows[1][1] = "27500".into(); // +0.6% < 2%
        assert!(compare(&nudged, &render_csv(&a)).passed);
        nudged.rows[1][1] = "30000".into(); // +9.8% > 2%
        let out = compare(&nudged, &render_csv(&a));
        assert!(!out.passed);
        assert!(out.detail.contains("original_rate"), "{}", out.detail);
    }

    #[test]
    fn key_and_sentinel_cells_are_exact() {
        let a = artifact();
        let mut renamed = a.clone();
        renamed.rows[0][0] = "GPU only".into();
        assert!(!compare(&renamed, &render_csv(&a)).passed);
        let mut filled = a.clone();
        filled.rows[0][2] = "1.0".into(); // N/A -> number
        assert!(!compare(&filled, &render_csv(&a)).passed);
    }

    #[test]
    fn unit_suffix_change_fails() {
        let gold = "operation,hm_small,hm_large\nxfer,999.0 ms,2.2 s\n";
        let fresh = Artifact {
            name: "table2_offload_overhead",
            columns: vec!["operation", "hm_small", "hm_large"],
            rows: vec![vec!["xfer".into(), "1.0 s".into(), "2.2 s".into()]],
        };
        let out = compare(&fresh, gold);
        assert!(!out.passed);
        assert!(out.detail.contains("unit changed"), "{}", out.detail);
    }

    #[test]
    fn measured_columns_only_require_positivity() {
        let gold = "row,naive_s,opt1_s,opt2_s\nhost_measured,0.5,0.4,0.3\n";
        let fresh = Artifact {
            name: "table1_distance_sampling",
            columns: vec!["row", "naive_s", "opt1_s", "opt2_s"],
            rows: vec![vec![
                "host_measured".into(),
                "5.0".into(), // 10x the golden: fine, it's a measurement
                "0.1".into(),
                "0.2".into(),
            ]],
        };
        assert!(compare(&fresh, gold).passed);
        let mut bad = fresh.clone();
        bad.rows[0][1] = "-1.0".into();
        assert!(!compare(&bad, gold).passed);
    }

    #[test]
    fn shape_changes_fail() {
        let a = artifact();
        let mut short = a.clone();
        short.rows.pop();
        assert!(!compare(&short, &render_csv(&a)).passed);
        let mut reheaded = a.clone();
        reheaded.columns[1] = "orig_rate";
        assert!(!compare(&reheaded, &render_csv(&a)).passed);
    }
}
