//! Typed check outcomes and the machine-readable `check_report.json`.
//!
//! The JSON is hand-rolled like everywhere else in this workspace (no
//! serde in the offline build environment). Schema:
//!
//! ```json
//! {
//!   "schema": "mcs-check-report/2",
//!   "scale": 0.1,
//!   "threads": 8,
//!   "passed": true,
//!   "n_invariants": 26,
//!   "n_failed": 0,
//!   "invariants": [
//!     {"id": "F2.mic_over_e5", "harness": "fig2", "description": "...",
//!      "value": 9.64, "band": {"kind": "range", "lo": 8.0, "hi": 12.0},
//!      "passed": true},
//!     ...
//!   ],
//!   "counters": {"xs.bin_scan_steps": 676787, "xs.gather_span_bytes": 6036960, ...},
//!   "golden": [
//!     {"artifact": "fig2_lookup_rates", "passed": true,
//!      "detail": "6 rows, worst rel err 0.000e0"},
//!     ...
//!   ]
//! }
//! ```

use crate::golden::GoldenOutcome;

/// Allowed band for a scalar invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Band {
    /// `lo <= value <= hi`.
    Range { lo: f64, hi: f64 },
    /// `value >= lo`.
    AtLeast(f64),
    /// `value <= hi`.
    AtMost(f64),
    /// Boolean predicate; `value` is 1.0 (holds) or 0.0 (violated).
    Holds,
}

impl Band {
    pub fn admits(&self, v: f64) -> bool {
        match *self {
            Band::Range { lo, hi } => v >= lo && v <= hi,
            Band::AtLeast(lo) => v >= lo,
            Band::AtMost(hi) => v <= hi,
            Band::Holds => v == 1.0,
        }
    }

    pub fn to_json(&self) -> String {
        match *self {
            Band::Range { lo, hi } => format!(
                "{{\"kind\": \"range\", \"lo\": {}, \"hi\": {}}}",
                json_num(lo),
                json_num(hi)
            ),
            Band::AtLeast(lo) => {
                format!("{{\"kind\": \"at_least\", \"lo\": {}}}", json_num(lo))
            }
            Band::AtMost(hi) => {
                format!("{{\"kind\": \"at_most\", \"hi\": {}}}", json_num(hi))
            }
            Band::Holds => "{\"kind\": \"holds\"}".to_string(),
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Band::Range { lo, hi } => write!(f, "[{lo}, {hi}]"),
            Band::AtLeast(lo) => write!(f, ">= {lo}"),
            Band::AtMost(hi) => write!(f, "<= {hi}"),
            Band::Holds => write!(f, "holds"),
        }
    }
}

/// One checked invariant: the measured value against its allowed band.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Stable invariant ID, e.g. `F2.mic_over_e5` (also the key
    /// EXPERIMENTS.md's "continuously verified" column cites).
    pub id: &'static str,
    /// Which harness produced the value (`fig2`, `table3`, ...).
    pub harness: &'static str,
    /// Human-readable claim being checked.
    pub description: &'static str,
    /// Measured/derived value.
    pub value: f64,
    /// Allowed band.
    pub band: Band,
    /// `band.admits(value)`.
    pub passed: bool,
    /// Warn-band outcome: a violation is *reported* but does not gate
    /// the run (used where the measurement is known-unstable, e.g. the
    /// F2 host kernel ratio on a single-core runner).
    pub warn: bool,
}

/// Build an outcome, evaluating the band.
pub fn check(
    id: &'static str,
    harness: &'static str,
    description: &'static str,
    value: f64,
    band: Band,
) -> CheckOutcome {
    CheckOutcome {
        id,
        harness,
        description,
        value,
        band,
        passed: band.admits(value),
        warn: false,
    }
}

/// Build an outcome on the warn band: scored and reported exactly like
/// [`check`], but a violation does not count toward [`CheckReport::n_failed`]
/// (the runner prints `WARN` instead of `FAIL`).
pub fn check_warn(
    id: &'static str,
    harness: &'static str,
    description: &'static str,
    value: f64,
    band: Band,
) -> CheckOutcome {
    CheckOutcome {
        warn: true,
        ..check(id, harness, description, value, band)
    }
}

/// The full report: every invariant plus every golden-CSV comparison.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Workload scale the harnesses ran at.
    pub scale: f64,
    /// Host threads available to the run.
    pub threads: usize,
    /// Scalar invariants, in run order.
    pub invariants: Vec<CheckOutcome>,
    /// Instrumentation counters surfaced by the harnesses (currently the
    /// `xs.*` set of the event-queueing sweep's optimized hash run), as
    /// `(name, count)` in name order.
    pub counters: Vec<(String, u64)>,
    /// Golden-CSV comparisons, in run order.
    pub golden: Vec<GoldenOutcome>,
}

impl CheckReport {
    pub fn n_failed(&self) -> usize {
        self.invariants
            .iter()
            .filter(|c| !c.passed && !c.warn)
            .count()
            + self.golden.iter().filter(|g| !g.passed).count()
    }

    /// Warn-band invariants that did not hold (reported, never gating).
    pub fn n_warned(&self) -> usize {
        self.invariants
            .iter()
            .filter(|c| !c.passed && c.warn)
            .count()
    }

    pub fn passed(&self) -> bool {
        self.n_failed() == 0
    }

    /// Render the machine-readable report.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mcs-check-report/2\",\n");
        s.push_str(&format!("  \"scale\": {},\n", json_num(self.scale)));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"passed\": {},\n", self.passed()));
        s.push_str(&format!("  \"n_invariants\": {},\n", self.invariants.len()));
        s.push_str(&format!("  \"n_failed\": {},\n", self.n_failed()));
        s.push_str("  \"invariants\": [\n");
        for (i, c) in self.invariants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"harness\": {}, \"description\": {}, \
                 \"value\": {}, \"band\": {}, \"passed\": {}, \"warn\": {}}}{}\n",
                json_str(c.id),
                json_str(c.harness),
                json_str(c.description),
                json_num(c.value),
                c.band.to_json(),
                c.passed,
                c.warn,
                if i + 1 < self.invariants.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(k), v));
        }
        s.push_str("},\n");
        s.push_str("  \"golden\": [\n");
        for (i, g) in self.golden.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"artifact\": {}, \"passed\": {}, \"detail\": {}}}{}\n",
                json_str(&g.artifact),
                g.passed,
                json_str(&g.detail),
                if i + 1 < self.golden.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// A finite f64 as a JSON number; NaN/inf (e.g. "no crossover found")
/// become `null` so the report stays parseable.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_admit_and_reject() {
        assert!(Band::Range { lo: 8.0, hi: 12.0 }.admits(9.6));
        assert!(!Band::Range { lo: 8.0, hi: 12.0 }.admits(13.0));
        assert!(Band::AtLeast(0.94).admits(0.97));
        assert!(!Band::AtLeast(0.94).admits(0.5));
        assert!(Band::AtMost(1e-9).admits(0.0));
        assert!(!Band::AtMost(1e-9).admits(1e-3));
        assert!(Band::Holds.admits(1.0));
        assert!(!Band::Holds.admits(0.0));
    }

    #[test]
    fn report_counts_failures_from_both_sections() {
        let mut r = CheckReport {
            scale: 0.1,
            threads: 4,
            ..Default::default()
        };
        r.invariants
            .push(check("A.x", "figA", "ok", 1.0, Band::Holds));
        r.invariants
            .push(check("A.y", "figA", "bad", 0.0, Band::Holds));
        r.golden.push(GoldenOutcome {
            artifact: "a".into(),
            passed: false,
            detail: "row 1 mismatch".into(),
        });
        assert_eq!(r.n_failed(), 2);
        assert!(!r.passed());
        let j = r.to_json();
        assert!(j.contains("\"n_failed\": 2"));
        assert!(j.contains("\"passed\": false"));
    }

    #[test]
    fn warn_band_reports_but_never_gates() {
        let mut r = CheckReport {
            scale: 0.1,
            threads: 1,
            ..Default::default()
        };
        r.invariants.push(check_warn(
            "W.x",
            "figW",
            "violated but warn-band",
            0.0,
            Band::Holds,
        ));
        assert!(!r.invariants[0].passed);
        assert_eq!(r.n_failed(), 0, "warn outcomes must not gate");
        assert_eq!(r.n_warned(), 1);
        assert!(r.passed());
        let j = r.to_json();
        assert!(j.contains("\"warn\": true"), "{j}");
        // A held warn-band invariant is not counted as warned.
        r.invariants
            .push(check_warn("W.y", "figW", "holds", 1.0, Band::Holds));
        assert_eq!(r.n_warned(), 1);
    }

    #[test]
    fn counters_section_renders() {
        let mut r = CheckReport::default();
        r.counters.push(("xs.gather_span_bytes".into(), 7));
        r.counters.push(("xs.lookups".into(), 42));
        let j = r.to_json();
        assert!(
            j.contains("\"counters\": {\"xs.gather_span_bytes\": 7, \"xs.lookups\": 42}"),
            "{j}"
        );
        // Empty set still renders a valid (empty) object.
        let empty = CheckReport::default().to_json();
        assert!(empty.contains("\"counters\": {}"), "{empty}");
    }

    #[test]
    fn json_escapes_are_sane() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
    }
}
