//! `mcs-check` — machine-checked paper-shape validation.
//!
//! Runs every figure/table harness from `mcs-bench` at a deterministic
//! reduced scale, scores the paper's quantitative claims as executable
//! invariants, compares the emitted CSVs against blessed goldens with
//! per-column tolerances, and writes a machine-readable
//! `results/check_report.json`. The `cargo run -p mcs-check` binary
//! exits non-zero on any violation — CI gates on it.

pub mod golden;
pub mod invariants;
pub mod report;

pub use golden::{compare, policy, render_csv, ColumnPolicy, GoldenOutcome};
pub use report::{check, check_warn, Band, CheckOutcome, CheckReport};

/// Default workload scale for a check run (override with `MCS_SCALE`).
/// Small enough for CI, large enough that every ratio invariant is out
/// of the overhead-dominated regime.
pub const DEFAULT_SCALE: f64 = 0.1;
