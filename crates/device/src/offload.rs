//! Offload-mode pipeline: bank on host → ship over PCIe → compute on the
//! device → return results.
//!
//! Regenerates Table II (per-operation costs) and Fig. 3 (costs relative
//! to host generation time as the particle count grows). Fixed costs —
//! offload-runtime marshaling and kernel launch — are what give Fig. 3
//! its asymptotics: they dominate at small banks and amortize away above
//! ~10³–10⁴ particles.

use mcs_faults::{FaultPlan, RetryPolicy};
use mcs_prof::Counters;

use crate::pcie::{PcieBus, TransferError, TransferKind, TransferReport};
use crate::spec::MachineSpec;
use crate::workload::{
    bank_bytes_per_particle, banking_ns_host, banking_ns_mic, xs_lookup_banked, xs_lookup_scalar,
    ProblemShape,
};

/// The offload execution model.
#[derive(Debug, Clone, Copy)]
pub struct OffloadModel {
    /// Host machine.
    pub host: MachineSpec,
    /// Coprocessor.
    pub device: MachineSpec,
    /// The bus between them.
    pub bus: PcieBus,
    /// Fixed offload-runtime marshaling cost per shipment, s.
    pub marshal_s: f64,
    /// Fixed device kernel-launch cost per offload, s.
    pub launch_s: f64,
}

impl OffloadModel {
    /// The paper's JLSE configuration.
    pub fn jlse() -> Self {
        Self {
            host: MachineSpec::host_e5_2687w(),
            device: MachineSpec::mic_7120a(),
            bus: PcieBus::gen2_x16(),
            marshal_s: 5e-3,
            launch_s: 8e-3,
        }
    }

    /// Per-iteration cost breakdown for banking `n` particles and
    /// offloading their cross-section lookups (Table II rows).
    pub fn breakdown(&self, shape: &ProblemShape, n: usize, grid_bytes: f64) -> OffloadBreakdown {
        let n_nuc = shape.nuclides_per_material[0]; // fuel inventory size
        let bank_bytes = bank_bytes_per_particle(n_nuc) * n as f64;
        let lookups_host = xs_lookup_scalar(shape, 0).scale(n as f64);
        let lookups_dev = xs_lookup_banked(shape, 0).scale(n as f64);
        OffloadBreakdown {
            n_particles: n,
            bank_bytes,
            grid_bytes,
            banking_host_s: banking_ns_host() * 1e-9 * n as f64,
            banking_device_s: banking_ns_mic(n_nuc) * 1e-9 * n as f64,
            transfer_bank_s: self.marshal_s + self.bus.banked_time(bank_bytes).as_secs_f64(),
            transfer_grid_s: self.bus.contiguous_time(grid_bytes).as_secs_f64(),
            compute_host_s: self.host.kernel_time(&lookups_host),
            compute_device_s: self.launch_s + self.device.kernel_time(&lookups_dev),
        }
    }

    /// [`OffloadModel::breakdown`] over a faulty PCIe link: the bank
    /// shipment runs through the retry engine, its degraded transfer
    /// time replaces the clean one, and the per-attempt accounting is
    /// returned alongside. `transfer_id` identifies the shipment in the
    /// plan's coordinate space (e.g. the batch index), so a seeded plan
    /// replays the same fault history.
    #[allow(clippy::too_many_arguments)] // one coordinate per fault-model input
    pub fn breakdown_with_faults(
        &self,
        shape: &ProblemShape,
        n: usize,
        grid_bytes: f64,
        transfer_id: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        counters: &mut Counters,
    ) -> Result<(OffloadBreakdown, TransferReport), TransferError> {
        let mut b = self.breakdown(shape, n, grid_bytes);
        let report = self.bus.transfer_with_retries(
            b.bank_bytes,
            TransferKind::Banked,
            transfer_id,
            plan,
            policy,
            counters,
        )?;
        b.transfer_bank_s = self.marshal_s + report.total_s;
        Ok((b, report))
    }

    /// Whether offloading the lookups pays off for `n` particles, given
    /// `other_host_s` of non-lookup host work per generation to overlap
    /// the transfer behind (asynchronous transfer, §III-A3).
    pub fn offload_wins(&self, b: &OffloadBreakdown, other_host_s: f64) -> bool {
        let exposed_transfer = (b.transfer_bank_s - other_host_s).max(0.0);
        b.banking_host_s + exposed_transfer + b.compute_device_s < b.compute_host_s
    }
}

/// Per-iteration offload cost breakdown (the rows of Table II).
#[derive(Debug, Clone, Copy)]
pub struct OffloadBreakdown {
    /// Bank size in particles.
    pub n_particles: usize,
    /// Bank bytes shipped per iteration.
    pub bank_bytes: f64,
    /// Energy-grid bytes (shipped once at initialization).
    pub grid_bytes: f64,
    /// Time to bank the particles on the host.
    pub banking_host_s: f64,
    /// Time to bank on the device (for comparison).
    pub banking_device_s: f64,
    /// PCIe time for the bank (incl. marshaling).
    pub transfer_bank_s: f64,
    /// PCIe time for the energy grid (initialization, amortized).
    pub transfer_grid_s: f64,
    /// Banked lookup time on the device (incl. launch).
    pub compute_device_s: f64,
    /// The same lookups done scalar on the host.
    pub compute_host_s: f64,
}

impl OffloadBreakdown {
    /// Table II's structural claim: per iteration, the PCIe bank transfer
    /// dwarfs the device compute, which in turn dwarfs host-side banking.
    pub fn transfer_dominates(&self) -> bool {
        self.transfer_bank_s > self.compute_device_s && self.compute_device_s > self.banking_host_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(n_fuel: usize) -> ProblemShape {
        ProblemShape {
            nuclides_per_material: vec![n_fuel, 1, 3],
            union_points: 360_000,
            full_physics: false,
        }
    }

    #[test]
    fn table2_shape_transfer_dominates() {
        // Table II: the PCIe transfer is the most expensive operation,
        // for both model sizes.
        let m = OffloadModel::jlse();
        for n_fuel in [34usize, 320] {
            let b = m.breakdown(&shape(n_fuel + 5), 100_000, 1.31e9);
            assert!(b.transfer_bank_s > b.banking_host_s * 10.0);
            assert!(b.transfer_bank_s > b.compute_device_s);
            // Banking is cheaper on the host than on the device.
            assert!(b.banking_host_s < b.banking_device_s);
        }
    }

    #[test]
    fn table2_magnitudes_match_paper() {
        let m = OffloadModel::jlse();
        // H.M. Small, 1e5 particles: transfer ≈ 0.46 s; bank ≈ 0.5 GB.
        let b = m.breakdown(&shape(34), 100_000, 1.31e9);
        assert!(
            (b.bank_bytes - 4.96e8).abs() / 4.96e8 < 0.05,
            "{:.3e}",
            b.bank_bytes
        );
        assert!(
            (0.3..0.7).contains(&b.transfer_bank_s),
            "{}",
            b.transfer_bank_s
        );
        // H.M. Large: ≈ 2.84 GB, ≈ 2.2 s.
        let b = m.breakdown(&shape(320), 100_000, 8.37e9);
        assert!((b.bank_bytes - 2.84e9).abs() / 2.84e9 < 0.05);
        assert!(
            (1.8..2.7).contains(&b.transfer_bank_s),
            "{}",
            b.transfer_bank_s
        );
        // Grid: ~1 s per 5 GB.
        assert!((b.transfer_grid_s - 8.37 / 5.0).abs() < 0.1);
    }

    #[test]
    fn fig3_fixed_costs_amortize_with_n() {
        // The Fig. 3 trends: relative transfer and device-compute costs
        // fall with n; relative host compute rises toward its asymptote.
        let m = OffloadModel::jlse();
        let s = shape(39);
        let gen_time = |n: usize| 2e-3 + n as f64 * 20e-6; // fixed + linear host generation
        let ratios = |n: usize| {
            let b = m.breakdown(&s, n, 1.31e9);
            let g = gen_time(n);
            (
                b.transfer_bank_s / g,
                b.compute_device_s / g,
                b.compute_host_s / g,
            )
        };
        let (tr_small, dev_small, host_small) = ratios(1_000);
        let (tr_big, dev_big, host_big) = ratios(1_000_000);
        assert!(
            tr_big < tr_small,
            "transfer ratio should fall: {tr_small} → {tr_big}"
        );
        assert!(dev_big < dev_small, "device ratio should fall");
        assert!(host_big > host_small, "host ratio should rise");
    }

    #[test]
    fn faulty_link_degrades_but_preserves_structure() {
        use mcs_faults::TransferFaultKind;
        let m = OffloadModel::jlse();
        let s = shape(34);
        let clean = m.breakdown(&s, 100_000, 1.31e9);
        let plan = mcs_faults::FaultPlan::new(7)
            .with_transfer_fault(0, 1, TransferFaultKind::Corrupt)
            .with_transfer_fault(0, 2, TransferFaultKind::Timeout);
        let mut c = mcs_prof::Counters::new();
        let (faulty, report) = m
            .breakdown_with_faults(
                &s,
                100_000,
                1.31e9,
                0,
                &plan,
                &mcs_faults::RetryPolicy::pcie_default(),
                &mut c,
            )
            .unwrap();
        assert_eq!(report.attempts, 3);
        assert!(faulty.transfer_bank_s > clean.transfer_bank_s);
        // Everything that is not the bank transfer is untouched.
        assert_eq!(faulty.compute_device_s, clean.compute_device_s);
        assert_eq!(faulty.banking_host_s, clean.banking_host_s);
        assert_eq!(c.get("pcie.corruptions"), 1);
        assert_eq!(c.get("pcie.timeouts"), 1);
    }

    #[test]
    fn offload_crossover_around_ten_thousand() {
        // Fig. 3's conclusion (measured on H.M. Small): offloading wins
        // above ~10⁴ particles — fixed marshal/launch costs dominate
        // small banks, and asynchronous transfer hides behind the rest
        // of generation work once banks are large.
        let m = OffloadModel::jlse();
        let s = shape(34);
        let per_particle_other_host = 15e-6; // non-lookup generation work
        let wins = |n: usize| {
            let b = m.breakdown(&s, n, 1.31e9);
            m.offload_wins(&b, per_particle_other_host * n as f64)
        };
        assert!(!wins(1_000), "offload should lose at n=1e3");
        assert!(wins(100_000), "offload should win at n=1e5");
        assert!(wins(1_000_000), "offload should win at n=1e6");
    }
}
