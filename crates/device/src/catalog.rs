//! The device catalog: named accelerator models with calibration data.
//!
//! A [`DeviceSpec`] generalizes the hard-wired 2015 pair (KNC Phi +
//! Xeon host) into a pluggable entry: structural datasheet parameters
//! (cores/SMs, SIMD/warp width, clock, HBM bandwidth + capacity, host
//! link) live in an embedded [`MachineSpec`] + [`PcieBus`], per-device
//! power draw in [`PowerParams`], and — for entries fitted against a
//! published measurement — a [`Calibration`] record naming the source
//! paper, its reported rate, and the accepted band.
//!
//! | name            | class       | machine                               |
//! |-----------------|-------------|---------------------------------------|
//! | `host-e5-2687w` | CPU         | the paper's JLSE host Xeon            |
//! | `host-e5-2680`  | CPU         | the paper's cluster-node Xeon         |
//! | `knc-7120a`     | coprocessor | Xeon Phi 7120A (Knights Corner)       |
//! | `knc-se10p`     | coprocessor | Xeon Phi SE10P (TACC Stampede)        |
//! | `knl-projection`| CPU         | the paper's Knights Landing forecast  |
//! | `gpu-max-1100`  | GPU         | Intel Data Center GPU Max 1100        |
//! | `a100`          | GPU         | NVIDIA A100 (SXM, 40 GB)              |
//! | `mi250x`        | GPU         | AMD Instinct MI250X                   |
//!
//! The first five entries wrap the historic [`MachineSpec`] constructors
//! **bit-identically**: the embedded machine is the very same struct
//! value, priced by the very same kernel-time code, so every golden
//! harness number carries over unchanged (the legacy constructors stay
//! on as test oracles). The three GPU entries are new: structural
//! parameters from vendor datasheets, ♦-calibrated gather/call/libm
//! factors fitted so the modeled event-mode rate on the reference
//! workload lands within each entry's documented band of the rate its
//! source paper reports.

use mcs_core::engine::{DeviceOverrides, DeviceRef};

use crate::native::{NativeModel, TransportKind};
use crate::offload::OffloadModel;
use crate::pcie::PcieBus;
use crate::power::PowerSpec;
use crate::spec::{KernelCounts, MachineSpec};
use crate::symmetric::SymmetricModel;
use crate::workload::{segment_other_costs, xs_lookup_banked, xs_lookup_scalar, ProblemShape};

/// Names of all catalog entries, in presentation order.
pub const NAMES: [&str; 8] = [
    "host-e5-2687w",
    "host-e5-2680",
    "knc-7120a",
    "knc-se10p",
    "knl-projection",
    "gpu-max-1100",
    "a100",
    "mi250x",
];

/// One-line description per entry, parallel to [`NAMES`].
pub const DESCRIPTIONS: [&str; 8] = [
    "Xeon E5-2687W host CPU (the paper's JLSE node, default)",
    "Xeon E5-2680 cluster-node CPU",
    "Xeon Phi 7120A coprocessor (Knights Corner, the paper's MIC)",
    "Xeon Phi SE10P coprocessor (TACC Stampede variant)",
    "Knights Landing self-hosted projection (the paper's forecast)",
    "Intel Data Center GPU Max 1100 (calibrated vs arXiv:2403.02735)",
    "NVIDIA A100 SXM 40 GB (calibrated vs arXiv:2403.12345)",
    "AMD Instinct MI250X (calibrated vs arXiv:2403.12345)",
];

/// The broad architecture class of a device (drives the default
/// transport kind and per-batch overhead expectations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// Out-of-order host CPU.
    Cpu,
    /// In-order many-core coprocessor behind a PCIe link (KNC-style).
    Coprocessor,
    /// Discrete GPU (wide SIMT, HBM, offload-only).
    Gpu,
}

impl DeviceClass {
    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Cpu => "cpu",
            DeviceClass::Coprocessor => "coprocessor",
            DeviceClass::Gpu => "gpu",
        }
    }
}

/// Per-device power draw (replaces the name-sniffing dispatch the old
/// `PowerSpec::for_machine` did).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Draw under transport load, W.
    pub load_w: f64,
    /// Idle draw while waiting on other units, W.
    pub idle_w: f64,
}

/// A published measurement an entry's ♦ parameters were fitted against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Reported calculation rate (neutrons/s) for a depleted-fuel
    /// large-model transport run on one device.
    pub published_rate: f64,
    /// Where the number comes from.
    pub source: &'static str,
    /// Accepted relative deviation of the modeled rate (e.g. `0.30`).
    pub band: f64,
}

/// One catalog entry: a named, classed, calibrated device model.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Catalog name (`knc-7120a`, `a100`, ...).
    pub id: &'static str,
    /// One-line description (parallel to the catalog listing).
    pub description: &'static str,
    /// Architecture class.
    pub class: DeviceClass,
    /// The structural + ♦-calibrated machine model. For the legacy
    /// entries this is the historic constructor's exact struct value.
    pub machine: MachineSpec,
    /// The host link (PCIe or equivalent fabric).
    pub link: PcieBus,
    /// Power draw parameters.
    pub power: PowerParams,
    /// Calibration record, for entries fitted against a published rate.
    pub calibration: Option<Calibration>,
}

/// Is `name` a catalog entry?
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name)
}

/// The comma-separated entry list (for error messages and usage text).
pub fn names_joined() -> String {
    NAMES.join(", ")
}

/// The standard "no such device" message, naming the valid entries.
pub fn unknown_device(name: &str) -> String {
    format!(
        "unknown device \"{name}\" (valid catalog entries: {})",
        names_joined()
    )
}

/// Look up a catalog entry by name.
pub fn device(name: &str) -> Result<DeviceSpec, String> {
    let spec = match name {
        "host-e5-2687w" => DeviceSpec {
            id: "host-e5-2687w",
            description: DESCRIPTIONS[0],
            class: DeviceClass::Cpu,
            machine: MachineSpec::host_e5_2687w(),
            link: PcieBus::gen2_x16(),
            power: PowerParams {
                load_w: 300.0,
                idle_w: 120.0,
            },
            calibration: None,
        },
        "host-e5-2680" => DeviceSpec {
            id: "host-e5-2680",
            description: DESCRIPTIONS[1],
            class: DeviceClass::Cpu,
            machine: MachineSpec::host_e5_2680(),
            link: PcieBus::gen2_x16(),
            power: PowerParams {
                load_w: 300.0,
                idle_w: 120.0,
            },
            calibration: None,
        },
        "knc-7120a" => DeviceSpec {
            id: "knc-7120a",
            description: DESCRIPTIONS[2],
            class: DeviceClass::Coprocessor,
            machine: MachineSpec::mic_7120a(),
            link: PcieBus::gen2_x16(),
            power: PowerParams {
                load_w: 300.0,
                idle_w: 100.0,
            },
            calibration: None,
        },
        "knc-se10p" => DeviceSpec {
            id: "knc-se10p",
            description: DESCRIPTIONS[3],
            class: DeviceClass::Coprocessor,
            machine: MachineSpec::mic_se10p(),
            link: PcieBus::gen2_x16(),
            power: PowerParams {
                load_w: 300.0,
                idle_w: 100.0,
            },
            calibration: None,
        },
        "knl-projection" => DeviceSpec {
            id: "knl-projection",
            description: DESCRIPTIONS[4],
            class: DeviceClass::Cpu,
            machine: MachineSpec::knl_projection(),
            link: PcieBus::gen2_x16(),
            power: PowerParams {
                load_w: 215.0,
                idle_w: 70.0,
            },
            calibration: None,
        },
        // --- calibrated GPU entries ------------------------------------
        //
        // Structural fields are datasheet values mapped onto the model's
        // vocabulary: `cores` = Xe cores / SMs / CUs, `threads_per_core`
        // = resident hardware threads (warps/waves) used for latency
        // hiding, `f32_lanes` = SIMT width, `vector_ipc` = issue ports ×
        // per-clock vector throughput per core. The ♦ fields
        // (call/libm cycles, gather ns) are FITTED so the modeled
        // event-mode rate on the reference workload lands on the source
        // paper's published rate; see DESIGN.md §13.
        "gpu-max-1100" => DeviceSpec {
            id: "gpu-max-1100",
            description: DESCRIPTIONS[5],
            class: DeviceClass::Gpu,
            machine: MachineSpec {
                name: "Intel Data Center GPU Max 1100",
                cores: 56, // Xe cores
                threads_per_core: 8,
                clock_ghz: 1.55,
                f32_lanes: 16, // SIMD16 subgroups
                f64_lanes: 8,
                scalar_ipc: 1.0,
                vector_ipc: 8.0, // 8 vector engines per Xe core
                dep_latency_cycles: 8.0,
                call_cycles: 500.0,      // ♦
                libm_cycles: 800.0,      // ♦
                gather_scalar_ns: 0.080, // ♦
                gather_vector_ns: 0.011, // ♦
                dram_gb_s: 1228.8,       // HBM2e
                mem_gb: 48.0,
            },
            link: PcieBus {
                contiguous_gb_s: 55.0, // PCIe 5.0 x16
                banked_gb_s: 20.0,
                latency_s: 10e-6,
            },
            power: PowerParams {
                load_w: 300.0,
                idle_w: 100.0,
            },
            calibration: Some(Calibration {
                published_rate: 280_000.0,
                source: "arXiv:2403.02735 / arXiv:2403.12345 (OpenMC depleted \
                         large model, one GPU Max 1100-class device)",
                band: 0.30,
            }),
        },
        "a100" => DeviceSpec {
            id: "a100",
            description: DESCRIPTIONS[6],
            class: DeviceClass::Gpu,
            machine: MachineSpec {
                name: "NVIDIA A100 (SXM, 40 GB)",
                cores: 108, // SMs
                threads_per_core: 64,
                clock_ghz: 1.41,
                f32_lanes: 32, // warp width
                f64_lanes: 32, // full-rate FP64 datapath
                scalar_ipc: 1.0,
                vector_ipc: 4.0, // 4 warp schedulers per SM
                dep_latency_cycles: 8.0,
                call_cycles: 400.0,       // ♦
                libm_cycles: 600.0,       // ♦
                gather_scalar_ns: 0.040,  // ♦
                gather_vector_ns: 0.0065, // ♦
                dram_gb_s: 1555.0,        // HBM2e
                mem_gb: 40.0,
            },
            link: PcieBus {
                contiguous_gb_s: 26.0, // PCIe 4.0 x16
                banked_gb_s: 10.0,
                latency_s: 10e-6,
            },
            power: PowerParams {
                load_w: 400.0,
                idle_w: 80.0,
            },
            calibration: Some(Calibration {
                published_rate: 500_000.0,
                source: "arXiv:2403.12345 (OpenMC depleted large model, one A100)",
                band: 0.30,
            }),
        },
        "mi250x" => DeviceSpec {
            id: "mi250x",
            description: DESCRIPTIONS[7],
            class: DeviceClass::Gpu,
            machine: MachineSpec {
                name: "AMD Instinct MI250X",
                cores: 220, // CUs across both GCDs
                threads_per_core: 40,
                clock_ghz: 1.7,
                f32_lanes: 64, // wavefront width
                f64_lanes: 64,
                scalar_ipc: 1.0,
                vector_ipc: 2.0,
                dep_latency_cycles: 8.0,
                call_cycles: 400.0,       // ♦
                libm_cycles: 600.0,       // ♦
                gather_scalar_ns: 0.035,  // ♦
                gather_vector_ns: 0.0062, // ♦
                dram_gb_s: 3276.8,        // HBM2e, both stacks
                mem_gb: 128.0,
            },
            link: PcieBus {
                contiguous_gb_s: 36.0, // Infinity Fabric host link
                banked_gb_s: 14.0,
                latency_s: 5e-6,
            },
            power: PowerParams {
                load_w: 560.0,
                idle_w: 110.0,
            },
            calibration: Some(Calibration {
                published_rate: 560_000.0,
                source: "arXiv:2403.12345 (OpenMC depleted large model, one MI250X)",
                band: 0.30,
            }),
        },
        other => return Err(unknown_device(other)),
    };
    Ok(spec)
}

/// The machine model behind a catalog entry — the seam the figure and
/// table harnesses price kernels through. Panics on unknown names: the
/// catalog is static, so a miss is a programming error, not input.
pub fn machine(name: &str) -> MachineSpec {
    device(name).expect("static catalog entry").machine
}

/// All catalog entries, in [`NAMES`] order.
pub fn all() -> Vec<DeviceSpec> {
    NAMES
        .iter()
        .map(|n| device(n).expect("NAMES entries resolve"))
        .collect()
}

/// Resolve a plan-level [`DeviceRef`] (name + sparse numeric overrides)
/// to a concrete catalog entry. Overrides are validated here with the
/// same typed-message discipline the model catalog uses.
pub fn resolve(r: &DeviceRef) -> Result<DeviceSpec, String> {
    let mut dev = device(&r.name)?;
    let o: &DeviceOverrides = &r.overrides;
    if let Some(c) = o.cores {
        let c = u32::try_from(c).unwrap_or(0);
        if c == 0 {
            return Err("device override `cores` must be a positive core count".into());
        }
        dev.machine.cores = c;
    }
    if let Some(g) = o.clock_ghz {
        if !(g.is_finite() && g > 0.0) {
            return Err(format!(
                "device override `clock_ghz = {g}` must be a positive finite frequency"
            ));
        }
        dev.machine.clock_ghz = g;
    }
    if let Some(bw) = o.dram_gb_s {
        if !(bw.is_finite() && bw > 0.0) {
            return Err(format!(
                "device override `dram_gb_s = {bw}` must be a positive finite bandwidth"
            ));
        }
        dev.machine.dram_gb_s = bw;
    }
    if let Some(bw) = o.link_gb_s {
        if !(bw.is_finite() && bw > 0.0) {
            return Err(format!(
                "device override `link_gb_s = {bw}` must be a positive finite bandwidth"
            ));
        }
        // Scale both link regimes by the same factor so the banked
        // marshaling penalty is preserved.
        let factor = bw / dev.link.contiguous_gb_s;
        dev.link.contiguous_gb_s = bw;
        dev.link.banked_gb_s *= factor;
    }
    Ok(dev)
}

impl DeviceSpec {
    /// The transport kind this device class runs natively: GPUs only
    /// make sense with banked event kernels; CPUs and KNC-style
    /// coprocessors ran the paper's scalar history port.
    pub fn default_transport(&self) -> TransportKind {
        match self.class {
            DeviceClass::Gpu => TransportKind::EventBanked,
            _ => TransportKind::HistoryScalar,
        }
    }

    /// A native-execution model for this device (same overhead rule as
    /// the historic `NativeModel::new`, so legacy entries price
    /// bit-identically).
    pub fn native(&self, kind: TransportKind) -> NativeModel {
        NativeModel::new(self.machine, kind)
    }

    /// The power model for this device.
    pub fn power_spec(&self) -> PowerSpec {
        PowerSpec {
            load_w: self.power.load_w,
            idle_w: self.power.idle_w,
        }
    }

    /// Modeled calculation rate (neutrons/s) on the calibration
    /// reference workload (see [`reference_shape`]).
    pub fn modeled_native_rate(&self, kind: TransportKind) -> f64 {
        let model = self.native(kind);
        let n = REFERENCE_PARTICLES as f64;
        let counts = reference_particle_counts(kind).scale(n);
        n / (self.machine.kernel_time(&counts) + model.batch_overhead_s)
    }

    /// Modeled rate / published rate, for calibrated entries.
    pub fn calibration_ratio(&self) -> Option<f64> {
        self.calibration
            .map(|c| self.modeled_native_rate(self.default_transport()) / c.published_rate)
    }

    /// Does the modeled rate land inside the documented band of the
    /// published rate? `None` for uncalibrated (legacy-anchored) entries.
    pub fn within_calibration_band(&self) -> Option<bool> {
        let c = self.calibration?;
        let ratio = self.calibration_ratio()?;
        Some((ratio - 1.0).abs() <= c.band)
    }
}

impl OffloadModel {
    /// An offload pipeline from `host` to `device`, over the device's
    /// own link, with the paper's fixed marshal/launch costs.
    /// `between(host-e5-2687w, knc-7120a)` is the historic `jlse()`
    /// configuration, bit-identically.
    pub fn between(host: &DeviceSpec, device: &DeviceSpec) -> Self {
        Self {
            host: host.machine,
            device: device.machine,
            bus: device.link,
            marshal_s: 5e-3,
            launch_s: 8e-3,
        }
    }
}

impl SymmetricModel {
    /// A symmetric-mode rank set over catalog devices: one rank per
    /// device, each contributing its modeled rate in `kind` on the
    /// reference workload.
    pub fn from_devices(devices: &[DeviceSpec], kind: TransportKind) -> Self {
        let ranks: Vec<(&str, f64)> = devices
            .iter()
            .map(|d| (d.id, d.modeled_native_rate(kind)))
            .collect();
        Self::new(&ranks)
    }
}

/// Particles in the reference calibration batch.
pub const REFERENCE_PARTICLES: usize = 100_000;

/// The calibration reference workload's problem shape: the paper's
/// H.M. Large inventory (325 fuel nuclides, union grid, full physics).
pub fn reference_shape() -> ProblemShape {
    ProblemShape {
        nuclides_per_material: vec![325, 1, 3],
        union_points: 360_000,
        full_physics: true,
    }
}

/// Deterministic per-particle kernel counts for the reference workload:
/// 100 flight segments split 45 fuel / 5 clad / 50 water (the measured
/// H.M. Large segment mix), collision fraction 0.5.
pub fn reference_particle_counts(kind: TransportKind) -> KernelCounts {
    let shape = reference_shape();
    let mix: [(usize, f64); 3] = [(0, 45.0), (1, 5.0), (2, 50.0)];
    let mut total = KernelCounts::default();
    for (m, segs) in mix {
        let lookup = match kind {
            TransportKind::HistoryScalar => xs_lookup_scalar(&shape, m),
            TransportKind::EventBanked => xs_lookup_banked(&shape, m),
        };
        let per_segment = lookup.add(&segment_other_costs(&shape, m, 0.5));
        total = total.add(&per_segment.scale(segs));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_resolves_and_lists() {
        assert_eq!(NAMES.len(), DESCRIPTIONS.len());
        for (name, desc) in NAMES.iter().zip(DESCRIPTIONS) {
            let d = device(name).expect(name);
            assert_eq!(d.id, *name);
            assert_eq!(d.description, desc);
            assert!(d.machine.cores > 0 && d.machine.clock_ghz > 0.0);
            assert!(d.power.load_w > d.power.idle_w);
        }
        assert_eq!(all().len(), NAMES.len());
    }

    #[test]
    fn unknown_entry_names_the_catalog() {
        let e = device("warp-core").unwrap_err();
        assert!(e.contains("warp-core"));
        for name in NAMES {
            assert!(e.contains(name), "error should list {name}: {e}");
        }
    }

    // --- satellite 1: legacy oracles -----------------------------------
    //
    // The catalog's legacy entries must carry the historic constructors'
    // exact struct values, so every pre-existing harness number is
    // reproduced bit-identically when priced through the catalog path.

    #[test]
    fn legacy_entries_embed_the_historic_machines_bit_identically() {
        let pairs: [(&str, MachineSpec); 5] = [
            ("host-e5-2687w", MachineSpec::host_e5_2687w()),
            ("host-e5-2680", MachineSpec::host_e5_2680()),
            ("knc-7120a", MachineSpec::mic_7120a()),
            ("knc-se10p", MachineSpec::mic_se10p()),
            ("knl-projection", MachineSpec::knl_projection()),
        ];
        for (name, legacy) in pairs {
            let m = device(name).unwrap().machine;
            assert_eq!(m.name, legacy.name);
            assert_eq!(m.cores, legacy.cores);
            assert_eq!(m.threads_per_core, legacy.threads_per_core);
            assert_eq!(m.clock_ghz.to_bits(), legacy.clock_ghz.to_bits());
            assert_eq!(m.f32_lanes, legacy.f32_lanes);
            assert_eq!(m.f64_lanes, legacy.f64_lanes);
            assert_eq!(m.scalar_ipc.to_bits(), legacy.scalar_ipc.to_bits());
            assert_eq!(m.vector_ipc.to_bits(), legacy.vector_ipc.to_bits());
            assert_eq!(m.dep_latency_cycles, legacy.dep_latency_cycles);
            assert_eq!(m.call_cycles.to_bits(), legacy.call_cycles.to_bits());
            assert_eq!(m.libm_cycles.to_bits(), legacy.libm_cycles.to_bits());
            assert_eq!(
                m.gather_scalar_ns.to_bits(),
                legacy.gather_scalar_ns.to_bits()
            );
            assert_eq!(
                m.gather_vector_ns.to_bits(),
                legacy.gather_vector_ns.to_bits()
            );
            assert_eq!(m.dram_gb_s.to_bits(), legacy.dram_gb_s.to_bits());
            assert_eq!(m.mem_gb, legacy.mem_gb);
        }
    }

    #[test]
    fn legacy_entries_price_kernels_bit_identically() {
        // Same struct + same code ⇒ same bits; this pins the contract.
        let counts = reference_particle_counts(TransportKind::HistoryScalar).scale(1e5);
        for (name, legacy) in [
            ("knc-7120a", MachineSpec::mic_7120a()),
            ("host-e5-2687w", MachineSpec::host_e5_2687w()),
        ] {
            let dev = device(name).unwrap();
            assert_eq!(
                dev.machine.kernel_time(&counts).to_bits(),
                legacy.kernel_time(&counts).to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn legacy_power_matches_for_machine_dispatch() {
        for (name, legacy) in [
            ("host-e5-2687w", MachineSpec::host_e5_2687w()),
            ("host-e5-2680", MachineSpec::host_e5_2680()),
            ("knc-7120a", MachineSpec::mic_7120a()),
            ("knc-se10p", MachineSpec::mic_se10p()),
            ("knl-projection", MachineSpec::knl_projection()),
        ] {
            let dev = device(name).unwrap();
            let old = PowerSpec::for_machine(&legacy);
            let new = dev.power_spec();
            assert_eq!(new.load_w.to_bits(), old.load_w.to_bits(), "{name}");
            assert_eq!(new.idle_w.to_bits(), old.idle_w.to_bits(), "{name}");
        }
    }

    #[test]
    fn between_host_and_knc_is_the_jlse_pipeline() {
        let host = device("host-e5-2687w").unwrap();
        let knc = device("knc-7120a").unwrap();
        let new = OffloadModel::between(&host, &knc);
        let old = OffloadModel::jlse();
        let b_new = new.breakdown(&reference_shape(), 100_000, 8.37e9);
        let b_old = old.breakdown(&reference_shape(), 100_000, 8.37e9);
        assert_eq!(
            b_new.transfer_bank_s.to_bits(),
            b_old.transfer_bank_s.to_bits()
        );
        assert_eq!(
            b_new.compute_device_s.to_bits(),
            b_old.compute_device_s.to_bits()
        );
        assert_eq!(
            b_new.compute_host_s.to_bits(),
            b_old.compute_host_s.to_bits()
        );
    }

    // --- calibration ---------------------------------------------------

    #[test]
    fn calibrated_entries_land_in_their_documented_band() {
        let mut calibrated = 0;
        for dev in all() {
            if let Some(ok) = dev.within_calibration_band() {
                calibrated += 1;
                let ratio = dev.calibration_ratio().unwrap();
                assert!(
                    ok,
                    "{}: modeled/published = {ratio:.3}, band ±{}",
                    dev.id,
                    dev.calibration.unwrap().band
                );
            }
        }
        assert!(calibrated >= 3, "need ≥3 calibrated entries");
    }

    #[test]
    fn legacy_rates_keep_the_paper_alpha() {
        // The reference workload must reproduce the paper's α ≈ 0.61
        // CPU/MIC ratio — anchoring the new calibration machinery to the
        // old Table III numbers.
        let cpu = device("host-e5-2687w").unwrap();
        let mic = device("knc-7120a").unwrap();
        let k = TransportKind::HistoryScalar;
        let alpha = cpu.modeled_native_rate(k) / mic.modeled_native_rate(k);
        assert!((0.5..0.8).contains(&alpha), "alpha = {alpha:.3}");
    }

    #[test]
    fn gpus_outrate_the_legacy_devices() {
        let knc = device("knc-7120a").unwrap();
        let knc_rate = knc.modeled_native_rate(TransportKind::EventBanked);
        for name in ["gpu-max-1100", "a100", "mi250x"] {
            let gpu = device(name).unwrap();
            assert_eq!(gpu.class, DeviceClass::Gpu);
            let rate = gpu.modeled_native_rate(gpu.default_transport());
            assert!(rate > knc_rate, "{name}: {rate:.0} ≤ knc {knc_rate:.0}");
        }
    }

    // --- overrides -----------------------------------------------------

    #[test]
    fn resolve_applies_sparse_overrides() {
        let r = DeviceRef {
            name: "a100".into(),
            overrides: DeviceOverrides {
                cores: Some(54),
                clock_ghz: Some(1.1),
                dram_gb_s: Some(800.0),
                link_gb_s: Some(13.0),
            },
        };
        let dev = resolve(&r).unwrap();
        let base = device("a100").unwrap();
        assert_eq!(dev.machine.cores, 54);
        assert_eq!(dev.machine.clock_ghz, 1.1);
        assert_eq!(dev.machine.dram_gb_s, 800.0);
        assert_eq!(dev.link.contiguous_gb_s, 13.0);
        // banked bandwidth scales with the same factor
        assert!((dev.link.banked_gb_s - base.link.banked_gb_s * 0.5).abs() < 1e-12);
        // untouched fields stay catalogued
        assert_eq!(dev.machine.f32_lanes, base.machine.f32_lanes);
    }

    #[test]
    fn resolve_rejects_bad_overrides() {
        let bad = |o: DeviceOverrides| {
            resolve(&DeviceRef {
                name: "a100".into(),
                overrides: o,
            })
            .unwrap_err()
        };
        assert!(bad(DeviceOverrides {
            cores: Some(0),
            ..Default::default()
        })
        .contains("cores"));
        assert!(bad(DeviceOverrides {
            clock_ghz: Some(-1.0),
            ..Default::default()
        })
        .contains("clock_ghz"));
        assert!(bad(DeviceOverrides {
            dram_gb_s: Some(f64::NAN),
            ..Default::default()
        })
        .contains("dram_gb_s"));
        assert!(bad(DeviceOverrides {
            link_gb_s: Some(0.0),
            ..Default::default()
        })
        .contains("link_gb_s"));
        assert!(resolve(&DeviceRef {
            name: "warp-core".into(),
            overrides: DeviceOverrides::default(),
        })
        .unwrap_err()
        .contains("warp-core"));
    }

    #[test]
    fn default_device_ref_resolves_to_the_default_host() {
        let dev = resolve(&DeviceRef::default()).unwrap();
        assert_eq!(dev.id, "host-e5-2687w");
    }

    #[test]
    fn symmetric_from_devices_matches_manual_construction() {
        let devs = [
            device("host-e5-2687w").unwrap(),
            device("knc-7120a").unwrap(),
        ];
        let k = TransportKind::HistoryScalar;
        let m = SymmetricModel::from_devices(&devs, k);
        let manual = SymmetricModel::new(&[
            ("host-e5-2687w", devs[0].modeled_native_rate(k)),
            ("knc-7120a", devs[1].modeled_native_rate(k)),
        ]);
        assert_eq!(
            m.balanced_rate(100_000).to_bits(),
            manual.balanced_rate(100_000).to_bits()
        );
    }
}
