//! Kernel operation-count models.
//!
//! Each function converts a workload description into [`KernelCounts`]
//! that the machine model prices. Per-element op counts are derived from
//! the actual Rust kernels in `mcs-xs` and `mcs-core` (ops per nuclide,
//! per binary-search step, per collision); data-volume constants for the
//! OpenMC particle bank come from Table II (see [`bank_bytes_per_particle`]).

use crate::spec::KernelCounts;

/// A problem's shape as the cost models need it.
#[derive(Debug, Clone)]
pub struct ProblemShape {
    /// Nuclides per material, indexed by material id.
    pub nuclides_per_material: Vec<usize>,
    /// Points in the unionized energy grid.
    pub union_points: usize,
    /// Whether S(α,β)/URR branches run per lookup.
    pub full_physics: bool,
}

impl ProblemShape {
    /// Binary-search trip count on the union grid.
    fn search_steps(&self) -> f64 {
        (self.union_points.max(2) as f64).log2().ceil()
    }
}

/// One *scalar* (history-style) macroscopic XS lookup in material `m`:
/// union-grid binary search + a scalar loop over nuclides reading the
/// AoS/derived-type tables.
pub fn xs_lookup_scalar(shape: &ProblemShape, m: usize) -> KernelCounts {
    let n = shape.nuclides_per_material[m] as f64;
    let steps = shape.search_steps();
    let physics = if shape.full_physics { 80.0 } else { 0.0 };
    KernelCounts {
        // Each search step: one dependent compare on a fetched value.
        dependent_scalar: 3.0 * steps,
        // 12 random loads per nuclide: e0/e1 + 5 reactions × 2 points.
        gather_scalar: steps + 12.0 * n,
        scalar: 30.0 * n + physics,
        libm: if shape.full_physics { 0.2 } else { 0.0 },
        ..Default::default()
    }
}

/// One *banked/vectorized* lookup (SoA + inner-loop-over-nuclides SIMD):
/// same search, but table reads become prefetched vector gathers and the
/// arithmetic becomes lane ops.
pub fn xs_lookup_banked(shape: &ProblemShape, m: usize) -> KernelCounts {
    let n = shape.nuclides_per_material[m] as f64;
    let steps = shape.search_steps();
    KernelCounts {
        dependent_scalar: 3.0 * steps,
        gather_scalar: steps,
        gather_vector: 12.0 * n,
        vector_lanes: 20.0 * n,
        ..Default::default()
    }
}

/// Per-element counts for the Table-I *naive* kernel (Algorithm 3):
/// `rand_r` (a dependent multiply chain behind an opaque call) + scalar
/// libm log + division.
pub fn distance_naive_per_element() -> KernelCounts {
    KernelCounts {
        dependent_scalar: 3.0,
        scalar: 5.0,
        calls: 2.0,
        libm: 1.0,
        stream_bytes: 12.0,
        ..Default::default()
    }
}

/// Per-element counts for *optimized-1* (batch RNG + compiler-vectorized
/// loop): counter-based RNG lanes + polynomial log lanes + div; R is
/// written then re-read (20 B/element of streaming traffic).
pub fn distance_opt1_per_element() -> KernelCounts {
    KernelCounts {
        vector_lanes: 18.0,
        stream_bytes: 20.0,
        ..Default::default()
    }
}

/// Per-element counts for *optimized-2* (Algorithm 4: manual intrinsics +
/// tuned prefetch): ~15% fewer lane ops than the compiler's version.
pub fn distance_opt2_per_element() -> KernelCounts {
    KernelCounts {
        vector_lanes: 15.5,
        stream_bytes: 20.0,
        ..Default::default()
    }
}

/// Geometry + collision-handling cost per flight segment (everything in a
/// segment that is *not* the XS lookup): ray tracing, the scatter-nuclide
/// walk (on the `collision_fraction` of segments that collide and
/// scatter), RNG and kinematics.
pub fn segment_other_costs(
    shape: &ProblemShape,
    m: usize,
    collision_fraction: f64,
) -> KernelCounts {
    let n = shape.nuclides_per_material[m] as f64;
    let scatter_fraction = 0.6 * collision_fraction;
    KernelCounts {
        scalar: 250.0 + scatter_fraction * 4.0 * n,
        gather_scalar: scatter_fraction * 2.0 * n,
        libm: 1.0, // the −ln ξ of distance sampling
        ..Default::default()
    }
}

/// Per-segment cost of scoring a user-defined mesh tally: the DDA walk
/// (a few cells per flight segment) plus the bin updates — scalar,
/// branchy work (§III-B1: "α differs between active and inactive batches,
/// particularly if user-defined tallies are collected throughout phase
/// space").
pub fn mesh_tally_segment_cost() -> KernelCounts {
    KernelCounts {
        scalar: 90.0,
        dependent_scalar: 12.0,
        stream_bytes: 24.0,
        ..Default::default()
    }
}

/// Full per-segment cost for history-style (scalar) transport.
pub fn history_segment(shape: &ProblemShape, m: usize, collision_fraction: f64) -> KernelCounts {
    xs_lookup_scalar(shape, m).add(&segment_other_costs(shape, m, collision_fraction))
}

/// Full per-segment cost for event-style transport on a wide device
/// (banked lookups; geometry and collisions stay scalar).
pub fn event_segment(shape: &ProblemShape, m: usize, collision_fraction: f64) -> KernelCounts {
    xs_lookup_banked(shape, m).add(&segment_other_costs(shape, m, collision_fraction))
}

/// Bytes of particle state shipped per banked particle, as a function of
/// the nuclide count.
///
/// Calibrated to Table II: OpenMC's particle carries a per-nuclide
/// microscopic-XS cache, so the banked state is `≈ 2,140 B + 83 B ×
/// n_nuclides` (496 MB / 10⁵ particles at 34 nuclides; 2.84 GB / 10⁵ at
/// 320).
pub fn bank_bytes_per_particle(n_nuclides: usize) -> f64 {
    2_140.0 + 83.0 * n_nuclides as f64
}

/// Time (ns) to bank one particle on the host (write-intensive,
/// unvectorized; Table II: 4 ms / 10⁵ particles regardless of model).
pub fn banking_ns_host() -> f64 {
    40.0
}

/// Time (ns) to bank one particle on the MIC (Table II: 21 ms and 34 ms
/// per 10⁵ particles for the 34- and 320-nuclide models).
pub fn banking_ns_mic(n_nuclides: usize) -> f64 {
    195.0 + 0.455 * n_nuclides as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    fn hm_large_shape() -> ProblemShape {
        ProblemShape {
            nuclides_per_material: vec![325, 1, 3],
            union_points: 360_000,
            full_physics: true,
        }
    }

    #[test]
    fn banked_lookup_beats_scalar_on_mic_by_an_order() {
        // The Fig. 2 shape: banked/MIC ≈ 10× history/CPU per lookup.
        let shape = ProblemShape {
            full_physics: false,
            ..hm_large_shape()
        };
        let cpu = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        let t_history_cpu = cpu.kernel_time(&xs_lookup_scalar(&shape, 0));
        let t_banked_mic = mic.kernel_time(&xs_lookup_banked(&shape, 0));
        let speedup = t_history_cpu / t_banked_mic;
        assert!(
            (7.0..14.0).contains(&speedup),
            "banked speedup = {speedup:.2} (target ≈ 10)"
        );
    }

    #[test]
    fn alpha_matches_paper_window() {
        // Fig. 5 / Table III: α = rate_cpu / rate_mic ≈ 0.62 for native
        // full-physics history transport on H.M. Large.
        let shape = hm_large_shape();
        let cpu = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        // Segment mix: time is dominated by fuel lookups.
        let mix = [(0usize, 0.45), (1, 0.05), (2, 0.50)];
        let time = |spec: &MachineSpec| -> f64 {
            mix.iter()
                .map(|&(m, w)| w * spec.kernel_time(&history_segment(&shape, m, 0.5)))
                .sum()
        };
        let alpha = time(&mic) / time(&cpu);
        assert!(
            (0.52..0.72).contains(&alpha),
            "alpha = {alpha:.3} (paper: 0.61–0.62)"
        );
    }

    #[test]
    fn naive_distance_kernel_is_catastrophic_on_mic() {
        // Table I: naive MIC / naive CPU ≈ 20×.
        let cpu = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        let c = distance_naive_per_element().scale(1e11);
        let t_cpu = cpu.kernel_time_ext(&c, true);
        let t_mic = mic.kernel_time_ext(&c, true);
        let ratio = t_mic / t_cpu;
        assert!((8.0..30.0).contains(&ratio), "naive MIC/CPU = {ratio:.1}");
        // And the CPU's own naive time is two orders above its optimized
        // time (412 s vs 36.6 s in the paper is ~11x; we accept 5–50x).
        let t_cpu_opt = cpu.kernel_time_ext(&distance_opt2_per_element().scale(1e11), true);
        let self_speedup = t_cpu / t_cpu_opt;
        assert!(
            (5.0..50.0).contains(&self_speedup),
            "cpu naive/opt2 = {self_speedup:.1}"
        );
    }

    #[test]
    fn optimized_distance_kernel_prefers_mic() {
        // Table I: opt-2 MIC ≈ 1.9× faster than opt-2 CPU.
        let cpu = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        let c = distance_opt2_per_element().scale(1e11);
        let ratio = cpu.kernel_time_ext(&c, true) / mic.kernel_time_ext(&c, true);
        assert!((1.5..3.5).contains(&ratio), "opt2 CPU/MIC = {ratio:.2}");
    }

    #[test]
    fn opt1_is_slower_than_opt2_everywhere() {
        for spec in [MachineSpec::host_e5_2687w(), MachineSpec::mic_7120a()] {
            let t1 = spec.kernel_time_ext(&distance_opt1_per_element().scale(1e9), true);
            let t2 = spec.kernel_time_ext(&distance_opt2_per_element().scale(1e9), true);
            assert!(t1 >= t2, "{}", spec.name);
        }
    }

    #[test]
    fn bank_bytes_reproduce_table2() {
        // 10⁵ particles: H.M. Small ≈ 496 MB, H.M. Large ≈ 2.84 GB.
        let small = bank_bytes_per_particle(34) * 1e5;
        let large = bank_bytes_per_particle(320) * 1e5;
        assert!((small - 496e6).abs() / 496e6 < 0.01, "small = {small:.3e}");
        assert!(
            (large - 2.84e9).abs() / 2.84e9 < 0.02,
            "large = {large:.3e}"
        );
    }

    #[test]
    fn banking_times_reproduce_table2() {
        // Host: 4 ms / 1e5; MIC: 21 ms (small), 34 ms (large).
        assert!((banking_ns_host() * 1e5 * 1e-9 - 4e-3).abs() < 1e-3);
        let mic_small = banking_ns_mic(34) * 1e5 * 1e-9;
        let mic_large = banking_ns_mic(320) * 1e5 * 1e-9;
        assert!((mic_small - 21e-3).abs() < 2e-3, "{mic_small}");
        assert!((mic_large - 34e-3).abs() < 2e-3, "{mic_large}");
    }
}
