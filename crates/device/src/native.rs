//! Native-mode execution: the whole application on one machine.
//!
//! The physics runs for real (host transport); the *reported time* for a
//! batch on a given [`MachineSpec`] comes from pricing the batch's actual
//! instrumented counts (segments and collisions per material) with the
//! workload models. This is what regenerates Fig. 4 (routine-level
//! profile), Fig. 5 (calculation rate vs particle count) and the α values.

use mcs_core::problem::Problem;
use mcs_core::tally::Tallies;

use crate::spec::{KernelCounts, MachineSpec};
use crate::workload::{
    mesh_tally_segment_cost, segment_other_costs, xs_lookup_banked, xs_lookup_scalar, ProblemShape,
};

/// Which kernel style the machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Scalar history-based loops (the paper's native-mode port).
    HistoryScalar,
    /// Banked, vectorized XS lookups (the event-based engine).
    EventBanked,
}

/// Extract the cost-model shape from a problem. The search-space size
/// comes from the instrumented context layer: for the unionized backend
/// this is the union point count, for the alternatives the equivalent
/// per-lookup search space ([`mcs_xs::XsContext::search_points`]).
pub fn shape_of(problem: &Problem) -> ProblemShape {
    ProblemShape {
        nuclides_per_material: problem.materials.iter().map(|m| m.len()).collect(),
        union_points: problem.xs.search_points(),
        full_physics: problem.physics.any(),
    }
}

/// A machine executing transport natively.
#[derive(Debug, Clone, Copy)]
pub struct NativeModel {
    /// The machine.
    pub spec: MachineSpec,
    /// Kernel style.
    pub kind: TransportKind,
    /// Fixed per-batch overhead (thread fork/join, tally reduction), s.
    pub batch_overhead_s: f64,
    /// Score a user-defined mesh tally on every segment (the active-batch
    /// configuration of §III-B1).
    pub mesh_tally: bool,
}

impl NativeModel {
    /// Native model with the default per-batch overhead for this machine
    /// class (in-order coprocessors pay more for fork/join + reduction).
    pub fn new(spec: MachineSpec, kind: TransportKind) -> Self {
        let batch_overhead_s = if spec.threads_per_core >= 4 {
            8e-3
        } else {
            2e-3
        };
        Self {
            spec,
            kind,
            batch_overhead_s,
            mesh_tally: false,
        }
    }

    /// Enable per-segment user-defined mesh-tally scoring.
    pub fn with_mesh_tally(mut self) -> Self {
        self.mesh_tally = true;
        self
    }

    /// Total counts for a batch with the given instrumented tallies.
    pub fn batch_counts(&self, shape: &ProblemShape, t: &Tallies) -> KernelCounts {
        let mut total = KernelCounts::default();
        for m in 0..shape.nuclides_per_material.len().min(8) {
            let segs = t.segments_by_material[m] as f64;
            if segs == 0.0 {
                continue;
            }
            let colls = t.collisions_by_material[m] as f64;
            let cf = colls / segs;
            let lookup = match self.kind {
                TransportKind::HistoryScalar => xs_lookup_scalar(shape, m),
                TransportKind::EventBanked => xs_lookup_banked(shape, m),
            };
            let mut per_segment = lookup.add(&segment_other_costs(shape, m, cf));
            if self.mesh_tally {
                per_segment = per_segment.add(&mesh_tally_segment_cost());
            }
            total = total.add(&per_segment.scale(segs));
        }
        total
    }

    /// Modeled wall time for the batch.
    pub fn batch_time(&self, shape: &ProblemShape, t: &Tallies) -> f64 {
        self.spec.kernel_time(&self.batch_counts(shape, t)) + self.batch_overhead_s
    }

    /// Modeled calculation rate (neutrons/second).
    pub fn calc_rate(&self, shape: &ProblemShape, t: &Tallies) -> f64 {
        t.n_particles as f64 / self.batch_time(shape, t)
    }

    /// Routine-level time breakdown, Fig.-4 style:
    /// `(calculate_xs, distance_to_boundary+geometry, sample_reaction)`
    /// in seconds.
    pub fn profile_breakdown(&self, shape: &ProblemShape, t: &Tallies) -> [(String, f64); 3] {
        let mut xs = KernelCounts::default();
        let mut other = KernelCounts::default();
        for m in 0..shape.nuclides_per_material.len().min(8) {
            let segs = t.segments_by_material[m] as f64;
            if segs == 0.0 {
                continue;
            }
            let cf = t.collisions_by_material[m] as f64 / segs;
            let lookup = match self.kind {
                TransportKind::HistoryScalar => xs_lookup_scalar(shape, m),
                TransportKind::EventBanked => xs_lookup_banked(shape, m),
            };
            xs = xs.add(&lookup.scale(segs));
            other = other.add(&segment_other_costs(shape, m, cf).scale(segs));
        }
        // Split "other" into geometry (the flat 250-op part) and
        // collision handling (the nuclide-walk part) by their scalar
        // shares.
        let geom_share = {
            let total_scalar = other.scalar.max(1.0);
            let geom_scalar = t.segments as f64 * 250.0;
            (geom_scalar / total_scalar).min(1.0)
        };
        let t_other = self.spec.kernel_time(&other);
        [
            ("calculate_xs".to_string(), self.spec.kernel_time(&xs)),
            ("distance_to_boundary".to_string(), t_other * geom_share),
            ("sample_reaction".to_string(), t_other * (1.0 - geom_share)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
    use mcs_core::history::batch_streams;

    fn measured_tallies() -> (ProblemShape, Tallies) {
        let problem = Problem::test_small();
        let sources = problem.sample_initial_source(300, 0);
        let streams = batch_streams(problem.seed, 0, 300);
        let out = transport_batch(
            &problem,
            &sources,
            &streams,
            &BatchRequest::default(),
            &mut Threaded::ambient(),
        )
        .outcome;
        (shape_of(&problem), out.tallies)
    }

    #[test]
    fn shape_of_reads_problem() {
        let problem = Problem::test_small();
        let shape = shape_of(&problem);
        assert_eq!(shape.nuclides_per_material.len(), 3);
        assert!(shape.union_points > 0);
        assert!(shape.full_physics);
    }

    #[test]
    fn mic_native_history_beats_host_by_about_1_6x() {
        // Fig. 5's headline: MIC native ≈ 1.6× the host calculation rate
        // (α ≈ 0.62) on real measured segment mixes.
        let (_, mut t) = measured_tallies();
        // Scale the measured mix up to a realistic batch so the fixed
        // per-batch overhead amortizes (the tiny test run has only 300
        // particles).
        t.n_particles *= 1000;
        t.segments *= 1000;
        t.collisions *= 1000;
        for i in 0..8 {
            t.segments_by_material[i] *= 1000;
            t.collisions_by_material[i] *= 1000;
        }
        // H.M.-Large-like nuclide counts for the cost model (the test
        // problem uses the tiny library).
        let shape = ProblemShape {
            nuclides_per_material: vec![325, 1, 3],
            union_points: 360_000,
            full_physics: true,
        };
        let host = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
        let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
        let r_host = host.calc_rate(&shape, &t);
        let r_mic = mic.calc_rate(&shape, &t);
        let alpha = r_host / r_mic;
        assert!((0.5..0.8).contains(&alpha), "alpha = {alpha:.3}");
    }

    #[test]
    fn user_defined_tallies_cost_time_but_barely_move_alpha() {
        // §III-B1 has two claims: α *can* differ between inactive and
        // active batches when user-defined tallies run, but with the
        // paper's (and our) cheap tallies against 300-nuclide lookups
        // "there is little distinction". Verify both: the tally costs
        // real time on both machines, yet α_a stays within ~2% of α_i.
        let (_, t) = measured_tallies();
        let shape = ProblemShape {
            nuclides_per_material: vec![325, 1, 3],
            union_points: 360_000,
            full_physics: true,
        };
        let host = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
        let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
        let host_m = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar)
            .with_mesh_tally();
        let mic_m = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar)
            .with_mesh_tally();

        // Mechanism: scoring costs time on both machines.
        assert!(host_m.batch_time(&shape, &t) > host.batch_time(&shape, &t));
        assert!(mic_m.batch_time(&shape, &t) > mic.batch_time(&shape, &t));

        let alpha_i = host.calc_rate(&shape, &t) / mic.calc_rate(&shape, &t);
        let alpha_a = host_m.calc_rate(&shape, &t) / mic_m.calc_rate(&shape, &t);
        let shift = (alpha_a / alpha_i - 1.0).abs();
        assert!(
            shift < 0.02,
            "cheap tallies moved alpha by {:.1}%",
            shift * 100.0
        );
    }

    #[test]
    fn banked_event_mode_is_faster_than_scalar_on_mic() {
        let (_, t) = measured_tallies();
        let shape = ProblemShape {
            nuclides_per_material: vec![325, 1, 3],
            union_points: 360_000,
            full_physics: false,
        };
        let scalar = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
        let banked = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::EventBanked);
        assert!(banked.batch_time(&shape, &t) < scalar.batch_time(&shape, &t));
    }

    #[test]
    fn rate_collapses_at_tiny_particle_counts() {
        // Fig. 5: rates drop below ~10⁴ particles because fixed batch
        // overhead stops amortizing.
        let (shape, t) = measured_tallies();
        let host = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
        let rate_full = host.calc_rate(&shape, &t);
        // Same per-particle counts, 100x fewer particles.
        let mut tiny = t;
        tiny.n_particles /= 100;
        tiny.segments /= 100;
        tiny.collisions /= 100;
        for i in 0..8 {
            tiny.segments_by_material[i] /= 100;
            tiny.collisions_by_material[i] /= 100;
        }
        let rate_tiny = host.calc_rate(&shape, &tiny);
        assert!(rate_tiny < rate_full, "{rate_tiny} !< {rate_full}");
    }

    #[test]
    fn profile_breakdown_is_topped_by_calculate_xs() {
        // Fig. 4: the top routine on both machines is the XS lookup.
        let (_, t) = measured_tallies();
        let shape = ProblemShape {
            nuclides_per_material: vec![325, 1, 3],
            union_points: 360_000,
            full_physics: true,
        };
        for spec in [MachineSpec::host_e5_2687w(), MachineSpec::mic_7120a()] {
            let model = NativeModel::new(spec, TransportKind::HistoryScalar);
            let prof = model.profile_breakdown(&shape, &t);
            assert!(prof[0].1 > prof[1].1 && prof[0].1 > prof[2].1, "{prof:?}");
        }
    }
}
