//! Energy expenditure analysis — the paper's §V direction:
//!
//! > "an interesting future direction is analyzing energy expenditures in
//! > MC neutron transport. Host-attached devices, such as MIC and GPU
//! > devices, show excellent performance per watt."
//!
//! A simple board-power model (TDP under load, idle floor) turns the
//! machine model's batch times into joules and neutrons-per-joule, the
//! metric that makes the coprocessor case: a MIC that is only 1.6× faster
//! still wins ~1.5× on energy because its time saving outruns its power
//! premium — and a host *idling* while its coprocessors work still burns
//! its idle floor, which is why symmetric mode (everyone works) also wins
//! the energy comparison.

use crate::spec::MachineSpec;

/// Board-level power characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// Sustained power under full load, watts.
    pub load_w: f64,
    /// Idle floor, watts.
    pub idle_w: f64,
}

impl PowerSpec {
    /// Power numbers for the known machines (TDP-based: 2×150 W for the
    /// dual-socket hosts, 300 W boards for the 7120A/SE10P class).
    pub fn for_machine(spec: &MachineSpec) -> PowerSpec {
        if spec.name.contains("Knights Landing") {
            // Socketed successor: 215 W TDP, host-like idle management.
            PowerSpec {
                load_w: 215.0,
                idle_w: 70.0,
            }
        } else if spec.threads_per_core >= 4 {
            // Coprocessor class.
            PowerSpec {
                load_w: 300.0,
                idle_w: 100.0,
            }
        } else {
            // Dual-socket host class.
            PowerSpec {
                load_w: 300.0,
                idle_w: 120.0,
            }
        }
    }

    /// Power numbers for a device-catalog entry (per-device TDP fields;
    /// this is [`crate::catalog::DeviceSpec::power_spec`], exposed here
    /// for symmetry with the legacy [`PowerSpec::for_machine`]).
    pub fn for_device(dev: &crate::catalog::DeviceSpec) -> PowerSpec {
        dev.power_spec()
    }

    /// Energy for `busy_s` seconds of load followed by `idle_s` of idling.
    pub fn energy_j(&self, busy_s: f64, idle_s: f64) -> f64 {
        self.load_w * busy_s + self.idle_w * idle_s
    }
}

/// Energy report for one batch on one device set.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Configuration label.
    pub label: String,
    /// Batch wall time, seconds.
    pub wall_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Particles simulated.
    pub particles: u64,
}

impl EnergyReport {
    /// Neutrons per joule — the efficiency metric.
    pub fn neutrons_per_joule(&self) -> f64 {
        self.particles as f64 / self.energy_j
    }

    /// Mean power, watts.
    pub fn mean_power_w(&self) -> f64 {
        self.energy_j / self.wall_s
    }
}

/// Energy for a batch executed by a set of `(power, busy seconds)` units;
/// the batch's wall time is the slowest unit, and every unit idles (at
/// its floor) for the remainder.
pub fn batch_energy(label: &str, units: &[(PowerSpec, f64)], particles: u64) -> EnergyReport {
    let wall = units.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    let energy = units.iter().map(|&(p, t)| p.energy_j(t, wall - t)).sum();
    EnergyReport {
        label: label.to_string(),
        wall_s: wall,
        energy_j: energy,
        particles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    #[test]
    fn power_classes_resolve() {
        let host = PowerSpec::for_machine(&MachineSpec::host_e5_2687w());
        let mic = PowerSpec::for_machine(&MachineSpec::mic_7120a());
        assert!(host.idle_w > mic.idle_w);
        assert_eq!(mic.load_w, 300.0);
    }

    #[test]
    fn knl_gets_its_own_power_class() {
        let knl = PowerSpec::for_machine(&MachineSpec::knl_projection());
        assert_eq!(knl.load_w, 215.0);
    }

    #[test]
    fn energy_accounts_idle_tail() {
        let p = PowerSpec {
            load_w: 200.0,
            idle_w: 50.0,
        };
        assert!((p.energy_j(2.0, 3.0) - (400.0 + 150.0)).abs() < 1e-12);
    }

    #[test]
    fn faster_device_wins_perf_per_watt() {
        // The paper's Fig. 5 regime: MIC 1.6x faster at equal board power
        // ⇒ ~1.6x the neutrons per joule.
        let host_p = PowerSpec::for_machine(&MachineSpec::host_e5_2687w());
        let mic_p = PowerSpec::for_machine(&MachineSpec::mic_7120a());
        let n = 100_000u64;
        let host = batch_energy("cpu", &[(host_p, 24.7)], n); // 4,050 n/s
        let mic = batch_energy("mic", &[(mic_p, 15.1)], n); // 6,641 n/s
        assert!(mic.neutrons_per_joule() > 1.4 * host.neutrons_per_joule());
    }

    #[test]
    fn symmetric_mode_beats_offloading_the_idle_host() {
        // CPU+2MIC with everyone working vs MICs working while the host
        // idles: same MIC time, but the host contribution both shortens
        // the batch and stops burning pure idle watts.
        let host_p = PowerSpec::for_machine(&MachineSpec::host_e5_2687w());
        let mic_p = PowerSpec::for_machine(&MachineSpec::mic_7120a());
        let n = 100_000u64;
        // Balanced symmetric: each rank busy ~5.8 s (17,332 n/s combined).
        let symmetric = batch_energy(
            "cpu+2mic symmetric",
            &[(host_p, 5.8), (mic_p, 5.8), (mic_p, 5.8)],
            n,
        );
        // MICs only (host idles the whole time): 2×6,641 n/s → 7.5 s.
        let mics_only = batch_energy(
            "2mic, host idle",
            &[(host_p, 0.0), (mic_p, 7.5), (mic_p, 7.5)],
            n,
        );
        assert!(symmetric.neutrons_per_joule() > mics_only.neutrons_per_joule());
        assert!(symmetric.wall_s < mics_only.wall_s);
    }

    #[test]
    fn energy_reports_over_catalog_entries_are_consistent() {
        // Per-device TDP fields drive the report: a device running alone
        // at full load reports exactly its load power, and
        // neutrons-per-joule equals modeled-rate-per-watt.
        let n = 100_000u64;
        for dev in crate::catalog::all() {
            let rate = dev.modeled_native_rate(dev.default_transport());
            let busy = n as f64 / rate;
            let r = batch_energy(dev.id, &[(PowerSpec::for_device(&dev), busy)], n);
            assert!(
                (r.mean_power_w() - dev.power.load_w).abs() < 1e-9,
                "{}",
                dev.id
            );
            let expect = rate / dev.power.load_w;
            let got = r.neutrons_per_joule();
            assert!(
                (got - expect).abs() / expect < 1e-9,
                "{}: {got} vs {expect}",
                dev.id
            );
        }
    }

    #[test]
    fn energy_to_solution_ordering_follows_rate_per_watt() {
        // The catalog-wide ordering invariant: ranking devices by
        // neutrons-per-joule is exactly ranking them by modeled rate per
        // load watt — and the modern GPUs beat both 2015 devices.
        let n = 100_000u64;
        let npj = |name: &str| {
            let dev = crate::catalog::device(name).unwrap();
            let rate = dev.modeled_native_rate(dev.default_transport());
            batch_energy(name, &[(PowerSpec::for_device(&dev), n as f64 / rate)], n)
                .neutrons_per_joule()
        };
        let mut by_npj: Vec<&str> = crate::catalog::NAMES.to_vec();
        by_npj.sort_by(|a, b| npj(a).total_cmp(&npj(b)));
        let mut by_rate_per_watt: Vec<&str> = crate::catalog::NAMES.to_vec();
        by_rate_per_watt.sort_by(|a, b| {
            let key = |name: &str| {
                let d = crate::catalog::device(name).unwrap();
                d.modeled_native_rate(d.default_transport()) / d.power.load_w
            };
            key(a).total_cmp(&key(b))
        });
        assert_eq!(by_npj, by_rate_per_watt);
        for gpu in ["gpu-max-1100", "a100", "mi250x"] {
            assert!(npj(gpu) > npj("knc-7120a"), "{gpu}");
            assert!(npj(gpu) > npj("host-e5-2687w"), "{gpu}");
        }
    }

    #[test]
    fn report_metrics_are_consistent() {
        let p = PowerSpec {
            load_w: 100.0,
            idle_w: 10.0,
        };
        let r = batch_energy("x", &[(p, 10.0)], 1_000);
        assert!((r.mean_power_w() - 100.0).abs() < 1e-9);
        assert!((r.neutrons_per_joule() - 1.0).abs() < 1e-9);
    }
}
