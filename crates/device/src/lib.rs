//! Accelerator machine models — a calibrated multi-device catalog.
//!
//! No Knights Corner hardware exists anymore (and no GPU is attached),
//! so every device "runs" as an analytic timing model driven by *real*
//! instrumented counts from actual kernel executions on the host (the
//! physics always really runs; only the reported device time is
//! modeled). The model is a roofline:
//!
//! ```text
//! t = max( Σ_class counts_class / rate_class(machine),  bytes / bandwidth )
//! ```
//!
//! Rates derive from structural machine parameters (cores, clock, SIMD
//! lanes, issue model, memory bandwidth) plus a small number of
//! *calibrated* constants (per-gather effective costs, in-order penalties
//! on opaque library calls) whose values — and the paper measurements they
//! are calibrated against — are documented on [`spec::MachineSpec`] and in
//! EXPERIMENTS.md.
//!
//! Modules:
//!
//! * [`spec`] — machine descriptions and the op-class timing model.
//! * [`catalog`] — the named device catalog: legacy entries wrapping
//!   the historic constructors bit-identically, plus calibrated
//!   GPU-class entries fitted against published transport rates.
//! * [`pcie`] — the PCIe transfer model (Table II's costs).
//! * [`workload`] — kernel count builders: XS lookups (scalar/banked),
//!   distance-sampling variants, whole-transport segments, particle
//!   banking, and the OpenMC-style bank-size model.
//! * [`native`] — native-mode execution: modeled full-physics calculation
//!   rates for host and device (Fig. 4, Fig. 5, α).
//! * [`offload`] — offload-mode pipeline: bank → transfer → compute →
//!   return (Table II, Fig. 3).
//! * [`symmetric`] — symmetric-mode MPI-style execution with static or
//!   α-balanced particle splits (Table III).

//! ```
//! use mcs_device::{KernelCounts, MachineSpec};
//!
//! // Price 1e9 prefetched vector gathers on the Phi vs the host.
//! let counts = KernelCounts { gather_vector: 1e9, ..Default::default() };
//! let t_mic = MachineSpec::mic_7120a().kernel_time(&counts);
//! let t_host = MachineSpec::host_e5_2687w().kernel_time(&counts);
//! assert!(t_mic < t_host); // bandwidth + vgather favour the coprocessor
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod native;
pub mod offload;
pub mod pcie;
pub mod power;
pub mod spec;
pub mod symmetric;
pub mod workload;

pub use catalog::{Calibration, DeviceClass, DeviceSpec, PowerParams};
pub use native::{NativeModel, TransportKind};
pub use offload::{OffloadBreakdown, OffloadModel};
pub use pcie::{PcieBus, TransferError, TransferKind, TransferReport};
pub use power::{EnergyReport, PowerSpec};
pub use spec::{KernelCounts, MachineSpec};
pub use symmetric::SymmetricModel;
