//! Symmetric-mode execution: host and coprocessor ranks in one MPI-style
//! job, with static (even) or α-balanced particle assignment.
//!
//! Regenerates Table III: the even split leaves the faster MIC ranks idle
//! while the CPU finishes its share; balancing by Eq. 3 recovers most of
//! the ideal aggregate rate.

use mcs_core::balance::{achieved_rate, ideal_rate, proportional_split};

/// A symmetric job: one entry per rank, holding that rank's native-mode
/// calculation rate (neutrons/second).
#[derive(Debug, Clone)]
pub struct SymmetricModel {
    /// Per-rank calculation rates.
    pub rates: Vec<f64>,
    /// Rank labels for reporting.
    pub labels: Vec<String>,
}

impl SymmetricModel {
    /// Build from `(label, rate)` pairs.
    pub fn new(ranks: &[(&str, f64)]) -> Self {
        Self {
            rates: ranks.iter().map(|&(_, r)| r).collect(),
            labels: ranks.iter().map(|&(l, _)| l.to_string()).collect(),
        }
    }

    /// OpenMC's default static assignment: `n_total / p` each.
    pub fn even_split(&self, n_total: u64) -> Vec<u64> {
        let p = self.rates.len() as u64;
        let mut out = vec![n_total / p; self.rates.len()];
        for item in out.iter_mut().take((n_total % p) as usize) {
            *item += 1;
        }
        out
    }

    /// The α-balanced assignment (Eq. 3 generalized).
    pub fn balanced_split(&self, n_total: u64) -> Vec<u64> {
        proportional_split(n_total, &self.rates)
    }

    /// Aggregate rate with the even split ("Original" column).
    pub fn original_rate(&self, n_total: u64) -> f64 {
        achieved_rate(&self.even_split(n_total), &self.rates)
    }

    /// Aggregate rate with the balanced split ("Load Balanced" column).
    pub fn balanced_rate(&self, n_total: u64) -> f64 {
        achieved_rate(&self.balanced_split(n_total), &self.rates)
    }

    /// The ideal aggregate rate (sum of rank rates).
    pub fn ideal(&self) -> f64 {
        ideal_rate(&self.rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table III, rebuilt from its CPU-only and MIC-only
    /// rates: CPU 4,050 n/s, MIC 6,641 n/s (α = 0.61).
    fn jlse_rates() -> (f64, f64) {
        (4_050.0, 6_641.0)
    }

    #[test]
    fn table3_cpu_plus_one_mic() {
        let (cpu, mic) = jlse_rates();
        let m = SymmetricModel::new(&[("cpu", cpu), ("mic0", mic)]);
        let n = 100_000;
        let original = m.original_rate(n);
        let balanced = m.balanced_rate(n);
        let ideal = m.ideal();
        // Paper: original 8,988 (16% below ideal 10,691), balanced
        // 10,068 (6% below). Our clean model: original = 2·min = 8,100
        // (24% below), balanced ≈ ideal. Shape: original < balanced ≈ ideal.
        assert!((ideal - 10_691.0).abs() < 1.0);
        assert!(original < 0.9 * ideal, "original = {original}");
        assert!(balanced > 0.99 * ideal, "balanced = {balanced}");
        assert!(balanced > original);
    }

    #[test]
    fn table3_cpu_plus_two_mics() {
        let (cpu, mic) = jlse_rates();
        let m = SymmetricModel::new(&[("cpu", cpu), ("mic0", mic), ("mic1", mic)]);
        let n = 100_000;
        let ideal = m.ideal();
        assert!((ideal - 17_332.0).abs() < 1.0); // the paper's ideal
        let original = m.original_rate(n);
        // Paper: original 11,860 = 32% below ideal; model: 3·min = 12,150.
        assert!(
            (original / ideal - 0.68).abs() < 0.05,
            "{}",
            original / ideal
        );
        let balanced = m.balanced_rate(n);
        // Paper's balanced rate: 17,098 n/s ≈ 99% of ideal.
        assert!(balanced > 0.99 * ideal, "balanced = {balanced}");
    }

    #[test]
    fn even_split_distributes_remainder() {
        let m = SymmetricModel::new(&[("a", 1.0), ("b", 1.0), ("c", 1.0)]);
        let split = m.even_split(10);
        assert_eq!(split.iter().sum::<u64>(), 10);
        assert_eq!(split, vec![4, 3, 3]);
    }

    #[test]
    fn homogeneous_job_has_no_balance_gap() {
        let m = SymmetricModel::new(&[("a", 5.0), ("b", 5.0)]);
        let n = 1000;
        assert!((m.original_rate(n) - m.balanced_rate(n)).abs() < 1e-9);
        assert!((m.original_rate(n) - m.ideal()).abs() < 1e-9);
    }
}
