//! PCIe transfer model.
//!
//! Table II's transfer costs show two distinct regimes on the PCIe 2.0
//! x16 bus: large contiguous uploads (the energy grid: "approximately 1
//! second for every 5 GB") and offload-runtime bank shipments, which move
//! scattered particle state through the offload marshaling layer at much
//! lower effective bandwidth (2.84 GB in 2.21 s ≈ 1.3 GB/s).

use std::time::Duration;

/// A modeled PCIe link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieBus {
    /// Effective bandwidth for large contiguous transfers, GB/s.
    pub contiguous_gb_s: f64,
    /// Effective bandwidth for offload-marshaled (banked) transfers, GB/s.
    pub banked_gb_s: f64,
    /// Per-transfer launch latency, seconds.
    pub latency_s: f64,
}

impl PcieBus {
    /// PCIe 2.0 x16 as measured by the paper's offload reports.
    pub fn gen2_x16() -> Self {
        Self {
            contiguous_gb_s: 5.0,
            banked_gb_s: 1.3,
            latency_s: 20e-6,
        }
    }

    /// Time to ship `bytes` of contiguous data (e.g. the energy grid).
    pub fn contiguous_time(&self, bytes: f64) -> Duration {
        Duration::from_secs_f64(self.latency_s + bytes / (self.contiguous_gb_s * 1e9))
    }

    /// Time to ship `bytes` of banked particle state through the offload
    /// runtime.
    pub fn banked_time(&self, bytes: f64) -> Duration {
        Duration::from_secs_f64(self.latency_s + bytes / (self.banked_gb_s * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rule_of_thumb_one_second_per_5gb() {
        let bus = PcieBus::gen2_x16();
        let t = bus.contiguous_time(5.0e9).as_secs_f64();
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn paper_bank_transfer_times_reproduce() {
        let bus = PcieBus::gen2_x16();
        // Table II H.M. Large: 2.84 GB → 2,210 ms.
        let t = bus.banked_time(2.84e9).as_secs_f64();
        assert!((t - 2.21).abs() < 0.15, "t = {t}");
        // H.M. Small: 496 MB → 460 ms.
        let t = bus.banked_time(496e6).as_secs_f64();
        assert!((t - 0.46).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let bus = PcieBus::gen2_x16();
        let t = bus.banked_time(64.0).as_secs_f64();
        assert!(t >= bus.latency_s);
        assert!(t < 2.0 * bus.latency_s);
    }
}
