//! PCIe transfer model.
//!
//! Table II's transfer costs show two distinct regimes on the PCIe 2.0
//! x16 bus: large contiguous uploads (the energy grid: "approximately 1
//! second for every 5 GB") and offload-runtime bank shipments, which move
//! scattered particle state through the offload marshaling layer at much
//! lower effective bandwidth (2.84 GB in 2.21 s ≈ 1.3 GB/s).
//!
//! On top of the clean-link times, [`PcieBus::transfer_with_retries`]
//! models a *faulty* link: a [`FaultPlan`] injects corruptions and
//! timeouts per attempt, and the bus retries with capped exponential
//! backoff, surfacing attempt/retry/error counts through
//! [`mcs_prof::Counters`].

use std::time::Duration;

use mcs_faults::{FaultPlan, RetryPolicy, TransferFaultKind};
use mcs_prof::Counters;

/// A modeled PCIe link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieBus {
    /// Effective bandwidth for large contiguous transfers, GB/s.
    pub contiguous_gb_s: f64,
    /// Effective bandwidth for offload-marshaled (banked) transfers, GB/s.
    pub banked_gb_s: f64,
    /// Per-transfer launch latency, seconds.
    pub latency_s: f64,
}

/// Which transfer regime a shipment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Large contiguous upload (e.g. the unionized energy grid).
    Contiguous,
    /// Offload-marshaled particle-bank shipment.
    Banked,
}

/// Accounting for one (possibly retried) transfer that succeeded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReport {
    /// Attempts made, including the successful one.
    pub attempts: u32,
    /// Attempts that arrived corrupted.
    pub corruptions: u32,
    /// Attempts that timed out.
    pub timeouts: u32,
    /// Total backoff slept between attempts, seconds.
    pub backoff_s: f64,
    /// Time of one clean payload shipment, seconds.
    pub payload_s: f64,
    /// Total modeled wall time including failures and backoff, seconds.
    pub total_s: f64,
}

/// A transfer that exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferError {
    /// Attempts made (== the policy's `max_attempts`).
    pub attempts: u32,
    /// The fault on the final attempt.
    pub last_fault: TransferFaultKind,
    /// Wall time burned before giving up, seconds.
    pub wasted_s: f64,
}

/// Reject NaN/infinite/negative byte counts before they poison a
/// `Duration` (a negative byte count would panic deep inside
/// `Duration::from_secs_f64` with a useless message; NaN would panic the
/// same way, and +inf would silently saturate).
fn validate_bytes(bytes: f64) -> f64 {
    assert!(
        bytes.is_finite(),
        "PCIe transfer size must be finite, got {bytes}"
    );
    assert!(
        bytes >= 0.0,
        "PCIe transfer size must be non-negative, got {bytes}"
    );
    bytes
}

impl PcieBus {
    /// PCIe 2.0 x16 as measured by the paper's offload reports.
    pub fn gen2_x16() -> Self {
        Self {
            contiguous_gb_s: 5.0,
            banked_gb_s: 1.3,
            latency_s: 20e-6,
        }
    }

    /// Time to ship `bytes` of contiguous data (e.g. the energy grid).
    ///
    /// Panics on non-finite or negative `bytes`.
    pub fn contiguous_time(&self, bytes: f64) -> Duration {
        let bytes = validate_bytes(bytes);
        Duration::from_secs_f64(self.latency_s + bytes / (self.contiguous_gb_s * 1e9))
    }

    /// Time to ship `bytes` of banked particle state through the offload
    /// runtime.
    ///
    /// Panics on non-finite or negative `bytes`.
    pub fn banked_time(&self, bytes: f64) -> Duration {
        let bytes = validate_bytes(bytes);
        Duration::from_secs_f64(self.latency_s + bytes / (self.banked_gb_s * 1e9))
    }

    /// Ship `bytes` over a faulty link: attempt, check, retry with
    /// capped exponential backoff. `transfer_id` is the plan coordinate
    /// (stable per logical shipment, so a seeded plan replays the same
    /// fault sequence). Counter keys: `pcie.attempts`, `pcie.retries`,
    /// `pcie.corruptions`, `pcie.timeouts`, `pcie.exhausted`.
    pub fn transfer_with_retries(
        &self,
        bytes: f64,
        kind: TransferKind,
        transfer_id: u64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        counters: &mut Counters,
    ) -> Result<TransferReport, TransferError> {
        assert!(policy.max_attempts >= 1);
        let payload_s = match kind {
            TransferKind::Contiguous => self.contiguous_time(bytes),
            TransferKind::Banked => self.banked_time(bytes),
        }
        .as_secs_f64();

        let mut total_s = 0.0;
        let mut backoff_s = 0.0;
        let mut corruptions = 0;
        let mut timeouts = 0;
        for attempt in 1..=policy.max_attempts {
            counters.incr("pcie.attempts");
            let fault = plan.transfer_fault(transfer_id, attempt);
            match fault {
                None => {
                    total_s += payload_s;
                    return Ok(TransferReport {
                        attempts: attempt,
                        corruptions,
                        timeouts,
                        backoff_s,
                        payload_s,
                        total_s,
                    });
                }
                Some(TransferFaultKind::Corrupt) => {
                    // Full shipment spent before the integrity check fails.
                    total_s += payload_s;
                    corruptions += 1;
                    counters.incr("pcie.corruptions");
                }
                Some(TransferFaultKind::Timeout) => {
                    total_s += policy.timeout_s;
                    timeouts += 1;
                    counters.incr("pcie.timeouts");
                }
            }
            if attempt < policy.max_attempts {
                let b = policy.backoff_after(attempt);
                backoff_s += b;
                total_s += b;
                counters.incr("pcie.retries");
            } else {
                counters.incr("pcie.exhausted");
                return Err(TransferError {
                    attempts: attempt,
                    last_fault: fault.unwrap(),
                    wasted_s: total_s,
                });
            }
        }
        unreachable!("loop always returns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rule_of_thumb_one_second_per_5gb() {
        let bus = PcieBus::gen2_x16();
        let t = bus.contiguous_time(5.0e9).as_secs_f64();
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn paper_bank_transfer_times_reproduce() {
        let bus = PcieBus::gen2_x16();
        // Table II H.M. Large: 2.84 GB → 2,210 ms.
        let t = bus.banked_time(2.84e9).as_secs_f64();
        assert!((t - 2.21).abs() < 0.15, "t = {t}");
        // H.M. Small: 496 MB → 460 ms.
        let t = bus.banked_time(496e6).as_secs_f64();
        assert!((t - 0.46).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let bus = PcieBus::gen2_x16();
        let t = bus.banked_time(64.0).as_secs_f64();
        assert!(t >= bus.latency_s);
        assert!(t < 2.0 * bus.latency_s);
    }

    // Regression tests for the validation fix: non-finite and negative
    // byte counts used to flow straight into Duration::from_secs_f64.
    #[test]
    #[should_panic(expected = "must be finite")]
    fn banked_time_rejects_nan() {
        let _ = PcieBus::gen2_x16().banked_time(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn contiguous_time_rejects_infinity() {
        let _ = PcieBus::gen2_x16().contiguous_time(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn banked_time_rejects_negative() {
        let _ = PcieBus::gen2_x16().banked_time(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn contiguous_time_rejects_negative() {
        let _ = PcieBus::gen2_x16().contiguous_time(-0.5);
    }

    #[test]
    fn zero_bytes_is_latency_only() {
        let bus = PcieBus::gen2_x16();
        assert_eq!(bus.banked_time(0.0).as_secs_f64(), bus.latency_s);
    }

    #[test]
    fn clean_link_transfers_first_try() {
        let bus = PcieBus::gen2_x16();
        let plan = FaultPlan::new(1);
        let mut c = Counters::new();
        let r = bus
            .transfer_with_retries(
                1e6,
                TransferKind::Banked,
                0,
                &plan,
                &RetryPolicy::pcie_default(),
                &mut c,
            )
            .unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.total_s, r.payload_s);
        assert_eq!(r.payload_s, bus.banked_time(1e6).as_secs_f64());
        assert_eq!(c.get("pcie.attempts"), 1);
        assert_eq!(c.get("pcie.retries"), 0);
        assert_eq!(c.get("pcie.exhausted"), 0);
    }

    #[test]
    fn corrupt_then_success_pays_twice_plus_backoff() {
        let bus = PcieBus::gen2_x16();
        let plan = FaultPlan::new(2).with_transfer_fault(5, 1, TransferFaultKind::Corrupt);
        let policy = RetryPolicy::pcie_default();
        let mut c = Counters::new();
        let r = bus
            .transfer_with_retries(1e8, TransferKind::Banked, 5, &plan, &policy, &mut c)
            .unwrap();
        assert_eq!(r.attempts, 2);
        assert_eq!(r.corruptions, 1);
        assert_eq!(r.backoff_s, policy.backoff_after(1));
        let want = 2.0 * r.payload_s + policy.backoff_after(1);
        assert!((r.total_s - want).abs() < 1e-12);
        assert_eq!(c.get("pcie.corruptions"), 1);
        assert_eq!(c.get("pcie.retries"), 1);
    }

    #[test]
    fn timeout_charges_policy_time_not_payload() {
        let bus = PcieBus::gen2_x16();
        let plan = FaultPlan::new(3).with_transfer_fault(9, 1, TransferFaultKind::Timeout);
        let policy = RetryPolicy::pcie_default();
        let mut c = Counters::new();
        let r = bus
            .transfer_with_retries(2.84e9, TransferKind::Banked, 9, &plan, &policy, &mut c)
            .unwrap();
        assert_eq!(r.timeouts, 1);
        let want = policy.timeout_s + policy.backoff_after(1) + r.payload_s;
        assert!((r.total_s - want).abs() < 1e-12);
    }

    #[test]
    fn exhausted_retries_error_out_with_counters() {
        let bus = PcieBus::gen2_x16();
        let mut plan = FaultPlan::new(4);
        for attempt in 1..=4 {
            plan = plan.with_transfer_fault(1, attempt, TransferFaultKind::Corrupt);
        }
        let mut c = Counters::new();
        let err = bus
            .transfer_with_retries(
                1e6,
                TransferKind::Banked,
                1,
                &plan,
                &RetryPolicy::pcie_default(),
                &mut c,
            )
            .unwrap_err();
        assert_eq!(err.attempts, 4);
        assert_eq!(err.last_fault, TransferFaultKind::Corrupt);
        assert!(err.wasted_s > 0.0);
        assert_eq!(c.get("pcie.attempts"), 4);
        assert_eq!(c.get("pcie.retries"), 3);
        assert_eq!(c.get("pcie.exhausted"), 1);
    }

    #[test]
    fn same_plan_seed_replays_identical_retry_history() {
        let bus = PcieBus::gen2_x16();
        let policy = RetryPolicy::pcie_default();
        let run = || {
            let plan = FaultPlan::new(0xfeed).with_transfer_rates(0.3, 0.1);
            let mut c = Counters::new();
            let reports: Vec<_> = (0..100u64)
                .map(|id| {
                    bus.transfer_with_retries(1e6, TransferKind::Banked, id, &plan, &policy, &mut c)
                })
                .collect();
            (reports, c)
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        // The probabilistic rates actually fired somewhere in 100 tries.
        assert!(ca.get("pcie.corruptions") + ca.get("pcie.timeouts") > 0);
    }
}
