//! Machine descriptions and the op-class roofline timing model.

/// Operation counts characterizing one kernel execution.
///
/// Counts are whole-kernel totals; the model divides by chip-aggregate
/// rates, which assumes the kernel exposes enough parallelism to fill the
/// machine (true of every kernel measured in the paper — 10⁵–10⁷
/// independent particles).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCounts {
    /// Latency-chained scalar ops (each depends on the previous within a
    /// thread — e.g. the `rand_r` multiply chain).
    pub dependent_scalar: f64,
    /// Independent scalar ops.
    pub scalar: f64,
    /// Vector lane-operations (one lane-op = one f32/f64 lane updated).
    pub vector_lanes: f64,
    /// Random 8-byte loads issued from scalar (pointer-chasing) code.
    pub gather_scalar: f64,
    /// Random 8-byte loads issued from vectorized/gather code with
    /// software prefetch (the banked kernels).
    pub gather_vector: f64,
    /// Opaque function calls (`rand_r`, libm entry, ...).
    pub calls: f64,
    /// Scalar transcendental evaluations via libm.
    pub libm: f64,
    /// Bytes streamed to/from DRAM with unit stride.
    pub stream_bytes: f64,
}

impl KernelCounts {
    /// Component-wise sum.
    pub fn add(&self, o: &KernelCounts) -> KernelCounts {
        KernelCounts {
            dependent_scalar: self.dependent_scalar + o.dependent_scalar,
            scalar: self.scalar + o.scalar,
            vector_lanes: self.vector_lanes + o.vector_lanes,
            gather_scalar: self.gather_scalar + o.gather_scalar,
            gather_vector: self.gather_vector + o.gather_vector,
            calls: self.calls + o.calls,
            libm: self.libm + o.libm,
            stream_bytes: self.stream_bytes + o.stream_bytes,
        }
    }

    /// Scale all counts (e.g. per-element counts × N).
    pub fn scale(&self, s: f64) -> KernelCounts {
        KernelCounts {
            dependent_scalar: self.dependent_scalar * s,
            scalar: self.scalar * s,
            vector_lanes: self.vector_lanes * s,
            gather_scalar: self.gather_scalar * s,
            gather_vector: self.gather_vector * s,
            calls: self.calls * s,
            libm: self.libm * s,
            stream_bytes: self.stream_bytes * s,
        }
    }
}

/// A machine description.
///
/// **Structural** parameters come from datasheets; **calibrated**
/// parameters (marked ♦) are effective unit costs fitted to the paper's
/// own measurements, because the microarchitectural effects they bundle
/// (in-order stalls on library calls, gather MLP, KNC prefetch tuning)
/// cannot be re-derived without the hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Display name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Clock, GHz.
    pub clock_ghz: f64,
    /// f32 SIMD lanes per vector unit.
    pub f32_lanes: u32,
    /// f64 SIMD lanes.
    pub f64_lanes: u32,
    /// Sustained scalar IPC per core (with enough threads to fill it).
    pub scalar_ipc: f64,
    /// Sustained vector ops per cycle per core.
    pub vector_ipc: f64,
    /// Latency (cycles) of a dependent scalar op in a serial chain,
    /// per-thread.
    pub dep_latency_cycles: f64,
    /// ♦ Cycles per opaque function call (in-order cores pay dearly).
    pub call_cycles: f64,
    /// ♦ Cycles per scalar libm transcendental.
    pub libm_cycles: f64,
    /// ♦ Effective nanoseconds per random 8-byte load from scalar code.
    pub gather_scalar_ns: f64,
    /// ♦ Effective nanoseconds per random 8-byte load from vectorized,
    /// prefetch-tuned code.
    pub gather_vector_ns: f64,
    /// Sustained DRAM bandwidth, GB/s.
    pub dram_gb_s: f64,
    /// Device memory capacity, GB.
    pub mem_gb: f64,
}

impl MachineSpec {
    /// JLSE host: dual-socket Intel Xeon E5-2687W (16 cores, 2-way HT,
    /// 3.4 GHz, AVX, 64 GB).
    pub fn host_e5_2687w() -> Self {
        Self {
            name: "2x E5-2687W (host)",
            cores: 16,
            threads_per_core: 2,
            clock_ghz: 3.4,
            f32_lanes: 8,
            f64_lanes: 4,
            scalar_ipc: 2.0,
            vector_ipc: 1.0,
            dep_latency_cycles: 4.0,
            call_cycles: 45.0,
            libm_cycles: 150.0,
            gather_scalar_ns: 1.05,
            gather_vector_ns: 0.55,
            dram_gb_s: 60.0,
            mem_gb: 64.0,
        }
    }

    /// Stampede host: dual-socket Intel Xeon E5-2680 (16 cores, 2.7 GHz,
    /// 32 GB).
    pub fn host_e5_2680() -> Self {
        Self {
            name: "2x E5-2680 (host)",
            clock_ghz: 2.7,
            mem_gb: 32.0,
            ..Self::host_e5_2687w()
        }
    }

    /// Intel Xeon Phi 7120A (JLSE): 61 cores, 4-way HT, 1.238 GHz,
    /// 512-bit SIMD, 16 GB GDDR5.
    pub fn mic_7120a() -> Self {
        Self {
            name: "Xeon Phi 7120A",
            cores: 61,
            threads_per_core: 4,
            clock_ghz: 1.238,
            f32_lanes: 16,
            f64_lanes: 8,
            scalar_ipc: 1.0,
            vector_ipc: 0.8,
            dep_latency_cycles: 8.0,
            // ♦ calibrated to Table I's naive row (rand_r + libm calls run
            // ~20x slower than the host).
            call_cycles: 2000.0,
            libm_cycles: 4000.0,
            // ♦ 244 threads hide latency on scalar lookups well enough to
            // beat the host's 32 (Fig. 4: MIC wins calculate_xs).
            gather_scalar_ns: 0.65,
            // ♦ vgather + tuned prefetch streams the SoA tables (Fig. 2's
            // ~10x banked speedup over host history).
            gather_vector_ns: 0.105,
            dram_gb_s: 170.0,
            mem_gb: 16.0,
        }
    }

    /// Intel Xeon Phi SE10P (Stampede): 61 cores at 1.1 GHz, 8 GB.
    pub fn mic_se10p() -> Self {
        Self {
            name: "Xeon Phi SE10P",
            clock_ghz: 1.1,
            mem_gb: 8.0,
            ..Self::mic_7120a()
        }
    }

    /// Knights Landing projection — the paper's §V outlook: up to 72
    /// out-of-order cores socketed directly (no PCIe hop), on-package
    /// MCDRAM, "a possible automatic ~3x single thread speedup over
    /// Knights Corner". OOO cores lift the serial-call and
    /// latency-hiding penalties toward host levels.
    pub fn knl_projection() -> Self {
        Self {
            name: "Knights Landing (projected)",
            cores: 72,
            threads_per_core: 4,
            clock_ghz: 1.4,
            f32_lanes: 16,
            f64_lanes: 8,
            scalar_ipc: 1.5, // out-of-order
            vector_ipc: 1.6, // two VPUs per core
            dep_latency_cycles: 4.0,
            call_cycles: 90.0, // OOO + branch prediction
            libm_cycles: 300.0,
            gather_scalar_ns: 0.30,
            gather_vector_ns: 0.08,
            dram_gb_s: 400.0, // MCDRAM
            mem_gb: 16.0,
        }
    }

    /// Generic commodity-runner reference used by the `mcs-bench trend`
    /// roofline estimates: a conservative desktop/CI-class machine
    /// (4 OOO cores, AVX2, dual-channel DDR4 at ~20 GB/s sustained).
    /// The trend surface compares *this host's* measured rates against a
    /// bandwidth ceiling, so the only parameter that matters is
    /// `dram_gb_s`; it is deliberately conservative so percent-of-
    /// roofline stays interpretable (and comparable) across unknown
    /// hosts. Override per run with `MCS_TREND_BW_GBS`.
    pub fn trend_reference_host() -> Self {
        Self {
            name: "trend reference host (CI class)",
            cores: 4,
            threads_per_core: 2,
            clock_ghz: 3.0,
            f32_lanes: 8,
            f64_lanes: 4,
            scalar_ipc: 2.0,
            vector_ipc: 1.0,
            dep_latency_cycles: 4.0,
            call_cycles: 50.0,
            libm_cycles: 150.0,
            gather_scalar_ns: 1.2,
            gather_vector_ns: 0.6,
            dram_gb_s: 20.0,
            mem_gb: 16.0,
        }
    }

    /// Sustained DRAM bandwidth in bytes/s (the roofline denominator).
    pub fn dram_bytes_per_s(&self) -> f64 {
        self.dram_gb_s * 1e9
    }

    /// Bandwidth-roofline throughput for an operation that moves
    /// `bytes_per_op` from DRAM: the best possible ops/s if the kernel
    /// were purely memory-bound on this machine. Returns `f64::INFINITY`
    /// for `bytes_per_op <= 0` (an operation that touches no memory has
    /// no bandwidth ceiling).
    pub fn roofline_ops_per_s(&self, bytes_per_op: f64) -> f64 {
        if bytes_per_op <= 0.0 {
            f64::INFINITY
        } else {
            self.dram_bytes_per_s() / bytes_per_op
        }
    }

    /// Total hardware threads.
    pub fn total_threads(&self) -> u32 {
        self.cores * self.threads_per_core
    }

    /// Aggregate scalar rate, ops/s.
    pub fn scalar_rate(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.scalar_ipc
    }

    /// Aggregate dependent-chain rate, ops/s (each thread sustains one op
    /// per `dep_latency_cycles`).
    pub fn dep_chain_rate(&self) -> f64 {
        self.total_threads() as f64 * self.clock_ghz * 1e9 / self.dep_latency_cycles
    }

    /// Aggregate vector lane rate for f64 work, lane-ops/s.
    pub fn vector_lane_rate_f64(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.vector_ipc * self.f64_lanes as f64
    }

    /// Aggregate vector lane rate for f32 work, lane-ops/s.
    pub fn vector_lane_rate_f32(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.vector_ipc * self.f32_lanes as f64
    }

    /// Aggregate call rate, calls/s.
    pub fn call_rate(&self) -> f64 {
        self.total_threads() as f64 * self.clock_ghz * 1e9 / self.call_cycles
    }

    /// Aggregate scalar-libm rate, evals/s.
    pub fn libm_rate(&self) -> f64 {
        self.total_threads() as f64 * self.clock_ghz * 1e9 / self.libm_cycles
    }

    /// Roofline kernel time (seconds) for the given counts. Vector lane
    /// counts are interpreted as f64 lanes unless `f32_kernel`.
    pub fn kernel_time_ext(&self, c: &KernelCounts, f32_kernel: bool) -> f64 {
        let lane_rate = if f32_kernel {
            self.vector_lane_rate_f32()
        } else {
            self.vector_lane_rate_f64()
        };
        let compute = c.dependent_scalar / self.dep_chain_rate()
            + c.scalar / self.scalar_rate()
            + c.vector_lanes / lane_rate
            + c.gather_scalar * self.gather_scalar_ns * 1e-9
            + c.gather_vector * self.gather_vector_ns * 1e-9
            + c.calls / self.call_rate()
            + c.libm / self.libm_rate();
        let memory = c.stream_bytes / (self.dram_gb_s * 1e9);
        compute.max(memory)
    }

    /// Roofline kernel time for f64-dominated kernels.
    pub fn kernel_time(&self, c: &KernelCounts) -> f64 {
        self.kernel_time_ext(c, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_datasheet_structure() {
        let host = MachineSpec::host_e5_2687w();
        assert_eq!(host.total_threads(), 32);
        let mic = MachineSpec::mic_7120a();
        assert_eq!(mic.total_threads(), 244);
        assert_eq!(mic.f32_lanes, 16);
        assert!(mic.clock_ghz < host.clock_ghz);
        assert!(mic.dram_gb_s > host.dram_gb_s);
        assert!(mic.mem_gb < host.mem_gb);
    }

    #[test]
    fn vector_peak_favors_mic() {
        // The MIC's raison d'être: wide vectors × many cores beats the
        // host's vector peak despite the low clock.
        let host = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        assert!(mic.vector_lane_rate_f32() > 1.5 * host.vector_lane_rate_f32());
    }

    #[test]
    fn scalar_call_code_favors_host() {
        let host = MachineSpec::host_e5_2687w();
        let mic = MachineSpec::mic_7120a();
        assert!(host.call_rate() > 5.0 * mic.call_rate());
        assert!(host.libm_rate() > 5.0 * mic.libm_rate());
    }

    #[test]
    fn kernel_time_roofline_picks_memory_bound() {
        let spec = MachineSpec::host_e5_2687w();
        // Pure streaming kernel: 60 GB at 60 GB/s = 1 s.
        let c = KernelCounts {
            stream_bytes: 60e9,
            ..Default::default()
        };
        assert!((spec.kernel_time(&c) - 1.0).abs() < 1e-9);
        // Adding trivial compute doesn't change it.
        let c2 = KernelCounts { scalar: 1e6, ..c };
        assert!((spec.kernel_time(&c2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_scale_and_add() {
        let a = KernelCounts {
            scalar: 2.0,
            libm: 1.0,
            ..Default::default()
        };
        let b = a.scale(3.0).add(&a);
        assert_eq!(b.scalar, 8.0);
        assert_eq!(b.libm, 4.0);
    }

    #[test]
    fn knl_projection_triples_knc_serial_throughput() {
        // The paper's §V expectation: ~3x single-thread (serial-code)
        // speedup over Knights Corner from out-of-order execution.
        let knc = MachineSpec::mic_7120a();
        let knl = MachineSpec::knl_projection();
        // Per-thread serial call+libm throughput ratio.
        let knc_serial = knc.clock_ghz / (knc.call_cycles + knc.libm_cycles);
        let knl_serial = knl.clock_ghz / (knl.call_cycles + knl.libm_cycles);
        let ratio = knl_serial / knc_serial;
        // KNC's serial constants are calibrated to its pathological
        // Table-I behaviour, so the projected OOO recovery lands well
        // above the paper's conservative "~3x".
        assert!((3.0..30.0).contains(&ratio), "serial speedup {ratio:.1}");
        // And its vector peak exceeds KNC's.
        assert!(knl.vector_lane_rate_f64() > knc.vector_lane_rate_f64());
        assert!(knl.dram_gb_s > knc.dram_gb_s);
    }

    #[test]
    fn roofline_rate_is_bandwidth_over_bytes() {
        let spec = MachineSpec::trend_reference_host();
        assert_eq!(spec.dram_bytes_per_s(), 20e9);
        // 100 B/op at 20 GB/s → 2e8 ops/s.
        assert!((spec.roofline_ops_per_s(100.0) - 2e8).abs() < 1.0);
        // Zero-byte ops have no bandwidth ceiling.
        assert_eq!(spec.roofline_ops_per_s(0.0), f64::INFINITY);
        // The ceiling agrees with the kernel_time model's memory leg.
        let c = KernelCounts {
            stream_bytes: 100.0 * 1e6,
            ..Default::default()
        };
        let t = spec.kernel_time(&c);
        assert!((1e6 / t - spec.roofline_ops_per_s(100.0)).abs() / 2e8 < 1e-9);
        // Reference host is deliberately slower than the paper machines.
        assert!(spec.dram_gb_s < MachineSpec::host_e5_2687w().dram_gb_s);
    }

    #[test]
    fn f32_kernels_run_faster_than_f64() {
        let spec = MachineSpec::mic_7120a();
        let c = KernelCounts {
            vector_lanes: 1e12,
            ..Default::default()
        };
        assert!(spec.kernel_time_ext(&c, true) < spec.kernel_time_ext(&c, false));
    }
}
