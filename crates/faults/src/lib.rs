//! Seeded, deterministic fault injection for the cluster and device
//! models.
//!
//! Production MC runs at Stampede scale lose ranks, hit flaky PCIe
//! links, and ride out stragglers; codes like OpenMC survive via
//! statepoint checkpointing. This crate provides the *schedule* side of
//! that story: a [`FaultPlan`] is a deterministic, seed-replayable map
//! from (rank, batch) and (transfer, attempt) coordinates to injected
//! faults. The same seed always replays the identical schedule — the
//! determinism contract the recovery tests lean on — so a failure seen
//! once can be reproduced forever.
//!
//! The plan is *passive*: it never spawns timers or signals. The
//! execution layers (`mcs-cluster`'s executed MPI runtime, `mcs-device`'s
//! PCIe model) query it at well-defined points:
//!
//! * **rank deaths** — a rank scheduled to die at batch `d` completes
//!   batches `0..d`, announces its departure at batch `d-1`'s status
//!   barrier, and exits; survivors redistribute its quota.
//! * **stragglers** — a multiplicative slowdown applied to a rank's
//!   reported batch wall time (feeding the adaptive balancer).
//! * **PCIe transfer faults** — corruptions and timeouts on individual
//!   transfer attempts, driving the retry/backoff engine.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use mcs_rng::Lcg63;

/// What went wrong with one PCIe transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFaultKind {
    /// The payload arrived, but failed its integrity check; the full
    /// payload time was spent before the error was detected.
    Corrupt,
    /// The transfer hung and was abandoned after the policy's timeout.
    Timeout,
}

/// Retry/backoff policy for faulted transfers (capped exponential).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, seconds; doubles per retry.
    pub backoff_base_s: f64,
    /// Ceiling on any single backoff, seconds.
    pub backoff_cap_s: f64,
    /// Time charged for an attempt that times out, seconds.
    pub timeout_s: f64,
}

impl RetryPolicy {
    /// A sane default for the modeled PCIe 2.0 link: four attempts,
    /// 100 µs initial backoff capped at 10 ms, 5 ms hang detection.
    pub fn pcie_default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_s: 100e-6,
            backoff_cap_s: 10e-3,
            timeout_s: 5e-3,
        }
    }

    /// Backoff slept after failed attempt `attempt` (1-based), seconds.
    pub fn backoff_after(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(52);
        (self.backoff_base_s * (1u64 << exp) as f64).min(self.backoff_cap_s)
    }
}

/// Parameters for generating a random-but-seeded [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Ranks in the job.
    pub n_ranks: usize,
    /// Batches in the run.
    pub n_batches: usize,
    /// Per-rank probability of dying at some batch in `1..n_batches`.
    pub death_p: f64,
    /// Per-(rank, batch) probability of a straggler slowdown.
    pub straggler_p: f64,
    /// Slowdown factor range `[lo, hi]`, each >= 1.
    pub straggler_range: (f64, f64),
    /// Per-attempt probability a PCIe transfer arrives corrupted.
    pub transfer_corrupt_p: f64,
    /// Per-attempt probability a PCIe transfer times out.
    pub transfer_timeout_p: f64,
}

/// A deterministic schedule of injected faults, replayable from its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// rank -> first batch the rank no longer participates in (>= 1).
    deaths: BTreeMap<usize, usize>,
    /// (rank, batch) -> wall-time multiplier (>= 1).
    stragglers: BTreeMap<(usize, usize), f64>,
    /// (transfer id, attempt) -> forced fault, checked before the
    /// probabilistic draw.
    forced_transfers: BTreeMap<(u64, u32), TransferFaultKind>,
    transfer_corrupt_p: f64,
    transfer_timeout_p: f64,
}

/// SplitMix64 finalizer: decorrelates the (seed, coordinate) hash that
/// seeds each per-coordinate fault draw.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One uniform in [0, 1) derived purely from (seed, domain, a, b).
fn coord_uniform(seed: u64, domain: u64, a: u64, b: u64) -> f64 {
    let h = mix64(seed ^ mix64(domain).wrapping_add(mix64(a).rotate_left(17)) ^ mix64(b));
    Lcg63::new(h).next_uniform()
}

impl FaultPlan {
    /// An empty plan (no injected faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            deaths: BTreeMap::new(),
            stragglers: BTreeMap::new(),
            forced_transfers: BTreeMap::new(),
            transfer_corrupt_p: 0.0,
            transfer_timeout_p: 0.0,
        }
    }

    /// Generate a schedule from `spec`, deterministically in `seed`.
    /// Calling this twice with the same arguments yields an identical
    /// plan (asserted by tests — the replay contract).
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        assert!(spec.straggler_range.0 >= 1.0 && spec.straggler_range.1 >= spec.straggler_range.0);
        let mut plan = Self::new(seed);
        plan.transfer_corrupt_p = spec.transfer_corrupt_p;
        plan.transfer_timeout_p = spec.transfer_timeout_p;
        for rank in 0..spec.n_ranks {
            let u = coord_uniform(seed, 0xdead, rank as u64, 0);
            if u < spec.death_p && spec.n_batches > 1 {
                let v = coord_uniform(seed, 0xdead, rank as u64, 1);
                let batch = 1 + (v * (spec.n_batches - 1) as f64) as usize;
                plan.deaths
                    .insert(rank, batch.min(spec.n_batches - 1).max(1));
            }
            for batch in 0..spec.n_batches {
                let u = coord_uniform(seed, 0x57a6, rank as u64, batch as u64);
                if u < spec.straggler_p {
                    let v = coord_uniform(seed, 0x57a7, rank as u64, batch as u64);
                    let (lo, hi) = spec.straggler_range;
                    plan.stragglers.insert((rank, batch), lo + v * (hi - lo));
                }
            }
        }
        plan
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedule rank `rank` to die at batch `batch` (it completes
    /// batches `0..batch`; `batch >= 1` so at least one batch runs).
    pub fn with_rank_death(mut self, rank: usize, batch: usize) -> Self {
        assert!(batch >= 1, "a rank must survive at least batch 0");
        self.deaths.insert(rank, batch);
        self
    }

    /// Multiply rank `rank`'s reported wall time by `factor` at `batch`.
    pub fn with_straggler(mut self, rank: usize, batch: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "a straggler can only be slower");
        self.stragglers.insert((rank, batch), factor);
        self
    }

    /// Force attempt `attempt` (1-based) of transfer `id` to fail.
    pub fn with_transfer_fault(mut self, id: u64, attempt: u32, kind: TransferFaultKind) -> Self {
        self.forced_transfers.insert((id, attempt), kind);
        self
    }

    /// Set probabilistic per-attempt corruption/timeout rates.
    pub fn with_transfer_rates(mut self, corrupt_p: f64, timeout_p: f64) -> Self {
        assert!(corrupt_p >= 0.0 && timeout_p >= 0.0 && corrupt_p + timeout_p <= 1.0);
        self.transfer_corrupt_p = corrupt_p;
        self.transfer_timeout_p = timeout_p;
        self
    }

    /// The batch at which `rank` dies, if scheduled.
    pub fn death_batch(&self, rank: usize) -> Option<usize> {
        self.deaths.get(&rank).copied()
    }

    /// Whether `rank` is already dead when batch `batch` starts.
    pub fn is_dead(&self, rank: usize, batch: usize) -> bool {
        self.death_batch(rank).is_some_and(|d| batch >= d)
    }

    /// All scheduled deaths, in rank order.
    pub fn deaths(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.deaths.iter().map(|(&r, &b)| (r, b))
    }

    /// All scheduled stragglers, in (rank, batch) order.
    pub fn stragglers(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.stragglers.iter().map(|(&(r, b), &f)| (r, b, f))
    }

    /// Wall-time multiplier for `rank` at `batch` (1.0 = no slowdown).
    pub fn straggler_factor(&self, rank: usize, batch: usize) -> f64 {
        self.stragglers.get(&(rank, batch)).copied().unwrap_or(1.0)
    }

    /// The fault injected into attempt `attempt` (1-based) of transfer
    /// `id`, if any. Forced faults win; otherwise a deterministic
    /// per-(id, attempt) draw against the configured rates.
    pub fn transfer_fault(&self, id: u64, attempt: u32) -> Option<TransferFaultKind> {
        if let Some(&k) = self.forced_transfers.get(&(id, attempt)) {
            return Some(k);
        }
        if self.transfer_corrupt_p <= 0.0 && self.transfer_timeout_p <= 0.0 {
            return None;
        }
        let u = coord_uniform(self.seed, 0x9c1e, id, attempt as u64);
        if u < self.transfer_corrupt_p {
            Some(TransferFaultKind::Corrupt)
        } else if u < self.transfer_corrupt_p + self.transfer_timeout_p {
            Some(TransferFaultKind::Timeout)
        } else {
            None
        }
    }
}

/// What a recorded fault was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRecordKind {
    /// A rank left the job (first missed batch = the record's batch).
    Death,
    /// A rank reported a slowed batch, by this factor.
    Straggler(f64),
    /// A transfer attempt failed and was retried.
    TransferRetry(TransferFaultKind),
}

/// One observed/injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Batch coordinate of the event.
    pub batch: usize,
    /// Rank the event applies to.
    pub rank: usize,
    /// What happened.
    pub kind: FaultRecordKind,
}

/// An ordered log of faults observed during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Records in the order they were observed.
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, rec: FaultRecord) {
        self.records.push(rec);
    }

    /// Number of rank deaths recorded.
    pub fn n_deaths(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, FaultRecordKind::Death))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            n_ranks: 8,
            n_batches: 20,
            death_p: 0.4,
            straggler_p: 0.15,
            straggler_range: (1.5, 4.0),
            transfer_corrupt_p: 0.05,
            transfer_timeout_p: 0.02,
        }
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let a = FaultPlan::generate(0x5eed, &spec());
        let b = FaultPlan::generate(0x5eed, &spec());
        assert_eq!(a, b);
        // Including the probabilistic transfer draws.
        for id in 0..50u64 {
            for attempt in 1..=4u32 {
                assert_eq!(a.transfer_fault(id, attempt), b.transfer_fault(id, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::generate(1, &spec());
        let b = FaultPlan::generate(2, &spec());
        // Deterministic check (not flaky): these two specific seeds were
        // verified to produce different schedules.
        assert_ne!(a, b);
    }

    #[test]
    fn generated_deaths_respect_bounds() {
        for seed in 0..32u64 {
            let p = FaultPlan::generate(seed, &spec());
            for (rank, batch) in p.deaths() {
                assert!(rank < 8);
                assert!((1..20).contains(&batch), "death at batch {batch}");
            }
            for (_, _, f) in p.stragglers() {
                assert!((1.5..=4.0).contains(&f));
            }
        }
    }

    #[test]
    fn is_dead_tracks_death_batch() {
        let p = FaultPlan::new(1).with_rank_death(2, 3);
        assert!(!p.is_dead(2, 0));
        assert!(!p.is_dead(2, 2));
        assert!(p.is_dead(2, 3));
        assert!(p.is_dead(2, 7));
        assert!(!p.is_dead(1, 7));
    }

    #[test]
    #[should_panic]
    fn death_at_batch_zero_is_rejected() {
        let _ = FaultPlan::new(1).with_rank_death(0, 0);
    }

    #[test]
    fn forced_transfer_faults_win_over_draws() {
        let p = FaultPlan::new(9)
            .with_transfer_rates(0.0, 0.0)
            .with_transfer_fault(7, 2, TransferFaultKind::Timeout);
        assert_eq!(p.transfer_fault(7, 1), None);
        assert_eq!(p.transfer_fault(7, 2), Some(TransferFaultKind::Timeout));
        assert_eq!(p.transfer_fault(8, 2), None);
    }

    #[test]
    fn transfer_rates_roughly_respected() {
        let p = FaultPlan::new(0xabc).with_transfer_rates(0.25, 0.10);
        let n = 20_000u64;
        let (mut c, mut t) = (0, 0);
        for id in 0..n {
            match p.transfer_fault(id, 1) {
                Some(TransferFaultKind::Corrupt) => c += 1,
                Some(TransferFaultKind::Timeout) => t += 1,
                None => {}
            }
        }
        let (fc, ft) = (c as f64 / n as f64, t as f64 / n as f64);
        assert!((fc - 0.25).abs() < 0.02, "corrupt rate {fc}");
        assert!((ft - 0.10).abs() < 0.01, "timeout rate {ft}");
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base_s: 1e-3,
            backoff_cap_s: 5e-3,
            timeout_s: 1e-2,
        };
        assert_eq!(p.backoff_after(1), 1e-3);
        assert_eq!(p.backoff_after(2), 2e-3);
        assert_eq!(p.backoff_after(3), 4e-3);
        assert_eq!(p.backoff_after(4), 5e-3); // capped
        assert_eq!(p.backoff_after(8), 5e-3);
    }

    #[test]
    fn fault_log_counts_deaths() {
        let mut log = FaultLog::new();
        log.push(FaultRecord {
            batch: 3,
            rank: 1,
            kind: FaultRecordKind::Death,
        });
        log.push(FaultRecord {
            batch: 4,
            rank: 0,
            kind: FaultRecordKind::Straggler(2.0),
        });
        assert_eq!(log.n_deaths(), 1);
        assert_eq!(log.records.len(), 2);
    }
}
