//! Offline stand-in for the `rayon` crate.
//!
//! This container has no registry access, so the workspace vendors the
//! subset of rayon's API it actually uses, implemented over
//! `std::thread::scope`. Semantics match rayon where it matters for this
//! codebase:
//!
//! * **Ordered results** — `collect()` returns items in source order
//!   regardless of thread count, so the chunk-order reductions in
//!   `mcs-core` stay bitwise deterministic.
//! * **Pool-scoped thread counts** — [`ThreadPool::install`] pins the
//!   ambient worker count for the closure it runs, like a rayon pool.
//! * **Real parallelism** — work is split into contiguous index blocks,
//!   one per worker, executed on scoped OS threads.
//!
//! What is intentionally missing: work stealing, splitting heuristics,
//! nested-pool management, and the full `ParallelIterator` zoo. Stage
//! kernels here are regular and coarse, so static block assignment loses
//! little to stealing.

use std::cell::Cell;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{
        IndexedParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

thread_local! {
    /// Ambient worker count for parallel calls issued from this thread.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will use when issued from
/// the current thread (rayon: `current_num_threads`).
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n != 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build`]; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (rayon API subset).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count; `0` means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a worker count scoped to [`ThreadPool::install`]
/// closures. Workers are spawned per parallel call (scoped threads), not
/// kept alive — adequate for the coarse stage kernels this workspace runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = f();
            c.set(prev);
            out
        })
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// An indexed parallel source: `len` items, item `i` computable from a
/// shared `&self`. All adapters and drivers build on this.
pub trait ParallelIterator: Sized + Sync {
    /// Item type produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce item `i`. Must be safe to call concurrently for distinct
    /// indices (and is only called once per index by the drivers).
    fn item(&self, i: usize) -> Self::Item;

    /// Lane-wise transform.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair items with those of an equal-length source (truncates to the
    /// shorter, like rayon).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Splitting-granularity hint; a no-op under static block assignment.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Execute in parallel, returning items in source order.
    fn run(self) -> Vec<Self::Item> {
        let len = self.len();
        let workers = current_num_threads().clamp(1, len.max(1));
        if workers <= 1 || len <= 1 {
            return (0..len).map(|i| self.item(i)).collect();
        }
        let per = len.div_ceil(workers);
        let me = &self;
        let mut parts: Vec<Vec<Self::Item>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|t| {
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(len);
                    s.spawn(move || (lo..hi).map(|i| me.item(i)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// Collect into a container (order-preserving).
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.run())
    }

    /// Apply `f` to every item (parallel, order of side effects
    /// unspecified across blocks).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.map(f).run();
    }

    /// Sum the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Alias kept so `use rayon::prelude::*` code that names the indexed
/// trait compiles; in this stand-in every parallel iterator is indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Borrowing parallel iteration over slices and slice-like containers
/// (rayon: `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Parallel chunked views of slices (rayon: `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Iterate over contiguous chunks of `size` elements (last may be
    /// shorter).
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn item(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over contiguous sub-slices.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn item(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Map adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn item(&self, i: usize) -> R {
        (self.f)(self.base.item(i))
    }
}

/// Zip adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn item(&self, i: usize) -> Self::Item {
        (self.a.item(i), self.b.item(i))
    }
}

/// Enumerate adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn item(&self, i: usize) -> Self::Item {
        (i, self.base.item(i))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunked_collect_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let squares: Vec<Vec<u64>> = data
            .par_chunks(7)
            .map(|c| c.iter().map(|x| x * x).collect::<Vec<_>>())
            .collect();
        let flat: Vec<u64> = squares.into_iter().flatten().collect();
        let expect: Vec<u64> = (0..1000).map(|x| x * x).collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn pool_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let data: Vec<f64> = (0..501).map(|i| i as f64 * 0.25).collect();
        let work = |pool_threads: usize| -> Vec<f64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(pool_threads)
                .build()
                .unwrap();
            pool.install(|| {
                data.par_chunks(16)
                    .enumerate()
                    .map(|(i, c)| c.iter().sum::<f64>() + i as f64)
                    .collect()
            })
        };
        assert_eq!(work(1), work(4));
        assert_eq!(work(1), work(8));
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = [1, 2, 3, 4];
        let b = [10, 20, 30];
        let v: Vec<i32> = a
            .par_chunks(1)
            .zip(b.par_chunks(1))
            .map(|(x, y)| x[0] + y[0])
            .collect();
        assert_eq!(v, vec![11, 22, 33]);
    }

    #[test]
    fn par_iter_maps_in_order() {
        let v = vec![5u32, 6, 7];
        let out: Vec<u32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6, 7, 8]);
    }

    #[test]
    fn sum_and_for_each_work() {
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v.par_chunks(9).map(|c| c.iter().sum::<u64>()).sum();
        assert_eq!(s, 4950);
    }
}
