//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! property tests run against this vendored mini-implementation instead of
//! upstream proptest. It keeps the parts the test suites rely on:
//!
//! * the [`proptest!`] macro (multiple `#[test]` fns, `pat in strategy`
//!   binders, optional `#![proptest_config(...)]` header);
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges, tuples,
//!   `any::<T>()`, `prop::collection::vec`, and `prop::array::uniform*`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! What it deliberately drops: shrinking (a failing case panics with the
//! generated inputs' case number; generation is deterministic per test
//! name, so failures reproduce exactly), persistence files, and the
//! recursive/filtered strategy combinators.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::vec;
    }
    pub mod array {
        //! Fixed-size array strategies.
        pub use crate::strategy::{uniform16, uniform8};
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run property-test functions.
///
/// Supported grammar (a strict subset of upstream proptest):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(96))]   // optional
///     #[test]
///     fn name(x in strategy, mut ys in strategy2) { ... }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@runner ($cfg); $($rest)*);
    };
    (@runner ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "proptest {}: too many rejected cases ({} accepted)",
                                stringify!($name),
                                accepted,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                accepted,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}: {}", lhs, rhs, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} == {:?}: {}", lhs, rhs, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discard the current case (regenerate) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..9, b in any::<bool>()) {
            prop_assert!(x >= 1.0 && x < 2.0, "x={}", x);
            prop_assert!(n >= 3 && n < 9);
            let _ = b;
        }

        #[test]
        fn assume_rejects_and_regenerates(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_maps_compose(v in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn collections_respect_length(xs in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn arrays_fill_all_lanes(a in prop::array::uniform8(-1.0f64..1.0)) {
            prop_assert_eq!(a.len(), 8);
            prop_assert!(a.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let mut c = crate::test_runner::TestRng::for_test("other");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
