//! Test-case driver plumbing: configuration, RNG, and case outcomes.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case discarded by `prop_assume!`; does not count toward the quota.
    Reject,
    /// Property violated; the runner panics with this message.
    Fail(String),
}

/// Deterministic generator (SplitMix64). Seeded from the test's fully
/// qualified name, so every run of a given test generates the identical
/// case sequence — failures reproduce without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test (FNV-1a of the name seeds SplitMix64).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
