//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Map adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T` (subset of proptest's `Arbitrary`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can generate.
pub trait ArbitraryValue {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
);

/// `Vec` strategy with length drawn from `len` (proptest:
/// `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy produced by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// 8-element array strategy (proptest: `prop::array::uniform8`).
pub fn uniform8<S: Strategy>(element: S) -> ArrayStrategy<S, 8> {
    ArrayStrategy { element }
}

/// 16-element array strategy (proptest: `prop::array::uniform16`).
pub fn uniform16<S: Strategy>(element: S) -> ArrayStrategy<S, 16> {
    ArrayStrategy { element }
}

/// Strategy produced by [`uniform8`] / [`uniform16`].
pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
