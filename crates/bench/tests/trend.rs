//! End-to-end tests of the `mcs-bench trend` pipeline: synthetic
//! results directories run through [`mcs_bench::trend::run`], plus
//! property tests of the JSONL codec and the blessed report-schema
//! golden.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mcs_bench::trend::{self, history, record::TrendRecord, report, TrendError, TrendOptions};
use proptest::prelude::*;

/// A fresh scratch dir per test (std tempdir only — no extra deps).
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mcs-trend-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Write a minimal but complete synthetic results directory whose grid
/// rates are scaled by `rate_factor` (1.0 = the healthy baseline).
fn write_results(dir: &Path, rate_factor: f64) {
    let grid_rate = 900_000.0 * rate_factor;
    let eq_rate = 27_000.0 * rate_factor;
    fs::write(
        dir.join("BENCH_grid_backend.json"),
        format!(
            "{{\"bench\": \"grid_backend\", \"mcs_scale\": 0.1, \"samples\": [\n\
             {{\"backend\": \"hash\", \"bank\": 10000, \"lookups_per_second\": {grid_rate}, \
             \"index_bytes\": 375592}},\n\
             {{\"backend\": \"binary\", \"bank\": 10000, \"lookups_per_second\": 480000.0, \
             \"index_bytes\": 0}}\n]}}\n"
        ),
    )
    .unwrap();
    fs::write(
        dir.join("BENCH_event_queueing.json"),
        format!(
            "{{\"bench\": \"event_queueing\", \"mcs_scale\": 0.1, \"samples\": [\n\
             {{\"backend\": \"hash\", \"mode\": \"off\", \"bank\": 10000, \
             \"particles_per_second\": {eq_rate}, \"lookups\": 585733, \
             \"bin_scan_steps\": 110751, \"gather_span_bytes\": 11600000, \
             \"gather_span_pairs\": 57125}}\n]}}\n"
        ),
    )
    .unwrap();
    // check_report stamps a multi-thread host so rate regressions gate.
    fs::write(
        dir.join("check_report.json"),
        "{\"schema\": \"mcs-check-report/2\", \"scale\": 0.1, \"threads\": 4,\n\
         \"counters\": {\"xs.bin_scan_steps\": 110751, \"xs.gather_span_bytes\": 11600000, \
         \"xs.gather_span_pairs\": 57125, \"xs.index_bytes\": 13024, \"xs.lookups\": 57971}}\n",
    )
    .unwrap();
}

fn opts(results: &Path, hist: &Path, commit: &str, ts: u64) -> TrendOptions {
    let mut o = TrendOptions::new(results.to_path_buf(), hist.to_path_buf());
    o.leg = "test".into();
    o.commit = commit.into();
    o.timestamp = ts;
    o
}

#[test]
fn run_twice_on_identical_inputs_is_idempotent() {
    let d = scratch("idempotent");
    let results = d.join("results");
    let hist = d.join("trend");
    fs::create_dir_all(&results).unwrap();
    write_results(&results, 1.0);

    let first = trend::run(&opts(&results, &hist, "c0", 100)).unwrap();
    assert!(first.appended);
    assert_eq!(first.history_len, 1);

    // Second run: same inputs, later timestamp. Must not double-append,
    // must report zero deltas.
    let second = trend::run(&opts(&results, &hist, "c0", 200)).unwrap();
    assert!(!second.appended, "identical measurement must not re-append");
    assert_eq!(second.history_len, 1);
    assert!(second.report.gate_passed());
    for delta in &second.report.deltas {
        assert_eq!(delta.delta_pct, 0.0, "{} delta not zero", delta.metric);
    }
    let on_disk = history::load(&history::history_file(&hist, "test")).unwrap();
    assert_eq!(on_disk.len(), 1, "history must hold exactly one record");
}

#[test]
fn injected_regression_must_trip_the_gate_when_sustained() {
    let d = scratch("regression");
    let results = d.join("results");
    let hist = d.join("trend");
    fs::create_dir_all(&results).unwrap();

    // Build a healthy 5-record history.
    for i in 0..5 {
        write_results(&results, 1.0 + 0.001 * i as f64); // tiny jitter
        let out = trend::run(&opts(&results, &hist, &format!("good{i}"), i)).unwrap();
        assert!(out.report.gate_passed(), "healthy record {i} must pass");
    }

    // Inject a 25% rate regression. First bad record: suspect, not gating.
    write_results(&results, 0.75);
    let first_bad = trend::run(&opts(&results, &hist, "bad0", 100)).unwrap();
    assert!(
        first_bad.report.gate_passed(),
        "single bad record must be warn-only (suspect)"
    );
    assert!(first_bad
        .report
        .deltas
        .iter()
        .any(|x| x.class.name() == "suspect"));

    // Second consecutive bad record: sustained ⇒ gate trips.
    let second_bad = trend::run(&opts(&results, &hist, "bad1", 101)).unwrap();
    assert!(
        !second_bad.report.gate_passed(),
        "2 consecutive bad records must fail the gate"
    );
    // The offending metric is named in the machine-readable report.
    let json = second_bad.report.to_json();
    let gating: Vec<_> = second_bad.report.gating().collect();
    assert!(!gating.is_empty());
    assert!(gating.iter().any(|g| g.metric == "grid.hash.b10000"));
    assert!(json.contains("\"metric\": \"grid.hash.b10000\""));
    assert!(json.contains("\"passed\": false"));
}

#[test]
fn counter_growth_gates_even_on_one_thread() {
    let d = scratch("counter");
    let results = d.join("results");
    let hist = d.join("trend");
    fs::create_dir_all(&results).unwrap();
    write_results(&results, 1.0);
    // Re-stamp the report as a 1-thread host.
    let report_path = results.join("check_report.json");
    let text = fs::read_to_string(&report_path)
        .unwrap()
        .replace("\"threads\": 4", "\"threads\": 1");
    fs::write(&report_path, text).unwrap();

    for i in 0..5 {
        trend::run(&opts(&results, &hist, &format!("g{i}"), i)).unwrap();
    }
    // Inflate a deterministic counter, then record it 2 runs straight
    // (distinct commits so the idempotency dedupe does not kick in).
    let text = fs::read_to_string(&report_path).unwrap().replace(
        "\"xs.bin_scan_steps\": 110751",
        "\"xs.bin_scan_steps\": 221502",
    );
    fs::write(&report_path, text).unwrap();

    let first = trend::run(&opts(&results, &hist, "cb0", 100)).unwrap();
    assert!(first.report.warn_only_rates, "1-thread host is warn-only");
    assert!(first.report.gate_passed(), "one bad record is suspect only");

    let second = trend::run(&opts(&results, &hist, "cb1", 101)).unwrap();
    assert!(
        !second.report.gate_passed(),
        "sustained counter growth must gate even on 1 thread"
    );
    assert!(second.report.gating().all(|g| g.kind.name() == "counter"));
    assert!(second
        .report
        .gating()
        .any(|g| g.metric == "xs.bin_scan_steps"));
}

#[test]
fn truncated_history_is_a_hard_err_not_a_panic() {
    let d = scratch("trunc");
    let results = d.join("results");
    let hist = d.join("trend");
    fs::create_dir_all(&results).unwrap();
    write_results(&results, 1.0);
    trend::run(&opts(&results, &hist, "c0", 1)).unwrap();

    let path = history::history_file(&hist, "test");
    let mut text = fs::read_to_string(&path).unwrap();
    text.truncate(text.len() - 7);
    fs::write(&path, text).unwrap();

    match trend::run(&opts(&results, &hist, "c1", 2)) {
        Err(TrendError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn report_schema_matches_blessed_golden() {
    // The golden pins the report's key paths; regenerate it with
    // MCS_BLESS=1 after a deliberate schema change (same discipline as
    // the CSV goldens).
    let d = scratch("schema");
    let results = d.join("results");
    let hist = d.join("trend");
    fs::create_dir_all(&results).unwrap();
    write_results(&results, 1.0);
    // Two runs so the report contains non-null baselines too.
    trend::run(&opts(&results, &hist, "c0", 1)).unwrap();
    write_results(&results, 1.01);
    let out = trend::run(&opts(&results, &hist, "c1", 2)).unwrap();

    let paths = report::schema_paths(&out.report.to_json()).unwrap();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/golden/trend_report.schema"
    );
    let fresh = paths.join("\n") + "\n";
    if std::env::var("MCS_BLESS").is_ok() {
        fs::write(golden_path, &fresh).unwrap();
        return;
    }
    let blessed = fs::read_to_string(golden_path)
        .expect("results/golden/trend_report.schema missing — run with MCS_BLESS=1");
    assert_eq!(
        fresh, blessed,
        "trend_report.json schema drifted from the blessed golden; \
         if intentional, re-bless with MCS_BLESS=1"
    );
}

/// Expand a seed into an arbitrary but reproducible record (splitmix64
/// drives every field — the vendored proptest has no string/map
/// strategies, so the structure diversity lives here instead).
fn record_from_seed(seed: u64) -> TrendRecord {
    let mut state = seed;
    let mut next = move || -> u64 {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    // Keys exercise the separators (and JSON-escaped chars) real cell
    // IDs use, e.g. `eq.hash.material+energy.b10000.gather_span_bytes`.
    let key = |n: u64| -> String {
        let stems = [
            "grid.hash",
            "eq.unionized.material+energy",
            "ep.t8",
            "xs",
            "a \"b\"\\c",
        ];
        format!("{}.b{}", stems[(n % 5) as usize], n % 1_000_000)
    };
    let mut rates = BTreeMap::new();
    for _ in 0..(next() % 8) {
        // Finite non-negative rate with a wide dynamic range.
        let r = (next() % (1 << 53)) as f64 / ((next() % 1000) + 1) as f64;
        rates.insert(key(next()), r);
    }
    let mut counters = BTreeMap::new();
    for _ in 0..(next() % 8) {
        counters.insert(key(next()), next() % (1 << 53));
    }
    TrendRecord {
        commit: format!("{:012x}", next()),
        timestamp: next() % (1 << 40),
        leg: ["simd-native", "scalar", "local", "leg \"x\""][(next() % 4) as usize].to_string(),
        mcs_scale: ((next() % 100_000) + 1) as f64 / 1000.0,
        host_threads: ((next() % 512) + 1) as usize,
        rates,
        counters,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jsonl_round_trip_is_lossless(seed in any::<u64>()) {
        let rec = record_from_seed(seed);
        let line = rec.to_json_line();
        prop_assert!(!line.contains('\n'), "JSONL line must be single-line");
        let back = TrendRecord::from_json_line(&line).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn truncated_lines_never_parse(seed in any::<u64>(), cut in 1usize..200) {
        let rec = record_from_seed(seed);
        let line = rec.to_json_line();
        if cut < line.len() {
            let truncated = &line[..line.len() - cut];
            prop_assert!(
                TrendRecord::from_json_line(truncated).is_err(),
                "truncated line must not parse: {}",
                truncated
            );
        }
    }
}
