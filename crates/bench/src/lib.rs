//! Shared plumbing for the table/figure harness binaries.
//!
//! Every binary in `src/bin/` regenerates one evaluation artifact of the
//! paper. Conventions:
//!
//! * results are printed in the paper's row/series structure *and* written
//!   as CSV under `results/`;
//! * every run is headed by hardware provenance (the host's real SIMD
//!   features) and a MEASURED/MODELED tag per column — measured numbers
//!   come from real kernel executions on this host, modeled numbers from
//!   the calibrated machine model in `mcs-device`;
//! * `MCS_SCALE` (a float, default 1) scales particle/lookups counts, so
//!   `MCS_SCALE=10 cargo run --release --bin fig5_calc_rates` approaches
//!   paper scale on a beefier machine.

#![warn(missing_docs)]

pub mod harness;
pub mod trend;

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use mcs_simd::feature::SimdFeatures;

/// The `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env_or("MCS_RESULTS_DIR", "results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

/// Workload scale factor from `MCS_SCALE` (default 1.0).
pub fn scale() -> f64 {
    env_or("MCS_SCALE", "1").parse().unwrap_or(1.0)
}

/// Scale a nominal count, with a floor of 1.
pub fn scaled(n: usize) -> usize {
    scaled_by(n, scale())
}

/// Scale a nominal count by an explicit factor, with a floor of 1.
pub fn scaled_by(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(1)
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str) {
    header_with_scale(id, title, scale());
}

/// Print the standard experiment header for an explicit scale factor
/// (used by the library harness entry points, which take scale as an
/// argument instead of reading `MCS_SCALE`).
pub fn header_with_scale(id: &str, title: &str, scale: f64) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("host: {}", SimdFeatures::detect().summary());
    println!("scale factor: {scale}");
    println!("==============================================================");
}

/// Write rows as CSV under `results/<name>.csv`.
pub fn write_csv(name: &str, columns: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", columns.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    println!("[csv] wrote {}", path.display());
}

/// Time a closure, returning (result, seconds).
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Log-spaced probe energies over the data range, for lookup workloads.
pub fn log_energies(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = mcs_rng::Philox4x32::new(seed);
    let lo = mcs_xs::E_MIN.ln();
    let hi = mcs_xs::E_MAX.ln();
    (0..n)
        .map(|_| (lo + (hi - lo) * rng.next_uniform()).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        assert!(scaled(1) >= 1);
    }

    #[test]
    fn log_energies_in_range() {
        let es = log_energies(100, 1);
        assert_eq!(es.len(), 100);
        assert!(es
            .iter()
            .all(|&e| (mcs_xs::E_MIN..=mcs_xs::E_MAX).contains(&e)));
    }

    #[test]
    fn fmt_secs_units() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
    }
}
