//! Noise-aware delta classification against the trailing history.
//!
//! The same discipline as the hardened Fig. 2 timing: a single sample
//! is never trusted. Each metric's baseline is the **median of the
//! trailing window** (up to [`BASELINE_WINDOW`] prior same-scale
//! records), which discards scheduler-noise outliers without favoring
//! whichever run had the wider spread, and a regression only *gates*
//! once it is **sustained** — the trailing `sustain` records must all
//! sit beyond tolerance against their own trailing medians. A one-off
//! noisy sample therefore classifies as `suspect` (reported, not
//! gating) and washes out of the median within a few records.
//!
//! Rates and counters regress in opposite directions (rates falling,
//! counters rising) and get separate tolerances: counters are
//! deterministic replays of the same seeded workload, so their
//! tolerance is tighter — any sustained counter growth is real added
//! work, never noise.
//!
//! On a single-threaded host, measured *rates* are dominated by
//! timeshare noise (the same reasoning as `mcs-check`'s F2 warn band,
//! which shares [`rate_gate_warn_only`]), so sustained rate regressions
//! are still classified `regressed` but carry `gating = false`.

use super::record::TrendRecord;

/// Trailing records considered for the median baseline (median-of-5,
/// matching the fig2 interleaved timing discipline).
pub const BASELINE_WINDOW: usize = 5;

/// Per-metric-kind tolerances and the sustain requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// A rate may fall this many percent below its baseline median
    /// before the record counts as bad.
    pub rate_pct: f64,
    /// A counter may rise this many percent above its baseline median
    /// before the record counts as bad.
    pub counter_pct: f64,
    /// Consecutive bad records (including the current one) required
    /// before a bad metric classifies as `regressed` and gates.
    pub sustain: usize,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rate_pct: 15.0,
            counter_pct: 10.0,
            sustain: 2,
        }
    }
}

/// What a tracked metric measures, deciding its regression direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Throughput (higher is better; regression = falling).
    Rate,
    /// Deterministic work/memory counter (lower is better; regression =
    /// rising).
    Counter,
}

impl MetricKind {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Rate => "rate",
            MetricKind::Counter => "counter",
        }
    }
}

/// Classification of one metric's current value against its history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// No same-scale history to compare against.
    NoBaseline,
    /// Within tolerance of the baseline median.
    Ok,
    /// Beyond tolerance in the *good* direction.
    Improved,
    /// Beyond tolerance in the bad direction, but not yet sustained.
    Suspect,
    /// Beyond tolerance in the bad direction for `sustain` consecutive
    /// records.
    Regressed,
}

impl DeltaClass {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            DeltaClass::NoBaseline => "no_baseline",
            DeltaClass::Ok => "ok",
            DeltaClass::Improved => "improved",
            DeltaClass::Suspect => "suspect",
            DeltaClass::Regressed => "regressed",
        }
    }
}

/// One metric's scored delta.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Stable metric key (`grid.hash.b100000`, `xs.lookups`, ...).
    pub metric: String,
    /// Rate or counter semantics.
    pub kind: MetricKind,
    /// The current record's value.
    pub current: f64,
    /// Median of the trailing window (`None` without history).
    pub baseline: Option<f64>,
    /// Percent change vs the baseline median (0 without history).
    pub delta_pct: f64,
    /// Trailing consecutive records (including this one) that were bad
    /// against their own trailing medians.
    pub consecutive_bad: usize,
    /// The classification.
    pub class: DeltaClass,
    /// Whether this delta fails the gate (`regressed` and not on the
    /// warn band).
    pub gating: bool,
}

/// Whether measured-rate gates must be warn-only on this host: a
/// 1-thread timeshared runner cannot produce trustworthy relative
/// timings (shared with `mcs-check`'s F2 host-ratio warn band).
pub fn rate_gate_warn_only(host_threads: usize) -> bool {
    host_threads <= 1
}

/// Median of a non-empty slice (interpolation-free: the upper median,
/// exactly like the fig2 timing helper).
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Percent change of `current` against `baseline`, clamped so a
/// zero-baseline jump stays finite and representable in JSON.
fn pct_change(current: f64, baseline: f64) -> f64 {
    if baseline == 0.0 && current == 0.0 {
        return 0.0;
    }
    ((current - baseline) / baseline.abs().max(1e-300) * 100.0).clamp(-1e9, 1e9)
}

fn is_bad(kind: MetricKind, delta_pct: f64, tol: &Tolerances) -> bool {
    match kind {
        MetricKind::Rate => delta_pct < -tol.rate_pct,
        MetricKind::Counter => delta_pct > tol.counter_pct,
    }
}

fn is_improved(kind: MetricKind, delta_pct: f64, tol: &Tolerances) -> bool {
    match kind {
        MetricKind::Rate => delta_pct > tol.rate_pct,
        MetricKind::Counter => delta_pct < -tol.counter_pct,
    }
}

/// The comparable value series for one metric: every prior same-scale
/// record that carries it, in history order, with the current value
/// appended.
fn series(
    history: &[TrendRecord],
    current: &TrendRecord,
    metric: &str,
    kind: MetricKind,
) -> Vec<f64> {
    let value_of = |r: &TrendRecord| -> Option<f64> {
        match kind {
            MetricKind::Rate => r.rates.get(metric).copied(),
            MetricKind::Counter => r.counters.get(metric).map(|&c| c as f64),
        }
    };
    let mut vals: Vec<f64> = history
        .iter()
        .filter(|r| r.mcs_scale == current.mcs_scale)
        .filter_map(value_of)
        .collect();
    vals.push(value_of(current).expect("metric taken from current record"));
    vals
}

/// Score one metric given its full comparable series (last = current).
fn score_series(metric: &str, kind: MetricKind, vals: &[f64], tol: &Tolerances) -> MetricDelta {
    debug_assert!(!vals.is_empty());
    // Bad-against-own-baseline for every position, so `consecutive_bad`
    // has replay semantics: each record is judged exactly as it was (or
    // would have been) judged when it was current.
    let bad_at = |i: usize| -> bool {
        if i == 0 {
            return false; // no baseline ⇒ never bad
        }
        let w0 = i.saturating_sub(BASELINE_WINDOW);
        let base = median(&vals[w0..i]);
        is_bad(kind, pct_change(vals[i], base), tol)
    };
    let last = vals.len() - 1;
    let current = vals[last];
    let (baseline, delta_pct) = if last == 0 {
        (None, 0.0)
    } else {
        let w0 = last.saturating_sub(BASELINE_WINDOW);
        let base = median(&vals[w0..last]);
        (Some(base), pct_change(current, base))
    };
    let mut consecutive_bad = 0;
    for i in (0..=last).rev() {
        if bad_at(i) {
            consecutive_bad += 1;
        } else {
            break;
        }
    }
    let class = match baseline {
        None => DeltaClass::NoBaseline,
        Some(_) if consecutive_bad >= tol.sustain.max(1) && is_bad(kind, delta_pct, tol) => {
            DeltaClass::Regressed
        }
        Some(_) if is_bad(kind, delta_pct, tol) => DeltaClass::Suspect,
        Some(_) if is_improved(kind, delta_pct, tol) => DeltaClass::Improved,
        Some(_) => DeltaClass::Ok,
    };
    MetricDelta {
        metric: metric.to_string(),
        kind,
        current,
        baseline,
        delta_pct,
        consecutive_bad,
        class,
        gating: false, // filled in by classify (needs host_threads)
    }
}

/// Classify every metric of `current` against the prior history.
///
/// `history` must not include `current` itself (the caller strips a
/// trailing duplicate record first — idempotent re-runs).
pub fn classify(
    history: &[TrendRecord],
    current: &TrendRecord,
    tol: &Tolerances,
) -> Vec<MetricDelta> {
    let warn_only = rate_gate_warn_only(current.host_threads);
    let mut out = Vec::with_capacity(current.rates.len() + current.counters.len());
    for (metric, kind) in current
        .rates
        .keys()
        .map(|k| (k, MetricKind::Rate))
        .chain(current.counters.keys().map(|k| (k, MetricKind::Counter)))
    {
        let vals = series(history, current, metric, kind);
        let mut d = score_series(metric, kind, &vals, tol);
        d.gating = d.class == DeltaClass::Regressed && !(kind == MetricKind::Rate && warn_only);
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec(threads: usize, rate: f64, counter: u64) -> TrendRecord {
        TrendRecord {
            commit: format!("c-{rate}-{counter}"),
            timestamp: 0,
            leg: "scalar".into(),
            mcs_scale: 0.1,
            host_threads: threads,
            rates: BTreeMap::from([("grid.hash.b1000".to_string(), rate)]),
            counters: BTreeMap::from([("xs.bin_scan_steps".to_string(), counter)]),
        }
    }

    fn delta_of<'a>(ds: &'a [MetricDelta], metric: &str) -> &'a MetricDelta {
        ds.iter().find(|d| d.metric == metric).unwrap()
    }

    #[test]
    fn median_is_noise_robust() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 100.0, 2.0]), 2.0);
        // One wild outlier does not move the baseline.
        assert_eq!(median(&[10.0, 10.0, 10.0, 10.0, 1e9]), 10.0);
    }

    #[test]
    fn no_history_is_no_baseline_with_zero_delta() {
        let cur = rec(4, 1000.0, 50);
        let ds = classify(&[], &cur, &Tolerances::default());
        for d in &ds {
            assert_eq!(d.class, DeltaClass::NoBaseline);
            assert_eq!(d.delta_pct, 0.0);
            assert!(!d.gating);
        }
    }

    #[test]
    fn stable_series_is_ok_and_single_dip_is_suspect_not_gating() {
        let hist: Vec<TrendRecord> = (0..5).map(|_| rec(4, 1000.0, 50)).collect();
        let tol = Tolerances::default();
        // Identical value: ok, zero delta.
        let ds = classify(&hist, &rec(4, 1000.0, 50), &tol);
        let d = delta_of(&ds, "grid.hash.b1000");
        assert_eq!(d.class, DeltaClass::Ok);
        assert_eq!(d.delta_pct, 0.0);
        // One 25% dip: out of tolerance but not sustained.
        let ds = classify(&hist, &rec(4, 750.0, 50), &tol);
        let d = delta_of(&ds, "grid.hash.b1000");
        assert_eq!(d.class, DeltaClass::Suspect);
        assert_eq!(d.consecutive_bad, 1);
        assert!(!d.gating);
    }

    #[test]
    fn sustained_rate_regression_gates() {
        // 5 good records, then one bad already in history, then the
        // current bad one: 2 consecutive ⇒ regressed + gating.
        let mut hist: Vec<TrendRecord> = (0..5).map(|_| rec(4, 1000.0, 50)).collect();
        hist.push(rec(4, 750.0, 50));
        let ds = classify(&hist, &rec(4, 745.0, 50), &Tolerances::default());
        let d = delta_of(&ds, "grid.hash.b1000");
        assert_eq!(d.class, DeltaClass::Regressed);
        assert_eq!(d.consecutive_bad, 2);
        assert!(d.gating, "sustained rate regression must gate");
        assert!(d.delta_pct < -20.0);
    }

    #[test]
    fn single_thread_host_rates_warn_only_but_counters_still_gate() {
        let mut hist: Vec<TrendRecord> = (0..5).map(|_| rec(1, 1000.0, 50)).collect();
        hist.push(rec(1, 700.0, 70));
        let ds = classify(&hist, &rec(1, 700.0, 70), &Tolerances::default());
        let rate = delta_of(&ds, "grid.hash.b1000");
        assert_eq!(rate.class, DeltaClass::Regressed);
        assert!(!rate.gating, "1-thread rate regressions are warn-band");
        // Counters are deterministic: they gate regardless of threads.
        let ctr = delta_of(&ds, "xs.bin_scan_steps");
        assert_eq!(ctr.class, DeltaClass::Regressed);
        assert!(ctr.gating, "counter regressions gate on any host");
        assert!(rate_gate_warn_only(1));
        assert!(!rate_gate_warn_only(2));
    }

    #[test]
    fn improvement_is_reported_not_gated() {
        let hist: Vec<TrendRecord> = (0..5).map(|_| rec(4, 1000.0, 50)).collect();
        let ds = classify(&hist, &rec(4, 1400.0, 30), &Tolerances::default());
        assert_eq!(delta_of(&ds, "grid.hash.b1000").class, DeltaClass::Improved);
        assert_eq!(
            delta_of(&ds, "xs.bin_scan_steps").class,
            DeltaClass::Improved
        );
        assert!(ds.iter().all(|d| !d.gating));
    }

    #[test]
    fn baseline_ignores_other_scales() {
        let mut hist: Vec<TrendRecord> = (0..3).map(|_| rec(4, 1000.0, 50)).collect();
        let mut other = rec(4, 10.0, 5000);
        other.mcs_scale = 1.0; // different scale: not comparable
        hist.push(other);
        let ds = classify(&hist, &rec(4, 1000.0, 50), &Tolerances::default());
        assert_eq!(delta_of(&ds, "grid.hash.b1000").class, DeltaClass::Ok);
    }

    #[test]
    fn median_window_heals_after_sustained_shift() {
        // After 5 records at the new level the median moves: a step
        // change (e.g. an accepted slower-but-correct fix) stops
        // flagging once the window is saturated with the new value.
        let mut hist: Vec<TrendRecord> = (0..5).map(|_| rec(4, 1000.0, 50)).collect();
        for _ in 0..5 {
            hist.push(rec(4, 700.0, 50));
        }
        let ds = classify(&hist, &rec(4, 700.0, 50), &Tolerances::default());
        assert_eq!(delta_of(&ds, "grid.hash.b1000").class, DeltaClass::Ok);
    }

    #[test]
    fn zero_baseline_counter_growth_is_flagged() {
        let hist: Vec<TrendRecord> = (0..3).map(|_| rec(4, 1000.0, 0)).collect();
        let mut bad_hist = hist.clone();
        bad_hist.push(rec(4, 1000.0, 10_000));
        let ds = classify(&bad_hist, &rec(4, 1000.0, 10_000), &Tolerances::default());
        let d = delta_of(&ds, "xs.bin_scan_steps");
        assert_eq!(d.class, DeltaClass::Regressed);
        assert!(d.delta_pct.is_finite());
    }
}
