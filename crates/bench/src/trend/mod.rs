//! Perf-trajectory trend surface: history, noise-aware gating, roofline.
//!
//! `mcs-bench trend` closes the loop the per-commit benchmarks leave
//! open: a single run tells you *where you are*, the trend tells you
//! *which way you are moving*. Each invocation ingests the results
//! directory ([`ingest`]), folds it into one versioned [`TrendRecord`],
//! appends it to a per-ISA-leg JSONL history ([`history`]), classifies
//! every metric against the trailing median baseline ([`delta`]),
//! prices every benchmark cell against a bandwidth roofline
//! ([`roofline`]), and emits a machine-readable
//! `trend_report.json` ([`report`]) whose gate verdict decides the CI
//! job's exit code.
//!
//! The pipeline is deliberately idempotent: re-running on identical
//! inputs recognizes the trailing history record as the same
//! measurement, skips the append, and reports zero deltas — so a
//! re-triggered CI job can never double-count itself into a fake
//! "sustained" regression.

pub mod delta;
pub mod history;
pub mod ingest;
pub mod record;
pub mod report;
pub mod roofline;

pub use delta::{rate_gate_warn_only, Tolerances};
pub use record::TrendRecord;
pub use report::TrendReport;

use std::path::PathBuf;

use mcs_device::MachineSpec;

/// Everything that can go wrong in a trend run. All variants are
/// recoverable `Err`s — the trend pipeline never panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrendError {
    /// Filesystem failure on `path`.
    Io {
        /// Path that failed.
        path: String,
        /// OS error text.
        msg: String,
    },
    /// A history line (1-based; 0 when the line is not yet known)
    /// failed strict validation.
    Corrupt {
        /// 1-based line number in the history file.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A results artifact failed to parse.
    Parse {
        /// The offending file.
        file: String,
        /// What was wrong with it.
        msg: String,
    },
    /// No ingestible benchmark artifact was found.
    NoInput {
        /// The directory that was searched.
        dir: String,
    },
}

impl std::fmt::Display for TrendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrendError::Io { path, msg } => write!(f, "io error on {path}: {msg}"),
            TrendError::Corrupt { line, msg } => {
                write!(f, "corrupt history (line {line}): {msg}")
            }
            TrendError::Parse { file, msg } => write!(f, "cannot parse {file}: {msg}"),
            TrendError::NoInput { dir } => {
                write!(f, "no ingestible BENCH_*.json under {dir}")
            }
        }
    }
}

impl std::error::Error for TrendError {}

/// Configuration of one trend run.
#[derive(Debug, Clone)]
pub struct TrendOptions {
    /// Directory holding `BENCH_*.json` (+ optional `check/` subdir and
    /// `check_report.json`).
    pub results_dir: PathBuf,
    /// Directory holding the per-leg history files.
    pub history_dir: PathBuf,
    /// ISA leg tag of this run (`simd-native`, `scalar`, `local`, ...).
    pub leg: String,
    /// Commit identifier stamped on the record.
    pub commit: String,
    /// Unix seconds stamped on the record.
    pub timestamp: u64,
    /// Gate tolerances.
    pub tolerances: Tolerances,
    /// DRAM bandwidth (GB/s) override for the roofline; `None` uses the
    /// reference device's parameter.
    pub bandwidth_gbs: Option<f64>,
    /// Device-catalog entry whose machine model prices the roofline;
    /// `None` uses the conservative CI-class reference host. Lets a
    /// per-device-class trend history (e.g. a GPU runner leg) compare
    /// its measured rates against its own ceiling.
    pub reference_device: Option<String>,
    /// History records kept per leg (oldest trimmed beyond this).
    pub max_keep: usize,
    /// Whether to append the record (false = dry run: classify and
    /// report only).
    pub append: bool,
}

impl TrendOptions {
    /// Options with the given directories and defaults everywhere else.
    pub fn new(results_dir: PathBuf, history_dir: PathBuf) -> Self {
        TrendOptions {
            results_dir,
            history_dir,
            leg: "local".to_string(),
            commit: "unknown".to_string(),
            timestamp: 0,
            tolerances: Tolerances::default(),
            bandwidth_gbs: None,
            reference_device: None,
            max_keep: 500,
            append: true,
        }
    }
}

/// What one trend run produced.
#[derive(Debug, Clone)]
pub struct TrendOutcome {
    /// The record built from this run's artifacts.
    pub record: TrendRecord,
    /// The full report (gate verdict, deltas, roofline).
    pub report: TrendReport,
    /// Whether the record was appended to the history (false on dry
    /// runs and idempotent re-runs of an already-recorded measurement).
    pub appended: bool,
    /// History length after this run, including the evaluated record.
    pub history_len: usize,
}

/// Run the full trend pipeline: ingest → record → classify → roofline
/// → report → (append).
pub fn run(opts: &TrendOptions) -> Result<TrendOutcome, TrendError> {
    let ing = ingest::ingest(&opts.results_dir)?;

    let record = TrendRecord {
        commit: opts.commit.clone(),
        timestamp: opts.timestamp,
        leg: opts.leg.clone(),
        mcs_scale: ing.mcs_scale,
        host_threads: ing.host_threads,
        rates: ing.rates.clone(),
        counters: ing.counters.clone(),
    };

    let hist_path = history::history_file(&opts.history_dir, &opts.leg);
    let full_history = history::load(&hist_path)?;

    // Idempotency: if the trailing record is the same measurement
    // (identical commit + values, timestamp ignored), this run is a
    // replay — compare against the history *before* that record and do
    // not append a duplicate.
    let duplicate_of_tail = full_history
        .last()
        .is_some_and(|tail| tail.same_measurement(&record));
    let prior = if duplicate_of_tail {
        &full_history[..full_history.len() - 1]
    } else {
        &full_history[..]
    };

    let deltas = delta::classify(prior, &record, &opts.tolerances);

    let mut spec = match &opts.reference_device {
        Some(name) => {
            mcs_device::catalog::device(name)
                .map_err(|msg| TrendError::Parse {
                    file: "reference device".to_string(),
                    msg,
                })?
                .machine
        }
        None => MachineSpec::trend_reference_host(),
    };
    if let Some(bw) = opts.bandwidth_gbs {
        if bw.is_finite() && bw > 0.0 {
            spec.dram_gb_s = bw;
        }
    }
    let roofline = roofline::estimate(&ing, &spec);

    let should_append = opts.append && !duplicate_of_tail;
    if should_append {
        history::append(&hist_path, &full_history, &record, opts.max_keep)?;
    }
    let history_len = if duplicate_of_tail {
        full_history.len()
    } else {
        // Evaluated record counts whether or not it was persisted.
        (full_history.len() + 1).min(opts.max_keep)
    };

    let report = TrendReport {
        leg: opts.leg.clone(),
        commit: opts.commit.clone(),
        timestamp: opts.timestamp,
        mcs_scale: record.mcs_scale,
        host_threads: record.host_threads,
        history_len,
        appended: should_append,
        warn_only_rates: rate_gate_warn_only(record.host_threads),
        tolerances: opts.tolerances,
        deltas,
        roofline,
        sources: ing.sources.clone(),
        skipped: ing.skipped.clone(),
    };

    Ok(TrendOutcome {
        record,
        report,
        appended: should_append,
        history_len,
    })
}
