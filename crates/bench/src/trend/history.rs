//! Per-leg JSONL history files: strict load, idempotent append.
//!
//! One history file per ISA leg (`history-<leg>.jsonl`), one
//! [`TrendRecord`] per line. Loading is all-or-nothing: any
//! unparseable, schema-drifted, or truncated line is a hard
//! [`TrendError::Corrupt`] naming the line — a damaged history must
//! stop the gate rather than silently shrink the baseline window (a
//! truncated file would otherwise *hide* the regression it was about
//! to catch).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use super::record::TrendRecord;
use super::TrendError;

/// History filename for an ISA leg.
pub fn history_file(dir: &Path, leg: &str) -> PathBuf {
    dir.join(format!("history-{leg}.jsonl"))
}

/// Load every record of a history file, strictly.
///
/// A missing file is an empty history (`Ok(vec![])`) — that is the
/// legitimate first-run state. Anything else that fails to read or
/// parse is an `Err`.
pub fn load(path: &Path) -> Result<Vec<TrendRecord>, TrendError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(TrendError::Io {
                path: path.display().to_string(),
                msg: e.to_string(),
            })
        }
    };
    // A non-empty file that does not end in '\n' lost its tail mid-write.
    if !text.is_empty() && !text.ends_with('\n') {
        return Err(TrendError::Corrupt {
            line: text.lines().count(),
            msg: "history file is truncated (no trailing newline)".into(),
        });
    }
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = TrendRecord::from_json_line(line).map_err(|e| match e {
            TrendError::Corrupt { msg, .. } => TrendError::Corrupt { line: i + 1, msg },
            other => other,
        })?;
        records.push(rec);
    }
    Ok(records)
}

/// Append one record, keeping at most `max_keep` records in the file.
///
/// The trimmed rewrite goes through a sibling temp file + rename so a
/// crash mid-write never leaves a half-line behind for the next run's
/// strict loader to trip on.
pub fn append(
    path: &Path,
    existing: &[TrendRecord],
    record: &TrendRecord,
    max_keep: usize,
) -> Result<(), TrendError> {
    let io_err = |e: std::io::Error| TrendError::Io {
        path: path.display().to_string(),
        msg: e.to_string(),
    };
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(io_err)?;
    }
    if existing.len() + 1 > max_keep {
        // Rewrite the trimmed window atomically.
        let keep_from = existing.len() + 1 - max_keep;
        let mut out = String::new();
        for r in &existing[keep_from..] {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out.push_str(&record.to_json_line());
        out.push('\n');
        let tmp = path.with_extension("jsonl.tmp");
        fs::write(&tmp, out).map_err(io_err)?;
        fs::rename(&tmp, path).map_err(io_err)?;
    } else {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        writeln!(f, "{}", record.to_json_line()).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec(commit: &str, ts: u64) -> TrendRecord {
        TrendRecord {
            commit: commit.into(),
            timestamp: ts,
            leg: "scalar".into(),
            mcs_scale: 0.1,
            host_threads: 2,
            rates: BTreeMap::from([("grid.hash.b1000".to_string(), 1000.0 + ts as f64)]),
            counters: BTreeMap::from([("xs.lookups".to_string(), 42u64)]),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcs-trend-hist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn missing_file_is_empty_history() {
        let d = tmpdir("missing");
        assert_eq!(load(&history_file(&d, "scalar")).unwrap(), vec![]);
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let d = tmpdir("roundtrip");
        let path = history_file(&d, "scalar");
        let mut all = Vec::new();
        for i in 0..4 {
            let r = rec(&format!("c{i}"), i);
            append(&path, &all, &r, 100).unwrap();
            all.push(r);
        }
        assert_eq!(load(&path).unwrap(), all);
    }

    #[test]
    fn truncated_tail_is_a_hard_err() {
        let d = tmpdir("trunc");
        let path = history_file(&d, "scalar");
        append(&path, &[], &rec("c0", 0), 100).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 10); // lose the tail, incl. newline
        fs::write(&path, text).unwrap();
        match load(&path) {
            Err(TrendError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_middle_line_is_named() {
        let d = tmpdir("corrupt");
        let path = history_file(&d, "scalar");
        let mut all = Vec::new();
        for i in 0..3 {
            let r = rec(&format!("c{i}"), i);
            append(&path, &all, &r, 100).unwrap();
            all.push(r);
        }
        let text = fs::read_to_string(&path).unwrap();
        let mangled: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    l.replace("\"rates\"", "\"ratez\"")
                } else {
                    l.to_string()
                }
            })
            .collect();
        fs::write(&path, mangled.join("\n") + "\n").unwrap();
        match load(&path) {
            Err(TrendError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
    }

    #[test]
    fn trim_keeps_newest_window() {
        let d = tmpdir("trim");
        let path = history_file(&d, "scalar");
        let mut all = Vec::new();
        for i in 0..10 {
            let r = rec(&format!("c{i}"), i);
            append(&path, &all, &r, 4).unwrap();
            all = load(&path).unwrap();
        }
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap().commit, "c9");
        assert_eq!(all[0].commit, "c6");
    }
}
