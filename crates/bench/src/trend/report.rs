//! The machine-readable `trend_report.json`.
//!
//! Schema `mcs-trend-report/1`. The report carries everything CI (or a
//! human reading the artifact) needs to act on the gate without re-
//! running anything: per-metric deltas with their classification,
//! the roofline table, the gate verdict, and which files fed the
//! record. [`schema_paths`] flattens a report to its sorted set of
//! JSON key paths so a blessed golden under `results/golden/` catches
//! schema drift exactly like the CSV goldens do.

use mcs_prof::value::{escape_json, JsonValue};

use super::delta::{DeltaClass, MetricDelta, Tolerances};
use super::roofline::RooflineCell;

/// Schema tag stamped on every report.
pub const REPORT_SCHEMA: &str = "mcs-trend-report/1";

/// The full trend evaluation of one record against its history.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// ISA leg evaluated.
    pub leg: String,
    /// Commit of the evaluated record.
    pub commit: String,
    /// Unix seconds of the evaluated record.
    pub timestamp: u64,
    /// Workload scale of the evaluated record.
    pub mcs_scale: f64,
    /// Host threads of the measured run.
    pub host_threads: usize,
    /// History length *after* this run (including the evaluated record).
    pub history_len: usize,
    /// Whether this run appended a new record (false: idempotent re-run
    /// or dry run).
    pub appended: bool,
    /// Whether rate regressions are warn-only on this host.
    pub warn_only_rates: bool,
    /// Tolerances the gate ran with.
    pub tolerances: Tolerances,
    /// Per-metric deltas, in metric order.
    pub deltas: Vec<MetricDelta>,
    /// Roofline estimates per benchmark cell.
    pub roofline: Vec<RooflineCell>,
    /// Files that fed the record.
    pub sources: Vec<String>,
    /// Files found but skipped, with reasons.
    pub skipped: Vec<String>,
}

impl TrendReport {
    /// Deltas that fail the gate.
    pub fn gating(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.gating)
    }

    /// Whether the gate passes (no gating regression).
    pub fn gate_passed(&self) -> bool {
        self.gating().next().is_none()
    }

    /// Count of a classification.
    pub fn n_class(&self, class: DeltaClass) -> usize {
        self.deltas.iter().filter(|d| d.class == class).count()
    }

    /// Render the machine-readable report.
    pub fn to_json(&self) -> String {
        let num = mcs_check_num;
        let mut s = String::with_capacity(8192);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{REPORT_SCHEMA}\",\n"));
        s.push_str(&format!("  \"leg\": \"{}\",\n", escape_json(&self.leg)));
        s.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            escape_json(&self.commit)
        ));
        s.push_str(&format!("  \"timestamp\": {},\n", self.timestamp));
        s.push_str(&format!("  \"mcs_scale\": {},\n", num(self.mcs_scale)));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!("  \"history_len\": {},\n", self.history_len));
        s.push_str(&format!("  \"appended\": {},\n", self.appended));
        s.push_str("  \"gate\": {");
        s.push_str(&format!(
            "\"passed\": {}, \"n_gating\": {}, \"n_regressed\": {}, \"n_suspect\": {}, \
             \"n_improved\": {}, \"warn_only_rates\": {}, ",
            self.gate_passed(),
            self.gating().count(),
            self.n_class(DeltaClass::Regressed),
            self.n_class(DeltaClass::Suspect),
            self.n_class(DeltaClass::Improved),
            self.warn_only_rates,
        ));
        s.push_str(&format!(
            "\"tolerances\": {{\"rate_pct\": {}, \"counter_pct\": {}, \"sustain\": {}}}}},\n",
            num(self.tolerances.rate_pct),
            num(self.tolerances.counter_pct),
            self.tolerances.sustain,
        ));
        s.push_str("  \"deltas\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            let baseline = match d.baseline {
                Some(b) => num(b),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"metric\": \"{}\", \"kind\": \"{}\", \"current\": {}, \
                 \"baseline\": {}, \"delta_pct\": {}, \"consecutive_bad\": {}, \
                 \"class\": \"{}\", \"gating\": {}}}{}\n",
                escape_json(&d.metric),
                d.kind.name(),
                num(d.current),
                baseline,
                num(d.delta_pct),
                d.consecutive_bad,
                d.class.name(),
                d.gating,
                if i + 1 < self.deltas.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"roofline\": [\n");
        for (i, r) in self.roofline.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"benchmark\": \"{}\", \"cell\": \"{}\", \"unit\": \"{}\", \
                 \"measured_rate\": {}, \"bytes_per_op\": {}, \"roofline_rate\": {}, \
                 \"pct_of_roofline\": {}}}{}\n",
                r.benchmark,
                escape_json(&r.cell),
                r.unit,
                num(r.measured_rate),
                num(r.bytes_per_op),
                num(r.roofline_rate),
                num(r.pct_of_roofline),
                if i + 1 < self.roofline.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        let str_list = |items: &[String]| -> String {
            let q: Vec<String> = items
                .iter()
                .map(|x| format!("\"{}\"", escape_json(x)))
                .collect();
            q.join(", ")
        };
        s.push_str(&format!("  \"sources\": [{}],\n", str_list(&self.sources)));
        s.push_str(&format!("  \"skipped\": [{}]\n", str_list(&self.skipped)));
        s.push_str("}\n");
        s
    }
}

/// A finite f64 as a JSON number (NaN/inf → null), matching the
/// convention of `check_report.json`.
fn mcs_check_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Flatten a JSON document to its sorted, deduplicated key paths
/// (arrays contribute `path[]` plus their element paths). This is the
/// shape the schema golden pins: adding, renaming, or removing report
/// fields changes the path set even when values differ run to run.
pub fn schema_paths(text: &str) -> Result<Vec<String>, String> {
    fn walk(v: &JsonValue, prefix: &str, out: &mut Vec<String>) {
        match v {
            JsonValue::Object(m) => {
                for (k, child) in m {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    walk(child, &path, out);
                }
            }
            JsonValue::Array(items) => {
                let path = format!("{prefix}[]");
                out.push(path.clone());
                for item in items {
                    walk(item, &path, out);
                }
            }
            _ => {}
        }
    }
    let v = JsonValue::parse(text)?;
    let mut out = Vec::new();
    walk(&v, "", &mut out);
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::delta::MetricKind;

    fn sample_report() -> TrendReport {
        TrendReport {
            leg: "scalar".into(),
            commit: "abc123".into(),
            timestamp: 1_754_000_000,
            mcs_scale: 0.1,
            host_threads: 2,
            history_len: 3,
            appended: true,
            warn_only_rates: false,
            tolerances: Tolerances::default(),
            deltas: vec![
                MetricDelta {
                    metric: "grid.hash.b1000".into(),
                    kind: MetricKind::Rate,
                    current: 900.0,
                    baseline: Some(1000.0),
                    delta_pct: -10.0,
                    consecutive_bad: 0,
                    class: DeltaClass::Ok,
                    gating: false,
                },
                MetricDelta {
                    metric: "xs.lookups".into(),
                    kind: MetricKind::Counter,
                    current: 42.0,
                    baseline: None,
                    delta_pct: 0.0,
                    consecutive_bad: 0,
                    class: DeltaClass::NoBaseline,
                    gating: false,
                },
            ],
            roofline: vec![RooflineCell {
                benchmark: "grid_backend",
                cell: "grid.hash.b1000".into(),
                unit: "lookups/s",
                measured_rate: 900.0,
                bytes_per_op: 19.8,
                roofline_rate: 1e9,
                pct_of_roofline: 9e-5,
            }],
            sources: vec!["BENCH_grid_backend.json".into()],
            skipped: vec!["BENCH_event_parallel.json (no scale stamp)".into()],
        }
    }

    #[test]
    fn report_is_valid_json_with_stable_paths() {
        let text = sample_report().to_json();
        let v = JsonValue::parse(&text).expect("report must parse");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(
            v.get("gate")
                .and_then(|g| g.get("passed"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
        let paths = schema_paths(&text).unwrap();
        for must in [
            "gate.passed",
            "gate.tolerances.rate_pct",
            "deltas[].metric",
            "deltas[].class",
            "roofline[].pct_of_roofline",
            "sources[]",
        ] {
            assert!(paths.contains(&must.to_string()), "missing path {must}");
        }
    }

    #[test]
    fn gate_fails_when_any_delta_gates() {
        let mut r = sample_report();
        assert!(r.gate_passed());
        r.deltas[0].class = DeltaClass::Regressed;
        r.deltas[0].gating = true;
        assert!(!r.gate_passed());
        let text = r.to_json();
        assert!(text.contains("\"passed\": false"));
        assert!(text.contains("\"n_gating\": 1"));
        // The offending metric is named.
        assert!(text.contains("\"metric\": \"grid.hash.b1000\", \"kind\": \"rate\""));
    }

    #[test]
    fn null_baseline_renders_as_null() {
        let text = sample_report().to_json();
        assert!(text.contains("\"baseline\": null"));
    }
}
