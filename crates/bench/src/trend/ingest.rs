//! Ingestion: `results/BENCH_*.json` + `check_report.json` → one record.
//!
//! Discovery looks in the results dir *and* its `check/` subdirectory
//! (where the CI check job redirects its fresh reduced-scale bench
//! JSONs via `MCS_RESULTS_DIR`); on a basename collision the `check/`
//! copy wins, so a CI run trends its own fresh measurements rather than
//! the committed full-scale artifacts that came along with the
//! checkout.
//!
//! Records must be comparable, so every ingested file has to agree on
//! `mcs_scale`: the consensus scale is the most common one among the
//! candidate files (ties break toward `check_report.json`'s scale), and
//! files at any other scale — or missing the stamp entirely, like
//! pre-PR2 `BENCH_event_parallel.json` — are skipped with a note that
//! lands in the report's `skipped` list instead of poisoning the
//! baseline.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mcs_prof::value::JsonValue;
use mcs_prof::Counters;

use super::TrendError;

/// One `BENCH_grid_backend` sample row, kept for the roofline estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Grid backend name (`binary`, `unionized`, `hash`).
    pub backend: String,
    /// Bank size of the sweep cell.
    pub bank: u64,
    /// Measured lookups/s.
    pub rate: f64,
    /// Index-structure bytes of this backend.
    pub index_bytes: u64,
}

/// One `BENCH_event_queueing` sample row, kept for the roofline
/// estimate and the per-cell counter surface.
#[derive(Debug, Clone, PartialEq)]
pub struct EqCell {
    /// Grid backend name.
    pub backend: String,
    /// Queueing mode (`off`, `material`, `material+energy`).
    pub mode: String,
    /// Bank size of the sweep cell.
    pub bank: u64,
    /// Measured particles/s.
    pub rate: f64,
    /// Grid lookups performed (deterministic).
    pub lookups: u64,
    /// Hash segment-scan steps (deterministic; 0 off-hash).
    pub bin_scan_steps: u64,
    /// Priced gather span in bytes (deterministic).
    pub gather_span_bytes: u64,
    /// Gather span pairs observed (deterministic).
    pub gather_span_pairs: u64,
}

/// Everything ingested from one results directory.
#[derive(Debug, Clone, Default)]
pub struct Ingested {
    /// Consensus workload scale of the ingested files.
    pub mcs_scale: f64,
    /// Host threads of the measured run (from `check_report.json` when
    /// available, else this process's view).
    pub host_threads: usize,
    /// Rate metrics keyed by stable cell ID (`grid.hash.b100000`, ...).
    pub rates: BTreeMap<String, f64>,
    /// Deterministic counters (per-cell + the `xs.*` report set).
    pub counters: BTreeMap<String, u64>,
    /// Grid-backend cells for the roofline estimate.
    pub grid_cells: Vec<GridCell>,
    /// Event-queueing cells for the roofline estimate.
    pub eq_cells: Vec<EqCell>,
    /// Files that contributed to this record.
    pub sources: Vec<String>,
    /// Files found but not ingested, with the reason.
    pub skipped: Vec<String>,
}

fn parse_err(file: &Path, msg: impl Into<String>) -> TrendError {
    TrendError::Parse {
        file: file.display().to_string(),
        msg: msg.into(),
    }
}

fn read_json(path: &Path) -> Result<JsonValue, TrendError> {
    let text = fs::read_to_string(path).map_err(|e| TrendError::Io {
        path: path.display().to_string(),
        msg: e.to_string(),
    })?;
    JsonValue::parse(&text).map_err(|e| parse_err(path, e))
}

fn num(v: &JsonValue, path: &Path, key: &str) -> Result<f64, TrendError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .filter(|n| n.is_finite())
        .ok_or_else(|| parse_err(path, format!("missing/invalid number {key:?}")))
}

fn uint(v: &JsonValue, path: &Path, key: &str) -> Result<u64, TrendError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| parse_err(path, format!("missing/invalid integer {key:?}")))
}

fn string<'a>(v: &'a JsonValue, path: &Path, key: &str) -> Result<&'a str, TrendError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| parse_err(path, format!("missing string {key:?}")))
}

fn samples<'a>(v: &'a JsonValue, path: &Path) -> Result<&'a [JsonValue], TrendError> {
    v.get("samples")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| parse_err(path, "missing \"samples\" array"))
}

/// Candidate files: `BENCH_*.json` under `dir` and `dir/check`
/// (preferring `check/` on collision), plus `check_report.json`.
fn discover(dir: &Path) -> Vec<PathBuf> {
    let mut by_name: BTreeMap<String, PathBuf> = BTreeMap::new();
    for sub in [dir.to_path_buf(), dir.join("check")] {
        let Ok(entries) = fs::read_dir(&sub) else {
            continue;
        };
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                // Later iteration (check/) overwrites the committed copy.
                by_name.insert(name, e.path());
            }
        }
    }
    let mut files: Vec<PathBuf> = by_name.into_values().collect();
    for candidate in [
        dir.join("check_report.json"),
        dir.join("check/check_report.json"),
    ] {
        if candidate.is_file() {
            files.push(candidate);
            break;
        }
    }
    files
}

fn file_label(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Scale stamped on a candidate file (`mcs_scale` for benches, `scale`
/// for the check report); `None` if absent.
fn scale_of(doc: &JsonValue) -> Option<f64> {
    doc.get("mcs_scale")
        .or_else(|| doc.get("scale"))
        .and_then(JsonValue::as_f64)
        .filter(|s| s.is_finite() && *s > 0.0)
}

/// Ingest every known artifact under `results_dir` into one snapshot.
///
/// Errors if no benchmark file could be ingested at all; skipped files
/// (scale mismatch, missing scale stamp, unknown bench tag) are noted
/// but not fatal.
pub fn ingest(results_dir: &Path) -> Result<Ingested, TrendError> {
    let files = discover(results_dir);
    // First pass: parse all candidates and establish the consensus scale.
    let mut parsed: Vec<(PathBuf, JsonValue)> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for path in files {
        match read_json(&path) {
            Ok(doc) => parsed.push((path, doc)),
            Err(e) => {
                // A malformed artifact is a hard error: it means the
                // producing job is broken, which the gate must surface.
                return Err(e);
            }
        }
    }
    let is_report = |path: &Path| path.file_name().is_some_and(|n| n == "check_report.json");
    let mut scale_votes: Vec<(f64, usize)> = Vec::new();
    let mut report_scale = None;
    for (path, doc) in &parsed {
        let Some(s) = scale_of(doc) else { continue };
        if is_report(path) {
            report_scale = Some(s);
        }
        match scale_votes.iter_mut().find(|(v, _)| *v == s) {
            Some((_, n)) => *n += 1,
            None => scale_votes.push((s, 1)),
        }
    }
    let consensus = scale_votes
        .iter()
        .max_by(|a, b| {
            a.1.cmp(&b.1).then_with(|| {
                // Tie-break toward the check report's scale.
                let a_is_rep = Some(a.0) == report_scale;
                let b_is_rep = Some(b.0) == report_scale;
                a_is_rep.cmp(&b_is_rep)
            })
        })
        .map(|&(s, _)| s);
    let Some(mcs_scale) = consensus else {
        return Err(TrendError::NoInput {
            dir: results_dir.display().to_string(),
        });
    };

    let mut out = Ingested {
        mcs_scale,
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..Default::default()
    };
    let mut eq_xs_counters: Option<Counters> = None;
    let mut report_xs_counters: Option<Counters> = None;
    let mut ingested_bench = false;

    for (path, doc) in &parsed {
        let label = file_label(path, results_dir);
        match scale_of(doc) {
            Some(s) if s == mcs_scale => {}
            Some(s) => {
                skipped.push(format!("{label} (scale {s} != consensus {mcs_scale})"));
                continue;
            }
            None => {
                skipped.push(format!("{label} (no scale stamp)"));
                continue;
            }
        }
        if is_report(path) {
            if let Some(threads) = doc.get("threads").and_then(JsonValue::as_u64) {
                out.host_threads = (threads as usize).max(1);
            }
            if let Some(c) = doc.get("counters") {
                report_xs_counters = Some(Counters::from_value(c).map_err(|e| parse_err(path, e))?);
            }
            out.sources.push(label);
            continue;
        }
        match string(doc, path, "bench")? {
            "grid_backend" => {
                ingest_grid(doc, path, &mut out)?;
                ingested_bench = true;
                out.sources.push(label);
            }
            "event_queueing" => {
                ingest_eq(doc, path, &mut out)?;
                if let Some(c) = doc.get("hash_material_energy_counters") {
                    eq_xs_counters = Some(Counters::from_value(c).map_err(|e| parse_err(path, e))?);
                }
                ingested_bench = true;
                out.sources.push(label);
            }
            "event_parallel" => {
                ingest_ep(doc, path, &mut out)?;
                ingested_bench = true;
                out.sources.push(label);
            }
            "serve" => {
                ingest_serve(doc, path, &mut out)?;
                ingested_bench = true;
                out.sources.push(label);
            }
            "geometry" => {
                ingest_geometry(doc, path, &mut out)?;
                ingested_bench = true;
                out.sources.push(label);
            }
            "device" => {
                ingest_device(doc, path, &mut out)?;
                ingested_bench = true;
                out.sources.push(label);
            }
            other => {
                skipped.push(format!("{label} (unknown bench tag {other:?})"));
            }
        }
    }

    if !ingested_bench {
        return Err(TrendError::NoInput {
            dir: results_dir.display().to_string(),
        });
    }

    // The canonical `xs.*` set: the check report's surfaced counters
    // when they ran at the consensus scale, else the event-queueing
    // bench's own export of the same configuration.
    if let Some(c) = report_xs_counters.or(eq_xs_counters) {
        for (k, v) in c.iter() {
            out.counters.insert(k.to_string(), v);
        }
    }
    out.skipped = skipped;
    Ok(out)
}

fn ingest_grid(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let cell = GridCell {
            backend: string(s, path, "backend")?.to_string(),
            bank: uint(s, path, "bank")?,
            rate: num(s, path, "lookups_per_second")?,
            index_bytes: uint(s, path, "index_bytes")?,
        };
        let key = format!("grid.{}.b{}", cell.backend, cell.bank);
        out.rates.insert(key.clone(), cell.rate);
        out.counters
            .insert(format!("{key}.index_bytes"), cell.index_bytes);
        out.grid_cells.push(cell);
    }
    Ok(())
}

fn ingest_eq(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let cell = EqCell {
            backend: string(s, path, "backend")?.to_string(),
            mode: string(s, path, "mode")?.to_string(),
            bank: uint(s, path, "bank")?,
            rate: num(s, path, "particles_per_second")?,
            lookups: uint(s, path, "lookups")?,
            bin_scan_steps: uint(s, path, "bin_scan_steps")?,
            gather_span_bytes: uint(s, path, "gather_span_bytes")?,
            gather_span_pairs: uint(s, path, "gather_span_pairs")?,
        };
        let key = format!("eq.{}.{}.b{}", cell.backend, cell.mode, cell.bank);
        out.rates.insert(key.clone(), cell.rate);
        out.counters.insert(format!("{key}.lookups"), cell.lookups);
        out.counters
            .insert(format!("{key}.bin_scan_steps"), cell.bin_scan_steps);
        out.counters
            .insert(format!("{key}.gather_span_bytes"), cell.gather_span_bytes);
        out.counters
            .insert(format!("{key}.gather_span_pairs"), cell.gather_span_pairs);
        out.eq_cells.push(cell);
    }
    Ok(())
}

fn ingest_ep(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let bank = uint(s, path, "bank")?;
        let threads = uint(s, path, "threads")?;
        let rate = num(s, path, "particles_per_second")?;
        out.rates.insert(format!("ep.t{threads}.b{bank}"), rate);
    }
    Ok(())
}

fn ingest_geometry(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let model = string(s, path, "model")?;
        let treatment = string(s, path, "treatment")?;
        let bank = uint(s, path, "bank")?;
        let key = format!("geom.{model}.{treatment}.b{bank}");
        // Throughput is measured; the traversal work counters are
        // deterministic at fixed scale and ride the hard counter gate.
        out.rates
            .insert(key.clone(), num(s, path, "particles_per_second")?);
        out.counters
            .insert(format!("{key}.finds"), uint(s, path, "finds")?);
        out.counters
            .insert(format!("{key}.find_steps"), uint(s, path, "find_steps")?);
        out.counters.insert(
            format!("{key}.surface_tests"),
            uint(s, path, "surface_tests")?,
        );
    }
    Ok(())
}

fn ingest_device(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let model = string(s, path, "model")?;
        let device = string(s, path, "device")?;
        let transport = string(s, path, "transport")?;
        // Device rates are MODELED (analytic pricing of deterministic
        // counts): stable per scale, so drift means the machine model
        // or the counts changed — exactly what the trend gate is for.
        out.rates.insert(
            format!("device.{model}.{device}.{transport}"),
            num(s, path, "rate_modeled_n_per_s")?,
        );
    }
    Ok(())
}

fn ingest_serve(doc: &JsonValue, path: &Path, out: &mut Ingested) -> Result<(), TrendError> {
    for s in samples(doc, path)? {
        let phase = string(s, path, "phase")?;
        // Throughput is measured (host-sensitive → warn-band on
        // 1-thread hosts); cold runs and rejects are deterministic at
        // fixed scale, so they ride the hard counter gate. The
        // hit/coalesce split is scheduling-dependent and deliberately
        // NOT trended.
        out.rates.insert(
            format!("serve.{phase}.plans_per_s"),
            num(s, path, "plans_per_second")?,
        );
        out.counters.insert(
            format!("serve.{phase}.cold_runs"),
            uint(s, path, "cold_runs")?,
        );
        out.counters
            .insert(format!("serve.{phase}.rejects"), uint(s, path, "rejects")?);
    }
    Ok(())
}
