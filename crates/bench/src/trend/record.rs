//! The typed, versioned per-commit trend record and its JSONL codec.
//!
//! One [`TrendRecord`] captures everything a later run needs to decide
//! "did this commit regress": provenance (commit, timestamp, ISA leg),
//! comparability keys (`mcs_scale`, `host_threads`), every benchmark
//! cell's measured rate, and the deterministic `xs.*` work counters.
//! Records travel as one JSON object per line (JSONL) so history files
//! append cheaply and diff cleanly.
//!
//! The codec is strict both ways: [`TrendRecord::from_json_line`]
//! rejects unknown schema tags, non-finite numbers, and malformed JSON
//! with a typed [`TrendError`] — a corrupt history line must fail the
//! run, not silently shorten the baseline window.

use std::collections::BTreeMap;

use mcs_prof::value::{escape_json, JsonValue};

use super::TrendError;

/// Schema tag stamped on (and required of) every record line.
pub const RECORD_SCHEMA: &str = "mcs-trend-record/1";

/// One per-commit measurement snapshot on one ISA leg.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRecord {
    /// Commit hash the measurements were taken at (`unknown` if the
    /// producer could not resolve one).
    pub commit: String,
    /// Unix seconds when the record was produced.
    pub timestamp: u64,
    /// ISA leg the benchmarks ran on (`simd-native`, `scalar`, `local`).
    pub leg: String,
    /// Workload scale the benchmarks ran at (records are only compared
    /// against history at the same scale).
    pub mcs_scale: f64,
    /// Host threads available to the measured run (1 ⇒ rate deltas are
    /// classified on the warn band, never gating).
    pub host_threads: usize,
    /// Measured rates per benchmark cell, e.g.
    /// `grid.hash.b100000` → lookups/s. Keys are stable cell IDs.
    pub rates: BTreeMap<String, f64>,
    /// Deterministic work counters per benchmark cell plus the `xs.*`
    /// set from `check_report.json`, e.g.
    /// `eq.hash.material+energy.b10000.gather_span_bytes`.
    pub counters: BTreeMap<String, u64>,
}

impl TrendRecord {
    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"schema\": \"{RECORD_SCHEMA}\", \"commit\": \"{}\", \"timestamp\": {}, \
             \"leg\": \"{}\", \"mcs_scale\": {}, \"host_threads\": {}, \"rates\": {{",
            escape_json(&self.commit),
            self.timestamp,
            escape_json(&self.leg),
            self.mcs_scale,
            self.host_threads,
        ));
        for (i, (k, v)) in self.rates.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", escape_json(k)));
        }
        s.push_str("}, \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", escape_json(k)));
        }
        s.push_str("}}");
        s
    }

    /// Parse one JSONL line. Strict: schema mismatch, missing fields,
    /// non-finite rates, or trailing garbage are an `Err`.
    pub fn from_json_line(line: &str) -> Result<TrendRecord, TrendError> {
        let bad = |msg: String| TrendError::Corrupt { line: 0, msg };
        let v = JsonValue::parse(line).map_err(bad)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing schema tag".into()))?;
        if schema != RECORD_SCHEMA {
            return Err(bad(format!(
                "unknown record schema {schema:?} (expected {RECORD_SCHEMA:?})"
            )));
        }
        let str_field = |name: &str| -> Result<String, TrendError> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing string field {name:?}")))
        };
        let commit = str_field("commit")?;
        let leg = str_field("leg")?;
        let timestamp = v
            .get("timestamp")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing integer field \"timestamp\"".into()))?;
        let mcs_scale = v
            .get("mcs_scale")
            .and_then(JsonValue::as_f64)
            .filter(|s| s.is_finite() && *s > 0.0)
            .ok_or_else(|| bad("missing/invalid field \"mcs_scale\"".into()))?;
        let host_threads = v
            .get("host_threads")
            .and_then(JsonValue::as_u64)
            .filter(|&t| t >= 1)
            .ok_or_else(|| bad("missing/invalid field \"host_threads\"".into()))?
            as usize;

        let mut rates = BTreeMap::new();
        for (k, rv) in v
            .get("rates")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| bad("missing object field \"rates\"".into()))?
        {
            let r = rv
                .as_f64()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or_else(|| bad(format!("rate {k:?} is not a finite non-negative number")))?;
            rates.insert(k.clone(), r);
        }
        let mut counters = BTreeMap::new();
        for (k, cv) in v
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| bad("missing object field \"counters\"".into()))?
        {
            let c = cv
                .as_u64()
                .ok_or_else(|| bad(format!("counter {k:?} is not a non-negative integer")))?;
            counters.insert(k.clone(), c);
        }

        Ok(TrendRecord {
            commit,
            timestamp,
            leg,
            mcs_scale,
            host_threads,
            rates,
            counters,
        })
    }

    /// Whether `other` carries the same measurements for the same commit
    /// (the idempotency predicate: such a record is never re-appended).
    pub fn same_measurement(&self, other: &TrendRecord) -> bool {
        self.commit == other.commit
            && self.leg == other.leg
            && self.mcs_scale == other.mcs_scale
            && self.rates == other.rates
            && self.counters == other.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn sample() -> TrendRecord {
        TrendRecord {
            commit: "a727db8c0ffee".into(),
            timestamp: 1_754_000_000,
            leg: "simd-native".into(),
            mcs_scale: 0.1,
            host_threads: 4,
            rates: [
                ("grid.hash.b100000".to_string(), 896_429.9),
                ("eq.hash.material+energy.b10000".to_string(), 27_632.4),
            ]
            .into_iter()
            .collect(),
            counters: [
                ("xs.lookups".to_string(), 585_733u64),
                ("xs.gather_span_bytes".to_string(), 22_478_806_592),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let r = sample();
        let back = TrendRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_schema_drift_and_corruption() {
        let r = sample();
        let line = r.to_json_line();
        // Truncation anywhere inside the line must fail.
        assert!(TrendRecord::from_json_line(&line[..line.len() - 1]).is_err());
        assert!(TrendRecord::from_json_line(&line[..line.len() / 2]).is_err());
        // Unknown schema tag must fail even if the JSON parses.
        let drifted = line.replace(RECORD_SCHEMA, "mcs-trend-record/999");
        assert!(TrendRecord::from_json_line(&drifted).is_err());
        // Negative rates are invalid.
        let negative = line.replace("896429.9", "-1.0");
        assert!(TrendRecord::from_json_line(&negative).is_err());
    }

    #[test]
    fn same_measurement_ignores_timestamp() {
        let a = sample();
        let mut b = a.clone();
        b.timestamp += 3600;
        assert!(a.same_measurement(&b));
        b.rates.insert("grid.hash.b100000".into(), 1.0);
        assert!(!a.same_measurement(&b));
    }
}
