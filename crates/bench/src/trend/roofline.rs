//! Bandwidth-roofline estimates per benchmark cell.
//!
//! Absolute rates in the trend history are host-specific; the roofline
//! column makes them interpretable across hosts by normalizing each
//! cell against a bandwidth ceiling: the deterministic gather-traffic
//! counters (`xs.gather_span_bytes` per lookup/particle) priced against
//! the [`MachineSpec`] DRAM bandwidth parameter. A cell reporting 4% of
//! roofline on one machine and 4% on another is behaving the same even
//! if the raw rates differ 10×.
//!
//! The traffic model is the *span-priced* gather distance, an upper
//! bound on the DRAM lines a perfectly cold cache would move — so
//! percent-of-roofline can exceed 100 when the cache absorbs the spans
//! (that is a finding, not an error: it means the working set fits).
//! Cells with zero priced traffic (the per-nuclide binary backend keeps
//! no index) have no bandwidth ceiling and are skipped.

use mcs_device::MachineSpec;

use super::ingest::Ingested;

/// One benchmark cell's percent-of-roofline estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineCell {
    /// Which benchmark the cell belongs to.
    pub benchmark: &'static str,
    /// Stable cell ID (matches the rate metric key).
    pub cell: String,
    /// Unit of the measured rate.
    pub unit: &'static str,
    /// Measured throughput of the cell.
    pub measured_rate: f64,
    /// Estimated DRAM traffic per operation (span-priced bytes).
    pub bytes_per_op: f64,
    /// Bandwidth ceiling: ops/s if the kernel were purely memory-bound.
    pub roofline_rate: f64,
    /// `100 × measured / roofline` (may exceed 100 when caches absorb
    /// the priced spans).
    pub pct_of_roofline: f64,
}

fn cell(
    benchmark: &'static str,
    id: String,
    unit: &'static str,
    rate: f64,
    bytes_per_op: f64,
    spec: &MachineSpec,
) -> Option<RooflineCell> {
    if bytes_per_op <= 0.0 || !bytes_per_op.is_finite() || rate <= 0.0 {
        return None;
    }
    let roofline = spec.roofline_ops_per_s(bytes_per_op);
    Some(RooflineCell {
        benchmark,
        cell: id,
        unit,
        measured_rate: rate,
        bytes_per_op,
        roofline_rate: roofline,
        pct_of_roofline: rate / roofline * 100.0,
    })
}

/// Estimate percent-of-roofline for every cell with priced traffic.
///
/// Event-queueing cells carry their own span counters. Grid-backend
/// cells reuse the per-lookup traffic of the *same backend's*
/// unqueued (`off`) event-queueing cell at the largest bank — the
/// closest deterministic measurement of what one lookup of that
/// backend moves.
pub fn estimate(ing: &Ingested, spec: &MachineSpec) -> Vec<RooflineCell> {
    let mut out = Vec::new();

    // Event-queueing: bytes per particle, directly from the cell.
    for c in &ing.eq_cells {
        let bytes_per_particle = c.gather_span_bytes as f64 / (c.bank as f64).max(1.0);
        out.extend(cell(
            "event_queueing",
            format!("eq.{}.{}.b{}", c.backend, c.mode, c.bank),
            "particles/s",
            c.rate,
            bytes_per_particle,
            spec,
        ));
    }

    // Grid-backend: bytes per lookup, borrowed from the same backend's
    // unqueued event-queueing cell at the largest bank.
    for g in &ing.grid_cells {
        let donor = ing
            .eq_cells
            .iter()
            .filter(|c| c.backend == g.backend && c.mode == "off" && c.lookups > 0)
            .max_by_key(|c| c.bank);
        let Some(donor) = donor else { continue };
        let bytes_per_lookup = donor.gather_span_bytes as f64 / donor.lookups as f64;
        out.extend(cell(
            "grid_backend",
            format!("grid.{}.b{}", g.backend, g.bank),
            "lookups/s",
            g.rate,
            bytes_per_lookup,
            spec,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::ingest::{EqCell, GridCell};

    fn ing() -> Ingested {
        Ingested {
            mcs_scale: 1.0,
            host_threads: 4,
            eq_cells: vec![
                EqCell {
                    backend: "hash".into(),
                    mode: "off".into(),
                    bank: 10_000,
                    rate: 27_532.0,
                    lookups: 585_733,
                    bin_scan_steps: 1_000_000,
                    gather_span_bytes: 11_600_000,
                    gather_span_pairs: 580_000,
                },
                EqCell {
                    backend: "binary".into(),
                    mode: "off".into(),
                    bank: 10_000,
                    rate: 27_532.0,
                    lookups: 585_733,
                    bin_scan_steps: 0,
                    gather_span_bytes: 0, // no index ⇒ no priced traffic
                    gather_span_pairs: 0,
                },
            ],
            grid_cells: vec![
                GridCell {
                    backend: "hash".into(),
                    bank: 100_000,
                    rate: 896_429.9,
                    index_bytes: 375_592,
                },
                GridCell {
                    backend: "binary".into(),
                    bank: 100_000,
                    rate: 486_363.1,
                    index_bytes: 0,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn prices_cells_against_bandwidth() {
        let spec = MachineSpec::trend_reference_host();
        let cells = estimate(&ing(), &spec);
        // Both the eq hash cell and the grid hash cell appear; the
        // binary cells (zero priced traffic) are skipped.
        let eq = cells
            .iter()
            .find(|c| c.cell == "eq.hash.off.b10000")
            .expect("eq hash cell");
        assert_eq!(eq.benchmark, "event_queueing");
        // 11.6 MB / 10k particles = 1160 B/particle; 20 GB/s / 1160 B
        // ≈ 1.724e7 particles/s ceiling.
        assert!((eq.bytes_per_op - 1160.0).abs() < 1e-9);
        assert!((eq.roofline_rate - 20e9 / 1160.0).abs() < 1.0);
        assert!(eq.pct_of_roofline > 0.0 && eq.pct_of_roofline < 100.0);

        let grid = cells
            .iter()
            .find(|c| c.cell == "grid.hash.b100000")
            .expect("grid hash cell");
        // Donor traffic: 11.6e6 / 585733 ≈ 19.8 B/lookup.
        assert!((grid.bytes_per_op - 11_600_000.0 / 585_733.0).abs() < 1e-9);
        assert!(grid.pct_of_roofline > 0.0);

        assert!(!cells.iter().any(|c| c.cell.contains("binary")));
    }

    #[test]
    fn bandwidth_override_scales_percent() {
        let mut fast = MachineSpec::trend_reference_host();
        fast.dram_gb_s *= 2.0;
        let slow_cells = estimate(&ing(), &MachineSpec::trend_reference_host());
        let fast_cells = estimate(&ing(), &fast);
        // Doubling the ceiling halves percent-of-roofline.
        let ratio = slow_cells[0].pct_of_roofline / fast_cells[0].pct_of_roofline;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
