//! Fig. 7: weak scaling of the H.M. Large simulation with N = 10⁶ per
//! node on the Stampede cluster model.
//!
//! Check: ≥94% efficiency at all scales up to 128 nodes, and (the
//! paper's footnoted claim) the curve stays flat out to 2¹⁰ nodes.

use mcs_bench::{header, scaled, write_csv};
use mcs_cluster::{weak_scaling, CommModel, NodeSpec};
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::MachineSpec;

fn main() {
    header("Fig. 7", "weak scaling, H.M. Large, N = 1e6 per node, Stampede model");

    // Rank rates from a real measured run (same procedure as Fig. 6).
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled(2_000);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = run_histories(&problem, &sources, &streams);
    let mut t = out.tallies;
    let f = 100_000.0 / n_probe as f64;
    t.n_particles = 100_000;
    t.segments = (t.segments as f64 * f) as u64;
    t.collisions = (t.collisions as f64 * f) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
    }
    let r_cpu = NativeModel::new(MachineSpec::host_e5_2680(), TransportKind::HistoryScalar)
        .calc_rate(&shape, &t);
    let r_mic = NativeModel::new(MachineSpec::mic_se10p(), TransportKind::HistoryScalar)
        .calc_rate(&shape, &t);
    println!("\nrank rates: CPU {:.0} n/s, MIC {:.0} n/s\n", r_cpu, r_mic);

    let comm = CommModel::fdr_infiniband();
    let node = NodeSpec::with_one_mic(r_cpu, r_mic);
    let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let pts = weak_scaling(&node, &counts, 1_000_000, &comm);

    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "nodes", "batch time (s)", "rate (n/s)", "efficiency"
    );
    let mut rows = Vec::new();
    for p in &pts {
        println!(
            "{:>8} {:>14.3} {:>16.0} {:>11.1}%",
            p.nodes,
            p.batch_time,
            p.rate,
            p.efficiency * 100.0
        );
        rows.push(vec![
            p.nodes.to_string(),
            format!("{:.4}", p.batch_time),
            format!("{:.0}", p.rate),
            format!("{:.4}", p.efficiency),
        ]);
    }
    write_csv(
        "fig7_weak_scaling",
        &["nodes", "batch_time_s", "rate", "efficiency"],
        &rows,
    );

    for p in &pts {
        assert!(
            p.efficiency > 0.94,
            "weak-scaling efficiency {:.3} at {} nodes below the paper's 94%",
            p.efficiency,
            p.nodes
        );
    }
    println!("\nshape check PASSED: >94% efficiency at every scale up to 2^10 nodes");
}
