//! Fig. 7 harness binary — see [`mcs_bench::harness::fig7`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig7;
use mcs_bench::scale;

fn main() {
    let r = fig7::run(scale(), true);
    r.artifact.write();
    for p in &r.points {
        assert!(
            p.efficiency > 0.94,
            "weak-scaling efficiency {:.3} at {} nodes below the paper's 94%",
            p.efficiency,
            p.nodes
        );
    }
    println!("\nshape check PASSED: >94% efficiency at every scale up to 2^10 nodes");
}
