//! Fig. 4 harness binary — see [`mcs_bench::harness::fig4`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig4;
use mcs_bench::scale;

fn main() {
    let r = fig4::run(scale(), true);
    r.artifact.write();

    // Shape assertions.
    assert!(
        r.modeled[0].1 > r.modeled[1].1 && r.modeled[0].1 > r.modeled[2].1,
        "calculate_xs must top the host profile"
    );
    assert!(
        r.modeled[0].2 < r.modeled[0].1,
        "MIC must win the bottleneck routine"
    );
    let speedup = r.speedup();
    assert!(
        (1.2..2.2).contains(&speedup),
        "total MIC speedup {speedup:.2} outside the paper window"
    );
    println!("shape checks PASSED");
}
