//! Fig. 4: TAU-style profile comparison between the host CPU execution
//! and the MIC in native mode (H.M. Large, full physics).
//!
//! The host column is MEASURED: a real instrumented transport run through
//! `mcs-prof`. The MIC column is MODELED from the same run's instrumented
//! counts. The features to reproduce: the top routine is the XS lookup on
//! both machines, the MIC beats the CPU on exactly those bottleneck
//! routines, and the total is ≈1.5–1.6× faster on the MIC.

use mcs_bench::{fmt_secs, header, scaled, write_csv};
use mcs_core::history::{batch_streams, run_histories_profiled};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::MachineSpec;
use mcs_prof::ThreadProfiler;

fn main() {
    header("Fig. 4", "profile comparison: host CPU vs MIC native (H.M. Large)");
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let n = scaled(2_000);
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);

    // MEASURED host profile (single-threaded instrumented run).
    let prof = ThreadProfiler::new();
    let out = run_histories_profiled(&problem, &sources, &streams, &prof);
    let host_profile = prof.finish();
    println!("\nMEASURED host profile ({} histories):\n", n);
    println!("{}", host_profile.render("host (this machine)"));

    // MODELED comparison: price the instrumented counts on both machines.
    let shape = shape_of(&problem);
    let host_model = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let mic_model = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
    let host_prof = host_model.profile_breakdown(&shape, &out.tallies);
    let mic_prof = mic_model.profile_breakdown(&shape, &out.tallies);

    println!("MODELED per-routine comparison (E5-2687W vs Phi 7120A):\n");
    println!(
        "{:<28} {:>14} {:>14} {:>8}",
        "routine", "CPU", "MIC", "MIC/CPU"
    );
    let mut rows = Vec::new();
    let mut tot_cpu = 0.0;
    let mut tot_mic = 0.0;
    for ((name, t_cpu), (_, t_mic)) in host_prof.iter().zip(mic_prof.iter()) {
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}",
            name,
            fmt_secs(*t_cpu),
            fmt_secs(*t_mic),
            t_mic / t_cpu
        );
        rows.push(vec![
            name.clone(),
            format!("{t_cpu:.6}"),
            format!("{t_mic:.6}"),
        ]);
        tot_cpu += t_cpu;
        tot_mic += t_mic;
    }
    println!(
        "{:<28} {:>14} {:>14} {:>8.2}",
        "TOTAL",
        fmt_secs(tot_cpu),
        fmt_secs(tot_mic),
        tot_mic / tot_cpu
    );
    println!(
        "\nCPU/MIC total speedup: {:.2}x  (paper: 96 min / 65 min = 1.48x)",
        tot_cpu / tot_mic
    );
    rows.push(vec![
        "TOTAL".into(),
        format!("{tot_cpu:.6}"),
        format!("{tot_mic:.6}"),
    ]);
    write_csv("fig4_profile_compare", &["routine", "cpu_s", "mic_s"], &rows);

    // Shape assertions.
    assert!(
        host_prof[0].1 > host_prof[1].1 && host_prof[0].1 > host_prof[2].1,
        "calculate_xs must top the host profile"
    );
    assert!(mic_prof[0].1 < host_prof[0].1, "MIC must win the bottleneck routine");
    let speedup = tot_cpu / tot_mic;
    assert!(
        (1.2..2.2).contains(&speedup),
        "total MIC speedup {speedup:.2} outside the paper window"
    );
    println!("shape checks PASSED");
}
