//! Table III harness binary — see [`mcs_bench::harness::table3`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::table3;
use mcs_bench::scale;

fn main() {
    let r = table3::run(scale(), true);
    r.artifact.write();

    // Shape assertions: balanced recovers ≈ ideal; CPU+2MIC balanced vs
    // CPU-only ≈ 4x (the paper's headline).
    assert!(
        (3.0..5.5).contains(&r.headline),
        "headline ratio {:.2} off",
        r.headline
    );
    println!("shape checks PASSED");
}
