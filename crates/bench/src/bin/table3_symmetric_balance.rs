//! Table III: average calculation rates in symmetric mode, original
//! (even split) vs load balanced (Eq. 3), for CPU / MIC / CPU+1MIC /
//! CPU+2MICs on one JLSE node (H.M. Large, 10⁵ particles).
//!
//! Rank rates come from the native models priced on a real measured
//! transport run; the symmetric-mode arithmetic is then exact.

use mcs_bench::{header, scaled, write_csv};
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::{MachineSpec, SymmetricModel};

fn main() {
    header("Table III", "symmetric-mode rates: original vs load balanced");
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);

    // Measure per-particle structure with a real run, then scale counts
    // to the paper's 1e5-particle batch.
    let n_probe = scaled(2_000);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = run_histories(&problem, &sources, &streams);
    let mut t = out.tallies;
    let f = 100_000.0 / n_probe as f64;
    t.n_particles = 100_000;
    t.segments = (t.segments as f64 * f) as u64;
    t.collisions = (t.collisions as f64 * f) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
    }

    let host = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
    let r_cpu = host.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);
    let alpha = r_cpu / r_mic;
    println!(
        "\nmodeled rank rates: CPU {:.0} n/s, MIC {:.0} n/s, alpha = {:.2}",
        r_cpu, r_mic, alpha
    );
    println!("(paper: CPU 4,050, MIC 6,641, alpha = 0.61-0.62)\n");

    let n_total = 100_000u64;
    let mut rows = Vec::new();
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "hardware", "original", "load balanced", "ideal"
    );
    let mut show = |label: &str, ranks: &[(&str, f64)], balanced_applies: bool| {
        let m = SymmetricModel::new(ranks);
        let orig = m.original_rate(n_total);
        let bal = if balanced_applies {
            format!("{:.0}", m.balanced_rate(n_total))
        } else {
            "N/A".to_string()
        };
        println!(
            "{:<14} {:>14.0} {:>16} {:>14.0}",
            label,
            orig,
            bal,
            m.ideal()
        );
        rows.push(vec![
            label.to_string(),
            format!("{orig:.0}"),
            bal,
            format!("{:.0}", m.ideal()),
        ]);
    };
    show("CPU only", &[("cpu", r_cpu)], false);
    show("MIC only", &[("mic", r_mic)], false);
    show("CPU + MIC", &[("cpu", r_cpu), ("mic", r_mic)], true);
    show(
        "CPU + 2 MICs",
        &[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)],
        true,
    );
    println!("\npaper:          original      load balanced");
    println!("CPU only           4,050                N/A");
    println!("MIC only           6,641                N/A");
    println!("CPU + MIC          8,988             10,068");
    println!("CPU + 2 MICs      11,860             17,098");
    write_csv(
        "table3_symmetric_balance",
        &["hardware", "original_rate", "balanced_rate", "ideal_rate"],
        &rows,
    );

    // Shape assertions: balanced recovers ≈ ideal; CPU+2MIC balanced vs
    // CPU-only ≈ 4x (the paper's headline).
    let m2 = SymmetricModel::new(&[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)]);
    let headline = m2.balanced_rate(n_total) / r_cpu;
    println!("\nCPU+2MIC balanced vs CPU-only: {headline:.2}x (paper: 17,098/4,050 = 4.2x)");
    assert!((3.0..5.5).contains(&headline), "headline ratio {headline:.2} off");
    println!("shape checks PASSED");
}
