//! `mcs-bench trend`: the perf-trajectory gate.
//!
//! Ingests `results/BENCH_*.json` + `check_report.json`, appends one
//! [`TrendRecord`](mcs_bench::trend::TrendRecord) to the per-leg
//! JSONL history, classifies every
//! metric against the trailing median baseline, prices each benchmark
//! cell against the bandwidth roofline, writes `trend_report.json`,
//! and exits non-zero on a sustained regression.
//!
//! Exit codes: `0` gate passed, `1` gate failed (sustained regression
//! beyond tolerance), `2` the run itself failed (corrupt history,
//! unparseable artifact, no input).
//!
//! ```text
//! trend [--results-dir DIR] [--history-dir DIR] [--leg TAG]
//!       [--commit SHA] [--timestamp SECS] [--rate-tol PCT]
//!       [--counter-tol PCT] [--sustain N] [--bandwidth-gbs GBS]
//!       [--max-keep N] [--report FILE] [--dry-run]
//! ```
//!
//! Environment fallbacks: `MCS_RESULTS_DIR`, `MCS_TREND_DIR`,
//! `MCS_TREND_LEG`, `MCS_TREND_TIMESTAMP`, `MCS_TREND_BW_GBS`, `MCS_TREND_DEVICE`,
//! `GITHUB_SHA`.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use mcs_bench::trend::{self, TrendOptions, TrendOutcome};

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

/// Best-effort commit id: `--commit` > `GITHUB_SHA` > `git rev-parse`.
fn detect_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn detect_timestamp() -> u64 {
    if let Ok(t) = std::env::var("MCS_TREND_TIMESTAMP") {
        if let Ok(t) = t.parse() {
            return t;
        }
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

struct Cli {
    opts: TrendOptions,
    report_path: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: trend [--results-dir DIR] [--history-dir DIR] [--leg TAG] [--commit SHA]\n\
         \x20            [--timestamp SECS] [--rate-tol PCT] [--counter-tol PCT] [--sustain N]\n\
         \x20            [--bandwidth-gbs GBS] [--device NAME] [--max-keep N]\n\
         \x20            [--report FILE] [--dry-run]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let results_dir = PathBuf::from(env_or("MCS_RESULTS_DIR", "results"));
    let mut opts = TrendOptions::new(results_dir.clone(), PathBuf::new());
    let mut history_dir: Option<PathBuf> = std::env::var("MCS_TREND_DIR").ok().map(PathBuf::from);
    let mut report_path: Option<PathBuf> = None;
    opts.leg = env_or("MCS_TREND_LEG", "local");
    opts.commit = String::new();
    if let Ok(bw) = std::env::var("MCS_TREND_BW_GBS") {
        opts.bandwidth_gbs = bw.parse().ok();
    }
    if let Ok(dev) = std::env::var("MCS_TREND_DEVICE") {
        if !dev.is_empty() {
            opts.reference_device = Some(dev);
        }
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--results-dir" => opts.results_dir = PathBuf::from(value("--results-dir")),
            "--history-dir" => history_dir = Some(PathBuf::from(value("--history-dir"))),
            "--leg" => opts.leg = value("--leg"),
            "--commit" => opts.commit = value("--commit"),
            "--timestamp" => match value("--timestamp").parse() {
                Ok(t) => opts.timestamp = t,
                Err(_) => usage(),
            },
            "--rate-tol" => match value("--rate-tol").parse() {
                Ok(t) => opts.tolerances.rate_pct = t,
                Err(_) => usage(),
            },
            "--counter-tol" => match value("--counter-tol").parse() {
                Ok(t) => opts.tolerances.counter_pct = t,
                Err(_) => usage(),
            },
            "--sustain" => match value("--sustain").parse() {
                Ok(n) => opts.tolerances.sustain = n,
                Err(_) => usage(),
            },
            "--bandwidth-gbs" => match value("--bandwidth-gbs").parse() {
                Ok(b) => opts.bandwidth_gbs = Some(b),
                Err(_) => usage(),
            },
            "--device" => opts.reference_device = Some(value("--device")),
            "--max-keep" => match value("--max-keep").parse() {
                Ok(n) => opts.max_keep = n,
                Err(_) => usage(),
            },
            "--report" => report_path = Some(PathBuf::from(value("--report"))),
            "--dry-run" => opts.append = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    opts.history_dir = history_dir.unwrap_or_else(|| opts.results_dir.join("trend"));
    if opts.commit.is_empty() {
        opts.commit = detect_commit();
    }
    if opts.timestamp == 0 {
        opts.timestamp = detect_timestamp();
    }
    Cli {
        report_path: report_path.unwrap_or_else(|| opts.results_dir.join("trend_report.json")),
        opts,
    }
}

fn print_summary(out: &TrendOutcome) {
    let r = &out.report;
    println!("==============================================================");
    println!(
        "TREND: leg {} @ {} (scale {}, {} threads)",
        r.leg, r.commit, r.mcs_scale, r.host_threads
    );
    println!(
        "history: {} record(s){}",
        out.history_len,
        if out.appended {
            " (appended)"
        } else if r.appended {
            ""
        } else {
            " (not appended: dry run or already recorded)"
        }
    );
    if r.warn_only_rates {
        println!("note: 1-thread host — rate regressions are warn-only");
    }
    println!("==============================================================");

    let noteworthy: Vec<_> = r
        .deltas
        .iter()
        .filter(|d| d.class.name() != "ok" && d.class.name() != "no_baseline")
        .collect();
    if noteworthy.is_empty() {
        let n_base = r.deltas.iter().filter(|d| d.baseline.is_some()).count();
        println!(
            "deltas: {} metric(s), {} with baseline, all within tolerance",
            r.deltas.len(),
            n_base
        );
    } else {
        println!(
            "{:<44} {:>12} {:>12} {:>9} {:>4} {:<10}",
            "metric", "current", "baseline", "delta%", "bad", "class"
        );
        for d in noteworthy {
            println!(
                "{:<44} {:>12.3e} {:>12} {:>+9.2} {:>4} {:<10}{}",
                d.metric,
                d.current,
                d.baseline.map_or("-".to_string(), |b| format!("{b:.3e}")),
                d.delta_pct,
                d.consecutive_bad,
                d.class.name(),
                if d.gating { "  <-- GATING" } else { "" },
            );
        }
    }

    if !r.roofline.is_empty() {
        println!();
        println!(
            "{:<16} {:<32} {:>12} {:>10} {:>12} {:>8}",
            "benchmark", "cell", "rate", "B/op", "roofline", "%peak"
        );
        for c in &r.roofline {
            println!(
                "{:<16} {:<32} {:>12.3e} {:>10.1} {:>12.3e} {:>8.3}",
                c.benchmark,
                c.cell,
                c.measured_rate,
                c.bytes_per_op,
                c.roofline_rate,
                c.pct_of_roofline
            );
        }
        println!("(%peak > 100 means caches absorb the span-priced traffic)");
    }

    println!();
    if r.gate_passed() {
        println!(
            "GATE: PASS ({} suspect, {} improved)",
            r.n_class(mcs_bench::trend::delta::DeltaClass::Suspect),
            r.n_class(mcs_bench::trend::delta::DeltaClass::Improved)
        );
    } else {
        println!("GATE: FAIL — sustained regression in:");
        for d in r.gating() {
            println!(
                "  {} ({}): {:+.2}% over {} consecutive record(s)",
                d.metric,
                d.kind.name(),
                d.delta_pct,
                d.consecutive_bad
            );
        }
    }
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let out = match trend::run(&cli.opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("trend: error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(parent) = cli.report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&cli.report_path, out.report.to_json()) {
        eprintln!(
            "trend: error: cannot write {}: {e}",
            cli.report_path.display()
        );
        return ExitCode::from(2);
    }
    print_summary(&out);
    println!("[json] wrote {}", cli.report_path.display());
    if out.report.gate_passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
