//! §V — the paper's future-work directions, implemented and quantified:
//!
//! 1. **Runtime-adaptive α** ("α can be determined at runtime... using the
//!    measured calculation rates"): batch-by-batch rebalancing vs the
//!    static Eq. 3 split, in the knee regime where static balancing fails.
//! 2. **Knights Landing projection** ("out-of-order execution... possible
//!    automatic ~3x single thread speedup", no PCIe hop): native-mode
//!    rates on the projected socketed successor.
//! 3. **Energy expenditure** ("analyzing energy expenditures... excellent
//!    performance per watt"): neutrons-per-joule for the Table III
//!    hardware combinations.

use mcs_bench::{header, scaled, write_csv};
use mcs_cluster::adaptive::{simulate_adaptive, static_alpha_wall};
use mcs_cluster::Rank;
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::power::{batch_energy, PowerSpec};
use mcs_device::MachineSpec;

fn main() {
    header("§V", "future-work projections: adaptive alpha, KNL, energy");

    // Measured per-particle structure at production batch size.
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled(2_000);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = run_histories(&problem, &sources, &streams);
    let mut t = out.tallies;
    let f = 100_000.0 / n_probe as f64;
    t.n_particles = 100_000;
    t.segments = (t.segments as f64 * f) as u64;
    t.collisions = (t.collisions as f64 * f) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
    }

    let cpu = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);
    let r_cpu = cpu.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);

    // --- 1. runtime-adaptive α ----------------------------------------
    println!("\n[1] runtime-adaptive load balancing (knee regime, 9,800 particles/node):");
    let ranks = vec![Rank::cpu("cpu", r_cpu), Rank::mic("mic", r_mic)];
    let n_small = 9_800;
    let static_wall = static_alpha_wall(&ranks, n_small);
    let walls = simulate_adaptive(&ranks, n_small, 6);
    println!("  static Eq.-3 split batch time: {:.4} s", static_wall);
    for (i, w) in walls.iter().enumerate() {
        println!("  adaptive batch {i}: {w:.4} s");
    }
    let gain = static_wall / walls.last().unwrap();
    println!("  converged adaptive vs static: {gain:.3}x");
    write_csv(
        "futurework_adaptive",
        &["batch", "adaptive_wall_s", "static_wall_s"],
        &walls
            .iter()
            .enumerate()
            .map(|(i, w)| vec![i.to_string(), format!("{w:.6}"), format!("{static_wall:.6}")])
            .collect::<Vec<_>>(),
    );

    // --- 2. Knights Landing projection --------------------------------
    println!("\n[2] Knights Landing projection (socketed, OOO, MCDRAM):");
    let knl = NativeModel::new(MachineSpec::knl_projection(), TransportKind::HistoryScalar);
    let knl_banked = NativeModel::new(MachineSpec::knl_projection(), TransportKind::EventBanked);
    let r_knl = knl.calc_rate(&shape, &t);
    let r_knl_banked = knl_banked.calc_rate(&shape, &t);
    println!("  KNC native rate:            {r_mic:>10.0} n/s");
    println!("  KNL native rate (proj.):    {r_knl:>10.0} n/s  ({:.1}x KNC)", r_knl / r_mic);
    println!(
        "  KNL + banked kernels:       {r_knl_banked:>10.0} n/s  ({:.1}x KNC)",
        r_knl_banked / r_mic
    );
    println!("  (and no PCIe hop: the Table II transfer column disappears)");

    // --- 3. energy analysis --------------------------------------------
    println!("\n[3] energy expenditure (per 1e5-particle batch):");
    let host_p = PowerSpec::for_machine(&MachineSpec::host_e5_2687w());
    let mic_p = PowerSpec::for_machine(&MachineSpec::mic_7120a());
    let n = 100_000u64;
    let combos = [
        ("CPU only", vec![(host_p, n as f64 / r_cpu)]),
        ("MIC only", vec![(mic_p, n as f64 / r_mic)]),
        (
            "CPU + 2 MIC (balanced)",
            vec![
                (host_p, n as f64 / (r_cpu + 2.0 * r_mic)),
                (mic_p, n as f64 / (r_cpu + 2.0 * r_mic)),
                (mic_p, n as f64 / (r_cpu + 2.0 * r_mic)),
            ],
        ),
    ];
    println!(
        "  {:<24} {:>10} {:>12} {:>12}",
        "configuration", "wall (s)", "energy (kJ)", "n/joule"
    );
    let mut rows = Vec::new();
    for (label, units) in &combos {
        let rep = batch_energy(label, units, n);
        println!(
            "  {:<24} {:>10.2} {:>12.2} {:>12.1}",
            rep.label,
            rep.wall_s,
            rep.energy_j / 1e3,
            rep.neutrons_per_joule()
        );
        rows.push(vec![
            rep.label.clone(),
            format!("{:.3}", rep.wall_s),
            format!("{:.1}", rep.energy_j),
            format!("{:.2}", rep.neutrons_per_joule()),
        ]);
    }
    write_csv(
        "futurework_energy",
        &["configuration", "wall_s", "energy_j", "neutrons_per_joule"],
        &rows,
    );

    assert!(gain > 1.0, "adaptive must beat static on the knee");
    assert!(r_knl > 1.5 * r_mic, "KNL projection should clearly beat KNC");
    println!("\nall §V projections computed");
}
