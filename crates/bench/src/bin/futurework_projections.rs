//! §V future-work harness binary — see [`mcs_bench::harness::futurework`]
//! for the library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::futurework;
use mcs_bench::scale;

fn main() {
    let r = futurework::run(scale(), true);
    for a in &r.artifacts {
        a.write();
    }
    assert!(
        r.adaptive_gain > 1.0,
        "adaptive must beat static on the knee"
    );
    assert!(
        r.r_knl > 1.5 * r.r_mic,
        "KNL projection should clearly beat KNC"
    );
    println!("\nall §V projections computed");
}
