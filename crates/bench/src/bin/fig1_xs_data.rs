//! Fig. 1 harness binary — see [`mcs_bench::harness::fig1`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig1;
use mcs_bench::scale;

fn main() {
    let r = fig1::run(scale(), true);
    r.artifact.write();
    assert!(r.peak_to_smooth > 20.0, "resonance forest missing");
    println!("\nshape check PASSED: 1/v rise, resonance forest, smooth fast range");
}
