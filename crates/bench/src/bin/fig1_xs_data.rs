//! Fig. 1: total cross-section data for the U-238 isotope.
//!
//! Regenerates the figure's data series from the synthetic SLBW library:
//! σ_t(E) over 10⁻¹¹–20 MeV, showing the 1/v thermal rise, the resolved
//! resonance forest in the eV–keV range, and the smooth high-energy tail.

use mcs_bench::{header, write_csv};
use mcs_xs::nuclide::{Nuclide, NuclideSpec};

fn main() {
    header("Fig. 1", "U-238 total cross section vs energy (synthetic SLBW)");
    let u238 = Nuclide::synthesize(&NuclideSpec::heavy("U238", 236.01, false, 92_238));

    println!(
        "grid points: {}   resonances: {}",
        u238.n_points(),
        u238.resonances.len()
    );

    // CSV of the full pointwise series.
    let rows: Vec<Vec<String>> = u238
        .energy
        .iter()
        .zip(&u238.total)
        .map(|(&e, &t)| vec![format!("{e:.6e}"), format!("{t:.6e}")])
        .collect();
    write_csv("fig1_u238_total_xs", &["energy_mev", "sigma_total_barns"], &rows);

    // Console summary: the figure's qualitative features.
    let at = |e: f64| u238.micro_at(e).total;
    println!("\n{:<24} {:>14}", "energy", "sigma_t (b)");
    for &(label, e) in &[
        ("1e-11 MeV (cold)", 1e-11),
        ("0.0253e-6 MeV (thermal)", 2.53e-8),
        ("1e-6 MeV (1 eV)", 1e-6),
        ("1e-3 MeV (1 keV)", 1e-3),
        ("1 MeV (fast)", 1.0),
        ("20 MeV (top)", 20.0),
    ] {
        println!("{label:<24} {:>14.3}", at(e));
    }

    // Resonance peak-to-valley contrast, the hallmark of Fig. 1.
    let peak = u238
        .resonances
        .iter()
        .map(|r| at(r.e0))
        .fold(0.0f64, f64::max);
    let smooth = at(1.0);
    println!("\ntallest resonance peak: {peak:.1} b (vs {smooth:.1} b smooth at 1 MeV)");
    println!("peak/smooth contrast:   {:.0}x", peak / smooth);
    assert!(peak / smooth > 20.0, "resonance forest missing");
    println!("\nshape check PASSED: 1/v rise, resonance forest, smooth fast range");
}
