//! Table II harness binary — see [`mcs_bench::harness::table2`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::table2;
use mcs_bench::scale;

fn main() {
    let r = table2::run(scale(), true);
    r.artifact.write();
}
