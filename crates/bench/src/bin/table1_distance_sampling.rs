//! Table I harness binary — see [`mcs_bench::harness::table1`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::table1;
use mcs_bench::scale;

fn main() {
    let r = table1::run(scale(), true);
    r.artifact.write();
}
