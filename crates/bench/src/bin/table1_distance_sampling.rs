//! Table I: average times for the distance-sampling micro-benchmark.
//!
//! Paper configuration: `iters = 10⁴`, `N = 10⁷` (10¹¹ total samples);
//! this harness runs a scaled-down measured version on the host (CPU
//! column) and prices the full paper configuration on both machine models
//! (the MODELED table), so the shape — naive ≫ optimized, MIC worst on
//! naive, MIC best on optimized — can be checked at both scales.

use mcs_bench::{fmt_secs, header, scaled, time_it, write_csv};
use mcs_core::distance::{
    sample_distances_naive, sample_distances_opt1, sample_distances_opt2,
};
use mcs_device::workload::{
    distance_naive_per_element, distance_opt1_per_element, distance_opt2_per_element,
};
use mcs_device::MachineSpec;
use mcs_rng::StreamPartition;
use mcs_simd::AVec32;

fn main() {
    header("Table I", "distance-sampling micro-benchmark (d = -ln(r)/Sigma)");

    // ---- measured on this host (scaled) ------------------------------
    let n = scaled(1_000_000);
    let iters = scaled(20);
    let xs: AVec32 = AVec32::from_slice(
        &(0..n)
            .map(|i| 0.1 + 1.9 * ((i * 37 % n) as f32 / n as f32))
            .collect::<Vec<f32>>(),
    );
    println!("\nMEASURED on this host: N = {n}, iters = {iters}\n");

    let mut out = vec![0.0f32; n];
    let (_, t_naive) = time_it(|| {
        for it in 0..iters {
            sample_distances_naive(xs.as_slice(), &mut out, 1 + it as u32);
        }
    });

    let mut r = vec![0.0f32; n];
    let mut part = StreamPartition::new(7, 8);
    let (_, t_opt1) = time_it(|| {
        for _ in 0..iters {
            sample_distances_opt1(xs.as_slice(), &mut r, &mut out, &mut part);
        }
    });

    let mut r2 = AVec32::zeros(n);
    let mut out2 = AVec32::zeros(n);
    let mut part2 = StreamPartition::new(7, 8);
    let (_, t_opt2) = time_it(|| {
        for _ in 0..iters {
            sample_distances_opt2(&xs, &mut r2, &mut out2, &mut part2);
        }
    });

    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "implementation", "Naive", "Optimized-1", "Optimized-2"
    );
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "host (measured)",
        fmt_secs(t_naive),
        fmt_secs(t_opt1),
        fmt_secs(t_opt2)
    );
    println!(
        "{:<28} {:>13.1}x {:>13.1}x {:>13.1}x",
        "speedup vs naive",
        1.0,
        t_naive / t_opt1,
        t_naive / t_opt2
    );

    // ---- modeled at paper scale --------------------------------------
    let elems = 1e7 * 1e4; // N × iters
    let cpu = MachineSpec::host_e5_2687w();
    let mic = MachineSpec::mic_7120a();
    let price = |spec: &MachineSpec, c: &mcs_device::KernelCounts| {
        spec.kernel_time_ext(&c.scale(elems), true)
    };
    let naive = distance_naive_per_element();
    let opt1 = distance_opt1_per_element();
    let opt2 = distance_opt2_per_element();

    println!("\nMODELED at paper scale (N = 1e7, iters = 1e4), seconds:\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "implementation", "Naive", "Optimized-1", "Optimized-2"
    );
    let cpu_row = [price(&cpu, &naive), price(&cpu, &opt1), price(&cpu, &opt2)];
    let mic_row = [price(&mic, &naive), price(&mic, &opt1), price(&mic, &opt2)];
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>12.1}",
        "CPU - 32 threads (modeled)", cpu_row[0], cpu_row[1], cpu_row[2]
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>12.1}",
        "MIC - 244 threads (modeled)", mic_row[0], mic_row[1], mic_row[2]
    );
    println!(
        "\npaper measured:              {:>12} {:>12} {:>12}",
        "412", "40.6", "36.6"
    );
    println!(
        "paper measured (MIC):        {:>12} {:>12} {:>12}",
        "8,243", "21.0", "18.9"
    );
    println!("\nshape checks:");
    println!(
        "  naive MIC/CPU   = {:>6.1}x  (paper 20.0x)",
        mic_row[0] / cpu_row[0]
    );
    println!(
        "  opt2  CPU/MIC   = {:>6.1}x  (paper  1.9x)",
        cpu_row[2] / mic_row[2]
    );

    write_csv(
        "table1_distance_sampling",
        &["row", "naive_s", "opt1_s", "opt2_s"],
        &[
            vec![
                "host_measured".into(),
                format!("{t_naive:.4}"),
                format!("{t_opt1:.4}"),
                format!("{t_opt2:.4}"),
            ],
            vec![
                "cpu_modeled_paper_scale".into(),
                format!("{:.1}", cpu_row[0]),
                format!("{:.1}", cpu_row[1]),
                format!("{:.1}", cpu_row[2]),
            ],
            vec![
                "mic_modeled_paper_scale".into(),
                format!("{:.1}", mic_row[0]),
                format!("{:.1}", mic_row[1]),
                format!("{:.1}", mic_row[2]),
            ],
        ],
    );
}
