//! Fig. 3: time comparison between banking particles on the CPU and
//! offloading to the MIC, normalized to host generation time, vs the
//! number of particles (H.M. Small).
//!
//! One "iteration" is one banked-lookup round: bank all n particles, ship
//! the bank, compute their fuel-material cross sections. The figure plots
//! each operation's time as a ratio of the *generation* time (all
//! histories of the same n particles, green = 1.0). The paper's claims to
//! check are the *trends*: the transfer and MIC-compute ratios fall as n
//! grows (fixed marshal/launch costs amortize), the host-compute ratio
//! rises toward its asymptote, and the MIC-compute curve drops under the
//! host-compute curve above ~10⁴ particles.
//!
//! Generation time and the material mix are derived from a real measured
//! transport run; per-operation times are modeled.

use mcs_bench::{header, scaled, write_csv};
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::OffloadModel;

fn main() {
    header(
        "Fig. 3",
        "offload cost ratios vs particle count (H.M. Small)",
    );
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);

    // Measure the real per-particle transport structure.
    let n_probe = scaled(2_000);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = run_histories(&problem, &sources, &streams);
    let shape = shape_of(&problem);
    let segs_pp = out.tallies.segments as f64 / n_probe as f64;
    println!(
        "measured: {:.1} flight segments per history ({} histories)\n",
        segs_pp, n_probe
    );

    let host = NativeModel::new(
        mcs_device::MachineSpec::host_e5_2687w(),
        TransportKind::HistoryScalar,
    );
    let offload = OffloadModel::jlse();
    let grid_bytes = (problem.grid.data_bytes() + problem.soa.data_bytes()) as f64;

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "particles", "bank/gen", "xfer/gen", "micXS/gen", "hostXS/gen"
    );
    let mut rows = Vec::new();
    let mut series: Vec<(f64, f64, f64, f64)> = Vec::new();
    for &n in &[100usize, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
        // Scale the measured tallies to n particles for the generation time.
        let mut t = out.tallies;
        let f = n as f64 / n_probe as f64;
        t.n_particles = n as u64;
        t.segments = (t.segments as f64 * f) as u64;
        t.collisions = (t.collisions as f64 * f) as u64;
        for i in 0..8 {
            t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
            t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
        }
        let gen_time = host.batch_time(&shape, &t);

        let b = offload.breakdown(&shape, n, grid_bytes);
        let r = (
            b.banking_host_s / gen_time,
            b.transfer_bank_s / gen_time,
            b.compute_device_s / gen_time,
            b.compute_host_s / gen_time,
        );
        println!(
            "{:>10} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            n, r.0, r.1, r.2, r.3
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.6}", r.0),
            format!("{:.6}", r.1),
            format!("{:.6}", r.2),
            format!("{:.6}", r.3),
        ]);
        series.push(r);
    }
    write_csv(
        "fig3_offload_asymptotics",
        &[
            "particles",
            "bank_over_gen",
            "transfer_over_gen",
            "mic_xs_over_gen",
            "host_xs_over_gen",
        ],
        &rows,
    );

    // The paper's trend claims.
    let first = series[0];
    let last = *series.last().unwrap();
    assert!(last.1 < first.1, "transfer ratio must fall with n");
    assert!(last.2 < first.2, "MIC compute ratio must fall with n");
    assert!(last.3 > first.3, "host compute ratio must rise with n");
    // MIC compute drops below host compute above ~1e4 particles.
    let cross = series
        .iter()
        .zip([100usize, 1_000, 10_000, 100_000, 1_000_000, 10_000_000])
        .find(|(r, _)| r.2 < r.3)
        .map(|(_, n)| n);
    println!(
        "\nMIC-compute curve crosses under host-compute at n = {:?} (paper: ~10,000)",
        cross
    );
    assert!(
        matches!(cross, Some(n) if n <= 100_000),
        "MIC compute should undercut host compute by 1e5 particles"
    );
    println!(
        "note: the bank *transfer* remains the dominant offload cost at every n \
         (Table II's conclusion), so profitable offload requires the asynchronous \
         overlap the paper stresses in §III-A3 — see EXPERIMENTS.md."
    );
    println!("trend checks PASSED");
}
