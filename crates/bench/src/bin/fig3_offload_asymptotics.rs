//! Fig. 3 harness binary — see [`mcs_bench::harness::fig3`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig3;
use mcs_bench::scale;

fn main() {
    let r = fig3::run(scale(), true);
    r.artifact.write();

    // The paper's trend claims.
    let first = &r.rows[0];
    let last = r.rows.last().unwrap();
    assert!(
        last.transfer_over_gen < first.transfer_over_gen,
        "transfer ratio must fall with n"
    );
    assert!(
        last.mic_xs_over_gen < first.mic_xs_over_gen,
        "MIC compute ratio must fall with n"
    );
    assert!(
        last.host_xs_over_gen > first.host_xs_over_gen,
        "host compute ratio must rise with n"
    );
    // MIC compute drops below host compute above ~1e4 particles.
    println!(
        "\nMIC-compute curve crosses under host-compute at n = {:?} (paper: ~10,000)",
        r.crossover
    );
    assert!(
        matches!(r.crossover, Some(n) if n <= 100_000),
        "MIC compute should undercut host compute by 1e5 particles"
    );
    println!(
        "note: the bank *transfer* remains the dominant offload cost at every n \
         (Table II's conclusion), so profitable offload requires the asynchronous \
         overlap the paper stresses in §III-A3 — see EXPERIMENTS.md."
    );
    println!("trend checks PASSED");
}
