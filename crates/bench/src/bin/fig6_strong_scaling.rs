//! Fig. 6: strong scaling of the H.M. Large simulation with N = 10⁷ on
//! the Stampede cluster (CPU-only, CPU+1MIC, CPU+2MIC curves).
//!
//! Rank rates are the Stampede-clocked machine models priced on a real
//! measured transport run; the cluster model then applies the paper's
//! static α balancing, the per-rank rate knee (Fig. 5's left side), and
//! the per-batch synchronization cost. Checks: ≈95% efficiency at 128
//! nodes, the 1-MIC tail at 1,024 nodes, no tail for CPU-only, and the
//! 2-MIC curve stopping at 384 nodes (Stampede's partition size).

use mcs_bench::{header, scaled, write_csv};
use mcs_cluster::{strong_scaling, CommModel, NodeSpec};
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::MachineSpec;

fn stampede_rates() -> (f64, f64) {
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled(2_000);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = run_histories(&problem, &sources, &streams);
    let mut t = out.tallies;
    let f = 100_000.0 / n_probe as f64;
    t.n_particles = 100_000;
    t.segments = (t.segments as f64 * f) as u64;
    t.collisions = (t.collisions as f64 * f) as u64;
    for i in 0..8 {
        t.segments_by_material[i] = (t.segments_by_material[i] as f64 * f) as u64;
        t.collisions_by_material[i] = (t.collisions_by_material[i] as f64 * f) as u64;
    }
    let cpu = NativeModel::new(MachineSpec::host_e5_2680(), TransportKind::HistoryScalar);
    let mic = NativeModel::new(MachineSpec::mic_se10p(), TransportKind::HistoryScalar);
    (cpu.calc_rate(&shape, &t), mic.calc_rate(&shape, &t))
}

fn main() {
    header("Fig. 6", "strong scaling, H.M. Large, N = 1e7, Stampede model");
    let (r_cpu, r_mic) = stampede_rates();
    println!(
        "\nStampede rank rates (modeled from measured run): CPU {:.0} n/s, MIC {:.0} n/s\n",
        r_cpu, r_mic
    );

    let comm = CommModel::fdr_infiniband();
    let n_total = 10_000_000u64;
    let curves: [(&str, NodeSpec, Vec<usize>); 3] = [
        (
            "CPU only",
            NodeSpec::cpu_only(r_cpu),
            vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "CPU + 1 MIC",
            NodeSpec::with_one_mic(r_cpu, r_mic),
            vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "CPU + 2 MIC",
            NodeSpec::with_two_mics(r_cpu, r_mic),
            vec![4, 8, 16, 32, 64, 128, 384], // 384 nodes have 2 MICs
        ),
    ];

    let mut rows = Vec::new();
    for (label, node, counts) in &curves {
        println!("--- {label} ---");
        println!(
            "{:>8} {:>14} {:>16} {:>12}",
            "nodes", "batch time (s)", "rate (n/s)", "efficiency"
        );
        let pts = strong_scaling(node, counts, n_total, &comm);
        for p in &pts {
            println!(
                "{:>8} {:>14.3} {:>16.0} {:>11.1}%",
                p.nodes,
                p.batch_time,
                p.rate,
                p.efficiency * 100.0
            );
            rows.push(vec![
                label.to_string(),
                p.nodes.to_string(),
                format!("{:.4}", p.batch_time),
                format!("{:.0}", p.rate),
                format!("{:.4}", p.efficiency),
            ]);
        }
        println!();
    }
    write_csv(
        "fig6_strong_scaling",
        &["curve", "nodes", "batch_time_s", "rate", "efficiency"],
        &rows,
    );

    // Shape assertions.
    let one_mic = strong_scaling(
        &NodeSpec::with_one_mic(r_cpu, r_mic),
        &[4, 128, 1024],
        n_total,
        &comm,
    );
    assert!(one_mic[1].efficiency > 0.93, "128-node efficiency");
    assert!(one_mic[2].efficiency < 0.85, "1-MIC tail missing at 1024 nodes");
    let cpu_only = strong_scaling(&NodeSpec::cpu_only(r_cpu), &[4, 1024], n_total, &comm);
    assert!(cpu_only[1].efficiency > 0.95, "CPU-only curve should stay flat");
    println!("shape checks PASSED: ~95% at 128 nodes, 1-MIC tail at 1024, flat CPU-only");
}
