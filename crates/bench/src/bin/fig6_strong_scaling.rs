//! Fig. 6 harness binary — see [`mcs_bench::harness::fig6`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig6;
use mcs_bench::scale;

fn main() {
    let r = fig6::run(scale(), true);
    r.artifact.write();

    // Shape assertions.
    let one_mic = r.curve("CPU + 1 MIC");
    assert!(
        one_mic.at(128).unwrap().efficiency > 0.93,
        "128-node efficiency"
    );
    assert!(
        one_mic.at(1024).unwrap().efficiency < 0.85,
        "1-MIC tail missing at 1024 nodes"
    );
    let cpu_only = r.curve("CPU only");
    assert!(
        cpu_only.at(1024).unwrap().efficiency > 0.95,
        "CPU-only curve should stay flat"
    );
    println!("shape checks PASSED: ~95% at 128 nodes, 1-MIC tail at 1024, flat CPU-only");
}
