//! Fig. 8: execution time for RSBench implementations — original
//! (variable poles per window) vs vectorized (fixed poles per window).
//!
//! The host columns are MEASURED: both multipole kernels really run here,
//! over identical physical pole data (the fixed layout pads windows with
//! zero-residue poles, so the checksums agree). The MIC columns are
//! MODELED by pricing the per-pole operation mix on the Phi: the
//! original's variable trip count keeps the Faddeeva evaluation scalar
//! (call-heavy — the MIC's weakness), the vectorized layout turns it into
//! lane work (the MIC's strength).

use mcs_bench::{fmt_secs, header, scaled, time_it, write_csv};
use mcs_device::{KernelCounts, MachineSpec};
use mcs_multipole::{rsbench_driver, MultipoleLibrary, MultipoleSpec};

fn main() {
    header("Fig. 8", "RSBench: original vs vectorized multipole lookups");
    let spec = MultipoleSpec::rsbench_like();
    let var_lib = MultipoleLibrary::build(&spec);
    let max_poles = var_lib
        .nuclides
        .iter()
        .map(|n| n.max_poles_per_window())
        .max()
        .unwrap();
    let fix_lib = MultipoleLibrary::build(&spec.clone().with_fixed_poles(max_poles));
    println!(
        "\nlibrary: {} nuclides × {} windows; {} poles variable, {} fixed ({} per window)\n",
        spec.n_nuclides,
        spec.n_windows,
        var_lib.total_poles(),
        fix_lib.total_poles(),
        max_poles
    );

    let n_lookups = scaled(300_000);
    let (sum_orig, t_orig) = time_it(|| rsbench_driver(&var_lib, n_lookups, 42, false));
    let (sum_vec, t_vec) = time_it(|| rsbench_driver(&fix_lib, n_lookups, 42, true));
    assert!(
        ((sum_orig - sum_vec) / sum_orig).abs() < 1e-9,
        "kernels must agree: {sum_orig} vs {sum_vec}"
    );

    println!("MEASURED on this host ({n_lookups} lookups):");
    println!("  original (variable windows, scalar W): {}", fmt_secs(t_orig));
    println!("  vectorized (fixed windows, batched W): {}", fmt_secs(t_vec));
    println!("  speedup: {:.2}x", t_orig / t_vec);

    // MODELED: per-pole op mixes on each machine.
    let mean_poles_var = var_lib.total_poles() as f64 / (spec.n_nuclides * spec.n_windows) as f64;
    let poles_per_lookup_var = mean_poles_var;
    let poles_per_lookup_fix = max_poles as f64;
    // Original: every pole costs a complex exponential (exp+sin+cos via
    // libm) and scalar complex bookkeeping, behind a call.
    let per_pole_orig = KernelCounts {
        calls: 1.0,
        libm: 3.0,
        scalar: 80.0,
        ..Default::default()
    };
    // Vectorized: the W series becomes lane work; the hoisted exponential
    // leaves one scalar libm trio per *window*, amortized over its poles.
    let per_pole_vec = KernelCounts {
        vector_lanes: 100.0,
        scalar: 10.0,
        libm: 3.0 / poles_per_lookup_fix,
        ..Default::default()
    };
    let lookups = 1e8; // paper-scale lookup count
    let cpu = MachineSpec::host_e5_2687w();
    let mic = MachineSpec::mic_7120a();
    let t = |spec: &MachineSpec, c: &KernelCounts, poles: f64| {
        spec.kernel_time(&c.scale(lookups * poles))
    };
    println!("\nMODELED at paper scale (1e8 lookups), seconds:");
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "machine", "original", "vectorized", "speedup"
    );
    let mut rows = vec![vec![
        "host_measured".to_string(),
        format!("{t_orig:.4}"),
        format!("{t_vec:.4}"),
        format!("{:.3}", t_orig / t_vec),
    ]];
    for (label, m) in [("CPU", &cpu), ("MIC", &mic)] {
        let a = t(m, &per_pole_orig, poles_per_lookup_var);
        let b = t(m, &per_pole_vec, poles_per_lookup_fix);
        println!("{:<14} {:>12.1} {:>12.1} {:>8.2}x", label, a, b, a / b);
        rows.push(vec![
            format!("{label}_modeled"),
            format!("{a:.2}"),
            format!("{b:.2}"),
            format!("{:.3}", a / b),
        ]);
    }
    write_csv(
        "fig8_rsbench",
        &["row", "original_s", "vectorized_s", "speedup"],
        &rows,
    );
    println!("\npaper shape: vectorization ≈ 2-3x; the MIC gains far more than the CPU");

    // Bonus: the multipole method's motivation — on-the-fly temperature
    // dependence (§IV-B). One pole, re-broadened across temperatures.
    println!("\nDoppler broadening on the fly (no new tables):");
    let nuc = &var_lib.nuclides[0];
    let pole = nuc.poles[0];
    let e_peak = pole.position.re * pole.position.re;
    println!("{:>8} {:>16}", "T (K)", "sigma_t at peak");
    let mut prev = f64::INFINITY;
    for t_k in [293.6, 600.0, 1200.0, 2400.0] {
        let hot = nuc.at_temperature(t_k);
        let sig = mcs_multipole::lookup_original(&hot, e_peak).total;
        println!("{:>8.1} {:>16.1}", t_k, sig);
        assert!(sig.abs() < prev.abs() * 1.001, "peak must flatten with T");
        prev = sig;
    }
    println!("(peaks flatten as T rises — the ψ/χ broadening the paper cites)");
}
