//! Fig. 8 harness binary — see [`mcs_bench::harness::fig8`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig8;
use mcs_bench::scale;

fn main() {
    let r = fig8::run(scale(), true);
    assert!(
        r.checksum_rel_err < 1e-9,
        "kernels must agree (rel err {})",
        r.checksum_rel_err
    );
    r.artifact.write();

    // Doppler: peaks must flatten as T rises.
    let mut prev = f64::INFINITY;
    for &(_t_k, sig) in &r.doppler {
        assert!(sig.abs() < prev.abs() * 1.001, "peak must flatten with T");
        prev = sig;
    }
}
