//! Fig. 2 harness binary — see [`mcs_bench::harness::fig2`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig2;
use mcs_bench::scale;

fn main() {
    let r = fig2::run(scale(), true);
    for row in &r.rows {
        assert!(row.checksum_rel_err < 1e-10, "kernels disagree");
    }
    r.artifact.write();
}
