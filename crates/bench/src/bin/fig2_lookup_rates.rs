//! Fig. 2: cross-section lookup rates for the banking and history methods
//! vs bank size (H.M. Large).
//!
//! Columns:
//! * `history/CPU` — MEASURED: the scalar `calculate_xs` loop over the
//!   bank on this host.
//! * `banked/host` — MEASURED: the SoA + vectorized-inner-loop kernel on
//!   this host (the structural win of banking, hardware-independent).
//! * `banked/MIC` — MODELED: the same kernel priced on the Xeon Phi 7120A
//!   machine model.
//!
//! The paper's headline: banked/MIC ≈ 10× history/CPU at large banks.

use mcs_bench::{fmt_secs, header, log_energies, scaled, time_it, write_csv};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::shape_of;
use mcs_device::workload::{xs_lookup_banked, xs_lookup_scalar};
use mcs_device::MachineSpec;
use mcs_xs::kernel::{batch_macro_xs_scalar, batch_macro_xs_simd, MacroXs};

fn main() {
    header(
        "Fig. 2",
        "XS lookup rates: banking vs history methods (H.M. Large)",
    );
    // S(α,β)/URR removed, as in the paper's micro-benchmark (§III-A1).
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let (problem, t_build) = time_it(|| Problem::hm(HmModel::Large, &cfg));
    println!(
        "H.M. Large: {} nuclides, union grid {} points (built in {})\n",
        problem.library.len(),
        problem.grid.n_points(),
        fmt_secs(t_build)
    );
    let fuel = &problem.materials[0];
    let shape = shape_of(&problem);
    let mic = MachineSpec::mic_7120a();
    let e5 = MachineSpec::host_e5_2687w();

    println!(
        "{:>10} {:>15} {:>15} {:>15} {:>15} {:>9}",
        "bank size", "hist/host meas", "hist/E5 model", "bank/host meas", "bank/MIC model", "MIC/E5"
    );
    let mut rows = Vec::new();
    for &n in &[1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000] {
        let n = scaled(n);
        let energies = log_energies(n, 0xF162);
        let mut out = vec![MacroXs::default(); n];

        let (_, t_scalar) = time_it(|| {
            batch_macro_xs_scalar(&problem.library, &problem.grid, fuel, &energies, &mut out)
        });
        let checksum_scalar: f64 = out.iter().map(|x| x.total).sum();

        let (_, t_banked) = time_it(|| {
            batch_macro_xs_simd(&problem.soa, &problem.grid, fuel, &energies, &mut out)
        });
        let checksum_banked: f64 = out.iter().map(|x| x.total).sum();
        assert!(
            ((checksum_scalar - checksum_banked) / checksum_scalar).abs() < 1e-10,
            "kernels disagree"
        );

        // Modeled times: the banked lookups on the MIC and the scalar
        // history lookups on the paper's dual-socket host.
        let t_mic = mic.kernel_time(&xs_lookup_banked(&shape, 0).scale(n as f64));
        let t_e5 = e5.kernel_time(&xs_lookup_scalar(&shape, 0).scale(n as f64));

        let (r_scalar, r_e5, r_banked, r_mic) = (
            n as f64 / t_scalar,
            n as f64 / t_e5,
            n as f64 / t_banked,
            n as f64 / t_mic,
        );
        println!(
            "{:>10} {:>15.0} {:>15.0} {:>15.0} {:>15.0} {:>8.1}x",
            n,
            r_scalar,
            r_e5,
            r_banked,
            r_mic,
            r_mic / r_e5
        );
        rows.push(vec![
            n.to_string(),
            format!("{r_scalar:.1}"),
            format!("{r_e5:.1}"),
            format!("{r_banked:.1}"),
            format!("{r_mic:.1}"),
        ]);
    }
    write_csv(
        "fig2_lookup_rates",
        &[
            "bank_size",
            "history_host_measured_per_s",
            "history_e5_modeled_per_s",
            "banked_host_measured_per_s",
            "banked_mic_modeled_per_s",
        ],
        &rows,
    );
    println!("\npaper shape: banked/MIC ≈ 10× history/CPU (MIC/E5 column) at large banks");
}
