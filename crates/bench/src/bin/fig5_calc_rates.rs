//! Fig. 5: calculation rate (neutrons/second) vs particles per batch for
//! inactive and active batches, host CPU vs MIC native (H.M. Large).
//!
//! Real eigenvalue batches run on this host (physics + per-batch tallies
//! are MEASURED); each batch's instrumented counts are then priced on the
//! E5-2687W and Phi 7120A models to produce the figure's two curves.
//! Checks: MIC ≈ 1.5–2× the CPU above 10⁴ particles, consistent
//! α_i/α_a ≈ 0.61–0.62, and collapsing rates at small batch sizes.

use mcs_bench::{header, scaled, write_csv};
use mcs_core::eigenvalue::{run_eigenvalue, EigenvalueSettings, TransportMode};
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::MachineSpec;

fn main() {
    header("Fig. 5", "calculation rate vs batch size, CPU vs MIC (H.M. Large)");
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let host = NativeModel::new(MachineSpec::host_e5_2687w(), TransportKind::HistoryScalar);
    let mic = NativeModel::new(MachineSpec::mic_7120a(), TransportKind::HistoryScalar);

    println!(
        "\n{:>10} {:>8} {:>14} {:>14} {:>8}",
        "particles", "batch", "CPU (n/s)", "MIC (n/s)", "alpha"
    );
    let mut rows = Vec::new();
    let mut alphas = Vec::new();
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let n = scaled(n);
        // One inactive and one active batch, really transported.
        for (label, batch_index) in [("inactive", 0u64), ("active", 1u64)] {
            let sources = problem.sample_initial_source(n, batch_index);
            let streams = batch_streams(problem.seed, batch_index, n);
            let out = run_histories(&problem, &sources, &streams);
            let r_cpu = host.calc_rate(&shape, &out.tallies);
            let r_mic = mic.calc_rate(&shape, &out.tallies);
            let alpha = r_cpu / r_mic;
            if n >= 10_000 {
                alphas.push(alpha);
            }
            println!(
                "{:>10} {:>8} {:>14.0} {:>14.0} {:>8.3}",
                n, label, r_cpu, r_mic, alpha
            );
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                format!("{r_cpu:.0}"),
                format!("{r_mic:.0}"),
                format!("{alpha:.4}"),
            ]);
        }
    }
    write_csv(
        "fig5_calc_rates",
        &["particles", "batch_kind", "cpu_rate", "mic_rate", "alpha"],
        &rows,
    );

    let mean_alpha = alphas.iter().sum::<f64>() / alphas.len() as f64;
    println!(
        "\nalpha at >=1e4 particles: {:.3} (paper: 0.61 ± 0.02 inactive, 0.62 ± 0.01 active)",
        mean_alpha
    );
    assert!((0.5..0.8).contains(&mean_alpha), "alpha out of window");

    // Also demonstrate a real (measured, this-host) eigenvalue run with
    // converging source, to show rates are stable across batches.
    let n = scaled(2_000);
    let settings = EigenvalueSettings {
        particles: n,
        inactive: 2,
        active: 3,
        mode: TransportMode::History,
        entropy_mesh: (8, 8, 4),
        mesh_tally: None,
    };
    let result = run_eigenvalue(&problem, &settings);
    println!(
        "\nreal eigenvalue run on this host: k = {:.5} ± {:.5}, mean rate {:.0} n/s (measured)",
        result.k_mean,
        result.k_std,
        result.mean_rate(true)
    );
    println!("shape checks PASSED");
}
