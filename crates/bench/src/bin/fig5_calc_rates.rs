//! Fig. 5 harness binary — see [`mcs_bench::harness::fig5`] for the
//! library entry point `mcs-check` shares with this wrapper.

use mcs_bench::harness::fig5;
use mcs_bench::scale;

fn main() {
    let r = fig5::run(scale(), true);
    r.artifact.write();
    assert!((0.5..0.8).contains(&r.mean_alpha), "alpha out of window");
    println!("shape checks PASSED");
}
