//! Serve-load benchmark: throughput, latency, and admission behavior of
//! the `mcs serve` plan-execution service under concurrent submission.
//!
//! Three phases, each against its own fresh server on an ephemeral
//! port, each one CSV row:
//!
//! * **sequential** — a single closed-loop client: K unique plans run
//!   cold, then a skewed wave of re-submissions that must all be served
//!   from cache. The wave's `xs.lookups` delta must be exactly zero
//!   (`relookup_free`) and the replayed payload bit-identical to the
//!   cold one (`cache_bitwise`) — the acceptance contract of the cache.
//! * **concurrent** — several client threads pipelining a skewed 80/20
//!   hot/unique mix (1k+ submissions at full scale). Every distinct
//!   plan executes exactly once no matter how many threads race on it,
//!   so `cold_runs == unique_plans` is a deterministic counter even
//!   though the cache-hit / coalesce split is scheduling-dependent.
//! * **admission** — a deliberately tiny server (1 worker, queue cap
//!   4), loaded while paused: the overflow count is exact, typed, and
//!   scale-independent.
//!
//! Counter columns (`submissions`, `unique_plans`, `served_saved`,
//! `cold_runs`, `rejects`) are deterministic at fixed scale and golden
//! `Exact`; the rate/latency columns are measured and golden
//! `Positive`. The nondeterministic hit/coalesce *split* stays out of
//! the CSV — it rides only in the JSON summary.

use std::net::SocketAddr;
use std::time::Instant;

use mcs_core::engine::{ModelSpec, RunPlan};
use mcs_serve::{Client, Priority, ServeConfig, Server, Source};

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// Client threads in the concurrent phase.
const CONCURRENT_CLIENTS: usize = 4;
/// Hot-set size for the 80/20 skew.
const HOT_PLANS: usize = 4;
/// Queue-cap of the admission-phase server (workers = 1).
const ADMISSION_CAP: usize = 4;
/// Overflow submissions beyond the admission queue cap.
const ADMISSION_OVERFLOW: usize = 3;

/// One phase of the load run.
#[derive(Debug, Clone)]
pub struct ServeLoadRow {
    /// Phase label (`sequential`, `concurrent`, `admission`).
    pub phase: &'static str,
    /// Total submissions sent in the phase.
    pub submissions: u64,
    /// Distinct canonical plan hashes among them.
    pub unique_plans: u64,
    /// Submissions answered without an engine run (hits + coalesces).
    pub served_saved: u64,
    /// Engine executions (deterministically `== unique_plans` except
    /// in the admission phase, where rejected plans never run).
    pub cold_runs: u64,
    /// Typed admission rejections.
    pub rejects: u64,
    /// MEASURED end-to-end submission throughput.
    pub plans_per_second: f64,
    /// MEASURED median submit→terminal-event latency.
    pub p50_ms: f64,
    /// MEASURED 99th-percentile latency.
    pub p99_ms: f64,
}

/// Typed result of the serve-load harness.
#[derive(Debug, Clone)]
pub struct ServeLoadResult {
    /// One row per phase, in run order.
    pub rows: Vec<ServeLoadRow>,
    /// Cache replay was bit-identical to the cold run.
    pub cache_bitwise: bool,
    /// The sequential hit wave moved `xs.lookups` by exactly zero.
    pub relookup_free: bool,
    /// Total cache hits across all phases (split is scheduling-dependent).
    pub hits: u64,
    /// Total in-flight coalesces across all phases.
    pub coalesced: u64,
    /// Worker-pool size of the throughput servers.
    pub workers: usize,
    /// Queue cap of the throughput servers.
    pub queue_cap: usize,
    /// The `BENCH_serve` CSV.
    pub artifact: Artifact,
}

impl ServeLoadResult {
    /// The row for `phase`, if the phase ran.
    pub fn row(&self, phase: &str) -> Option<&ServeLoadRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// True iff every phase reported positive, finite rate and latencies.
    pub fn rates_positive(&self) -> bool {
        self.rows.iter().all(|r| {
            r.plans_per_second > 0.0
                && r.plans_per_second.is_finite()
                && r.p50_ms > 0.0
                && r.p99_ms >= r.p50_ms
                && r.p99_ms.is_finite()
        })
    }

    /// True iff rejections happened exactly where the admission phase
    /// engineered them and nowhere else.
    pub fn rejects_expected(&self) -> bool {
        self.rows.iter().all(|r| {
            let expected = if r.phase == "admission" {
                ADMISSION_OVERFLOW as u64
            } else {
                0
            };
            r.rejects == expected
        })
    }

    /// True iff, in every phase, each distinct plan ran at most once
    /// and the save counter balances the submission ledger.
    pub fn ledger_balanced(&self) -> bool {
        self.rows.iter().all(|r| {
            r.cold_runs <= r.unique_plans
                && r.served_saved + r.cold_runs + r.rejects == r.submissions
        })
    }

    /// Fraction of non-rejected submissions served without an engine
    /// run, over all phases.
    pub fn saved_fraction(&self) -> f64 {
        let saved: u64 = self.rows.iter().map(|r| r.served_saved).sum();
        let admitted: u64 = self.rows.iter().map(|r| r.submissions - r.rejects).sum();
        saved as f64 / (admitted as f64).max(1.0)
    }
}

/// The tiny eigenvalue plan the load phases submit; `salt` perturbs
/// the seed, so each salt is one distinct canonical hash.
fn load_plan(salt: u64) -> RunPlan {
    RunPlan {
        particles: 48,
        inactive: 1,
        active: 1,
        entropy_mesh: (2, 2, 2),
        seed: Some(0x10ad_0000 + salt),
        ..RunPlan::default()
    }
}

fn throughput_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_cap: 2048,
        cache_cap: 4096,
        problem_cap: 32,
    }
}

fn percentile_ms(sorted: &[f64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

struct PhaseOutcome {
    row: ServeLoadRow,
    hits: u64,
    coalesced: u64,
}

/// Phase 1: closed-loop cold fills then a skewed all-hit wave.
fn run_sequential(scale: f64) -> (PhaseOutcome, bool, bool) {
    let server = Server::bind("127.0.0.1:0", throughput_config()).expect("bind serve-load server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let uniques = scaled_by(8, scale).max(3);
    let wave = scaled_by(64, scale).max(12);

    let t0 = Instant::now();
    let mut latencies = Vec::with_capacity(uniques + wave);
    let mut cold = Vec::with_capacity(uniques);
    for salt in 0..uniques as u64 {
        let t = Instant::now();
        let (source, result) = client
            .run(&load_plan(salt), Priority::Normal)
            .expect("cold run");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(source, Source::Run, "first submission of a plan runs cold");
        cold.push(result);
    }
    let lookups_before_wave = client.stats().expect("stats").xs_lookups;

    let mut cache_bitwise = true;
    for i in 0..wave {
        // 80 % of the wave re-hits plan 0; the rest cycles the tail.
        let salt = if i.is_multiple_of(5) {
            1 + (i / 5) as u64 % (uniques as u64 - 1).max(1)
        } else {
            0
        };
        let t = Instant::now();
        let (source, result) = client.run(&load_plan(salt), Priority::Normal).expect("hit");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(source, Source::Cache, "warm plan must be served from cache");
        cache_bitwise &= *result == *cold[salt as usize];
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = client.stats().expect("stats");
    let relookup_free = stats.xs_lookups == lookups_before_wave;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let submissions = (uniques + wave) as u64;
    let outcome = PhaseOutcome {
        row: ServeLoadRow {
            phase: "sequential",
            submissions,
            unique_plans: uniques as u64,
            served_saved: stats.cache_hits + stats.coalesced,
            cold_runs: stats.cold_runs,
            rejects: stats.rejected,
            plans_per_second: submissions as f64 / elapsed.max(1e-12),
            p50_ms: percentile_ms(&latencies, 50).max(1e-6),
            p99_ms: percentile_ms(&latencies, 99).max(1e-6),
        },
        hits: stats.cache_hits,
        coalesced: stats.coalesced,
    };
    server.shutdown();
    (outcome, cache_bitwise, relookup_free)
}

/// The plan a concurrent-phase client submits at step `i`: 80 % from
/// the shared hot set, 20 % unique to this (thread, step).
fn skewed_salt(thread: usize, i: usize, per_thread: usize) -> u64 {
    if i.is_multiple_of(5) {
        1_000 + (thread * per_thread + i) as u64
    } else {
        (i % HOT_PLANS) as u64
    }
}

/// Phase 2: several closed-loop clients racing a skewed plan mix.
fn run_concurrent(scale: f64) -> PhaseOutcome {
    let cfg = throughput_config();
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind serve-load server");
    let addr: SocketAddr = server.local_addr();
    let per_thread = scaled_by(256, scale).max(8);

    let t0 = Instant::now();
    let handles: Vec<_> = (0..CONCURRENT_CLIENTS)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let plan = load_plan(skewed_salt(thread, i, per_thread));
                    let t = Instant::now();
                    client.run(&plan, Priority::Normal).expect("load run");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();

    let mut probe = Client::connect(addr).expect("connect");
    let stats = probe.stats().expect("stats");
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    // Every thread's unique salts are disjoint; the hot set is shared.
    let uniques_per_thread = per_thread.div_ceil(5);
    let unique_plans = (HOT_PLANS + CONCURRENT_CLIENTS * uniques_per_thread) as u64;
    let submissions = (CONCURRENT_CLIENTS * per_thread) as u64;
    PhaseOutcome {
        row: ServeLoadRow {
            phase: "concurrent",
            submissions,
            unique_plans,
            served_saved: stats.cache_hits + stats.coalesced,
            cold_runs: stats.cold_runs,
            rejects: stats.rejected,
            plans_per_second: submissions as f64 / elapsed.max(1e-12),
            p50_ms: percentile_ms(&latencies, 50).max(1e-6),
            p99_ms: percentile_ms(&latencies, 99).max(1e-6),
        },
        hits: stats.cache_hits,
        coalesced: stats.coalesced,
    }
}

/// Phase 3: overflow a paused 1-worker, cap-4 queue; the reject count
/// is exact and scale-independent.
fn run_admission() -> PhaseOutcome {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_cap: ADMISSION_CAP,
            cache_cap: 16,
            problem_cap: 8,
        },
    )
    .expect("bind admission server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    server.scheduler().pause();

    let total = ADMISSION_CAP + ADMISSION_OVERFLOW;
    let t0 = Instant::now();
    let starts: Vec<Instant> = (0..total).map(|_| Instant::now()).collect();
    let ids: Vec<u64> = (0..total)
        .map(|salt| {
            client
                .submit(&load_plan(2_000 + salt as u64), Priority::Normal, false)
                .expect("submit")
        })
        .collect();
    // Barrier: the pipelined submits race the server's reader thread,
    // and resuming before every frame is parsed would let the worker
    // free queue slots for the late submissions, making the overflow
    // count timing-dependent. A Stats round-trip on the same connection
    // orders us behind every submit frame; the rejection events it
    // reads past stay buffered for the waits below.
    client.stats().expect("admission barrier");
    server.scheduler().resume();

    let mut latencies = Vec::with_capacity(total);
    let mut rejects = 0u64;
    for (i, id) in ids.into_iter().enumerate() {
        match client.wait_result(id) {
            Ok(_) => {}
            Err(mcs_serve::ClientError::Rejected(_)) => rejects += 1,
            Err(e) => panic!("admission phase: unexpected error {e}"),
        }
        latencies.push(starts[i].elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = client.stats().expect("stats");
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseOutcome {
        row: ServeLoadRow {
            phase: "admission",
            submissions: total as u64,
            unique_plans: total as u64,
            served_saved: stats.cache_hits + stats.coalesced,
            cold_runs: stats.cold_runs,
            rejects,
            plans_per_second: total as f64 / elapsed.max(1e-12),
            p50_ms: percentile_ms(&latencies, 50).max(1e-6),
            p99_ms: percentile_ms(&latencies, 99).max(1e-6),
        },
        hits: stats.cache_hits,
        coalesced: stats.coalesced,
    }
}

/// Standalone heavy-model leg: one cold run of the `smr` catalog model
/// through the service, then a cached replay of the same plan. Not part
/// of the three-phase battery (the `BENCH_serve` CSV shape is golden);
/// `ablate_serve` appends its cell to the JSON summary at full scale.
/// Returns the phase row and whether the replay was bit-identical.
pub fn run_smr(scale: f64) -> (ServeLoadRow, bool) {
    let server = Server::bind("127.0.0.1:0", throughput_config()).expect("bind smr-leg server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let plan = RunPlan {
        model: ModelSpec::named("smr"),
        particles: scaled_by(2_000, scale).max(100),
        inactive: 1,
        active: 1,
        entropy_mesh: (4, 4, 4),
        seed: Some(0x10ad_5111),
        ..RunPlan::default()
    };

    let t0 = Instant::now();
    let t = Instant::now();
    let (source, cold) = client.run(&plan, Priority::Normal).expect("smr cold run");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(source, Source::Run, "first smr submission runs cold");
    let t = Instant::now();
    let (source, warm) = client.run(&plan, Priority::Normal).expect("smr replay");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        source,
        Source::Cache,
        "smr replay must be served from cache"
    );
    let bitwise = *warm == *cold;
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = client.stats().expect("stats");
    let row = ServeLoadRow {
        phase: "smr",
        submissions: 2,
        unique_plans: 1,
        served_saved: stats.cache_hits + stats.coalesced,
        cold_runs: stats.cold_runs,
        rejects: stats.rejected,
        plans_per_second: 2.0 / elapsed.max(1e-12),
        p50_ms: warm_ms.min(cold_ms).max(1e-6),
        p99_ms: warm_ms.max(cold_ms).max(1e-6),
    };
    server.shutdown();
    (row, bitwise)
}

/// Run the three-phase load battery at `scale`.
pub fn run(scale: f64, verbose: bool) -> ServeLoadResult {
    if verbose {
        header_with_scale(
            "BENCH serve",
            "plan-execution service under concurrent load",
            scale,
        );
    }

    let (sequential, cache_bitwise, relookup_free) = run_sequential(scale);
    let concurrent = run_concurrent(scale);
    let admission = run_admission();

    let phases = [sequential, concurrent, admission];
    let hits = phases.iter().map(|p| p.hits).sum();
    let coalesced = phases.iter().map(|p| p.coalesced).sum();
    let rows: Vec<ServeLoadRow> = phases.into_iter().map(|p| p.row).collect();

    vprintln!(
        verbose,
        "{:>12} {:>12} {:>8} {:>8} {:>6} {:>8} {:>10} {:>9} {:>9}",
        "phase",
        "submissions",
        "unique",
        "saved",
        "cold",
        "rejects",
        "plans/s",
        "p50 ms",
        "p99 ms"
    );
    let mut csv_rows = Vec::new();
    for r in &rows {
        vprintln!(
            verbose,
            "{:>12} {:>12} {:>8} {:>8} {:>6} {:>8} {:>10.1} {:>9.3} {:>9.3}",
            r.phase,
            r.submissions,
            r.unique_plans,
            r.served_saved,
            r.cold_runs,
            r.rejects,
            r.plans_per_second,
            r.p50_ms,
            r.p99_ms
        );
        csv_rows.push(vec![
            r.phase.to_string(),
            r.submissions.to_string(),
            r.unique_plans.to_string(),
            r.served_saved.to_string(),
            r.cold_runs.to_string(),
            r.rejects.to_string(),
            format!("{:.1}", r.plans_per_second),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
    }

    let cfg = throughput_config();
    let result = ServeLoadResult {
        rows,
        cache_bitwise,
        relookup_free,
        hits,
        coalesced,
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
        artifact: Artifact {
            name: "BENCH_serve",
            columns: vec![
                "phase",
                "submissions",
                "unique_plans",
                "served_saved",
                "cold_runs",
                "rejects",
                "plans_measured_per_s",
                "p50_measured_ms",
                "p99_measured_ms",
            ],
            rows: csv_rows,
        },
    };
    if verbose {
        println!(
            "\ncache replay bit-identical: {}; hit wave re-lookup free: {}",
            if result.cache_bitwise { "yes" } else { "NO" },
            if result.relookup_free { "yes" } else { "NO" }
        );
        println!(
            "saved {:.1}% of admitted submissions ({} hits + {} coalesced)",
            100.0 * result.saved_fraction(),
            result.hits,
            result.coalesced
        );
    }
    result
}
