//! Device-catalog ablation: every calibrated accelerator entry priced on
//! the reference workload, plus a measured `smr` leg and the
//! heterogeneous-cluster determinism contract.
//!
//! Three legs:
//!
//! * **reference** — each catalog entry's MODELED rate on the calibration
//!   reference workload (H.M. Large inventory, 100-segment mix), under
//!   history-scalar and event-banked transport, with α vs the default
//!   host and the calibration ratio against the entry's published rate;
//! * **smr** — a real transported batch of the heavy `smr` catalog model
//!   on this host (MEASURED wall rate), whose instrumented tallies are
//!   then priced on every device (MODELED rates from measured counts);
//! * **determinism** — a heterogeneous device mix assigned to distributed
//!   ranks via `DistributedPolicy::with_devices` must reproduce the
//!   serial run bit-identically (α-balanced splits move work between
//!   ranks, never results), and the legacy `knc-7120a`/`host-e5-2687w`
//!   entries must price kernels bit-identically to the historic
//!   `MachineSpec` constructors.

use mcs_cluster::DistributedPolicy;
use mcs_core::engine::{self, transport_batch, BatchRequest, ModelSpec, RunPlan, Serial, Threaded};
use mcs_core::history::batch_streams;
use mcs_device::catalog::{self, DeviceSpec};
use mcs_device::native::{shape_of, TransportKind};
use mcs_device::symmetric::SymmetricModel;
use mcs_device::MachineSpec;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by, time_it};

/// The heterogeneous rank mix exercised by the determinism leg and the
/// symmetric-balance comparison.
pub const HETERO_MIX: [&str; 3] = ["host-e5-2687w", "knc-7120a", "a100"];

/// One device × model row.
#[derive(Debug, Clone)]
pub struct DeviceRow {
    /// `"reference"` or `"smr"`.
    pub model: &'static str,
    /// Catalog entry id.
    pub id: &'static str,
    /// Device class name (`cpu`/`coprocessor`/`gpu`).
    pub class: &'static str,
    /// Default transport kind for this class.
    pub transport: &'static str,
    /// MODELED rate under the entry's default transport (n/s).
    pub rate: f64,
    /// α = default-host rate / this device's rate (same transport basis
    /// as the paper's CPU/MIC α: each device under its own default).
    pub alpha_vs_host: f64,
    /// Modeled / published rate for ♦-calibrated entries.
    pub calibration_ratio: Option<f64>,
    /// Whether the ratio lands inside the entry's documented band.
    pub within_band: Option<bool>,
}

/// Typed result of the device-catalog harness.
#[derive(Debug, Clone)]
pub struct DeviceCatalogResult {
    /// Reference-workload rows then smr rows, catalog order within each.
    pub rows: Vec<DeviceRow>,
    /// MEASURED wall-clock transport rate of the smr batch on this host.
    pub smr_measured_host_rate: f64,
    /// Per-batch k bit patterns: serial vs heterogeneous-distributed.
    pub hetero_bitwise: bool,
    /// Legacy entries price kernels bit-identically to the historic
    /// `MachineSpec::host_e5_2687w()`/`mic_7120a()` constructors.
    pub legacy_exact: bool,
    /// Balanced / original aggregate rate for the [`HETERO_MIX`]
    /// symmetric job (Table III generalized to the catalog).
    pub balanced_gain: f64,
    /// The `BENCH_device` CSV.
    pub artifact: Artifact,
}

impl DeviceCatalogResult {
    /// Rows for one model leg.
    pub fn rows_of(&self, model: &str) -> Vec<&DeviceRow> {
        self.rows.iter().filter(|r| r.model == model).collect()
    }

    /// True iff every modeled rate is finite and positive.
    pub fn rates_positive(&self) -> bool {
        self.rows.iter().all(|r| r.rate.is_finite() && r.rate > 0.0)
    }

    /// Count of calibrated entries, and how many land in their band.
    pub fn calibration_counts(&self) -> (usize, usize) {
        let calibrated = self
            .rows_of("reference")
            .iter()
            .filter(|r| r.within_band.is_some())
            .count();
        let in_band = self
            .rows_of("reference")
            .iter()
            .filter(|r| r.within_band == Some(true))
            .count();
        (calibrated, in_band)
    }

    /// Reference-leg α for the paper's host/KNC pair.
    pub fn alpha_host_knc(&self) -> f64 {
        self.rows_of("reference")
            .iter()
            .find(|r| r.id == "knc-7120a")
            .map(|r| r.alpha_vs_host)
            .unwrap_or(0.0)
    }

    /// True iff every GPU-class rate beats every legacy-device rate on
    /// the reference workload (the decade of hardware between them).
    pub fn gpus_outrate_legacy(&self) -> bool {
        let reference = self.rows_of("reference");
        let slowest_gpu = reference
            .iter()
            .filter(|r| r.class == "gpu")
            .map(|r| r.rate)
            .fold(f64::INFINITY, f64::min);
        let fastest_legacy = reference
            .iter()
            .filter(|r| r.class != "gpu")
            .map(|r| r.rate)
            .fold(0.0, f64::max);
        slowest_gpu > fastest_legacy
    }
}

fn device_row(model: &'static str, dev: &DeviceSpec, rate: f64, host_rate: f64) -> DeviceRow {
    DeviceRow {
        model,
        id: dev.id,
        class: dev.class.name(),
        transport: match dev.default_transport() {
            TransportKind::HistoryScalar => "history",
            TransportKind::EventBanked => "event",
        },
        rate,
        alpha_vs_host: host_rate / rate,
        calibration_ratio: dev.calibration_ratio(),
        within_band: dev.within_calibration_band(),
    }
}

fn csv_row(r: &DeviceRow) -> Vec<String> {
    vec![
        r.model.to_string(),
        r.id.to_string(),
        r.class.to_string(),
        r.transport.to_string(),
        format!("{:.1}", r.rate),
        format!("{:.4}", r.alpha_vs_host),
        // Two decimals keeps these columns byte-stable across ISA legs
        // (pure analytic arithmetic, no transport branches involved).
        r.calibration_ratio
            .map(|c| format!("{c:.2}"))
            .unwrap_or_else(|| "-".into()),
        r.within_band
            .map(|b| if b { "yes" } else { "no" }.to_string())
            .unwrap_or_else(|| "-".into()),
    ]
}

/// Run the device-catalog sweep at `scale`.
pub fn run(scale: f64, verbose: bool) -> DeviceCatalogResult {
    if verbose {
        header_with_scale(
            "BENCH device",
            "calibrated device catalog: modeled rates, smr leg, hetero determinism",
            scale,
        );
    }
    let devices = catalog::all();
    let host = catalog::device(mcs_core::engine::DEFAULT_DEVICE).expect("default host");

    // Leg 1: reference workload, every entry under its default transport.
    vprintln!(
        verbose,
        "\n{:>10} {:>14} {:>11} {:>8} {:>12} {:>8} {:>6} {:>5}",
        "model",
        "device",
        "class",
        "mode",
        "rate(n/s)",
        "alpha",
        "calib",
        "band"
    );
    let host_ref_rate = host.modeled_native_rate(host.default_transport());
    let mut rows = Vec::new();
    for dev in &devices {
        let rate = dev.modeled_native_rate(dev.default_transport());
        rows.push(device_row("reference", dev, rate, host_ref_rate));
    }

    // Leg 2: one real transported batch of the heavy smr catalog model;
    // its measured tallies are then priced on every device.
    let plan = RunPlan {
        model: ModelSpec::named("smr"),
        ..RunPlan::default()
    };
    let problem = plan.build_problem();
    let shape = shape_of(&problem);
    let n = scaled_by(2_000, scale).max(100);
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);
    let (out, secs) = time_it(|| {
        transport_batch(
            &problem,
            &sources,
            &streams,
            &BatchRequest::default(),
            &mut Threaded::ambient(),
        )
    });
    let tallies = out.outcome.tallies;
    let smr_measured_host_rate = n as f64 / secs.max(1e-12);
    let smr_host_rate = host
        .native(host.default_transport())
        .calc_rate(&shape, &tallies);
    for dev in &devices {
        let rate = dev
            .native(dev.default_transport())
            .calc_rate(&shape, &tallies);
        rows.push(device_row("smr", dev, rate, smr_host_rate));
    }
    for r in &rows {
        vprintln!(
            verbose,
            "{:>10} {:>14} {:>11} {:>8} {:>12.0} {:>8.3} {:>6} {:>5}",
            r.model,
            r.id,
            r.class,
            r.transport,
            r.rate,
            r.alpha_vs_host,
            r.calibration_ratio
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.within_band
                .map(|b| if b { "yes" } else { "no" }.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    vprintln!(
        verbose,
        "\nsmr measured host transport rate: {:.0} n/s ({} particles)",
        smr_measured_host_rate,
        n
    );

    // Leg 3a: heterogeneous distributed ranks reproduce serial bitwise.
    let det_plan = RunPlan {
        particles: scaled_by(1_000, scale).max(100),
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 4),
        ..RunPlan::default()
    };
    let det_problem = det_plan.build_problem();
    let serial_bits: Vec<u64> =
        engine::run_with_problem(&det_problem, &det_plan, &mut Serial::new())
            .into_eigenvalue()
            .result
            .batches
            .iter()
            .map(|b| b.k_track.to_bits())
            .collect();
    let mix: Vec<DeviceSpec> = HETERO_MIX
        .iter()
        .map(|id| catalog::device(id).expect("hetero mix entry"))
        .collect();
    let mut hetero =
        DistributedPolicy::new(mix.len()).with_devices(&mix, TransportKind::HistoryScalar);
    let hetero_bits: Vec<u64> = engine::run_with_problem(&det_problem, &det_plan, &mut hetero)
        .into_eigenvalue()
        .result
        .batches
        .iter()
        .map(|b| b.k_track.to_bits())
        .collect();
    let hetero_bitwise = serial_bits == hetero_bits;
    vprintln!(
        verbose,
        "\nheterogeneous ranks ({}) bit-identical to serial: {}",
        HETERO_MIX.join(" + "),
        if hetero_bitwise { "yes" } else { "NO" }
    );

    // Leg 3b: legacy entries still ARE the historic machines.
    let counts = catalog::reference_particle_counts(TransportKind::HistoryScalar);
    let legacy_exact = [
        ("host-e5-2687w", MachineSpec::host_e5_2687w()),
        ("knc-7120a", MachineSpec::mic_7120a()),
    ]
    .iter()
    .all(|(id, legacy)| {
        let dev = catalog::device(id).expect("legacy entry");
        dev.machine.kernel_time(&counts).to_bits() == legacy.kernel_time(&counts).to_bits()
    });
    vprintln!(
        verbose,
        "legacy entries price bit-identically to MachineSpec constructors: {}",
        if legacy_exact { "yes" } else { "NO" }
    );

    // Table III generalized: α-balancing the hetero mix.
    let sym = SymmetricModel::from_devices(&mix, TransportKind::HistoryScalar);
    let n_total = 100_000;
    let balanced_gain = sym.balanced_rate(n_total) / sym.original_rate(n_total).max(1e-12);
    vprintln!(
        verbose,
        "symmetric {}: balanced/original = {:.3}",
        HETERO_MIX.join("+"),
        balanced_gain
    );

    let csv_rows = rows.iter().map(csv_row).collect();
    DeviceCatalogResult {
        rows,
        smr_measured_host_rate,
        hetero_bitwise,
        legacy_exact,
        balanced_gain,
        artifact: Artifact {
            name: "BENCH_device",
            columns: vec![
                "model",
                "device",
                "class",
                "transport",
                "rate_modeled_n_per_s",
                "alpha_vs_host",
                "calibration_ratio",
                "in_band",
            ],
            rows: csv_rows,
        },
    }
}
