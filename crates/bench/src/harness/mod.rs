//! Library entry points for the figure/table harnesses.
//!
//! Each submodule owns one evaluation artifact of the paper and exposes a
//! `run(scale, verbose) -> …Result` function returning a typed result
//! struct: the measured rates, modeled times, ratios and CSV rows that the
//! corresponding `src/bin/` binary used to only print. Two consumers share
//! these entry points:
//!
//! * the thin harness binaries (`cargo run -p mcs-bench --bin fig2_…`),
//!   which run at `MCS_SCALE`, print the full report (`verbose = true`)
//!   and write the CSVs under `results/`;
//! * the `mcs-check` runner, which runs every harness at a reduced
//!   deterministic scale (`verbose = false`), evaluates the paper-shape
//!   invariants against the typed fields, and diffs the [`Artifact`] rows
//!   against the golden CSVs.
//!
//! By convention `run` never asserts: it computes and returns. Shape
//! assertions live in the binaries (where a violation should abort the
//! run loudly) and in `mcs-check` (where it should become a structured
//! failing check).

pub mod device_catalog;
pub mod event_queueing;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod futurework;
pub mod geometry;
pub mod grid_backend;
pub mod serve_load;
pub mod table1;
pub mod table2;
pub mod table3;

/// One CSV artifact produced by a harness (name, header, rows) — the
/// in-memory form of `results/<name>.csv`.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Basename of the CSV under `results/` (no extension).
    pub name: &'static str,
    /// Column headers.
    pub columns: Vec<&'static str>,
    /// Data rows, stringified exactly as written to disk.
    pub rows: Vec<Vec<String>>,
}

impl Artifact {
    /// Index of a named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| *c == name)
    }

    /// Write this artifact under the `results/` directory via
    /// [`crate::write_csv`].
    pub fn write(&self) {
        crate::write_csv(self.name, &self.columns, &self.rows);
    }
}

/// `println!` gated on the harness's `verbose` flag.
macro_rules! vprintln {
    ($v:expr) => {
        if $v {
            println!();
        }
    };
    ($v:expr, $($t:tt)*) => {
        if $v {
            println!($($t)*);
        }
    };
}
pub(crate) use vprintln;
