//! Fig. 8: execution time for RSBench implementations — original
//! (variable poles per window) vs vectorized (fixed poles per window).
//!
//! The host columns are MEASURED: both multipole kernels really run here,
//! over identical physical pole data (the fixed layout pads windows with
//! zero-residue poles, so the checksums agree). The MIC columns are
//! MODELED by pricing the per-pole operation mix on the Phi: the
//! original's variable trip count keeps the Faddeeva evaluation scalar
//! (call-heavy — the MIC's weakness), the vectorized layout turns it into
//! lane work (the MIC's strength).

use mcs_device::catalog;
use mcs_device::{KernelCounts, MachineSpec};
use mcs_multipole::{rsbench_driver, MultipoleLibrary, MultipoleSpec};

use super::{vprintln, Artifact};
use crate::{fmt_secs, header_with_scale, scaled_by, time_it};

/// Typed result of the Fig. 8 harness.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Lookups in the measured run (scaled).
    pub n_lookups: usize,
    /// MEASURED original-kernel time on this host (s).
    pub t_orig: f64,
    /// MEASURED vectorized-kernel time on this host (s).
    pub t_vec: f64,
    /// |orig − vec| / orig checksum disagreement between the kernels.
    pub checksum_rel_err: f64,
    /// MODELED paper-scale vectorization speedup on the E5-2687W.
    pub cpu_modeled_speedup: f64,
    /// MODELED paper-scale vectorization speedup on the Phi 7120A.
    pub mic_modeled_speedup: f64,
    /// On-the-fly Doppler series `(T kelvin, σ_t at the first pole's
    /// peak)` — peaks must flatten as T rises.
    pub doppler: Vec<(f64, f64)>,
    /// The `fig8_rsbench` CSV.
    pub artifact: Artifact,
}

impl Fig8Result {
    /// Measured host vectorization speedup.
    pub fn measured_speedup(&self) -> f64 {
        self.t_orig / self.t_vec
    }
}

/// Run the Fig. 8 RSBench comparison at `scale`.
pub fn run(scale: f64, verbose: bool) -> Fig8Result {
    if verbose {
        header_with_scale(
            "Fig. 8",
            "RSBench: original vs vectorized multipole lookups",
            scale,
        );
    }
    let spec = MultipoleSpec::rsbench_like();
    let var_lib = MultipoleLibrary::build(&spec);
    let max_poles = var_lib
        .nuclides
        .iter()
        .map(|n| n.max_poles_per_window())
        .max()
        .unwrap();
    let fix_lib = MultipoleLibrary::build(&spec.clone().with_fixed_poles(max_poles));
    vprintln!(
        verbose,
        "\nlibrary: {} nuclides × {} windows; {} poles variable, {} fixed ({} per window)\n",
        spec.n_nuclides,
        spec.n_windows,
        var_lib.total_poles(),
        fix_lib.total_poles(),
        max_poles
    );

    let n_lookups = scaled_by(300_000, scale);
    let (sum_orig, t_orig) = time_it(|| rsbench_driver(&var_lib, n_lookups, 42, false));
    let (sum_vec, t_vec) = time_it(|| rsbench_driver(&fix_lib, n_lookups, 42, true));
    let checksum_rel_err = ((sum_orig - sum_vec) / sum_orig).abs();

    vprintln!(verbose, "MEASURED on this host ({n_lookups} lookups):");
    vprintln!(
        verbose,
        "  original (variable windows, scalar W): {}",
        fmt_secs(t_orig)
    );
    vprintln!(
        verbose,
        "  vectorized (fixed windows, batched W): {}",
        fmt_secs(t_vec)
    );
    vprintln!(verbose, "  speedup: {:.2}x", t_orig / t_vec);

    // MODELED: per-pole op mixes on each machine.
    let mean_poles_var = var_lib.total_poles() as f64 / (spec.n_nuclides * spec.n_windows) as f64;
    let poles_per_lookup_var = mean_poles_var;
    let poles_per_lookup_fix = max_poles as f64;
    // Original: every pole costs a complex exponential (exp+sin+cos via
    // libm) and scalar complex bookkeeping, behind a call.
    let per_pole_orig = KernelCounts {
        calls: 1.0,
        libm: 3.0,
        scalar: 80.0,
        ..Default::default()
    };
    // Vectorized: the W series becomes lane work; the hoisted exponential
    // leaves one scalar libm trio per *window*, amortized over its poles.
    let per_pole_vec = KernelCounts {
        vector_lanes: 100.0,
        scalar: 10.0,
        libm: 3.0 / poles_per_lookup_fix,
        ..Default::default()
    };
    let lookups = 1e8; // paper-scale lookup count
    let cpu = catalog::machine("host-e5-2687w");
    let mic = catalog::machine("knc-7120a");
    let t = |spec: &MachineSpec, c: &KernelCounts, poles: f64| {
        spec.kernel_time(&c.scale(lookups * poles))
    };
    vprintln!(verbose, "\nMODELED at paper scale (1e8 lookups), seconds:");
    vprintln!(
        verbose,
        "{:<14} {:>12} {:>12} {:>9}",
        "machine",
        "original",
        "vectorized",
        "speedup"
    );
    let mut rows = vec![vec![
        "host_measured".to_string(),
        format!("{t_orig:.4}"),
        format!("{t_vec:.4}"),
        format!("{:.3}", t_orig / t_vec),
    ]];
    let mut modeled_speedups = [0.0f64; 2];
    for (i, (label, m)) in [("CPU", &cpu), ("MIC", &mic)].iter().enumerate() {
        let a = t(m, &per_pole_orig, poles_per_lookup_var);
        let b = t(m, &per_pole_vec, poles_per_lookup_fix);
        vprintln!(
            verbose,
            "{:<14} {:>12.1} {:>12.1} {:>8.2}x",
            label,
            a,
            b,
            a / b
        );
        modeled_speedups[i] = a / b;
        rows.push(vec![
            format!("{label}_modeled"),
            format!("{a:.2}"),
            format!("{b:.2}"),
            format!("{:.3}", a / b),
        ]);
    }
    vprintln!(
        verbose,
        "\npaper shape: vectorization ≈ 2-3x; the MIC gains far more than the CPU"
    );

    // Bonus: the multipole method's motivation — on-the-fly temperature
    // dependence (§IV-B). One pole, re-broadened across temperatures.
    vprintln!(verbose, "\nDoppler broadening on the fly (no new tables):");
    let nuc = &var_lib.nuclides[0];
    let pole = nuc.poles[0];
    let e_peak = pole.position.re * pole.position.re;
    vprintln!(verbose, "{:>8} {:>16}", "T (K)", "sigma_t at peak");
    let mut doppler = Vec::new();
    for t_k in [293.6, 600.0, 1200.0, 2400.0] {
        let hot = nuc.at_temperature(t_k);
        let sig = mcs_multipole::lookup_original(&hot, e_peak).total;
        vprintln!(verbose, "{:>8.1} {:>16.1}", t_k, sig);
        doppler.push((t_k, sig));
    }
    vprintln!(
        verbose,
        "(peaks flatten as T rises — the ψ/χ broadening the paper cites)"
    );

    Fig8Result {
        n_lookups,
        t_orig,
        t_vec,
        checksum_rel_err,
        cpu_modeled_speedup: modeled_speedups[0],
        mic_modeled_speedup: modeled_speedups[1],
        doppler,
        artifact: Artifact {
            name: "fig8_rsbench",
            columns: vec!["row", "original_s", "vectorized_s", "speedup"],
            rows,
        },
    }
}
