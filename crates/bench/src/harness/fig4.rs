//! Fig. 4: TAU-style profile comparison between the host CPU execution
//! and the MIC in native mode (H.M. Large, full physics).
//!
//! The host column is MEASURED: a real instrumented transport run through
//! `mcs-prof`. The MIC column is MODELED from the same run's instrumented
//! counts. The features to reproduce: the top routine is the XS lookup on
//! both machines, the MIC beats the CPU on exactly those bottleneck
//! routines, and the total is ≈1.5–1.6× faster on the MIC.

use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_prof::{Profile, ThreadProfiler};

use super::{vprintln, Artifact};
use crate::{fmt_secs, header_with_scale, scaled_by};

/// Typed result of the Fig. 4 harness.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Histories in the instrumented run.
    pub histories: usize,
    /// MEASURED host profile (real instrumentation on this machine).
    pub host_profile: Profile,
    /// MODELED per-routine comparison `(routine, cpu_s, mic_s)`, in the
    /// native model's bottleneck-first order.
    pub modeled: Vec<(String, f64, f64)>,
    /// MODELED total time on the E5-2687W.
    pub total_cpu: f64,
    /// MODELED total time on the Phi 7120A.
    pub total_mic: f64,
    /// The `fig4_profile_compare` CSV.
    pub artifact: Artifact,
}

impl Fig4Result {
    /// Total MIC speedup over the CPU (paper: 96 min / 65 min = 1.48×).
    pub fn speedup(&self) -> f64 {
        self.total_cpu / self.total_mic
    }
}

/// Run the Fig. 4 instrumented comparison at `scale`.
pub fn run(scale: f64, verbose: bool) -> Fig4Result {
    if verbose {
        header_with_scale(
            "Fig. 4",
            "profile comparison: host CPU vs MIC native (H.M. Large)",
            scale,
        );
    }
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let n = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n, 0);
    let streams = batch_streams(problem.seed, 0, n);

    // MEASURED host profile (single-threaded instrumented run).
    let prof = ThreadProfiler::new();
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest {
            profiler: Some(&prof),
            ..BatchRequest::default()
        },
        &mut Threaded::ambient(),
    )
    .outcome;
    let host_profile = prof.finish();
    vprintln!(verbose, "\nMEASURED host profile ({} histories):\n", n);
    if verbose {
        println!("{}", host_profile.render("host (this machine)"));
    }

    // MODELED comparison: price the instrumented counts on both machines.
    let shape = shape_of(&problem);
    let host_model = NativeModel::new(
        catalog::machine("host-e5-2687w"),
        TransportKind::HistoryScalar,
    );
    let mic_model = NativeModel::new(catalog::machine("knc-7120a"), TransportKind::HistoryScalar);
    let host_prof = host_model.profile_breakdown(&shape, &out.tallies);
    let mic_prof = mic_model.profile_breakdown(&shape, &out.tallies);

    vprintln!(
        verbose,
        "MODELED per-routine comparison (E5-2687W vs Phi 7120A):\n"
    );
    vprintln!(
        verbose,
        "{:<28} {:>14} {:>14} {:>8}",
        "routine",
        "CPU",
        "MIC",
        "MIC/CPU"
    );
    let mut rows = Vec::new();
    let mut modeled = Vec::new();
    let mut tot_cpu = 0.0;
    let mut tot_mic = 0.0;
    for ((name, t_cpu), (_, t_mic)) in host_prof.iter().zip(mic_prof.iter()) {
        vprintln!(
            verbose,
            "{:<28} {:>14} {:>14} {:>8.2}",
            name,
            fmt_secs(*t_cpu),
            fmt_secs(*t_mic),
            t_mic / t_cpu
        );
        rows.push(vec![
            name.clone(),
            format!("{t_cpu:.6}"),
            format!("{t_mic:.6}"),
        ]);
        modeled.push((name.clone(), *t_cpu, *t_mic));
        tot_cpu += t_cpu;
        tot_mic += t_mic;
    }
    vprintln!(
        verbose,
        "{:<28} {:>14} {:>14} {:>8.2}",
        "TOTAL",
        fmt_secs(tot_cpu),
        fmt_secs(tot_mic),
        tot_mic / tot_cpu
    );
    vprintln!(
        verbose,
        "\nCPU/MIC total speedup: {:.2}x  (paper: 96 min / 65 min = 1.48x)",
        tot_cpu / tot_mic
    );
    rows.push(vec![
        "TOTAL".into(),
        format!("{tot_cpu:.6}"),
        format!("{tot_mic:.6}"),
    ]);

    Fig4Result {
        histories: n,
        host_profile,
        modeled,
        total_cpu: tot_cpu,
        total_mic: tot_mic,
        artifact: Artifact {
            name: "fig4_profile_compare",
            columns: vec!["routine", "cpu_s", "mic_s"],
            rows,
        },
    }
}
