//! Table II: average times and sizes (per iteration) for banking 10⁵
//! particles and offloading to the MIC.
//!
//! All rows are MODELED from the calibrated offload pipeline (there is no
//! PCIe-attached coprocessor to measure); the bank-size and banking-time
//! constants are themselves calibrated to this table, so the interesting
//! check is the *relative* structure: transfer ≫ compute ≫ banking, and
//! the H.M. Large rows scaling with the 320-nuclide per-particle state.
//! The energy-grid row also reports this reproduction's real grid size.

use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::workload::ProblemShape;
use mcs_device::{OffloadBreakdown, OffloadModel};

use super::{vprintln, Artifact};
use crate::{fmt_secs, header_with_scale};

/// Typed result of the Table II harness.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Modeled per-iteration breakdown for H.M. Small.
    pub small: OffloadBreakdown,
    /// Modeled per-iteration breakdown for H.M. Large.
    pub large: OffloadBreakdown,
    /// This reproduction's real grid bytes (Small, Large).
    pub repro_grid_bytes: (f64, f64),
    /// The `table2_offload_overhead` CSV.
    pub artifact: Artifact,
}

/// Run the Table II cost model. The offload pipeline is fully modeled at
/// the paper's 10⁵-particle bank, so `scale` only appears in the header.
pub fn run(scale: f64, verbose: bool) -> Table2Result {
    if verbose {
        header_with_scale(
            "Table II",
            "banking + offload costs per iteration (1e5 particles)",
            scale,
        );
    }
    let model = OffloadModel::between(
        &catalog::device("host-e5-2687w").expect("default host"),
        &catalog::device("knc-7120a").expect("knc entry"),
    );
    let n = 100_000;

    // Real grid sizes from this reproduction's synthetic libraries.
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let small = Problem::hm(HmModel::Small, &cfg);
    let large = Problem::hm(HmModel::Large, &cfg);
    let grid_bytes = |p: &Problem| (p.xs.index_bytes() + p.xs.data_bytes()) as f64;

    let mut rows = Vec::new();
    vprintln!(
        verbose,
        "\n{:<36} {:>16} {:>16}",
        "operation",
        "H.M. Small",
        "H.M. Large"
    );
    let shapes = [
        (
            ProblemShape {
                nuclides_per_material: vec![34, 1, 3],
                union_points: small.xs.search_points(),
                full_physics: false,
            },
            grid_bytes(&small),
            1.31e9,
        ),
        (
            ProblemShape {
                nuclides_per_material: vec![320, 1, 3],
                union_points: large.xs.search_points(),
                full_physics: false,
            },
            grid_bytes(&large),
            8.37e9,
        ),
    ];
    let b_small = model.breakdown(&shapes[0].0, n, shapes[0].2);
    let b_large = model.breakdown(&shapes[1].0, n, shapes[1].2);

    let mut row = |label: &str, s: String, l: String| {
        vprintln!(verbose, "{label:<36} {s:>16} {l:>16}");
        rows.push(vec![label.to_string(), s, l]);
    };
    row(
        "banking (host)",
        fmt_secs(b_small.banking_host_s),
        fmt_secs(b_large.banking_host_s),
    );
    row(
        "banking (MIC)",
        fmt_secs(b_small.banking_device_s),
        fmt_secs(b_large.banking_device_s),
    );
    row(
        "transfer time (PCIe)",
        fmt_secs(b_small.transfer_bank_s),
        fmt_secs(b_large.transfer_bank_s),
    );
    row(
        "bank size transferred",
        format!("{:.0} MB", b_small.bank_bytes / 1e6),
        format!("{:.2} GB", b_large.bank_bytes / 1e9),
    );
    row(
        "energy grid size (paper's data)",
        "1.31 GB".to_string(),
        "8.37 GB".to_string(),
    );
    row(
        "energy grid transfer (paper size)",
        fmt_secs(b_small.transfer_grid_s),
        fmt_secs(b_large.transfer_grid_s),
    );
    row(
        "energy grid size (this repro)",
        format!("{:.2} GB", shapes[0].1 / 1e9),
        format!("{:.2} GB", shapes[1].1 / 1e9),
    );
    row(
        "compute bank cross sections (MIC)",
        fmt_secs(b_small.compute_device_s),
        fmt_secs(b_large.compute_device_s),
    );
    row(
        "compute bank cross sections (host)",
        fmt_secs(b_small.compute_host_s),
        fmt_secs(b_large.compute_host_s),
    );

    vprintln!(
        verbose,
        "\npaper (H.M. Small / Large): banking host 4/4 ms, MIC 21/34 ms,"
    );
    vprintln!(
        verbose,
        "transfer 460/2,210 ms, bank 496 MB / 2.84 GB, grid 1.31/8.37 GB,"
    );
    vprintln!(verbose, "MIC compute 17/101 ms");

    Table2Result {
        small: b_small,
        large: b_large,
        repro_grid_bytes: (shapes[0].1, shapes[1].1),
        artifact: Artifact {
            name: "table2_offload_overhead",
            columns: vec!["operation", "hm_small", "hm_large"],
            rows,
        },
    }
}
