//! Table I: average times for the distance-sampling micro-benchmark.
//!
//! Paper configuration: `iters = 10⁴`, `N = 10⁷` (10¹¹ total samples);
//! this harness runs a scaled-down measured version on the host (CPU
//! column) and prices the full paper configuration on both machine models
//! (the MODELED table), so the shape — naive ≫ optimized, MIC worst on
//! naive, MIC best on optimized — can be checked at both scales.

use mcs_core::distance::{sample_distances_naive, sample_distances_opt1, sample_distances_opt2};
use mcs_device::catalog;
use mcs_device::workload::{
    distance_naive_per_element, distance_opt1_per_element, distance_opt2_per_element,
};
use mcs_device::MachineSpec;
use mcs_rng::StreamPartition;
use mcs_simd::AVec32;

use super::{vprintln, Artifact};
use crate::{fmt_secs, header_with_scale, scaled_by, time_it};

/// Typed result of the Table I harness.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Elements per iteration in the measured run (scaled).
    pub n: usize,
    /// Iterations in the measured run (scaled).
    pub iters: usize,
    /// MEASURED naive time on this host (s).
    pub t_naive: f64,
    /// MEASURED optimized-1 time on this host (s).
    pub t_opt1: f64,
    /// MEASURED optimized-2 time on this host (s).
    pub t_opt2: f64,
    /// MODELED paper-scale times on the E5-2687W `[naive, opt1, opt2]`.
    pub cpu_modeled: [f64; 3],
    /// MODELED paper-scale times on the Phi 7120A `[naive, opt1, opt2]`.
    pub mic_modeled: [f64; 3],
    /// The `table1_distance_sampling` CSV.
    pub artifact: Artifact,
}

impl Table1Result {
    /// Measured host speedup of optimized-2 over naive (paper: 1.9×
    /// on 32 CPU threads — here single-core, same shape).
    pub fn opt2_speedup(&self) -> f64 {
        self.t_naive / self.t_opt2
    }

    /// Modeled naive-kernel MIC/CPU slowdown (paper: 20×).
    pub fn naive_mic_over_cpu(&self) -> f64 {
        self.mic_modeled[0] / self.cpu_modeled[0]
    }

    /// Modeled optimized-2 CPU/MIC speedup (paper: 1.9×).
    pub fn opt2_cpu_over_mic(&self) -> f64 {
        self.cpu_modeled[2] / self.mic_modeled[2]
    }
}

/// Run the Table I micro-benchmark at `scale`.
pub fn run(scale: f64, verbose: bool) -> Table1Result {
    if verbose {
        header_with_scale(
            "Table I",
            "distance-sampling micro-benchmark (d = -ln(r)/Sigma)",
            scale,
        );
    }

    // ---- measured on this host (scaled) ------------------------------
    let n = scaled_by(1_000_000, scale);
    let iters = scaled_by(20, scale);
    let xs: AVec32 = AVec32::from_slice(
        &(0..n)
            .map(|i| 0.1 + 1.9 * ((i * 37 % n) as f32 / n as f32))
            .collect::<Vec<f32>>(),
    );
    vprintln!(
        verbose,
        "\nMEASURED on this host: N = {n}, iters = {iters}\n"
    );

    let mut out = vec![0.0f32; n];
    let (_, t_naive) = time_it(|| {
        for it in 0..iters {
            sample_distances_naive(xs.as_slice(), &mut out, 1 + it as u32);
        }
    });

    let mut r = vec![0.0f32; n];
    let mut part = StreamPartition::new(7, 8);
    let (_, t_opt1) = time_it(|| {
        for _ in 0..iters {
            sample_distances_opt1(xs.as_slice(), &mut r, &mut out, &mut part);
        }
    });

    let mut r2 = AVec32::zeros(n);
    let mut out2 = AVec32::zeros(n);
    let mut part2 = StreamPartition::new(7, 8);
    let (_, t_opt2) = time_it(|| {
        for _ in 0..iters {
            sample_distances_opt2(&xs, &mut r2, &mut out2, &mut part2);
        }
    });

    vprintln!(
        verbose,
        "{:<28} {:>14} {:>14} {:>14}",
        "implementation",
        "Naive",
        "Optimized-1",
        "Optimized-2"
    );
    vprintln!(
        verbose,
        "{:<28} {:>14} {:>14} {:>14}",
        "host (measured)",
        fmt_secs(t_naive),
        fmt_secs(t_opt1),
        fmt_secs(t_opt2)
    );
    vprintln!(
        verbose,
        "{:<28} {:>13.1}x {:>13.1}x {:>13.1}x",
        "speedup vs naive",
        1.0,
        t_naive / t_opt1,
        t_naive / t_opt2
    );

    // ---- modeled at paper scale --------------------------------------
    let elems = 1e7 * 1e4; // N × iters
    let cpu = catalog::machine("host-e5-2687w");
    let mic = catalog::machine("knc-7120a");
    let price = |spec: &MachineSpec, c: &mcs_device::KernelCounts| {
        spec.kernel_time_ext(&c.scale(elems), true)
    };
    let naive = distance_naive_per_element();
    let opt1 = distance_opt1_per_element();
    let opt2 = distance_opt2_per_element();

    vprintln!(
        verbose,
        "\nMODELED at paper scale (N = 1e7, iters = 1e4), seconds:\n"
    );
    vprintln!(
        verbose,
        "{:<28} {:>12} {:>12} {:>12}",
        "implementation",
        "Naive",
        "Optimized-1",
        "Optimized-2"
    );
    let cpu_row = [price(&cpu, &naive), price(&cpu, &opt1), price(&cpu, &opt2)];
    let mic_row = [price(&mic, &naive), price(&mic, &opt1), price(&mic, &opt2)];
    vprintln!(
        verbose,
        "{:<28} {:>12.1} {:>12.1} {:>12.1}",
        "CPU - 32 threads (modeled)",
        cpu_row[0],
        cpu_row[1],
        cpu_row[2]
    );
    vprintln!(
        verbose,
        "{:<28} {:>12.1} {:>12.1} {:>12.1}",
        "MIC - 244 threads (modeled)",
        mic_row[0],
        mic_row[1],
        mic_row[2]
    );
    vprintln!(
        verbose,
        "\npaper measured:              {:>12} {:>12} {:>12}",
        "412",
        "40.6",
        "36.6"
    );
    vprintln!(
        verbose,
        "paper measured (MIC):        {:>12} {:>12} {:>12}",
        "8,243",
        "21.0",
        "18.9"
    );
    vprintln!(verbose, "\nshape checks:");
    vprintln!(
        verbose,
        "  naive MIC/CPU   = {:>6.1}x  (paper 20.0x)",
        mic_row[0] / cpu_row[0]
    );
    vprintln!(
        verbose,
        "  opt2  CPU/MIC   = {:>6.1}x  (paper  1.9x)",
        cpu_row[2] / mic_row[2]
    );

    Table1Result {
        n,
        iters,
        t_naive,
        t_opt1,
        t_opt2,
        cpu_modeled: cpu_row,
        mic_modeled: mic_row,
        artifact: Artifact {
            name: "table1_distance_sampling",
            columns: vec!["row", "naive_s", "opt1_s", "opt2_s"],
            rows: vec![
                vec![
                    "host_measured".into(),
                    format!("{t_naive:.4}"),
                    format!("{t_opt1:.4}"),
                    format!("{t_opt2:.4}"),
                ],
                vec![
                    "cpu_modeled_paper_scale".into(),
                    format!("{:.1}", cpu_row[0]),
                    format!("{:.1}", cpu_row[1]),
                    format!("{:.1}", cpu_row[2]),
                ],
                vec![
                    "mic_modeled_paper_scale".into(),
                    format!("{:.1}", mic_row[0]),
                    format!("{:.1}", mic_row[1]),
                    format!("{:.1}", mic_row[2]),
                ],
            ],
        },
    }
}
