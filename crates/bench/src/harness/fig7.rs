//! Fig. 7: weak scaling of the H.M. Large simulation with N = 10⁶ per
//! node on the Stampede cluster model.
//!
//! Check: ≥94% efficiency at all scales up to 128 nodes, and (the
//! paper's footnoted claim) the curve stays flat out to 2¹⁰ nodes.

use mcs_cluster::{min_efficiency, weak_scaling, CommModel, NodeSpec, ScalingPoint};
use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// Typed result of the Fig. 7 harness.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Modeled Stampede CPU rank rate (n/s).
    pub r_cpu: f64,
    /// Modeled Stampede MIC rank rate (n/s).
    pub r_mic: f64,
    /// Weak-scaling points by ascending node count (1 → 1,024).
    pub points: Vec<ScalingPoint>,
    /// The `fig7_weak_scaling` CSV.
    pub artifact: Artifact,
}

impl Fig7Result {
    /// Smallest efficiency over the whole curve.
    pub fn min_efficiency(&self) -> f64 {
        min_efficiency(&self.points)
    }
}

/// Run the Fig. 7 weak-scaling study at `scale`.
pub fn run(scale: f64, verbose: bool) -> Fig7Result {
    if verbose {
        header_with_scale(
            "Fig. 7",
            "weak scaling, H.M. Large, N = 1e6 per node, Stampede model",
            scale,
        );
    }

    // Rank rates from a real measured run (same procedure as Fig. 6).
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let t = out.tallies.scaled_to(100_000);
    let r_cpu = NativeModel::new(
        catalog::machine("host-e5-2680"),
        TransportKind::HistoryScalar,
    )
    .calc_rate(&shape, &t);
    let r_mic = NativeModel::new(catalog::machine("knc-se10p"), TransportKind::HistoryScalar)
        .calc_rate(&shape, &t);
    vprintln!(
        verbose,
        "\nrank rates: CPU {:.0} n/s, MIC {:.0} n/s\n",
        r_cpu,
        r_mic
    );

    let comm = CommModel::fdr_infiniband();
    let node = NodeSpec::with_one_mic(r_cpu, r_mic);
    let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let pts = weak_scaling(&node, &counts, 1_000_000, &comm);

    vprintln!(
        verbose,
        "{:>8} {:>14} {:>16} {:>12}",
        "nodes",
        "batch time (s)",
        "rate (n/s)",
        "efficiency"
    );
    let mut rows = Vec::new();
    for p in &pts {
        vprintln!(
            verbose,
            "{:>8} {:>14.3} {:>16.0} {:>11.1}%",
            p.nodes,
            p.batch_time,
            p.rate,
            p.efficiency * 100.0
        );
        rows.push(vec![
            p.nodes.to_string(),
            format!("{:.4}", p.batch_time),
            format!("{:.0}", p.rate),
            format!("{:.4}", p.efficiency),
        ]);
    }

    Fig7Result {
        r_cpu,
        r_mic,
        points: pts,
        artifact: Artifact {
            name: "fig7_weak_scaling",
            columns: vec!["nodes", "batch_time_s", "rate", "efficiency"],
            rows,
        },
    }
}
