//! Fig. 2: cross-section lookup rates for the banking and history methods
//! vs bank size (H.M. Large).
//!
//! Columns:
//! * `history/CPU` — MEASURED: the scalar `calculate_xs` loop over the
//!   bank on this host.
//! * `banked/host` — MEASURED: the SoA + vectorized-inner-loop kernel on
//!   this host (the structural win of banking, hardware-independent).
//! * `banked/MIC` — MODELED: the same kernel priced on the Xeon Phi 7120A
//!   machine model.
//!
//! The paper's headline: banked/MIC ≈ 10× history/CPU at large banks.

use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::shape_of;
use mcs_device::workload::{xs_lookup_banked, xs_lookup_scalar};
use mcs_xs::MacroXs;

use super::{vprintln, Artifact};
use crate::{fmt_secs, header_with_scale, log_energies, scaled_by, time_it};

/// One bank-size row of Fig. 2.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Row {
    /// Bank size (scaled).
    pub bank: usize,
    /// MEASURED scalar history-lookup rate on this host (lookups/s).
    pub history_host: f64,
    /// MODELED scalar history-lookup rate on the paper's E5-2687W.
    pub history_e5: f64,
    /// MEASURED banked SoA/SIMD lookup rate on this host.
    pub banked_host: f64,
    /// MODELED banked lookup rate on the Xeon Phi 7120A.
    pub banked_mic: f64,
    /// |scalar − banked| / scalar checksum disagreement.
    pub checksum_rel_err: f64,
}

impl Fig2Row {
    /// The figure's headline ratio at this bank size: banked/MIC over
    /// history/E5 (both modeled, paper ≈ 10×).
    pub fn mic_over_e5(&self) -> f64 {
        self.banked_mic / self.history_e5
    }
}

/// Typed result of the Fig. 2 harness.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Rows by ascending bank size.
    pub rows: Vec<Fig2Row>,
    /// The `fig2_lookup_rates` CSV.
    pub artifact: Artifact,
}

impl Fig2Result {
    /// The largest-bank row (the paper quotes its asymptotic ratios).
    pub fn largest(&self) -> &Fig2Row {
        self.rows.last().expect("fig2 has rows")
    }
}

/// Run the Fig. 2 lookup-rate sweep at `scale`.
pub fn run(scale: f64, verbose: bool) -> Fig2Result {
    if verbose {
        header_with_scale(
            "Fig. 2",
            "XS lookup rates: banking vs history methods (H.M. Large)",
            scale,
        );
    }
    // S(α,β)/URR removed, as in the paper's micro-benchmark (§III-A1).
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let (problem, t_build) = time_it(|| Problem::hm(HmModel::Large, &cfg));
    vprintln!(
        verbose,
        "H.M. Large: {} nuclides, union grid {} points (built in {})\n",
        problem.xs.lib().len(),
        problem.xs.search_points(),
        fmt_secs(t_build)
    );
    let fuel = &problem.materials[0];
    let shape = shape_of(&problem);
    let mic = catalog::machine("knc-7120a");
    let e5 = catalog::machine("host-e5-2687w");

    vprintln!(
        verbose,
        "{:>10} {:>15} {:>15} {:>15} {:>15} {:>9}",
        "bank size",
        "hist/host meas",
        "hist/E5 model",
        "bank/host meas",
        "bank/MIC model",
        "MIC/E5"
    );
    let mut out_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &[1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000] {
        let n = scaled_by(n, scale);
        let energies = log_energies(n, 0xF162);
        let mut out = vec![MacroXs::default(); n];

        // Interleaved median-of-N timings: the host measurements feed a
        // *ratio* invariant, so the two kernels must sample the same
        // epochs of machine state (frequency, contention on a shared
        // core); the median then discards scheduler-noise outliers
        // without favoring whichever kernel has the wider spread (a
        // minimum would).
        let mut ts_scalar = Vec::with_capacity(5);
        let mut ts_banked = Vec::with_capacity(5);
        let mut checksum_scalar = 0.0;
        let mut checksum_banked = 0.0;
        for _ in 0..5 {
            let (_, t) = time_it(|| problem.xs.batch_macro_xs_seq(fuel, &energies, &mut out));
            ts_scalar.push(t);
            checksum_scalar = out.iter().map(|x| x.total).sum();
            let (_, t) = time_it(|| problem.xs.batch_macro_xs_simd(fuel, &energies, &mut out));
            ts_banked.push(t);
            checksum_banked = out.iter().map(|x| x.total).sum();
        }
        let median = |ts: &mut Vec<f64>| {
            ts.sort_by(f64::total_cmp);
            ts[ts.len() / 2]
        };
        let t_scalar = median(&mut ts_scalar);
        let t_banked = median(&mut ts_banked);
        let checksum_rel_err = ((checksum_scalar - checksum_banked) / checksum_scalar).abs();

        // Modeled times: the banked lookups on the MIC and the scalar
        // history lookups on the paper's dual-socket host.
        let t_mic = mic.kernel_time(&xs_lookup_banked(&shape, 0).scale(n as f64));
        let t_e5 = e5.kernel_time(&xs_lookup_scalar(&shape, 0).scale(n as f64));

        let row = Fig2Row {
            bank: n,
            history_host: n as f64 / t_scalar,
            history_e5: n as f64 / t_e5,
            banked_host: n as f64 / t_banked,
            banked_mic: n as f64 / t_mic,
            checksum_rel_err,
        };
        vprintln!(
            verbose,
            "{:>10} {:>15.0} {:>15.0} {:>15.0} {:>15.0} {:>8.1}x",
            row.bank,
            row.history_host,
            row.history_e5,
            row.banked_host,
            row.banked_mic,
            row.mic_over_e5()
        );
        csv_rows.push(vec![
            row.bank.to_string(),
            format!("{:.1}", row.history_host),
            format!("{:.1}", row.history_e5),
            format!("{:.1}", row.banked_host),
            format!("{:.1}", row.banked_mic),
        ]);
        out_rows.push(row);
    }
    vprintln!(
        verbose,
        "\npaper shape: banked/MIC ≈ 10× history/CPU (MIC/E5 column) at large banks"
    );
    Fig2Result {
        rows: out_rows,
        artifact: Artifact {
            name: "fig2_lookup_rates",
            columns: vec![
                "bank_size",
                "history_host_measured_per_s",
                "history_e5_modeled_per_s",
                "banked_host_measured_per_s",
                "banked_mic_modeled_per_s",
            ],
            rows: csv_rows,
        },
    }
}
