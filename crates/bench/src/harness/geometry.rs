//! Geometry ablation: nested vs flattened lattice lookup over the model
//! catalog — model × traversal treatment × bank size.
//!
//! The traversal seam ([`mcs_geom::GeomTraversal`]) offers two
//! treatments of the same CSG tree: `nested` walks the pin → assembly →
//! core universe hierarchy on every query (the classic recursive
//! search); `flattened` pre-inlines universe indirections into per-level
//! cell lists and skips wrapper universes entirely. The treatments are
//! **bitwise-equivalent by contract** — same cells, bit-identical
//! boundary distances — so the only things that may move are throughput
//! and the traversal-work counters:
//!
//! * **rate** — MEASURED particles/s through one history batch;
//! * **`geom.find_steps`** — cells visited per `find`; the flattened
//!   treatment exists to shrink this (wrapper universes become
//!   pass-throughs, universe fills are pre-inlined);
//! * **`geom.surface_tests`** — half-space evaluations, the unit of
//!   actual floating-point geometry work.
//!
//! The bitwise contract is re-verified across the sweep: each
//! (model, bank) cell must produce one identical per-batch k bit
//! pattern across both treatments (`GM.treatment_bitwise`).

use mcs_core::catalog;
use mcs_core::engine::{transport_batch, BatchRequest, ModelSpec, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::Problem;
use mcs_geom::TraversalKind;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by, time_it};

/// Catalog entries the sweep covers: the unit-scale entry plus the two
/// new scenario shapes. (`small`/`large` share their geometry with the
/// historic figures; re-timing them here buys nothing.)
pub const MODELS: [&str; 3] = ["test", "smr", "shield"];

/// One model × treatment × bank-size sample.
#[derive(Debug, Clone)]
pub struct GeometryRow {
    /// Catalog model name.
    pub model: &'static str,
    /// Traversal treatment.
    pub treatment: TraversalKind,
    /// Bank size (scaled).
    pub bank: usize,
    /// MEASURED history-batch throughput (particles/s).
    pub particles_per_s: f64,
    /// `geom.finds` over the batch (deterministic).
    pub finds: u64,
    /// `geom.find_steps`: cells visited across all finds (deterministic).
    pub find_steps: u64,
    /// `geom.surface_tests`: half-space evaluations (deterministic).
    pub surface_tests: u64,
    /// `geom.boundary_calls` over the batch (deterministic).
    pub boundary_calls: u64,
    /// Bit pattern of the batch's track-length k (determinism anchor).
    pub k_bits: u64,
}

impl GeometryRow {
    /// Cells visited per transported particle — the paper-shape metric.
    pub fn find_steps_per_particle(&self) -> f64 {
        self.find_steps as f64 / self.bank as f64
    }
}

/// Typed result of the geometry harness.
#[derive(Debug, Clone)]
pub struct GeometryResult {
    /// Rows in (model, bank, treatment) order.
    pub rows: Vec<GeometryRow>,
    /// `geom.*` counters of the flattened run of the last model at the
    /// largest bank, as exported by `GeomTraversal::export_counters`.
    pub counters: Vec<(String, u64)>,
    /// The `BENCH_geometry` CSV.
    pub artifact: Artifact,
}

impl GeometryResult {
    /// True iff every (model, bank) cell produced identical k bits
    /// across both traversal treatments.
    pub fn treatment_bitwise(&self) -> bool {
        let mut by_cell: Vec<(&str, usize, u64)> = Vec::new();
        for r in &self.rows {
            match by_cell
                .iter()
                .find(|(m, b, _)| *m == r.model && *b == r.bank)
            {
                Some(&(_, _, bits)) => {
                    if bits != r.k_bits {
                        return false;
                    }
                }
                None => by_cell.push((r.model, r.bank, r.k_bits)),
            }
        }
        true
    }

    /// True iff every configuration reported a positive, finite rate.
    pub fn rates_positive(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.particles_per_s > 0.0 && r.particles_per_s.is_finite())
    }

    /// Summed `find_steps`, flattened over nested, for one model — the
    /// structural claim is that this is `< 1` everywhere (the flattened
    /// treatment never visits *more* cells).
    pub fn flatten_step_ratio(&self, model: &str) -> f64 {
        let steps = |t: TraversalKind| -> u64 {
            self.rows
                .iter()
                .filter(|r| r.model == model && r.treatment == t)
                .map(|r| r.find_steps)
                .sum()
        };
        steps(TraversalKind::Flattened) as f64 / steps(TraversalKind::Nested).max(1) as f64
    }

    /// The per-model k bit patterns at the largest bank (model, bits) —
    /// the eigenvalue anchors mcs-check bands against.
    pub fn k_by_model(&self) -> Vec<(&'static str, f64)> {
        MODELS
            .iter()
            .map(|&m| {
                let r = self
                    .rows
                    .iter()
                    .filter(|r| r.model == m)
                    .max_by_key(|r| r.bank)
                    .expect("model present in sweep");
                (m, f64::from_bits(r.k_bits))
            })
            .collect()
    }
}

fn sample(problem: &Problem, model: &'static str, bank: usize) -> GeometryRow {
    let sources = problem.sample_initial_source(bank, 0);
    let streams = batch_streams(problem.seed, 0, bank);
    let req = BatchRequest::default();
    problem.traversal.reset_counters();
    let (out, secs) =
        time_it(|| transport_batch(problem, &sources, &streams, &req, &mut Threaded::ambient()));
    let mut c = mcs_prof::Counters::new();
    problem.traversal.export_counters(&mut c);
    GeometryRow {
        model,
        treatment: problem.traversal.kind(),
        bank,
        particles_per_s: bank as f64 / secs.max(1e-12),
        finds: c.get("geom.finds"),
        find_steps: c.get("geom.find_steps"),
        surface_tests: c.get("geom.surface_tests"),
        boundary_calls: c.get("geom.boundary_calls"),
        k_bits: out.outcome.tallies.k_track_estimate().to_bits(),
    }
}

/// Run the model × treatment × bank-size sweep at `scale`.
pub fn run(scale: f64, verbose: bool) -> GeometryResult {
    if verbose {
        header_with_scale(
            "BENCH geometry",
            "Model-catalog traversal ablation: nested vs flattened lattice lookup",
            scale,
        );
    }
    let banks = [
        scaled_by(2_000, scale).max(400),
        scaled_by(10_000, scale).max(800),
    ];

    vprintln!(
        verbose,
        "{:>8} {:>10} {:>8} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "model",
        "treatment",
        "bank",
        "particles/s",
        "find_steps",
        "surface_tests",
        "steps/part",
        "k"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for &model in MODELS.iter() {
        for &bank in &banks {
            for treatment in TraversalKind::ALL {
                let problem = catalog::build(&ModelSpec::named(model), treatment)
                    .expect("catalog model builds");
                let row = sample(&problem, model, bank);
                if treatment == TraversalKind::Flattened && bank == banks[banks.len() - 1] {
                    let mut c = mcs_prof::Counters::new();
                    problem.traversal.export_counters(&mut c);
                    counters = c.iter().map(|(k, v)| (k.to_string(), v)).collect();
                }
                vprintln!(
                    verbose,
                    "{:>8} {:>10} {:>8} {:>12.0} {:>12} {:>14} {:>12.2} {:>10.6}",
                    row.model,
                    row.treatment.name(),
                    row.bank,
                    row.particles_per_s,
                    row.find_steps,
                    row.surface_tests,
                    row.find_steps_per_particle(),
                    f64::from_bits(row.k_bits)
                );
                csv_rows.push(vec![
                    row.model.to_string(),
                    row.treatment.name().to_string(),
                    row.bank.to_string(),
                    format!("{:.1}", row.particles_per_s),
                    row.finds.to_string(),
                    row.find_steps.to_string(),
                    row.surface_tests.to_string(),
                    row.boundary_calls.to_string(),
                    format!("{:.4}", row.find_steps_per_particle()),
                    format!("{:.9e}", f64::from_bits(row.k_bits)),
                ]);
                rows.push(row);
            }
        }
    }

    let result = GeometryResult {
        rows,
        counters,
        artifact: Artifact {
            name: "BENCH_geometry",
            columns: vec![
                "model",
                "treatment",
                "bank_size",
                "particles_measured_per_s",
                "finds",
                "find_steps",
                "surface_tests",
                "boundary_calls",
                "find_steps_per_particle",
                "k_track",
            ],
            rows: csv_rows,
        },
    };
    if verbose {
        println!(
            "\nk bit-identical across treatments: {}",
            if result.treatment_bitwise() {
                "yes"
            } else {
                "NO"
            }
        );
        for &m in MODELS.iter() {
            println!(
                "{m}: flattened/nested find_steps ratio {:.3}",
                result.flatten_step_ratio(m)
            );
        }
    }
    result
}
