//! Fig. 3: time comparison between banking particles on the CPU and
//! offloading to the MIC, normalized to host generation time, vs the
//! number of particles (H.M. Small).
//!
//! One "iteration" is one banked-lookup round: bank all n particles, ship
//! the bank, compute their fuel-material cross sections. The figure plots
//! each operation's time as a ratio of the *generation* time (all
//! histories of the same n particles, green = 1.0). The paper's claims to
//! check are the *trends*: the transfer and MIC-compute ratios fall as n
//! grows (fixed marshal/launch costs amortize), the host-compute ratio
//! rises toward its asymptote, and the MIC-compute curve drops under the
//! host-compute curve above ~10⁴ particles.
//!
//! Generation time and the material mix are derived from a real measured
//! transport run; per-operation times are modeled.

use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::OffloadModel;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// One particle-count row of Fig. 3 (ratios to generation time).
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Particle count n.
    pub particles: usize,
    /// Banking time / generation time.
    pub bank_over_gen: f64,
    /// PCIe bank transfer / generation time.
    pub transfer_over_gen: f64,
    /// MIC bank-lookup compute / generation time.
    pub mic_xs_over_gen: f64,
    /// Host bank-lookup compute / generation time.
    pub host_xs_over_gen: f64,
}

/// Typed result of the Fig. 3 harness.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Measured flight segments per history on H.M. Small.
    pub segments_per_history: f64,
    /// Rows by ascending particle count.
    pub rows: Vec<Fig3Row>,
    /// Smallest n where MIC compute undercuts host compute, if any.
    pub crossover: Option<usize>,
    /// The `fig3_offload_asymptotics` CSV.
    pub artifact: Artifact,
}

/// Run the Fig. 3 offload-asymptotics study at `scale` (the scale sets
/// the measured probe batch; the swept particle counts are the paper's).
pub fn run(scale: f64, verbose: bool) -> Fig3Result {
    if verbose {
        header_with_scale(
            "Fig. 3",
            "offload cost ratios vs particle count (H.M. Small)",
            scale,
        );
    }
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);

    // Measure the real per-particle transport structure.
    let n_probe = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let shape = shape_of(&problem);
    let segs_pp = out.tallies.segments as f64 / n_probe as f64;
    vprintln!(
        verbose,
        "measured: {:.1} flight segments per history ({} histories)\n",
        segs_pp,
        n_probe
    );

    let host_dev = catalog::device("host-e5-2687w").expect("default host");
    let host = NativeModel::new(host_dev.machine, TransportKind::HistoryScalar);
    let offload =
        OffloadModel::between(&host_dev, &catalog::device("knc-7120a").expect("knc entry"));
    let grid_bytes = (problem.xs.index_bytes() + problem.xs.data_bytes()) as f64;

    vprintln!(
        verbose,
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "particles",
        "bank/gen",
        "xfer/gen",
        "micXS/gen",
        "hostXS/gen"
    );
    let mut csv_rows = Vec::new();
    let mut rows: Vec<Fig3Row> = Vec::new();
    for &n in &[100usize, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
        // Scale the measured tallies to n particles for the generation time.
        let t = out.tallies.scaled_to(n as u64);
        let gen_time = host.batch_time(&shape, &t);

        let b = offload.breakdown(&shape, n, grid_bytes);
        let row = Fig3Row {
            particles: n,
            bank_over_gen: b.banking_host_s / gen_time,
            transfer_over_gen: b.transfer_bank_s / gen_time,
            mic_xs_over_gen: b.compute_device_s / gen_time,
            host_xs_over_gen: b.compute_host_s / gen_time,
        };
        vprintln!(
            verbose,
            "{:>10} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            n,
            row.bank_over_gen,
            row.transfer_over_gen,
            row.mic_xs_over_gen,
            row.host_xs_over_gen
        );
        csv_rows.push(vec![
            n.to_string(),
            format!("{:.6}", row.bank_over_gen),
            format!("{:.6}", row.transfer_over_gen),
            format!("{:.6}", row.mic_xs_over_gen),
            format!("{:.6}", row.host_xs_over_gen),
        ]);
        rows.push(row);
    }
    let crossover = rows
        .iter()
        .find(|r| r.mic_xs_over_gen < r.host_xs_over_gen)
        .map(|r| r.particles);
    Fig3Result {
        segments_per_history: segs_pp,
        rows,
        crossover,
        artifact: Artifact {
            name: "fig3_offload_asymptotics",
            columns: vec![
                "particles",
                "bank_over_gen",
                "transfer_over_gen",
                "mic_xs_over_gen",
                "host_xs_over_gen",
            ],
            rows: csv_rows,
        },
    }
}
