//! Fig. 1: total cross-section data for the U-238 isotope.
//!
//! Regenerates the figure's data series from the synthetic SLBW library:
//! σ_t(E) over 10⁻¹¹–20 MeV, showing the 1/v thermal rise, the resolved
//! resonance forest in the eV–keV range, and the smooth high-energy tail.

use mcs_xs::nuclide::{Nuclide, NuclideSpec};

use super::{vprintln, Artifact};
use crate::header_with_scale;

/// Typed result of the Fig. 1 harness.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Points on the U-238 energy grid.
    pub n_points: usize,
    /// Resonances in the synthetic ladder.
    pub n_resonances: usize,
    /// σ_t at 10⁻¹¹ MeV (the cold end of the 1/v rise).
    pub sigma_cold: f64,
    /// σ_t at 1 MeV (the smooth fast range).
    pub sigma_fast: f64,
    /// Tallest resonance peak σ_t.
    pub peak: f64,
    /// Peak-to-smooth contrast (the resonance-forest hallmark).
    pub peak_to_smooth: f64,
    /// Labeled probe samples `(label, energy MeV, σ_t barns)`.
    pub samples: Vec<(&'static str, f64, f64)>,
    /// The `fig1_u238_total_xs` CSV series.
    pub artifact: Artifact,
}

/// Regenerate the Fig. 1 data series. The workload is a fixed synthetic
/// library build, so `scale` only appears in the header.
pub fn run(scale: f64, verbose: bool) -> Fig1Result {
    if verbose {
        header_with_scale(
            "Fig. 1",
            "U-238 total cross section vs energy (synthetic SLBW)",
            scale,
        );
    }
    let u238 = Nuclide::synthesize(&NuclideSpec::heavy("U238", 236.01, false, 92_238));

    vprintln!(
        verbose,
        "grid points: {}   resonances: {}",
        u238.n_points(),
        u238.resonances.len()
    );

    // CSV of the full pointwise series.
    let rows: Vec<Vec<String>> = u238
        .energy
        .iter()
        .zip(&u238.total)
        .map(|(&e, &t)| vec![format!("{e:.6e}"), format!("{t:.6e}")])
        .collect();
    let artifact = Artifact {
        name: "fig1_u238_total_xs",
        columns: vec!["energy_mev", "sigma_total_barns"],
        rows,
    };

    // Console summary: the figure's qualitative features.
    let at = |e: f64| u238.micro_at(e).total;
    vprintln!(verbose, "\n{:<24} {:>14}", "energy", "sigma_t (b)");
    let mut samples = Vec::new();
    for &(label, e) in &[
        ("1e-11 MeV (cold)", 1e-11),
        ("0.0253e-6 MeV (thermal)", 2.53e-8),
        ("1e-6 MeV (1 eV)", 1e-6),
        ("1e-3 MeV (1 keV)", 1e-3),
        ("1 MeV (fast)", 1.0),
        ("20 MeV (top)", 20.0),
    ] {
        let sigma = at(e);
        vprintln!(verbose, "{label:<24} {sigma:>14.3}");
        samples.push((label, e, sigma));
    }

    // Resonance peak-to-valley contrast, the hallmark of Fig. 1.
    let peak = u238
        .resonances
        .iter()
        .map(|r| at(r.e0))
        .fold(0.0f64, f64::max);
    let smooth = at(1.0);
    vprintln!(
        verbose,
        "\ntallest resonance peak: {peak:.1} b (vs {smooth:.1} b smooth at 1 MeV)"
    );
    vprintln!(verbose, "peak/smooth contrast:   {:.0}x", peak / smooth);

    Fig1Result {
        n_points: u238.n_points(),
        n_resonances: u238.resonances.len(),
        sigma_cold: at(1e-11),
        sigma_fast: smooth,
        peak,
        peak_to_smooth: peak / smooth,
        samples,
        artifact,
    }
}
