//! Table III: average calculation rates in symmetric mode, original
//! (even split) vs load balanced (Eq. 3), for CPU / MIC / CPU+1MIC /
//! CPU+2MICs on one JLSE node (H.M. Large, 10⁵ particles).
//!
//! Rank rates come from the native models priced on a real measured
//! transport run; the symmetric-mode arithmetic is then exact.

use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::SymmetricModel;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// One hardware-combination row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Hardware label.
    pub hardware: &'static str,
    /// Even-split (original) aggregate rate, n/s.
    pub original: f64,
    /// Eq.-3 balanced rate, n/s (`None` for single-device rows).
    pub balanced: Option<f64>,
    /// Ideal (sum-of-rates) rate, n/s.
    pub ideal: f64,
    /// Degraded-mode rate after the last device rank dies and its quota
    /// is rebalanced across the survivors (`None` for single-device
    /// rows, where a death ends the job).
    pub degraded: Option<f64>,
    /// Sum of surviving ranks' rates — the ceiling `degraded` is judged
    /// against (`None` when `degraded` is).
    pub survivor_ideal: Option<f64>,
}

/// Typed result of the Table III harness.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Modeled CPU rank rate, n/s.
    pub r_cpu: f64,
    /// Modeled MIC rank rate, n/s.
    pub r_mic: f64,
    /// α = CPU rate / MIC rate.
    pub alpha: f64,
    /// Rows in the table's hardware order.
    pub rows: Vec<Table3Row>,
    /// The paper's headline: CPU+2MIC balanced over CPU-only.
    pub headline: f64,
    /// The `table3_symmetric_balance` CSV.
    pub artifact: Artifact,
}

/// Run the Table III balancing study at `scale`.
pub fn run(scale: f64, verbose: bool) -> Table3Result {
    if verbose {
        header_with_scale(
            "Table III",
            "symmetric-mode rates: original vs load balanced",
            scale,
        );
    }
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);

    // Measure per-particle structure with a real run, then scale counts
    // to the paper's 1e5-particle batch.
    let n_probe = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let t = out.tallies.scaled_to(100_000);

    let host = NativeModel::new(
        catalog::machine("host-e5-2687w"),
        TransportKind::HistoryScalar,
    );
    let mic = NativeModel::new(catalog::machine("knc-7120a"), TransportKind::HistoryScalar);
    let r_cpu = host.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);
    let alpha = r_cpu / r_mic;
    vprintln!(
        verbose,
        "\nmodeled rank rates: CPU {:.0} n/s, MIC {:.0} n/s, alpha = {:.2}",
        r_cpu,
        r_mic,
        alpha
    );
    vprintln!(
        verbose,
        "(paper: CPU 4,050, MIC 6,641, alpha = 0.61-0.62)\n"
    );

    let n_total = 100_000u64;
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    vprintln!(
        verbose,
        "{:<14} {:>14} {:>16} {:>14} {:>14}",
        "hardware",
        "original",
        "load balanced",
        "ideal",
        "degraded"
    );
    let mut show = |label: &'static str, ranks: &[(&str, f64)], balanced_applies: bool| {
        let m = SymmetricModel::new(ranks);
        let orig = m.original_rate(n_total);
        let balanced = balanced_applies.then(|| m.balanced_rate(n_total));
        // Degraded mode: the last device rank dies mid-run, its quota is
        // redistributed proportionally across the survivors (what the
        // executed runtime's `redistribute_dead` does), and the job
        // finishes at the survivors' balanced rate.
        let (degraded, survivor_ideal) = if balanced_applies {
            let rates: Vec<f64> = ranks.iter().map(|&(_, r)| r).collect();
            let mut alive = vec![true; rates.len()];
            *alive.last_mut().unwrap() = false;
            let d = mcs_core::balance::degraded_rate(n_total, &rates, &alive);
            let ceiling: f64 = rates[..rates.len() - 1].iter().sum();
            (Some(d), Some(ceiling))
        } else {
            (None, None)
        };
        let bal_str = balanced
            .map(|b| format!("{b:.0}"))
            .unwrap_or_else(|| "N/A".to_string());
        let deg_str = degraded
            .map(|d| format!("{d:.0}"))
            .unwrap_or_else(|| "N/A".to_string());
        vprintln!(
            verbose,
            "{:<14} {:>14.0} {:>16} {:>14.0} {:>14}",
            label,
            orig,
            bal_str,
            m.ideal(),
            deg_str
        );
        csv_rows.push(vec![
            label.to_string(),
            format!("{orig:.0}"),
            bal_str,
            format!("{:.0}", m.ideal()),
            deg_str.clone(),
        ]);
        rows.push(Table3Row {
            hardware: label,
            original: orig,
            balanced,
            ideal: m.ideal(),
            degraded,
            survivor_ideal,
        });
    };
    show("CPU only", &[("cpu", r_cpu)], false);
    show("MIC only", &[("mic", r_mic)], false);
    show("CPU + MIC", &[("cpu", r_cpu), ("mic", r_mic)], true);
    show(
        "CPU + 2 MICs",
        &[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)],
        true,
    );
    vprintln!(verbose, "\npaper:          original      load balanced");
    vprintln!(verbose, "CPU only           4,050                N/A");
    vprintln!(verbose, "MIC only           6,641                N/A");
    vprintln!(verbose, "CPU + MIC          8,988             10,068");
    vprintln!(verbose, "CPU + 2 MICs      11,860             17,098");

    let m2 = SymmetricModel::new(&[("cpu", r_cpu), ("mic0", r_mic), ("mic1", r_mic)]);
    let headline = m2.balanced_rate(n_total) / r_cpu;
    vprintln!(
        verbose,
        "\nCPU+2MIC balanced vs CPU-only: {headline:.2}x (paper: 17,098/4,050 = 4.2x)"
    );

    Table3Result {
        r_cpu,
        r_mic,
        alpha,
        rows,
        headline,
        artifact: Artifact {
            name: "table3_symmetric_balance",
            columns: vec![
                "hardware",
                "original_rate",
                "balanced_rate",
                "ideal_rate",
                "degraded_rate",
            ],
            rows: csv_rows,
        },
    }
}
