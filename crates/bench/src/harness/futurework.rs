//! §V — the paper's future-work directions, implemented and quantified:
//!
//! 1. **Runtime-adaptive α** ("α can be determined at runtime... using the
//!    measured calculation rates"): batch-by-batch rebalancing vs the
//!    static Eq. 3 split, in the knee regime where static balancing fails.
//! 2. **Knights Landing projection** ("out-of-order execution... possible
//!    automatic ~3x single thread speedup", no PCIe hop): native-mode
//!    rates on the projected socketed successor.
//! 3. **Energy expenditure** ("analyzing energy expenditures... excellent
//!    performance per watt"): neutrons-per-joule for the Table III
//!    hardware combinations.

use mcs_cluster::adaptive::{simulate_adaptive, static_alpha_wall};
use mcs_cluster::Rank;
use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};
use mcs_device::power::batch_energy;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// One energy-analysis row.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Hardware configuration label.
    pub label: String,
    /// Wall time for the 10⁵-particle batch, seconds.
    pub wall_s: f64,
    /// Energy for the batch, joules.
    pub energy_j: f64,
    /// Figure of merit: neutrons per joule.
    pub neutrons_per_joule: f64,
}

/// Typed result of the §V future-work harness.
#[derive(Debug, Clone)]
pub struct FutureworkResult {
    /// Modeled CPU rank rate, n/s.
    pub r_cpu: f64,
    /// Modeled KNC (Phi 7120A) rank rate, n/s.
    pub r_mic: f64,
    /// Projected KNL native history rate, n/s.
    pub r_knl: f64,
    /// Projected KNL rate with the banked (event) kernels, n/s.
    pub r_knl_banked: f64,
    /// Static Eq.-3 batch wall time in the knee regime, seconds.
    pub static_wall: f64,
    /// Adaptive batch wall times, one per batch.
    pub adaptive_walls: Vec<f64>,
    /// Converged adaptive gain over the static split.
    pub adaptive_gain: f64,
    /// Energy rows for the Table III hardware combinations.
    pub energy: Vec<EnergyRow>,
    /// The `futurework_adaptive` and `futurework_energy` CSVs.
    pub artifacts: Vec<Artifact>,
}

/// Run the §V projections at `scale`.
pub fn run(scale: f64, verbose: bool) -> FutureworkResult {
    if verbose {
        header_with_scale(
            "§V",
            "future-work projections: adaptive alpha, KNL, energy",
            scale,
        );
    }

    // Measured per-particle structure at production batch size.
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let t = out.tallies.scaled_to(100_000);

    let cpu = NativeModel::new(
        catalog::machine("host-e5-2687w"),
        TransportKind::HistoryScalar,
    );
    let mic = NativeModel::new(catalog::machine("knc-7120a"), TransportKind::HistoryScalar);
    let r_cpu = cpu.calc_rate(&shape, &t);
    let r_mic = mic.calc_rate(&shape, &t);

    // --- 1. runtime-adaptive α ----------------------------------------
    vprintln!(
        verbose,
        "\n[1] runtime-adaptive load balancing (knee regime, 9,800 particles/node):"
    );
    let ranks = vec![Rank::cpu("cpu", r_cpu), Rank::mic("mic", r_mic)];
    let n_small = 9_800;
    let static_wall = static_alpha_wall(&ranks, n_small);
    let walls = simulate_adaptive(&ranks, n_small, 6);
    vprintln!(
        verbose,
        "  static Eq.-3 split batch time: {:.4} s",
        static_wall
    );
    for (i, w) in walls.iter().enumerate() {
        vprintln!(verbose, "  adaptive batch {i}: {w:.4} s");
    }
    let gain = static_wall / walls.last().unwrap();
    vprintln!(verbose, "  converged adaptive vs static: {gain:.3}x");
    let adaptive_artifact = Artifact {
        name: "futurework_adaptive",
        columns: vec!["batch", "adaptive_wall_s", "static_wall_s"],
        rows: walls
            .iter()
            .enumerate()
            .map(|(i, w)| {
                vec![
                    i.to_string(),
                    format!("{w:.6}"),
                    format!("{static_wall:.6}"),
                ]
            })
            .collect::<Vec<_>>(),
    };

    // --- 2. Knights Landing projection --------------------------------
    vprintln!(
        verbose,
        "\n[2] Knights Landing projection (socketed, OOO, MCDRAM):"
    );
    let knl = NativeModel::new(
        catalog::machine("knl-projection"),
        TransportKind::HistoryScalar,
    );
    let knl_banked = NativeModel::new(
        catalog::machine("knl-projection"),
        TransportKind::EventBanked,
    );
    let r_knl = knl.calc_rate(&shape, &t);
    let r_knl_banked = knl_banked.calc_rate(&shape, &t);
    vprintln!(verbose, "  KNC native rate:            {r_mic:>10.0} n/s");
    vprintln!(
        verbose,
        "  KNL native rate (proj.):    {r_knl:>10.0} n/s  ({:.1}x KNC)",
        r_knl / r_mic
    );
    vprintln!(
        verbose,
        "  KNL + banked kernels:       {r_knl_banked:>10.0} n/s  ({:.1}x KNC)",
        r_knl_banked / r_mic
    );
    vprintln!(
        verbose,
        "  (and no PCIe hop: the Table II transfer column disappears)"
    );

    // --- 3. energy analysis --------------------------------------------
    vprintln!(
        verbose,
        "\n[3] energy expenditure (per 1e5-particle batch):"
    );
    let host_p = catalog::device("host-e5-2687w")
        .expect("default host")
        .power_spec();
    let mic_p = catalog::device("knc-7120a")
        .expect("knc entry")
        .power_spec();
    let n = 100_000u64;
    let combos = [
        ("CPU only", vec![(host_p, n as f64 / r_cpu)]),
        ("MIC only", vec![(mic_p, n as f64 / r_mic)]),
        (
            "CPU + 2 MIC (balanced)",
            vec![
                (host_p, n as f64 / (r_cpu + 2.0 * r_mic)),
                (mic_p, n as f64 / (r_cpu + 2.0 * r_mic)),
                (mic_p, n as f64 / (r_cpu + 2.0 * r_mic)),
            ],
        ),
    ];
    vprintln!(
        verbose,
        "  {:<24} {:>10} {:>12} {:>12}",
        "configuration",
        "wall (s)",
        "energy (kJ)",
        "n/joule"
    );
    let mut energy = Vec::new();
    let mut energy_rows = Vec::new();
    for (label, units) in &combos {
        let rep = batch_energy(label, units, n);
        vprintln!(
            verbose,
            "  {:<24} {:>10.2} {:>12.2} {:>12.1}",
            rep.label,
            rep.wall_s,
            rep.energy_j / 1e3,
            rep.neutrons_per_joule()
        );
        energy_rows.push(vec![
            rep.label.clone(),
            format!("{:.3}", rep.wall_s),
            format!("{:.1}", rep.energy_j),
            format!("{:.2}", rep.neutrons_per_joule()),
        ]);
        energy.push(EnergyRow {
            label: rep.label.clone(),
            wall_s: rep.wall_s,
            energy_j: rep.energy_j,
            neutrons_per_joule: rep.neutrons_per_joule(),
        });
    }
    let energy_artifact = Artifact {
        name: "futurework_energy",
        columns: vec!["configuration", "wall_s", "energy_j", "neutrons_per_joule"],
        rows: energy_rows,
    };

    FutureworkResult {
        r_cpu,
        r_mic,
        r_knl,
        r_knl_banked,
        static_wall,
        adaptive_walls: walls,
        adaptive_gain: gain,
        energy,
        artifacts: vec![adaptive_artifact, energy_artifact],
    }
}
