//! Grid-backend ablation: lookup rate and index-structure memory for the
//! three energy-grid search strategies behind [`mcs_xs::XsContext`] —
//! per-nuclide binary search (the paper's baseline), the unionized grid
//! (Leppänen, the paper's shared optimization), and the hash-binned grid
//! (the XSBench-style memory-frugal alternative).
//!
//! Two claims are measured per backend × bank size:
//!
//! * **rate** — SIMD-banked macroscopic lookups per second over a Watt-ish
//!   log-uniform energy bank (checksummed so the golden diff pins the
//!   arithmetic, not just the timing);
//! * **index bytes** — the memory the backend's search structures add on
//!   top of the pointwise data (the unionized grid trades ~`n_union ×
//!   n_nuclides × 4 B` for its O(1) second stage; the hash grid caps that
//!   at `n_bins × n_nuclides × 4 B`).
//!
//! The determinism contract is re-verified end to end: a short
//! history-mode eigenvalue per backend must produce bit-identical k per
//! batch, since every backend resolves the same grid intervals.

use mcs_core::engine::{self, RunPlan, Threaded};
use mcs_core::problem::Problem;
use mcs_xs::{GridBackendKind, LibrarySpec, MacroXs, Material, XsContext};

use super::{vprintln, Artifact};
use crate::{header_with_scale, log_energies, scaled_by, time_it};

/// One backend × bank-size sample.
#[derive(Debug, Clone)]
pub struct GridBackendRow {
    /// Grid-search backend.
    pub backend: GridBackendKind,
    /// Bank size (scaled).
    pub bank: usize,
    /// MEASURED SIMD-banked lookup rate on this host (lookups/s).
    pub lookups_per_s: f64,
    /// Bytes of index structures this backend adds over the pointwise data.
    pub index_bytes: usize,
    /// Σ of the total cross sections over the bank (golden anchor).
    pub checksum: f64,
}

/// Typed result of the grid-backend harness.
#[derive(Debug, Clone)]
pub struct GridBackendResult {
    /// Rows grouped by backend, ascending bank size within each.
    pub rows: Vec<GridBackendRow>,
    /// Per-backend bit patterns of the per-batch track-length k from a
    /// short history-mode eigenvalue (the cross-backend determinism
    /// contract: all entries must be identical across backends).
    pub batch_k_bits: Vec<(GridBackendKind, Vec<u64>)>,
    /// The `BENCH_grid_backend` CSV.
    pub artifact: Artifact,
}

impl GridBackendResult {
    /// Index bytes reported for a backend (0 if absent).
    pub fn index_bytes_of(&self, kind: GridBackendKind) -> usize {
        self.rows
            .iter()
            .find(|r| r.backend == kind)
            .map(|r| r.index_bytes)
            .unwrap_or(0)
    }

    /// Hash-binned index size as a fraction of the unionized index size.
    pub fn hash_index_fraction(&self) -> f64 {
        let union = self.index_bytes_of(GridBackendKind::Unionized) as f64;
        self.index_bytes_of(GridBackendKind::HashBinned) as f64 / union.max(1.0)
    }

    /// True iff every backend produced bit-identical per-batch k.
    pub fn k_bits_identical(&self) -> bool {
        let (_, reference) = &self.batch_k_bits[0];
        self.batch_k_bits.iter().all(|(_, bits)| bits == reference)
    }
}

/// Run the backend × bank-size sweep at `scale`.
pub fn run(scale: f64, verbose: bool) -> GridBackendResult {
    if verbose {
        header_with_scale(
            "BENCH grid_backend",
            "XS lookup rate and index memory per energy-grid backend (H.M. Small)",
            scale,
        );
    }
    // S(α,β)/URR removed, as in the paper's lookup micro-benchmark.
    // Contexts come from the process-wide cache: repeated harness runs in
    // one process (mcs-check, criterion warmup) reuse the built indices.
    let contexts: Vec<XsContext> = GridBackendKind::ALL
        .iter()
        .map(|&k| mcs_xs::cache::context_for_spec(&LibrarySpec::hm_small(), k))
        .collect();
    let fuel = Material::hm_fuel(contexts[0].lib());

    vprintln!(
        verbose,
        "{:>10} {:>10} {:>16} {:>14} {:>14}",
        "backend",
        "bank",
        "lookups/s meas",
        "index bytes",
        "checksum"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for ctx in &contexts {
        for &n in &[1_000usize, 10_000, 100_000] {
            let n = scaled_by(n, scale);
            let energies = log_energies(n, 0x6B1D);
            let mut out = vec![MacroXs::default(); n];
            let (_, secs) = time_it(|| ctx.batch_macro_xs_simd(&fuel, &energies, &mut out));
            let checksum: f64 = out.iter().map(|x| x.total).sum();
            let row = GridBackendRow {
                backend: ctx.backend_kind(),
                bank: n,
                lookups_per_s: n as f64 / secs.max(1e-12),
                index_bytes: ctx.index_bytes(),
                checksum,
            };
            vprintln!(
                verbose,
                "{:>10} {:>10} {:>16.0} {:>14} {:>14.6e}",
                row.backend.name(),
                row.bank,
                row.lookups_per_s,
                row.index_bytes,
                row.checksum
            );
            csv_rows.push(vec![
                row.backend.name().to_string(),
                row.bank.to_string(),
                format!("{:.1}", row.lookups_per_s),
                row.index_bytes.to_string(),
                format!("{:.9e}", row.checksum),
            ]);
            rows.push(row);
        }
    }

    // Determinism contract across backends: short history-mode
    // eigenvalue, per-batch k bit patterns.
    let plan = RunPlan {
        particles: scaled_by(1_000, scale).max(100),
        inactive: 1,
        active: 2,
        entropy_mesh: (4, 4, 4),
        ..RunPlan::default()
    };
    let batch_k_bits: Vec<(GridBackendKind, Vec<u64>)> = GridBackendKind::ALL
        .iter()
        .map(|&kind| {
            let problem = Problem::test_small_with_backend(kind);
            let res = engine::run_with_problem(&problem, &plan, &mut Threaded::ambient())
                .into_eigenvalue()
                .result;
            let bits = res.batches.iter().map(|b| b.k_track.to_bits()).collect();
            (kind, bits)
        })
        .collect();
    if verbose {
        let agree = {
            let (_, reference) = &batch_k_bits[0];
            batch_k_bits.iter().all(|(_, b)| b == reference)
        };
        println!(
            "\nper-batch k bit-identical across backends: {}",
            if agree { "yes" } else { "NO" }
        );
    }

    GridBackendResult {
        rows,
        batch_k_bits,
        artifact: Artifact {
            name: "BENCH_grid_backend",
            columns: vec![
                "backend",
                "bank_size",
                "lookups_measured_per_s",
                "index_bytes",
                "checksum",
            ],
            rows: csv_rows,
        },
    }
}
