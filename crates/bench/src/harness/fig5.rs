//! Fig. 5: calculation rate (neutrons/second) vs particles per batch for
//! inactive and active batches, host CPU vs MIC native (H.M. Large).
//!
//! Real eigenvalue batches run on this host (physics + per-batch tallies
//! are MEASURED); each batch's instrumented counts are then priced on the
//! E5-2687W and Phi 7120A models to produce the figure's two curves.
//! Checks: MIC ≈ 1.5–2× the CPU above 10⁴ particles, consistent
//! α_i/α_a ≈ 0.61–0.62, and collapsing rates at small batch sizes.

use mcs_core::engine::{self, transport_batch, BatchRequest, RunPlan, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// One (particle count, batch kind) row of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Particles in the batch (scaled).
    pub particles: usize,
    /// `"inactive"` or `"active"`.
    pub batch_kind: &'static str,
    /// MODELED CPU calculation rate from the batch's measured counts.
    pub cpu_rate: f64,
    /// MODELED MIC calculation rate from the batch's measured counts.
    pub mic_rate: f64,
    /// α = CPU rate / MIC rate.
    pub alpha: f64,
}

/// Typed result of the Fig. 5 harness.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Rows in sweep order (ascending n, inactive then active).
    pub rows: Vec<Fig5Row>,
    /// Mean α over the rows with n ≥ the large-batch threshold.
    pub mean_alpha: f64,
    /// k from the real measured eigenvalue run on this host.
    pub k_mean: f64,
    /// Standard error on k.
    pub k_std: f64,
    /// Measured mean active-batch rate on this host (n/s).
    pub measured_rate: f64,
    /// The `fig5_calc_rates` CSV.
    pub artifact: Artifact,
}

impl Fig5Result {
    /// Modeled CPU rate at the smallest and largest swept batch size
    /// (inactive rows) — the figure's left-side rate collapse.
    pub fn cpu_rate_extremes(&self) -> (f64, f64) {
        let inactive: Vec<&Fig5Row> = self
            .rows
            .iter()
            .filter(|r| r.batch_kind == "inactive")
            .collect();
        (
            inactive.first().map(|r| r.cpu_rate).unwrap_or(0.0),
            inactive.last().map(|r| r.cpu_rate).unwrap_or(0.0),
        )
    }
}

/// Run the Fig. 5 rate sweep plus a real eigenvalue run at `scale`.
pub fn run(scale: f64, verbose: bool) -> Fig5Result {
    if verbose {
        header_with_scale(
            "Fig. 5",
            "calculation rate vs batch size, CPU vs MIC (H.M. Large)",
            scale,
        );
    }
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let host = NativeModel::new(
        catalog::machine("host-e5-2687w"),
        TransportKind::HistoryScalar,
    );
    let mic = NativeModel::new(catalog::machine("knc-7120a"), TransportKind::HistoryScalar);

    vprintln!(
        verbose,
        "\n{:>10} {:>8} {:>14} {:>14} {:>8}",
        "particles",
        "batch",
        "CPU (n/s)",
        "MIC (n/s)",
        "alpha"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut alphas = Vec::new();
    // α is quoted at the figure's plateau; with the sweep scaled down the
    // plateau threshold scales with it.
    let alpha_threshold = scaled_by(10_000, scale);
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let n = scaled_by(n, scale);
        // One inactive and one active batch, really transported.
        for (label, batch_index) in [("inactive", 0u64), ("active", 1u64)] {
            let sources = problem.sample_initial_source(n, batch_index);
            let streams = batch_streams(problem.seed, batch_index, n);
            let out = transport_batch(
                &problem,
                &sources,
                &streams,
                &BatchRequest::default(),
                &mut Threaded::ambient(),
            )
            .outcome;
            let r_cpu = host.calc_rate(&shape, &out.tallies);
            let r_mic = mic.calc_rate(&shape, &out.tallies);
            let alpha = r_cpu / r_mic;
            if n >= alpha_threshold {
                alphas.push(alpha);
            }
            vprintln!(
                verbose,
                "{:>10} {:>8} {:>14.0} {:>14.0} {:>8.3}",
                n,
                label,
                r_cpu,
                r_mic,
                alpha
            );
            csv_rows.push(vec![
                n.to_string(),
                label.to_string(),
                format!("{r_cpu:.0}"),
                format!("{r_mic:.0}"),
                format!("{alpha:.4}"),
            ]);
            rows.push(Fig5Row {
                particles: n,
                batch_kind: label,
                cpu_rate: r_cpu,
                mic_rate: r_mic,
                alpha,
            });
        }
    }

    let mean_alpha = alphas.iter().sum::<f64>() / alphas.len().max(1) as f64;
    vprintln!(
        verbose,
        "\nalpha at >=1e4 particles: {:.3} (paper: 0.61 ± 0.02 inactive, 0.62 ± 0.01 active)",
        mean_alpha
    );

    // Also demonstrate a real (measured, this-host) eigenvalue run with
    // converging source, to show rates are stable across batches.
    let n = scaled_by(2_000, scale);
    let plan = RunPlan {
        particles: n,
        inactive: 2,
        active: 3,
        entropy_mesh: (8, 8, 4),
        ..RunPlan::default()
    };
    let result = engine::run_with_problem(&problem, &plan, &mut Threaded::ambient())
        .into_eigenvalue()
        .result;
    vprintln!(
        verbose,
        "\nreal eigenvalue run on this host: k = {:.5} ± {:.5}, mean rate {:.0} n/s (measured)",
        result.k_mean,
        result.k_std,
        result.mean_rate(true)
    );

    Fig5Result {
        rows,
        mean_alpha,
        k_mean: result.k_mean,
        k_std: result.k_std,
        measured_rate: result.mean_rate(true),
        artifact: Artifact {
            name: "fig5_calc_rates",
            columns: vec!["particles", "batch_kind", "cpu_rate", "mic_rate", "alpha"],
            rows: csv_rows,
        },
    }
}
