//! Fig. 6: strong scaling of the H.M. Large simulation with N = 10⁷ on
//! the Stampede cluster (CPU-only, CPU+1MIC, CPU+2MIC curves).
//!
//! Rank rates are the Stampede-clocked machine models priced on a real
//! measured transport run; the cluster model then applies the paper's
//! static α balancing, the per-rank rate knee (Fig. 5's left side), and
//! the per-batch synchronization cost. Checks: ≈95% efficiency at 128
//! nodes, the 1-MIC tail at 1,024 nodes, no tail for CPU-only, and the
//! 2-MIC curve stopping at 384 nodes (Stampede's partition size).

use mcs_cluster::{strong_scaling, CommModel, NodeSpec, ScalingPoint};
use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_device::catalog;
use mcs_device::native::{shape_of, NativeModel, TransportKind};

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by};

/// One scaling curve of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Curve {
    /// Curve label ("CPU only", "CPU + 1 MIC", "CPU + 2 MIC").
    pub label: &'static str,
    /// Scaling points by ascending node count.
    pub points: Vec<ScalingPoint>,
}

impl Fig6Curve {
    /// The point at exactly `nodes`, if the curve has one.
    pub fn at(&self, nodes: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.nodes == nodes)
    }
}

/// Typed result of the Fig. 6 harness.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Modeled Stampede CPU rank rate (n/s).
    pub r_cpu: f64,
    /// Modeled Stampede MIC rank rate (n/s).
    pub r_mic: f64,
    /// The three curves in figure order.
    pub curves: Vec<Fig6Curve>,
    /// The `fig6_strong_scaling` CSV.
    pub artifact: Artifact,
}

impl Fig6Result {
    /// Look up a curve by label.
    pub fn curve(&self, label: &str) -> &Fig6Curve {
        self.curves
            .iter()
            .find(|c| c.label == label)
            .expect("fig6 curve")
    }
}

fn stampede_rates(scale: f64) -> (f64, f64) {
    let problem = Problem::hm(HmModel::Large, &ProblemConfig::default());
    let shape = shape_of(&problem);
    let n_probe = scaled_by(2_000, scale);
    let sources = problem.sample_initial_source(n_probe, 0);
    let streams = batch_streams(problem.seed, 0, n_probe);
    let out = transport_batch(
        &problem,
        &sources,
        &streams,
        &BatchRequest::default(),
        &mut Threaded::ambient(),
    )
    .outcome;
    let t = out.tallies.scaled_to(100_000);
    let cpu = NativeModel::new(
        catalog::machine("host-e5-2680"),
        TransportKind::HistoryScalar,
    );
    let mic = NativeModel::new(catalog::machine("knc-se10p"), TransportKind::HistoryScalar);
    (cpu.calc_rate(&shape, &t), mic.calc_rate(&shape, &t))
}

/// Run the Fig. 6 strong-scaling study at `scale` (the scale sets the
/// measured probe batch; node counts and N = 10⁷ are the paper's).
pub fn run(scale: f64, verbose: bool) -> Fig6Result {
    if verbose {
        header_with_scale(
            "Fig. 6",
            "strong scaling, H.M. Large, N = 1e7, Stampede model",
            scale,
        );
    }
    let (r_cpu, r_mic) = stampede_rates(scale);
    vprintln!(
        verbose,
        "\nStampede rank rates (modeled from measured run): CPU {:.0} n/s, MIC {:.0} n/s\n",
        r_cpu,
        r_mic
    );

    let comm = CommModel::fdr_infiniband();
    let n_total = 10_000_000u64;
    let curves_spec: [(&'static str, NodeSpec, Vec<usize>); 3] = [
        (
            "CPU only",
            NodeSpec::cpu_only(r_cpu),
            vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "CPU + 1 MIC",
            NodeSpec::with_one_mic(r_cpu, r_mic),
            vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "CPU + 2 MIC",
            NodeSpec::with_two_mics(r_cpu, r_mic),
            vec![4, 8, 16, 32, 64, 128, 384], // 384 nodes have 2 MICs
        ),
    ];

    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for (label, node, counts) in &curves_spec {
        vprintln!(verbose, "--- {label} ---");
        vprintln!(
            verbose,
            "{:>8} {:>14} {:>16} {:>12}",
            "nodes",
            "batch time (s)",
            "rate (n/s)",
            "efficiency"
        );
        let pts = strong_scaling(node, counts, n_total, &comm);
        for p in &pts {
            vprintln!(
                verbose,
                "{:>8} {:>14.3} {:>16.0} {:>11.1}%",
                p.nodes,
                p.batch_time,
                p.rate,
                p.efficiency * 100.0
            );
            rows.push(vec![
                label.to_string(),
                p.nodes.to_string(),
                format!("{:.4}", p.batch_time),
                format!("{:.0}", p.rate),
                format!("{:.4}", p.efficiency),
            ]);
        }
        vprintln!(verbose);
        curves.push(Fig6Curve { label, points: pts });
    }

    Fig6Result {
        r_cpu,
        r_mic,
        curves,
        artifact: Artifact {
            name: "fig6_strong_scaling",
            columns: vec!["curve", "nodes", "batch_time_s", "rate", "efficiency"],
            rows,
        },
    }
}
