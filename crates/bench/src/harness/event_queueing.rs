//! Event-queueing ablation: what does Stage-2 particle queueing buy the
//! banked event pipeline, per energy-grid backend?
//!
//! The event engine's Stage 2 partitions the live bank into material
//! buckets (`material`), optionally sub-sorted into log-energy bins with
//! fuel-first ordering (`material+energy`), or not at all (`off`). The
//! queueing knob is a pure lookup-*order* knob — every mode is bitwise
//! equivalent by the per-particle tally/RNG contract — so the only
//! things that may move are throughput and the memory-locality counters:
//!
//! * **rate** — MEASURED particles/s through one event-banking batch;
//! * **`xs.bin_scan_steps`** — hash-grid segment-scan work; energy-binned
//!   queues let the binned gather driver warm-start its per-nuclide
//!   cursors, so steps/lookup must *drop* vs `material` on the hash
//!   backend (the tentpole claim, `EQ.hash_scan_locality`);
//! * **`xs.gather_span_bytes` / `xs.gather_span_pairs`** — how far apart
//!   consecutive gather rows land in the backend's index space, priced in
//!   bytes (sorted queues shrink the mean span).
//!
//! The bitwise contract is re-verified across the whole sweep: every
//! (backend, bank) cell must produce one identical per-batch k bit
//! pattern over all three modes — and across backends too, since the
//! grid backends resolve identical intervals.

use mcs_core::engine::{transport_batch, Algorithm, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::Problem;
use mcs_core::{QueueingConfig, QueueingMode};
use mcs_xs::GridBackendKind;

use super::{vprintln, Artifact};
use crate::{header_with_scale, scaled_by, time_it};

/// One backend × queueing-mode × bank-size sample.
#[derive(Debug, Clone)]
pub struct EventQueueingRow {
    /// Grid-search backend.
    pub backend: GridBackendKind,
    /// Stage-2 queueing mode.
    pub mode: QueueingMode,
    /// Bank size (scaled).
    pub bank: usize,
    /// MEASURED event-pipeline throughput (particles/s).
    pub particles_per_s: f64,
    /// Grid lookups performed (deterministic).
    pub lookups: u64,
    /// Hash-grid segment scan steps (deterministic; 0 off-hash).
    pub bin_scan_steps: u64,
    /// Priced distance between consecutive gather rows (bytes).
    pub gather_span_bytes: u64,
    /// Consecutive same-call lookup pairs observed by the span tracker.
    pub gather_span_pairs: u64,
    /// Bit pattern of the batch's track-length k (determinism anchor).
    pub k_bits: u64,
}

/// Typed result of the event-queueing harness.
#[derive(Debug, Clone)]
pub struct EventQueueingResult {
    /// Rows in (backend, bank, mode) order.
    pub rows: Vec<EventQueueingRow>,
    /// `xs.*` counters of the hash-backend `material+energy` run at the
    /// largest bank (the configuration the tentpole optimizes), as
    /// exported by `XsContext::export_counters`.
    pub counters: Vec<(String, u64)>,
    /// The `BENCH_event_queueing` CSV.
    pub artifact: Artifact,
}

impl EventQueueingResult {
    fn rows_of(&self, backend: GridBackendKind, mode: QueueingMode) -> Vec<&EventQueueingRow> {
        self.rows
            .iter()
            .filter(|r| r.backend == backend && r.mode == mode)
            .collect()
    }

    /// True iff every (backend, bank) cell produced identical k bits
    /// across all queueing modes, and all backends agree with each other.
    pub fn k_bits_identical(&self) -> bool {
        let mut by_bank: Vec<(usize, u64)> = Vec::new();
        for r in &self.rows {
            match by_bank.iter().find(|(b, _)| *b == r.bank) {
                Some(&(_, bits)) => {
                    if bits != r.k_bits {
                        return false;
                    }
                }
                None => by_bank.push((r.bank, r.k_bits)),
            }
        }
        true
    }

    /// Hash-backend scan steps per lookup: `material+energy` over
    /// `material`, summed over banks. The tentpole claim is that this is
    /// `< 1` — binned queues make the warm-start cursors pay off.
    pub fn hash_scan_ratio(&self) -> f64 {
        let steps_per_lookup = |mode| {
            let rows = self.rows_of(GridBackendKind::HashBinned, mode);
            let steps: u64 = rows.iter().map(|r| r.bin_scan_steps).sum();
            let lookups: u64 = rows.iter().map(|r| r.lookups).sum();
            steps as f64 / (lookups as f64).max(1.0)
        };
        steps_per_lookup(QueueingMode::MaterialEnergy) / steps_per_lookup(QueueingMode::Material)
    }

    /// True iff every configuration reported a positive, finite rate.
    pub fn rates_positive(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.particles_per_s > 0.0 && r.particles_per_s.is_finite())
    }
}

/// The queueing config a sweep-mode label denotes. `material+energy`
/// runs the full subsystem: fine log-E bins plus fuel-first ordering.
fn config_for(mode: QueueingMode) -> QueueingConfig {
    QueueingConfig {
        mode,
        fuel_split: mode == QueueingMode::MaterialEnergy,
        ..QueueingConfig::default()
    }
}

fn sample(problem: &Problem, mode: QueueingMode, bank: usize) -> EventQueueingRow {
    let sources = problem.sample_initial_source(bank, 0);
    let streams = batch_streams(problem.seed, 0, bank);
    let req = BatchRequest {
        algorithm: Algorithm::EventBanking,
        queueing: config_for(mode),
        ..BatchRequest::default()
    };
    problem.xs.reset_counters();
    let (out, secs) =
        time_it(|| transport_batch(problem, &sources, &streams, &req, &mut Threaded::ambient()));
    EventQueueingRow {
        backend: problem.xs.backend_kind(),
        mode,
        bank,
        particles_per_s: bank as f64 / secs.max(1e-12),
        lookups: problem.xs.lookups(),
        bin_scan_steps: problem.xs.bin_scan_steps(),
        gather_span_bytes: problem.xs.gather_span_bytes(),
        gather_span_pairs: problem.xs.gather_span_pairs(),
        k_bits: out.outcome.tallies.k_track.to_bits(),
    }
}

/// Run the backend × mode × bank-size sweep at `scale`.
pub fn run(scale: f64, verbose: bool) -> EventQueueingResult {
    if verbose {
        header_with_scale(
            "BENCH event_queueing",
            "Stage-2 particle queueing ablation for the event pipeline",
            scale,
        );
    }
    let banks = [
        scaled_by(2_000, scale).max(400),
        scaled_by(10_000, scale).max(800),
    ];

    vprintln!(
        verbose,
        "{:>10} {:>16} {:>8} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "backend",
        "mode",
        "bank",
        "particles/s",
        "lookups",
        "scan",
        "span bytes",
        "pairs"
    );
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for &kind in GridBackendKind::ALL.iter() {
        // One problem per backend: the context cache hands back shared
        // index data with fresh counters, and `sample` resets them
        // between runs so each row's counts stand alone.
        let problem = Problem::test_small_with_backend(kind);
        for &bank in &banks {
            for mode in QueueingMode::ALL {
                let row = sample(&problem, mode, bank);
                if kind == GridBackendKind::HashBinned
                    && mode == QueueingMode::MaterialEnergy
                    && bank == banks[banks.len() - 1]
                {
                    let mut c = mcs_prof::Counters::new();
                    problem.xs.export_counters(&mut c);
                    counters = c.iter().map(|(k, v)| (k.to_string(), v)).collect();
                }
                vprintln!(
                    verbose,
                    "{:>10} {:>16} {:>8} {:>12.0} {:>10} {:>10} {:>12} {:>10}",
                    row.backend.name(),
                    row.mode.name(),
                    row.bank,
                    row.particles_per_s,
                    row.lookups,
                    row.bin_scan_steps,
                    row.gather_span_bytes,
                    row.gather_span_pairs
                );
                csv_rows.push(vec![
                    row.backend.name().to_string(),
                    row.mode.name().to_string(),
                    row.bank.to_string(),
                    format!("{:.1}", row.particles_per_s),
                    row.lookups.to_string(),
                    row.bin_scan_steps.to_string(),
                    row.gather_span_bytes.to_string(),
                    row.gather_span_pairs.to_string(),
                    format!("{:.9e}", f64::from_bits(row.k_bits)),
                ]);
                rows.push(row);
            }
        }
    }

    let result = EventQueueingResult {
        rows,
        counters,
        artifact: Artifact {
            name: "BENCH_event_queueing",
            columns: vec![
                "backend",
                "mode",
                "bank_size",
                "particles_measured_per_s",
                "lookups",
                "bin_scan_steps",
                "gather_span_bytes",
                "gather_span_pairs",
                "k_track",
            ],
            rows: csv_rows,
        },
    };
    if verbose {
        println!(
            "\nk bit-identical across modes and backends: {}",
            if result.k_bits_identical() {
                "yes"
            } else {
                "NO"
            }
        );
        println!(
            "hash scan steps/lookup, material+energy over material: {:.3}",
            result.hash_scan_ratio()
        );
    }
    result
}
