//! Ablation: the full event-based (banking) transport loop vs the
//! history-based loop on identical workloads — the central trade-off of
//! the paper.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_core::event::run_event_transport;
use mcs_core::history::{batch_streams, run_histories};
use mcs_core::problem::Problem;

const N: usize = 400;

fn bench(c: &mut Criterion) {
    let problem = Problem::test_small();
    let sources = problem.sample_initial_source(N, 0);
    let streams = batch_streams(problem.seed, 0, N);

    let mut g = c.benchmark_group("transport_algorithm");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("history_based", |b| {
        b.iter(|| {
            run_histories(&problem, &sources, &streams)
                .tallies
                .collisions
        })
    });
    g.bench_function("event_based_banking", |b| {
        b.iter(|| {
            run_event_transport(&problem, &sources, &streams)
                .0
                .tallies
                .collisions
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
