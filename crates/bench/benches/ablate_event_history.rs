//! Ablation: the full event-based (banking) transport loop vs the
//! history-based loop on identical workloads — the central trade-off of
//! the paper.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_core::engine::{transport_batch, Algorithm, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::Problem;

const N: usize = 400;

fn bench(c: &mut Criterion) {
    let problem = Problem::test_small();
    let sources = problem.sample_initial_source(N, 0);
    let streams = batch_streams(problem.seed, 0, N);

    let mut g = c.benchmark_group("transport_algorithm");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("history_based", |b| {
        let mut policy = Threaded::ambient();
        b.iter(|| {
            transport_batch(
                &problem,
                &sources,
                &streams,
                &BatchRequest::default(),
                &mut policy,
            )
            .outcome
            .tallies
            .collisions
        })
    });
    g.bench_function("event_based_banking", |b| {
        let mut policy = Threaded::ambient();
        let req = BatchRequest {
            algorithm: Algorithm::EventBanking,
            ..BatchRequest::default()
        };
        b.iter(|| {
            transport_batch(&problem, &sources, &streams, &req, &mut policy)
                .outcome
                .tallies
                .collisions
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
