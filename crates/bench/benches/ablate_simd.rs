//! Ablation: the distance-sampling kernel's vectorization ladder —
//! scalar libm `ln`, auto-vectorizable slice `vln`, and the explicit
//! 16-lane Algorithm-4 kernel; Table I's three implementations end to end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_core::distance::{sample_distances_naive, sample_distances_opt1, sample_distances_opt2};
use mcs_rng::StreamPartition;
use mcs_simd::math::{vexp_slice, vln_slice};
use mcs_simd::AVec32;

const N: usize = 65_536;

fn bench(c: &mut Criterion) {
    let xs_vals: Vec<f32> = (0..N)
        .map(|i| 0.1 + 1.9 * (i % 997) as f32 / 997.0)
        .collect();
    let xs = AVec32::from_slice(&xs_vals);

    {
        let mut g = c.benchmark_group("transcendental");
        g.throughput(Throughput::Elements(N as u64));
        g.sample_size(30);
        let input: Vec<f32> = (0..N).map(|i| 1e-4 + (i % 4093) as f32 / 4093.0).collect();
        let mut out = vec![0.0f32; N];
        g.bench_function("libm_ln", |b| {
            b.iter(|| {
                for (o, &x) in out.iter_mut().zip(&input) {
                    *o = x.ln();
                }
                out[N - 1]
            })
        });
        g.bench_function("vln_slice", |b| {
            b.iter(|| {
                vln_slice(&input, &mut out);
                out[N - 1]
            })
        });
        g.bench_function("vexp_slice", |b| {
            b.iter(|| {
                vexp_slice(&input, &mut out);
                out[N - 1]
            })
        });
        g.finish();
    }

    {
        let mut g = c.benchmark_group("table1_kernels");
        g.throughput(Throughput::Elements(N as u64));
        g.sample_size(20);
        g.bench_function("naive_rand_r_plus_libm", |b| {
            let mut out = vec![0.0f32; N];
            b.iter(|| {
                sample_distances_naive(&xs_vals, &mut out, 1);
                out[N - 1]
            })
        });
        g.bench_function("opt1_batch_rng_scalar_ln", |b| {
            let mut r = vec![0.0f32; N];
            let mut out = vec![0.0f32; N];
            let mut part = StreamPartition::new(7, 8);
            b.iter(|| {
                sample_distances_opt1(&xs_vals, &mut r, &mut out, &mut part);
                out[N - 1]
            })
        });
        g.bench_function("opt2_batch_rng_simd_ln", |b| {
            let mut r = AVec32::zeros(N);
            let mut out = AVec32::zeros(N);
            let mut part = StreamPartition::new(7, 8);
            b.iter(|| {
                sample_distances_opt2(&xs, &mut r, &mut out, &mut part);
                out[N - 1]
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
