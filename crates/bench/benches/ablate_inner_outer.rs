//! Ablation: vectorizing the inner (nuclide) loop vs the outer (particle)
//! loop of the banked lookup — the paper's §III-A1 observation that the
//! inner loop wins.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_bench::log_energies;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_xs::MacroXs;

const N: usize = 2_048;

fn bench(c: &mut Criterion) {
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let fuel = &problem.materials[0];
    let energies = log_energies(N, 13);
    let mut out = vec![MacroXs::default(); N];

    let mut g = c.benchmark_group("vectorization_axis");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("scalar_reference", |b| {
        b.iter(|| {
            problem.xs.batch_macro_xs_seq(fuel, &energies, &mut out);
            out[N - 1].total
        })
    });
    g.bench_function("inner_loop_simd", |b| {
        b.iter(|| {
            problem.xs.batch_macro_xs_simd(fuel, &energies, &mut out);
            out[N - 1].total
        })
    });
    g.bench_function("outer_loop_simd", |b| {
        b.iter(|| {
            problem
                .xs
                .batch_macro_xs_outer_simd(fuel, &energies, &mut out);
            out[N - 1].total
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
