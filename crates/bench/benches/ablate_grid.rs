//! Ablation: the unionized energy grid (Leppänen) vs one binary search
//! per nuclide — the optimization both measured codes in the paper share.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcs_bench::log_energies;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};

fn bench(c: &mut Criterion) {
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let fuel = &problem.materials[0];
    let energies = log_energies(256, 7);

    let mut g = c.benchmark_group("grid_search");
    g.sample_size(20);
    g.bench_function("per_nuclide_binary_search", |b| {
        b.iter_batched(
            || energies.clone(),
            |es| {
                let mut acc = 0.0;
                for e in es {
                    acc += problem.xs.macro_xs_direct(fuel, e).total;
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("unionized_grid", |b| {
        b.iter_batched(
            || energies.clone(),
            |es| {
                let mut acc = 0.0;
                for e in es {
                    acc += problem.xs.macro_xs(fuel, e).total;
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
