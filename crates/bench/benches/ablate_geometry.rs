//! Ablation: nested vs flattened lattice lookup over the model catalog —
//! model × traversal treatment × bank size.
//!
//! Thin driver over `mcs_bench::harness::geometry`: runs the sweep at
//! `MCS_SCALE` (default 1.0 here — full scale, unlike mcs-check),
//! re-asserts the structural claims loudly, and writes the
//! machine-readable summary to `results/BENCH_geometry.json`.
//!
//! Claims asserted:
//!
//! * every (model, bank) cell produces bit-identical k across both
//!   traversal treatments (traversal reorders geometry work, never
//!   results);
//! * on every model, the flattened treatment visits no more cells than
//!   the nested one (`find_steps` ratio ≤ 1 — wrapper pass-throughs and
//!   pre-inlined universe fills only ever remove visits).
//!
//! `--test` (cargo test's bench smoke) runs a reduced sweep with the
//! same assertions and writes no JSON.

use mcs_bench::harness::geometry;

fn assert_claims(r: &geometry::GeometryResult) {
    assert!(
        r.treatment_bitwise(),
        "traversal changed physics: per-batch k bits differ across treatments"
    );
    assert!(
        r.rates_positive(),
        "non-positive rate in the sweep: timing is broken"
    );
    for &m in geometry::MODELS.iter() {
        let ratio = r.flatten_step_ratio(m);
        assert!(
            ratio <= 1.0,
            "flattened traversal visited more cells than nested on {m} (ratio {ratio:.3})"
        );
    }
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));

    if quick {
        // Smoke run under `cargo test`: tiny banks, full assertion set,
        // no JSON and no timing claims.
        let r = geometry::run(0.05, false);
        assert_claims(&r);
        println!("ablate_geometry: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let r = geometry::run(scale, true);
    assert_claims(&r);

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"model\": \"{}\", \"treatment\": \"{}\", \"bank\": {}, \
                 \"particles_per_second\": {:.1}, \"finds\": {}, \"find_steps\": {}, \
                 \"surface_tests\": {}, \"boundary_calls\": {}, \
                 \"find_steps_per_particle\": {:.4}, \"k_track_bits\": \"{:016x}\"}}",
                s.model,
                s.treatment.name(),
                s.bank,
                s.particles_per_s,
                s.finds,
                s.find_steps,
                s.surface_tests,
                s.boundary_calls,
                s.find_steps_per_particle(),
                s.k_bits
            )
        })
        .collect();
    let ratios: Vec<String> = geometry::MODELS
        .iter()
        .map(|&m| format!("    \"{m}\": {:.6}", r.flatten_step_ratio(m)))
        .collect();
    let counters: Vec<String> = r
        .counters
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"geometry\",\n  \"mcs_scale\": {scale},\n  \
         \"treatment_bitwise\": {},\n  \"flatten_step_ratios\": {{\n{}\n  }},\n  \
         \"flattened_counters\": {{\n{}\n  }},\n  \"samples\": [\n{}\n  ]\n}}\n",
        r.treatment_bitwise(),
        ratios.join(",\n"),
        counters.join(",\n"),
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_geometry.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
