//! Ablation: energy-grid search backends behind the unified `XsContext` —
//! per-nuclide binary search vs the unionized grid vs the hash-binned
//! grid, swept over bank sizes.
//!
//! For each backend × bank size the harness measures SIMD-banked lookups
//! per second and records the backend's index-structure memory, then
//! re-verifies the determinism contract (bit-identical per-batch k across
//! backends). A machine-readable summary lands in
//! `results/BENCH_grid_backend.json` and the CSV in
//! `results/BENCH_grid_backend.csv`.

use mcs_bench::harness::grid_backend;
use mcs_xs::GridBackendKind;

fn assert_invariants(res: &grid_backend::GridBackendResult) {
    assert!(
        res.k_bits_identical(),
        "backends disagree on per-batch k: {:?}",
        res.batch_k_bits
    );
    let frac = res.hash_index_fraction();
    assert!(
        frac < 0.25,
        "hash index is {:.1}% of unionized (must be < 25%)",
        frac * 100.0
    );
    assert!(res.index_bytes_of(GridBackendKind::PerNuclideBinary) == 0);
    for row in &res.rows {
        assert!(
            row.lookups_per_s > 0.0 && row.checksum > 0.0,
            "degenerate sample: {row:?}"
        );
    }
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));

    if quick {
        // Smoke run under `cargo test`: tiny banks, invariants only —
        // no timing claims, no JSON.
        let res = grid_backend::run(0.02, false);
        assert_invariants(&res);
        println!("ablate_grid_backend: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let res = grid_backend::run(scale, true);
    assert_invariants(&res);
    res.artifact.write();

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = res
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"backend\": \"{}\", \"bank\": {}, \"lookups_per_second\": {:.1}, \"index_bytes\": {}, \"checksum\": {:.9e}}}",
                r.backend.name(),
                r.bank,
                r.lookups_per_s,
                r.index_bytes,
                r.checksum
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"grid_backend\",\n  \"mcs_scale\": {scale},\n  \"k_bitwise_identical\": {},\n  \"hash_index_fraction_of_unionized\": {:.4},\n  \"samples\": [\n{}\n  ]\n}}\n",
        res.k_bits_identical(),
        res.hash_index_fraction(),
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_grid_backend.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
