//! Ablation: the `mcs serve` plan-execution service under load —
//! cache hit rate, dedupe, admission control, and end-to-end latency.
//!
//! Thin driver over `mcs_bench::harness::serve_load`: runs the
//! three-phase battery at `MCS_SCALE` (default 1.0 — the concurrent
//! phase then pushes 1k+ submissions from racing clients), re-asserts
//! the service contract loudly, and writes the machine-readable
//! summary to `results/BENCH_serve.json`.
//!
//! Claims asserted:
//!
//! * a cached replay is bit-identical to the cold run and costs zero
//!   additional cross-section lookups;
//! * every distinct plan executes at most once, and the hit/coalesce/
//!   cold/reject ledger balances the submission count in every phase;
//! * admission control rejects exactly the engineered overflow and
//!   nothing else;
//! * every phase reports positive, finite throughput and latency.
//!
//! `--test` (cargo test's bench smoke) runs a reduced battery with the
//! same assertions and writes no JSON.

use mcs_bench::harness::serve_load;

fn assert_claims(r: &serve_load::ServeLoadResult) {
    assert!(
        r.cache_bitwise,
        "cache replay was not bit-identical to the cold run"
    );
    assert!(
        r.relookup_free,
        "serving the hit wave moved the xs.lookups counter"
    );
    assert!(
        r.ledger_balanced(),
        "hit/coalesce/cold/reject ledger does not balance submissions"
    );
    assert!(
        r.rejects_expected(),
        "admission rejections outside the engineered overflow"
    );
    assert!(
        r.rates_positive(),
        "non-positive throughput or latency: timing is broken"
    );
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));

    if quick {
        // Smoke run under `cargo test`: tiny submission counts, full
        // assertion set, no JSON and no timing claims.
        let r = serve_load::run(0.05, false);
        assert_claims(&r);
        println!("ablate_serve: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let r = serve_load::run(scale, true);
    assert_claims(&r);

    // Heavy-model leg: the smr catalog model through the service, cold
    // then cached (kept out of the golden three-phase battery).
    let (smr_row, smr_bitwise) = serve_load::run_smr(scale);
    assert!(smr_bitwise, "smr cached replay was not bit-identical");
    assert_eq!(smr_row.cold_runs, 1, "smr plan must run cold exactly once");
    println!(
        "smr leg: cold+replay in {:.1} ms / {:.1} ms, cache bitwise: yes",
        smr_row.p99_ms, smr_row.p50_ms
    );

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = r
        .rows
        .iter()
        .chain(std::iter::once(&smr_row))
        .map(|row| {
            format!(
                "    {{\"phase\": \"{}\", \"submissions\": {}, \"unique_plans\": {}, \
                 \"served_saved\": {}, \"cold_runs\": {}, \"rejects\": {}, \
                 \"plans_per_second\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                row.phase,
                row.submissions,
                row.unique_plans,
                row.served_saved,
                row.cold_runs,
                row.rejects,
                row.plans_per_second,
                row.p50_ms,
                row.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mcs_scale\": {scale},\n  \
         \"workers\": {},\n  \"queue_cap\": {},\n  \"cache_bitwise\": {},\n  \
         \"relookup_free\": {},\n  \"hits\": {},\n  \"coalesced\": {},\n  \
         \"saved_fraction\": {:.6},\n  \"smr_cache_bitwise\": {},\n  \
         \"samples\": [\n{}\n  ]\n}}\n",
        r.workers,
        r.queue_cap,
        r.cache_bitwise,
        r.relookup_free,
        r.hits,
        r.coalesced,
        r.saved_fraction(),
        smr_bitwise,
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_serve.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
