//! Ablation: AoS vs SoA nuclide-data layout for the banked lookup — the
//! paper's "most important" MIC optimization (§III-A1).

use criterion::{criterion_group, criterion_main, Criterion};
use mcs_bench::log_energies;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};

fn bench(c: &mut Criterion) {
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let fuel = &problem.materials[0];
    let energies = log_energies(256, 11);

    let mut g = c.benchmark_group("data_layout");
    g.sample_size(20);
    g.bench_function("aos_scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &e in &energies {
                acc += problem.xs.macro_xs_aos(fuel, e).total;
            }
            acc
        })
    });
    g.bench_function("soa_scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &e in &energies {
                acc += problem.xs.macro_xs(fuel, e).total;
            }
            acc
        })
    });
    g.bench_function("soa_simd", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &e in &energies {
                acc += problem.xs.macro_xs_simd(fuel, e).total;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
