//! Ablation: multipole evaluation vs classical pointwise lookup — the
//! §IV-B trade: the multipole method "potentially turns a memory-bound
//! problem into a compute-bound problem" at a fraction of the memory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_bench::log_energies;
use mcs_core::problem::{HmModel, Problem, ProblemConfig};
use mcs_multipole::{rsbench_driver, MultipoleLibrary, MultipoleSpec};

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let cfg = ProblemConfig {
        enable_sab: false,
        enable_urr: false,
        ..Default::default()
    };
    let problem = Problem::hm(HmModel::Small, &cfg);
    let fuel = &problem.materials[0];
    let energies = log_energies(N, 3);

    let spec = MultipoleSpec::rsbench_like();
    let mp_var = MultipoleLibrary::build(&spec);
    let max_p = mp_var
        .nuclides
        .iter()
        .map(|n| n.max_poles_per_window())
        .max()
        .unwrap();
    let mp_fix = MultipoleLibrary::build(&spec.with_fixed_poles(max_p));

    let mut g = c.benchmark_group("xs_representation");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(15);
    g.bench_function("pointwise_union_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &e in &energies {
                acc += problem.xs.macro_xs(fuel, e).total;
            }
            acc
        })
    });
    g.bench_function("multipole_original", |b| {
        b.iter(|| rsbench_driver(&mp_var, N, 42, false))
    });
    g.bench_function("multipole_vectorized", |b| {
        b.iter(|| rsbench_driver(&mp_fix, N, 42, true))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
