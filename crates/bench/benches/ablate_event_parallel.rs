//! Ablation: serial vs multithreaded event-transport pipeline across
//! thread counts and bank sizes — the scaling study for the parallel
//! SIMD-batched banking loop.
//!
//! For each bank size the harness times the staged pipeline pinned to 1,
//! 2, 4, and 8 worker threads (median of several repetitions) and checks
//! that every configuration reproduces the 1-thread collision count —
//! the determinism contract lets the timings be compared at all. A
//! machine-readable summary lands in `results/BENCH_event_parallel.json`.
//!
//! Bank sizes run 10^3..10^5 by default; set `MCS_BENCH_LARGE=1` to add
//! the 10^6 point from the issue's sweep (minutes of runtime).

use std::time::Instant;

use mcs_core::engine::{transport_batch, Algorithm, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::problem::Problem;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

struct Sample {
    bank: usize,
    threads: usize,
    seconds: f64,
    rate: f64,
    collisions: u64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn time_config(problem: &Problem, bank: usize, threads: usize) -> Sample {
    let sources = problem.sample_initial_source(bank, 0);
    let streams = batch_streams(problem.seed, 0, bank);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let mut times = Vec::with_capacity(REPS);
    let mut collisions = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let req = BatchRequest {
            algorithm: Algorithm::EventBanking,
            ..BatchRequest::default()
        };
        let out = pool
            .install(|| {
                transport_batch(problem, &sources, &streams, &req, &mut Threaded::ambient())
            })
            .outcome;
        times.push(t0.elapsed().as_secs_f64());
        collisions = out.tallies.collisions;
    }
    let seconds = median(times);
    Sample {
        bank,
        threads,
        seconds,
        rate: bank as f64 / seconds.max(1e-12),
        collisions,
    }
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));
    let problem = Problem::test_small();

    if quick {
        // Smoke run under `cargo test`: one tiny bank, every thread
        // count, checked for agreement — no timing claims, no JSON.
        let reference = time_config(&problem, 200, 1).collisions;
        for &t in &THREADS[1..] {
            assert_eq!(time_config(&problem, 200, t).collisions, reference);
        }
        println!("ablate_event_parallel: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let scaled = |n: usize| ((n as f64 * scale) as usize).max(100);
    let mut banks = vec![scaled(1_000), scaled(10_000), scaled(100_000)];
    if std::env::var("MCS_BENCH_LARGE").is_ok_and(|v| v == "1") {
        banks.push(scaled(1_000_000));
    }

    let mut samples: Vec<Sample> = Vec::new();
    println!(
        "{:>9} {:>7} {:>10} {:>14} {:>9}",
        "bank", "threads", "median_s", "particles/s", "speedup"
    );
    for &bank in &banks {
        let mut serial_s = 0.0;
        for &threads in &THREADS {
            let s = time_config(&problem, bank, threads);
            if threads == 1 {
                serial_s = s.seconds;
            } else {
                assert_eq!(
                    s.collisions,
                    samples.last().map(|p| p.collisions).unwrap_or(s.collisions),
                    "thread-count invariance violated at bank={bank}"
                );
            }
            println!(
                "{:>9} {:>7} {:>10.4} {:>14.0} {:>8.2}x",
                s.bank,
                s.threads,
                s.seconds,
                s.rate,
                serial_s / s.seconds
            );
            samples.push(s);
        }
    }

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"bank\": {}, \"threads\": {}, \"median_seconds\": {:.6}, \"particles_per_second\": {:.1}, \"collisions\": {}}}",
                s.bank, s.threads, s.seconds, s.rate, s.collisions
            )
        })
        .collect();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"event_parallel\",\n  \"reps\": {REPS},\n  \"mcs_scale\": {scale},\n  \"host_threads\": {host_threads},\n  \"thread_counts\": [1, 2, 4, 8],\n  \"samples\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_event_parallel.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
