//! Ablation: RNG strategies for the distance-sampling kernel — per-call
//! `rand_r`, per-call LCG, and batched counter-based fills (the VSL
//! analogue).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_rng::{Lcg63, NaiveRandR, StreamPartition};

const N: usize = 65_536;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng_fill");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(30);

    g.bench_function("per_call_rand_r", |b| {
        let mut rng = NaiveRandR::new(1);
        let mut out = vec![0.0f32; N];
        b.iter(|| {
            for v in &mut out {
                *v = rng.next_uniform_f32();
            }
            out[N - 1]
        })
    });

    g.bench_function("per_call_lcg63", |b| {
        let mut rng = Lcg63::new(1);
        let mut out = vec![0.0f32; N];
        b.iter(|| {
            for v in &mut out {
                *v = rng.next_uniform() as f32;
            }
            out[N - 1]
        })
    });

    g.bench_function("batched_philox_1_stream", |b| {
        let mut part = StreamPartition::new(1, 1);
        let mut out = vec![0.0f32; N];
        b.iter(|| {
            part.fill_f32(&mut out);
            out[N - 1]
        })
    });

    g.bench_function("batched_philox_8_streams", |b| {
        let mut part = StreamPartition::new(1, 8);
        let mut out = vec![0.0f32; N];
        b.iter(|| {
            part.fill_f32(&mut out);
            out[N - 1]
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
