//! Ablation: the real cost of user-defined tallies on this host — the
//! measured side of the paper's §III-B1 remark that α differs between
//! inactive (no tallies) and active (tallied) batches, "particularly if
//! user-defined tallies are collected throughout phase space".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_core::history::{batch_streams, run_histories, run_histories_mesh, run_histories_spectrum};
use mcs_core::mesh::MeshSpec;
use mcs_core::problem::Problem;

const N: usize = 400;

fn bench(c: &mut Criterion) {
    let problem = Problem::test_small();
    let sources = problem.sample_initial_source(N, 0);
    let streams = batch_streams(problem.seed, 0, N);
    let mesh = MeshSpec::covering(problem.geometry.bounds, 17, 17, 8);

    let mut g = c.benchmark_group("tally_overhead");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("no_tallies_inactive_batch", |b| {
        b.iter(|| {
            run_histories(&problem, &sources, &streams)
                .tallies
                .collisions
        })
    });
    g.bench_function("with_mesh_tally_active_batch", |b| {
        b.iter(|| {
            run_histories_mesh(&problem, &sources, &streams, Some(mesh))
                .0
                .tallies
                .collisions
        })
    });
    g.bench_function("with_energy_spectrum", |b| {
        b.iter(|| {
            run_histories_spectrum(&problem, &sources, &streams)
                .0
                .tallies
                .collisions
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
