//! Ablation: the real cost of user-defined tallies on this host — the
//! measured side of the paper's §III-B1 remark that α differs between
//! inactive (no tallies) and active (tallied) batches, "particularly if
//! user-defined tallies are collected throughout phase space".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcs_core::engine::{transport_batch, BatchRequest, Threaded};
use mcs_core::history::batch_streams;
use mcs_core::mesh::MeshSpec;
use mcs_core::problem::Problem;

const N: usize = 400;

fn bench(c: &mut Criterion) {
    let problem = Problem::test_small();
    let sources = problem.sample_initial_source(N, 0);
    let streams = batch_streams(problem.seed, 0, N);
    let mesh = MeshSpec::covering(problem.geometry.bounds, 17, 17, 8);

    let mut g = c.benchmark_group("tally_overhead");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let mut policy = Threaded::ambient();
    g.bench_function("no_tallies_inactive_batch", |b| {
        b.iter(|| {
            transport_batch(
                &problem,
                &sources,
                &streams,
                &BatchRequest::default(),
                &mut policy,
            )
            .outcome
            .tallies
            .collisions
        })
    });
    g.bench_function("with_mesh_tally_active_batch", |b| {
        let req = BatchRequest {
            mesh: Some(mesh),
            ..BatchRequest::default()
        };
        b.iter(|| {
            transport_batch(&problem, &sources, &streams, &req, &mut policy)
                .outcome
                .tallies
                .collisions
        })
    });
    g.bench_function("with_energy_spectrum", |b| {
        let req = BatchRequest {
            spectrum: true,
            ..BatchRequest::default()
        };
        b.iter(|| {
            transport_batch(&problem, &sources, &streams, &req, &mut policy)
                .outcome
                .tallies
                .collisions
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
