//! Ablation: the calibrated device catalog — every entry priced on the
//! reference workload and on a measured `smr` batch, plus the
//! heterogeneous-cluster determinism contract.
//!
//! Thin driver over `mcs_bench::harness::device_catalog`: runs at
//! `MCS_SCALE` (default 1.0 — full scale, unlike mcs-check), re-asserts
//! the structural claims loudly, and writes the machine-readable summary
//! to `results/BENCH_device.json`.
//!
//! Claims asserted:
//!
//! * every modeled rate is finite and positive;
//! * at least three ♦-calibrated entries exist and ALL land inside their
//!   documented band of the published rate;
//! * the legacy `host-e5-2687w`/`knc-7120a` entries price kernels
//!   bit-identically to the historic `MachineSpec` constructors;
//! * the host/KNC α on the reference workload stays in the paper's
//!   plateau band (0.5–0.8);
//! * every GPU-class entry outrates every legacy device;
//! * a heterogeneous device mix on distributed ranks reproduces the
//!   serial run bit-identically.
//!
//! `--test` (cargo test's bench smoke) runs a reduced sweep with the
//! same assertions and writes no JSON.

use mcs_bench::harness::device_catalog;

fn assert_claims(r: &device_catalog::DeviceCatalogResult) {
    assert!(
        r.rates_positive(),
        "non-positive modeled rate in the catalog sweep"
    );
    let (calibrated, in_band) = r.calibration_counts();
    assert!(
        calibrated >= 3,
        "expected at least 3 calibrated entries, found {calibrated}"
    );
    assert_eq!(
        calibrated,
        in_band,
        "calibrated entries out of band: {} of {}",
        calibrated - in_band,
        calibrated
    );
    assert!(
        r.legacy_exact,
        "legacy catalog entries no longer price bit-identically to MachineSpec"
    );
    let alpha = r.alpha_host_knc();
    assert!(
        (0.5..=0.8).contains(&alpha),
        "host/KNC alpha {alpha:.3} left the paper's plateau band"
    );
    assert!(
        r.gpus_outrate_legacy(),
        "a GPU-class entry fell below a legacy device on the reference workload"
    );
    assert!(
        r.hetero_bitwise,
        "heterogeneous device ranks broke bitwise reproducibility"
    );
    assert!(
        r.balanced_gain >= 1.0 - 1e-12,
        "alpha-balancing lost aggregate rate: gain {:.4}",
        r.balanced_gain
    );
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));

    if quick {
        // Smoke run under `cargo test`: tiny batch, full assertion set,
        // no JSON and no timing claims.
        let r = device_catalog::run(0.05, false);
        assert_claims(&r);
        println!("ablate_device: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let r = device_catalog::run(scale, true);
    assert_claims(&r);

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"model\": \"{}\", \"device\": \"{}\", \"class\": \"{}\", \
                 \"transport\": \"{}\", \"rate_modeled_n_per_s\": {:.1}, \
                 \"alpha_vs_host\": {:.4}, \"calibration_ratio\": {}, \"in_band\": {}}}",
                s.model,
                s.id,
                s.class,
                s.transport,
                s.rate,
                s.alpha_vs_host,
                s.calibration_ratio
                    .map(|c| format!("{c:.4}"))
                    .unwrap_or_else(|| "null".into()),
                s.within_band
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"device\",\n  \"mcs_scale\": {scale},\n  \
         \"hetero_bitwise\": {},\n  \"legacy_exact\": {},\n  \
         \"balanced_gain\": {:.4},\n  \
         \"smr_measured_host_n_per_s\": {:.1},\n  \"samples\": [\n{}\n  ]\n}}\n",
        r.hetero_bitwise,
        r.legacy_exact,
        r.balanced_gain,
        r.smr_measured_host_rate,
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_device.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
