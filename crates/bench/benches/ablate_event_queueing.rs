//! Ablation: Stage-2 particle queueing for the event pipeline —
//! queueing mode × energy-grid backend × bank size.
//!
//! Thin driver over `mcs_bench::harness::event_queueing`: runs the sweep
//! at `MCS_SCALE` (default 1.0 here — full scale, unlike mcs-check),
//! re-asserts the two structural claims loudly, and writes the
//! machine-readable summary to `results/BENCH_event_queueing.json`.
//!
//! Claims asserted:
//!
//! * every (backend, bank) cell produces bit-identical k across all
//!   three queueing modes (queueing reorders lookups, never results);
//! * on the hash-binned backend, `material+energy` queueing does fewer
//!   `bin_scan_steps` per lookup than `material` (the warm-start payoff).
//!
//! `--test` (cargo test's bench smoke) runs a reduced sweep with the
//! same assertions and writes no JSON.

use mcs_bench::harness::event_queueing;

fn assert_claims(r: &event_queueing::EventQueueingResult) {
    assert!(
        r.k_bits_identical(),
        "queueing changed physics: per-batch k bits differ across modes/backends"
    );
    assert!(
        r.rates_positive(),
        "non-positive rate in the sweep: timing is broken"
    );
    let ratio = r.hash_scan_ratio();
    assert!(
        ratio < 1.0,
        "material+energy queueing did not reduce hash scan steps/lookup (ratio {ratio:.3})"
    );
}

fn main() {
    let quick = std::env::args()
        .skip(1)
        .any(|a| matches!(a.as_str(), "--test" | "--list"));

    if quick {
        // Smoke run under `cargo test`: tiny banks, full assertion set,
        // no JSON and no timing claims.
        let r = event_queueing::run(0.05, false);
        assert_claims(&r);
        println!("ablate_event_queueing: ok (test mode)");
        return;
    }

    let scale = std::env::var("MCS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let r = event_queueing::run(scale, true);
    assert_claims(&r);

    // Hand-rolled JSON (no serde in this environment).
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"bank\": {}, \
                 \"particles_per_second\": {:.1}, \"lookups\": {}, \
                 \"bin_scan_steps\": {}, \"gather_span_bytes\": {}, \
                 \"gather_span_pairs\": {}, \"k_track_bits\": \"{:016x}\"}}",
                s.backend.name(),
                s.mode.name(),
                s.bank,
                s.particles_per_s,
                s.lookups,
                s.bin_scan_steps,
                s.gather_span_bytes,
                s.gather_span_pairs,
                s.k_bits
            )
        })
        .collect();
    let counters: Vec<String> = r
        .counters
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"event_queueing\",\n  \"mcs_scale\": {scale},\n  \
         \"k_bits_identical\": {},\n  \"hash_scan_ratio\": {:.6},\n  \
         \"hash_material_energy_counters\": {{\n{}\n  }},\n  \"samples\": [\n{}\n  ]\n}}\n",
        r.k_bits_identical(),
        r.hash_scan_ratio(),
        counters.join(",\n"),
        rows.join(",\n")
    );
    // Anchor at the workspace root: `cargo bench` sets the CWD to the
    // package dir, unlike the harness binaries run from the root.
    let dir = std::env::var("MCS_RESULTS_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../results").to_string());
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = format!("{dir}/BENCH_event_queueing.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("wrote {path}");
}
