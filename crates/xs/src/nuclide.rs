//! Single-nuclide pointwise cross-section data, synthesized from
//! single-level Breit–Wigner (SLBW) resonance ladders.
//!
//! The synthesis recipe per nuclide:
//!
//! * **Elastic scattering** — constant potential-scattering cross section
//!   `σ_pot` plus an SLBW resonance term at each resonance energy.
//! * **Radiative capture** — a `1/v` term (`σ ∝ 1/sqrt(E)`) dominating at
//!   thermal energies plus capture resonances.
//! * **Fission** (fissile nuclides only) — its own `1/v` term and ladder.
//! * **Absorption** = capture + fission (OpenMC's convention: `σ_a`
//!   includes fission).
//! * **Total** = elastic + absorption.
//!
//! Resonance energies are drawn from a seeded Philox stream so every
//! library build is reproducible; spacing follows a Wigner-like
//! distribution starting near 1 eV (heavy nuclides), which puts the
//! resonance forest exactly where Fig. 1 shows it for U-238.

use mcs_rng::Philox4x32;

use crate::{E_MAX, E_MIN};

/// One synthesized resonance.
#[derive(Debug, Clone, Copy)]
pub struct Resonance {
    /// Resonance energy (MeV).
    pub e0: f64,
    /// Total width Γ (MeV).
    pub gamma: f64,
    /// Peak capture cross section (barns).
    pub peak_capture: f64,
    /// Peak elastic contribution (barns).
    pub peak_elastic: f64,
    /// Peak fission contribution (barns); zero for non-fissile.
    pub peak_fission: f64,
}

/// Synthesis parameters for one nuclide.
#[derive(Debug, Clone)]
pub struct NuclideSpec {
    /// Display name, e.g. `"U238"`.
    pub name: String,
    /// Atomic weight ratio (target mass / neutron mass).
    pub awr: f64,
    /// Number of resonances in the ladder.
    pub n_resonances: usize,
    /// Potential scattering cross section (barns).
    pub sigma_pot: f64,
    /// Thermal (2200 m/s) capture cross section (barns).
    pub thermal_capture: f64,
    /// Thermal fission cross section (barns); zero ⇒ non-fissile.
    pub thermal_fission: f64,
    /// Average neutrons per fission.
    pub nu: f64,
    /// Plateau inelastic-scattering cross section above threshold (barns;
    /// 0 ⇒ no inelastic channel).
    pub sigma_inelastic: f64,
    /// First-level excitation energy Q (MeV): the inelastic threshold is
    /// `Q·(A+1)/A`.
    pub q_inelastic: f64,
    /// Points in the smooth (log-spaced) base grid.
    pub n_base_grid: usize,
    /// Extra grid points per resonance.
    pub points_per_resonance: usize,
    /// Scale on the peak-height envelope (1.0 = strong s-wave absorber
    /// like U-238; structural metals and most fission products sit far
    /// below the unitarity envelope).
    pub resonance_strength: f64,
    /// Material temperature (K) for Doppler-broadened (Voigt) line
    /// shapes. `0.0` = unbroadened Lorentzians (the calibrated baseline).
    pub temperature_k: f64,
    /// Seed for the resonance ladder.
    pub seed: u64,
}

impl NuclideSpec {
    /// A generic heavy actinide-like spec (defaults tuned so U-238-like
    /// input reproduces the Fig. 1 character).
    pub fn heavy(name: &str, awr: f64, fissile: bool, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            awr,
            n_resonances: 60,
            sigma_pot: 11.3,
            thermal_capture: 2.7,
            thermal_fission: if fissile { 580.0 } else { 0.0 },
            nu: if fissile { 2.43 } else { 0.0 },
            // U-238-like: first level at ~45 keV, ~2.5 b plateau.
            sigma_inelastic: 2.5,
            q_inelastic: 0.045,
            n_base_grid: 300,
            points_per_resonance: 14,
            resonance_strength: 1.0,
            temperature_k: 0.0,
            seed,
        }
    }

    /// A light moderator-like spec (hydrogen, oxygen, ...): no resonances,
    /// smooth scattering.
    pub fn light(name: &str, awr: f64, sigma_pot: f64, thermal_capture: f64, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            awr,
            n_resonances: 0,
            sigma_pot,
            thermal_capture,
            thermal_fission: 0.0,
            nu: 0.0,
            // Light nuclei: first levels at MeV scale (O-16: ~6 MeV).
            sigma_inelastic: 0.3,
            q_inelastic: 6.0,
            n_base_grid: 200,
            points_per_resonance: 0,
            resonance_strength: 1.0,
            temperature_k: 0.0,
            seed,
        }
    }

    /// A structural/intermediate-mass spec (zirconium, iron, ...): a few
    /// high-energy resonances.
    pub fn structural(name: &str, awr: f64, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            awr,
            n_resonances: 12,
            sigma_pot: 6.5,
            thermal_capture: 0.18,
            thermal_fission: 0.0,
            nu: 0.0,
            sigma_inelastic: 1.5,
            q_inelastic: 0.9,
            n_base_grid: 220,
            points_per_resonance: 10,
            // Zr-like: resonance peaks of tens of barns, not thousands
            // (natural zirconium's resonance integral is ~1 b).
            resonance_strength: 0.01,
            temperature_k: 0.0,
            seed,
        }
    }
}

/// Pointwise continuous-energy cross sections for one nuclide.
///
/// All reaction arrays share `energy`'s length; `energy` is strictly
/// increasing from [`E_MIN`] to [`E_MAX`].
#[derive(Debug, Clone)]
pub struct Nuclide {
    /// Display name.
    pub name: String,
    /// Atomic weight ratio.
    pub awr: f64,
    /// Average neutrons per fission (0 for non-fissile).
    pub nu: f64,
    /// Energy grid (MeV), strictly increasing.
    pub energy: Vec<f64>,
    /// Total cross section (barns).
    pub total: Vec<f64>,
    /// Elastic scattering cross section (barns).
    pub elastic: Vec<f64>,
    /// Inelastic (discrete-level) scattering cross section (barns).
    pub inelastic: Vec<f64>,
    /// Absorption (capture + fission) cross section (barns).
    pub absorption: Vec<f64>,
    /// Fission cross section (barns).
    pub fission: Vec<f64>,
    /// The resonance ladder used for synthesis (kept for tests/UrrTables).
    pub resonances: Vec<Resonance>,
    /// First-level excitation energy Q (MeV); 0 ⇒ no inelastic channel.
    pub q_inelastic: f64,
}

/// Thermal reference energy: 0.0253 eV in MeV.
pub const E_THERMAL: f64 = 0.0253e-6;

impl Nuclide {
    /// Synthesize a nuclide from its spec. Deterministic in `spec.seed`.
    pub fn synthesize(spec: &NuclideSpec) -> Self {
        let mut rng = Philox4x32::new(spec.seed);
        let resonances = Self::build_ladder(spec, &mut rng);
        let energy = Self::build_grid(spec, &resonances);

        let n = energy.len();
        let mut elastic = vec![0.0; n];
        let mut inelastic = vec![0.0; n];
        let mut absorption = vec![0.0; n];
        let mut fission = vec![0.0; n];
        let mut total = vec![0.0; n];

        // Inelastic threshold in the lab frame: Q·(A+1)/A.
        let e_thr = if spec.sigma_inelastic > 0.0 && spec.q_inelastic > 0.0 {
            spec.q_inelastic * (spec.awr + 1.0) / spec.awr
        } else {
            f64::INFINITY
        };

        // Boltzmann constant in MeV/K, for Doppler widths.
        const K_B: f64 = 8.617_333_262e-11;
        for (i, &e) in energy.iter().enumerate() {
            let inv_v = (E_THERMAL / e).sqrt(); // 1/v relative to thermal
            let mut sig_s = spec.sigma_pot;
            let mut sig_c = spec.thermal_capture * inv_v;
            let mut sig_f = spec.thermal_fission * inv_v;
            for r in &resonances {
                // Line shapes: unbroadened Lorentzians at T = 0, Voigt
                // profiles (ψ function via the Faddeeva W) otherwise. The
                // low-energy 1/v physics is carried by the explicit
                // smooth 1/v terms above, so no extra 1/√E factor here.
                let half = 0.5 * r.gamma;
                let shape = if spec.temperature_k > 0.0 {
                    // Doppler width Δ = sqrt(4 E0 kT / A).
                    let delta = (4.0 * r.e0 * K_B * spec.temperature_k / spec.awr).sqrt();
                    voigt_shape(e - r.e0, half, delta)
                } else {
                    half * half / ((e - r.e0) * (e - r.e0) + half * half)
                };
                sig_c += r.peak_capture * shape;
                sig_s += r.peak_elastic * shape;
                sig_f += r.peak_fission * shape;
            }
            // Smooth rise from threshold toward the plateau.
            let sig_i = if e > e_thr {
                spec.sigma_inelastic * (1.0 - e_thr / e)
            } else {
                0.0
            };
            elastic[i] = sig_s;
            inelastic[i] = sig_i;
            fission[i] = sig_f;
            absorption[i] = sig_c + sig_f;
            total[i] = sig_s + sig_i + sig_c + sig_f;
        }

        Self {
            name: spec.name.clone(),
            awr: spec.awr,
            nu: spec.nu,
            energy,
            total,
            elastic,
            inelastic,
            absorption,
            fission,
            resonances,
            q_inelastic: if e_thr.is_finite() {
                spec.q_inelastic
            } else {
                0.0
            },
        }
    }

    fn build_ladder(spec: &NuclideSpec, rng: &mut Philox4x32) -> Vec<Resonance> {
        if spec.n_resonances == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(spec.n_resonances);
        // First resonance near 5–10 eV (like U-238's 6.67 eV), Wigner-like
        // spacing growing with E. Starting lower makes the first
        // resonances fractionally wide (Γ/E > 1%) and blankets the
        // slowing-down range.
        let mut e = 5.0e-6 * (1.0 + 1.0 * rng.next_uniform());
        for _ in 0..spec.n_resonances {
            // Total widths are roughly constant in eV across the resolved
            // range (radiative widths Γγ ≈ 15–90 meV; U-238's 6.67 eV
            // resonance has Γ ≈ 25 meV) — NOT proportional to E. Widths
            // ∝ E inflate the resonance integral by an order of magnitude
            // and kill resonance escape.
            let gamma = 1.5e-8 + 7.0e-8 * rng.next_uniform();
            // Peak heights follow the 4πλ̄² envelope: σ_max ≈ 2.6e6/E[eV]
            // barns (∝ 1/E), capped near the s-wave unitarity limit. Real
            // ladders do this — U-238's 6.67 eV resonance peaks at
            // ~23,000 b while its 100 keV resonances peak below 100 b.
            let envelope = (2.6 / e).min(20_000.0) * spec.resonance_strength;
            // Capture fraction tuned so a U-238-like ladder yields a
            // resonance escape probability near the PWR value (p ≈ 0.7).
            // A 60-line ladder stands in for ~3,000 real resolved levels,
            // so each synthetic line carries an *effective* strength
            // rather than the dilute envelope.
            let peak_c = envelope * (0.10 + 0.26 * rng.next_uniform());
            let peak_s = envelope * (0.10 + 0.25 * rng.next_uniform());
            let peak_f = if spec.thermal_fission > 0.0 {
                envelope * (0.20 + 0.45 * rng.next_uniform())
            } else {
                0.0
            };
            out.push(Resonance {
                e0: e,
                gamma,
                peak_capture: peak_c,
                peak_elastic: peak_s,
                peak_fission: peak_f,
            });
            // Wigner surmise-ish spacing: mean spacing grows ~ with E.
            let spacing = e * (0.08 + 0.25 * rng.next_uniform());
            e += spacing;
            if e > 0.1 {
                // Above the resolved range (~100 keV) stop laying resonances.
                break;
            }
        }
        out
    }

    fn build_grid(spec: &NuclideSpec, resonances: &[Resonance]) -> Vec<f64> {
        let mut pts =
            Vec::with_capacity(spec.n_base_grid + resonances.len() * spec.points_per_resonance + 2);
        // Log-spaced smooth base grid.
        let log_min = E_MIN.ln();
        let log_max = E_MAX.ln();
        for i in 0..spec.n_base_grid {
            let t = i as f64 / (spec.n_base_grid - 1) as f64;
            pts.push((log_min + t * (log_max - log_min)).exp());
        }
        // Refinement around each resonance: points at e0 ± k·w, where w
        // is the effective (possibly Doppler-widened) line width.
        const K_B: f64 = 8.617_333_262e-11;
        let k_half = spec.points_per_resonance / 2;
        for r in resonances {
            let delta = if spec.temperature_k > 0.0 {
                (4.0 * r.e0 * K_B * spec.temperature_k / spec.awr).sqrt()
            } else {
                0.0
            };
            let w = r.gamma.max(delta);
            for k in 0..spec.points_per_resonance {
                let offset = (k as f64 - k_half as f64) * 0.5;
                let e = r.e0 + offset * w;
                if e > E_MIN && e < E_MAX {
                    pts.push(e);
                }
            }
            // Tail refinement: logarithmically spaced points out to
            // ~200 line widths on both sides, so linear interpolation
            // tracks the 1/x² decay instead of drawing a chord from the
            // peak region to the next coarse point (which fabricates
            // orders-of-magnitude too much off-resonance absorption).
            for &mult in &[5.0, 9.0, 16.0, 30.0, 55.0, 100.0, 200.0] {
                for sign in [-1.0, 1.0] {
                    let e = r.e0 + sign * mult * w;
                    if e > E_MIN && e < E_MAX {
                        pts.push(e);
                    }
                }
            }
        }
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * b.abs());
        // Pin the exact domain endpoints (exp(ln(E)) wobbles in the last ulp).
        pts[0] = E_MIN;
        *pts.last_mut().unwrap() = E_MAX;
        pts
    }

    /// Number of energy grid points.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.energy.len()
    }

    /// True if this nuclide can fission.
    #[inline]
    pub fn fissile(&self) -> bool {
        self.nu > 0.0
    }

    /// Interpolated microscopic cross sections at `e` using a plain binary
    /// search on this nuclide's own grid (the non-unionized reference
    /// path).
    pub fn micro_at(&self, e: f64) -> MicroXs {
        let i = crate::grid::lower_bound_index(&self.energy, e);
        self.micro_at_index(i, e)
    }

    /// Interpolated cross sections given the known bracketing interval
    /// `[energy[i], energy[i+1]]`.
    #[inline]
    pub fn micro_at_index(&self, i: usize, e: f64) -> MicroXs {
        let i = i.min(self.energy.len() - 2);
        let e0 = self.energy[i];
        let e1 = self.energy[i + 1];
        let f = ((e - e0) / (e1 - e0)).clamp(0.0, 1.0);
        let lerp = |a: &[f64]| a[i] + f * (a[i + 1] - a[i]);
        MicroXs {
            total: lerp(&self.total),
            elastic: lerp(&self.elastic),
            inelastic: lerp(&self.inelastic),
            absorption: lerp(&self.absorption),
            fission: lerp(&self.fission),
        }
    }

    /// In-memory size of the pointwise data in bytes (used by the PCIe
    /// transfer model).
    pub fn data_bytes(&self) -> usize {
        6 * self.energy.len() * std::mem::size_of::<f64>()
    }
}

/// The ψ (Voigt) line shape normalized to the Lorentzian's peak
/// convention: at Δ → 0 it reduces exactly to
/// `(Γ/2)² / ((E−E0)² + (Γ/2)²)`.
///
/// `V(x) = (γ √π / Δ) · Re W((x + iγ)/Δ)` with `γ = Γ/2`.
pub fn voigt_shape(x: f64, gamma_half: f64, delta: f64) -> f64 {
    use mcs_multipole::{fast_w, C64};
    let z = C64::new(x / delta, gamma_half / delta);
    (gamma_half * std::f64::consts::PI.sqrt() / delta) * fast_w(z).re
}

/// Microscopic cross sections (barns) at one energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MicroXs {
    /// Total.
    pub total: f64,
    /// Elastic scattering.
    pub elastic: f64,
    /// Inelastic scattering.
    pub inelastic: f64,
    /// Absorption (capture + fission).
    pub absorption: f64,
    /// Fission.
    pub fission: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u238() -> Nuclide {
        Nuclide::synthesize(&NuclideSpec::heavy("U238", 236.0, false, 92238))
    }

    #[test]
    fn grid_is_strictly_increasing() {
        let n = u238();
        for w in n.energy.windows(2) {
            assert!(w[0] < w[1], "grid not increasing: {} !< {}", w[0], w[1]);
        }
        assert_eq!(n.energy[0], E_MIN);
        assert_eq!(*n.energy.last().unwrap(), E_MAX);
    }

    #[test]
    fn totals_are_consistent_sums() {
        let n = Nuclide::synthesize(&NuclideSpec::heavy("U235", 233.0, true, 92235));
        for i in 0..n.n_points() {
            let sum = n.elastic[i] + n.inelastic[i] + n.absorption[i];
            assert!((n.total[i] - sum).abs() < 1e-9 * n.total[i].max(1.0));
            assert!(n.fission[i] <= n.absorption[i] + 1e-12);
            assert!(n.inelastic[i] >= 0.0);
            assert!(n.total[i] > 0.0);
        }
    }

    #[test]
    fn non_fissile_has_zero_fission() {
        let n = u238();
        assert!(!n.fissile());
        assert!(n.fission.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn one_over_v_at_thermal_energies() {
        // Capture at very low energy should grow like 1/sqrt(E).
        let n = u238();
        let a = n.micro_at(1e-10);
        let b = n.micro_at(4e-10); // 4x energy → 1/v halves
        let cap_a = a.absorption;
        let cap_b = b.absorption;
        let ratio = cap_a / cap_b;
        assert!((ratio - 2.0).abs() < 0.1, "1/v ratio = {ratio}");
    }

    #[test]
    fn resonances_appear_in_resolved_range() {
        let n = u238();
        assert!(!n.resonances.is_empty());
        for r in &n.resonances {
            assert!(r.e0 > 1e-6 && r.e0 < 0.2, "resonance at {} MeV", r.e0);
        }
        // Low-lying resonances (where the lambda^2 envelope is large) tower
        // over potential scattering; high-energy ones flatten out, as in
        // real data.
        for r in n.resonances.iter().filter(|r| r.e0 < 1e-4) {
            let at_peak = n.micro_at(r.e0).total;
            assert!(
                at_peak > 100.0,
                "peak total {at_peak} too small at {}",
                r.e0
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = u238();
        let b = u238();
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Nuclide::synthesize(&NuclideSpec::heavy("X", 200.0, false, 1));
        let b = Nuclide::synthesize(&NuclideSpec::heavy("X", 200.0, false, 2));
        assert_ne!(a.total, b.total);
    }

    #[test]
    fn micro_at_interpolates_linearly() {
        let n = u238();
        // Pick an interior interval and test the midpoint.
        let i = n.n_points() / 2;
        let e_mid = 0.5 * (n.energy[i] + n.energy[i + 1]);
        let m = n.micro_at(e_mid);
        let expect = 0.5 * (n.total[i] + n.total[i + 1]);
        assert!((m.total - expect).abs() < 1e-12 * expect.max(1.0));
    }

    #[test]
    fn micro_at_clamps_at_domain_edges() {
        let n = u238();
        let lo = n.micro_at(E_MIN);
        assert!((lo.total - n.total[0]).abs() < 1e-9 * n.total[0]);
        let hi = n.micro_at(E_MAX);
        let last = *n.total.last().unwrap();
        assert!((hi.total - last).abs() < 1e-9 * last);
    }

    #[test]
    fn light_nuclide_is_smooth() {
        let h1 = Nuclide::synthesize(&NuclideSpec::light("H1", 0.9992, 20.0, 0.332, 1001));
        assert!(h1.resonances.is_empty());
        // Elastic is flat (potential only).
        let a = h1.micro_at(1e-6).elastic;
        let b = h1.micro_at(1e-3).elastic;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn voigt_reduces_to_lorentzian_at_small_doppler_width() {
        let gamma_half = 1e-8;
        for &x in &[0.0, 5e-9, 3e-8, 2e-7] {
            let lorentz = gamma_half * gamma_half / (x * x + gamma_half * gamma_half);
            let voigt = voigt_shape(x, gamma_half, gamma_half * 1e-3);
            assert!(
                (voigt - lorentz).abs() < 2e-3 * lorentz.max(1e-12),
                "x={x}: {voigt} vs {lorentz}"
            );
        }
    }

    #[test]
    fn doppler_broadening_lowers_peaks_and_raises_wings() {
        let mut cold_spec = NuclideSpec::heavy("U238c", 236.0, false, 92_238);
        cold_spec.temperature_k = 0.0;
        let mut hot_spec = cold_spec.clone();
        hot_spec.name = "U238h".into();
        hot_spec.temperature_k = 1800.0;
        let cold = Nuclide::synthesize(&cold_spec);
        let hot = Nuclide::synthesize(&hot_spec);

        // Same ladder (same seed). Probe the highest-energy resonance,
        // where the Doppler width Δ ∝ √E0 dwarfs the natural width Γ and
        // neighbours are many Δ away.
        let r = *cold.resonances.last().unwrap();
        let kb = 8.617_333_262e-11;
        let delta = (4.0 * r.e0 * kb * 1800.0 / 236.0).sqrt();
        assert!(delta > 5.0 * r.gamma, "test premise: strongly broadened");

        let peak_cold = cold.micro_at(r.e0).absorption;
        let peak_hot = hot.micro_at(r.e0).absorption;
        assert!(peak_hot < 0.5 * peak_cold, "{peak_hot} !< {peak_cold}");

        // One Doppler width out: inside the hot Gaussian core, deep in
        // the cold Lorentzian tail. Compare the line shapes directly
        // (pointwise-grid interpolation would smear the narrow cold
        // tail, which is a fidelity limit of any pointwise library).
        let half = 0.5 * r.gamma;
        let wing_cold = half * half / (delta * delta + half * half);
        let wing_hot = voigt_shape(delta, half, delta);
        assert!(wing_hot > 10.0 * wing_cold, "{wing_hot} !> 10x {wing_cold}");
    }

    #[test]
    fn doppler_broadening_preserves_line_area() {
        // ∫ V dx = ∫ L dx = π γ: integrate one isolated line numerically.
        let gamma_half = 2e-8;
        let delta = 1e-7; // strongly broadened
        let mut area_v = 0.0;
        let mut area_l = 0.0;
        let n = 40_000;
        let span = 60.0 * (delta + gamma_half);
        let dx = 2.0 * span / n as f64;
        for i in 0..n {
            let x = -span + (i as f64 + 0.5) * dx;
            area_v += voigt_shape(x, gamma_half, delta) * dx;
            area_l += gamma_half * gamma_half / (x * x + gamma_half * gamma_half) * dx;
        }
        assert!(
            ((area_v - area_l) / area_l).abs() < 5e-3,
            "areas: voigt {area_v:e} vs lorentz {area_l:e}"
        );
    }

    #[test]
    fn data_bytes_counts_six_arrays() {
        let n = u238();
        assert_eq!(n.data_bytes(), 6 * 8 * n.n_points());
    }

    #[test]
    fn inelastic_channel_has_a_threshold() {
        let n = u238();
        assert!(n.q_inelastic > 0.0);
        let thr = n.q_inelastic * (n.awr + 1.0) / n.awr;
        assert_eq!(n.micro_at(thr * 0.9).inelastic, 0.0);
        let above = n.micro_at(thr * 4.0).inelastic;
        assert!(above > 0.5, "inelastic above threshold: {above}");
        // Light H-like nuclide: no channel within range if Q large.
        let h1 = Nuclide::synthesize(&NuclideSpec::light("H1", 0.9992, 20.0, 0.332, 1001));
        assert!(h1.micro_at(19.0).inelastic >= 0.0);
    }
}
