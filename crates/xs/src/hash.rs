//! Hash-binned energy grid (the XSBench/RSBench alternative to unionization).
//!
//! The unionized grid ([`crate::grid::UnionGrid`]) buys O(1) per-nuclide
//! index resolution with an index map of `n_union_points × n_nuclides`
//! `u32`s — hundreds of megabytes for the H.M. Large library, a real
//! constraint on a 16 GB accelerator. The hash-binned grid (Tramm et al.'s
//! XSBench line of work) instead divides the full energy range into `N`
//! *log-spaced* bins and stores, per `(bin, nuclide)`, the index of the
//! grid interval containing the bin's lower edge. A lookup is then one
//! float-to-bin hash (no binary search) plus a short bounded scan inside
//! the bin: the index table shrinks to `n_bins × n_nuclides` while the
//! scan stays a handful of points because nuclide grids are themselves
//! near-log-spaced.
//!
//! The scan is written so the resolved index is *exactly*
//! [`crate::grid::lower_bound_index`] of the nuclide's grid — bin-edge
//! rounding in `ln`/`exp` is absorbed by a backward guard — which is what
//! lets every grid backend produce bit-identical cross sections.

use std::cell::Cell;

use crate::nuclide::Nuclide;
use crate::{E_MAX, E_MIN};

/// Log-spaced hash-binned energy index (per-nuclide bin→index bounds).
#[derive(Debug, Clone)]
pub struct HashGrid {
    n_bins: usize,
    n_nuclides: usize,
    log_e_min: f64,
    inv_bin_width: f64,
    /// Bin-major bounds: `bounds[b * n_nuclides + k]` is the local index
    /// into nuclide `k`'s grid of the interval containing bin `b`'s lower
    /// edge (0 for degenerate single-point grids).
    bounds: Vec<u32>,
}

impl HashGrid {
    /// Default bin count for a library with `total_points` grid points
    /// across all nuclides: one bin per ~16 points keeps the in-bin scan
    /// short while the index stays an order of magnitude smaller than the
    /// unionized map.
    pub fn default_bins(total_points: usize) -> usize {
        (total_points / 16).clamp(64, 1 << 20)
    }

    /// Build the bin→index bounds for every nuclide. `O(n_bins ·
    /// n_nuclides + total_points)` via a cursor march per nuclide.
    pub fn build(nuclides: &[Nuclide], n_bins: usize) -> Self {
        assert!(!nuclides.is_empty(), "HashGrid requires at least 1 nuclide");
        assert!(n_bins > 0, "HashGrid requires at least 1 bin");
        let n_nuclides = nuclides.len();
        let log_e_min = E_MIN.ln();
        let bin_width = (E_MAX.ln() - log_e_min) / n_bins as f64;
        let mut bounds = vec![0u32; n_bins * n_nuclides];
        for (k, nuc) in nuclides.iter().enumerate() {
            let g = &nuc.energy;
            if g.len() < 2 {
                continue; // degenerate grid: every bound stays 0
            }
            let mut c = 0usize;
            for b in 0..n_bins {
                let e_start = (log_e_min + b as f64 * bin_width).exp();
                while c < g.len() - 2 && g[c + 1] <= e_start {
                    c += 1;
                }
                bounds[b * n_nuclides + k] = c as u32;
            }
        }
        Self {
            n_bins,
            n_nuclides,
            log_e_min,
            inv_bin_width: 1.0 / bin_width,
            bounds,
        }
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of nuclides covered by the bounds table.
    #[inline]
    pub fn n_nuclides(&self) -> usize {
        self.n_nuclides
    }

    /// Hash an energy to its bin (clamped to `[0, n_bins-1]`; NaN from a
    /// non-positive energy also clamps to 0).
    #[inline]
    pub fn bin_of(&self, e: f64) -> usize {
        let t = (e.ln() - self.log_e_min) * self.inv_bin_width;
        (t as isize).clamp(0, self.n_bins as isize - 1) as usize
    }

    /// The stored per-nuclide starting bounds for bin `b` (length
    /// `n_nuclides`).
    #[inline]
    pub fn bounds_row(&self, b: usize) -> &[u32] {
        &self.bounds[b * self.n_nuclides..(b + 1) * self.n_nuclides]
    }

    /// Resolve the interval index of `e` inside nuclide `k`'s energy
    /// segment `seg`, starting the scan from bin `b`'s stored bound.
    ///
    /// Scan steps taken are accumulated into `steps`. The result is
    /// exactly `lower_bound_index(seg, e)` — the forward scan handles
    /// `e` deeper in the bin, the backward guard absorbs any `ln`/`exp`
    /// rounding at bin edges — so all backends resolve identical indices.
    #[inline]
    pub fn find_in_segment(
        &self,
        b: usize,
        k: usize,
        seg: &[f64],
        e: f64,
        steps: &Cell<u64>,
    ) -> u32 {
        self.find_in_segment_from(self.bounds[b * self.n_nuclides + k] as usize, seg, e, steps)
    }

    /// [`HashGrid::find_in_segment`] with a caller-chosen scan start —
    /// the warm-start entry used by energy-ordered banked lookups, where
    /// the previous lookup's resolved index is a tighter start than the
    /// bin's lower-edge bound.
    ///
    /// The bidirectional scan converges to exactly
    /// [`crate::grid::lower_bound_index`] from *any* starting point, so
    /// warm starts change only the step count, never the resolved index.
    #[inline]
    pub fn find_in_segment_from(
        &self,
        start: usize,
        seg: &[f64],
        e: f64,
        steps: &Cell<u64>,
    ) -> u32 {
        let len = seg.len();
        if len < 2 {
            return 0;
        }
        let mut i = start.min(len - 2);
        let mut n = 0u64;
        while i < len - 2 && seg[i + 1] <= e {
            i += 1;
            n += 1;
        }
        while i > 0 && seg[i] > e {
            i -= 1;
            n += 1;
        }
        steps.set(steps.get() + n);
        i as u32
    }

    /// In-memory size of the index structures in bytes (the hash grid's
    /// answer to [`crate::grid::UnionGrid::data_bytes`]).
    pub fn index_bytes(&self) -> usize {
        self.bounds.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::lower_bound_index;
    use crate::nuclide::NuclideSpec;

    fn small_set() -> Vec<Nuclide> {
        vec![
            Nuclide::synthesize(&NuclideSpec::heavy("A", 230.0, false, 11)),
            Nuclide::synthesize(&NuclideSpec::heavy("B", 235.0, true, 22)),
            Nuclide::synthesize(&NuclideSpec::light("H", 1.0, 20.0, 0.3, 33)),
        ]
    }

    #[test]
    fn resolves_exactly_like_binary_search() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 512);
        let steps = Cell::new(0u64);
        let mut e = 1.3e-11;
        while e < 25.0 {
            let b = h.bin_of(e);
            for (k, n) in nucs.iter().enumerate() {
                let via_hash = h.find_in_segment(b, k, &n.energy, e, &steps) as usize;
                let via_search = lower_bound_index(&n.energy, e);
                assert_eq!(via_hash, via_search, "e={e} k={k}");
            }
            e *= 1.37;
        }
        assert!(steps.get() > 0);
    }

    #[test]
    fn bin_edges_and_out_of_range_energies_clamp() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 64);
        assert_eq!(h.bin_of(E_MIN), 0);
        assert_eq!(h.bin_of(E_MIN / 10.0), 0);
        assert_eq!(h.bin_of(E_MAX), h.n_bins() - 1);
        assert_eq!(h.bin_of(E_MAX * 10.0), h.n_bins() - 1);
        assert_eq!(h.bin_of(-1.0), 0); // ln(-1) = NaN clamps low
    }

    #[test]
    fn bounds_are_in_segment_range() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 256);
        for b in 0..h.n_bins() {
            for (k, n) in nucs.iter().enumerate() {
                let bound = h.bounds_row(b)[k] as usize;
                assert!(bound <= n.energy.len().saturating_sub(2), "b={b} k={k}");
            }
        }
    }

    #[test]
    fn bounds_monotone_in_bin_per_nuclide() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 128);
        for k in 0..nucs.len() {
            for b in 1..h.n_bins() {
                assert!(h.bounds_row(b)[k] >= h.bounds_row(b - 1)[k]);
            }
        }
    }

    #[test]
    fn index_bytes_formula() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 100);
        assert_eq!(h.index_bytes(), 100 * nucs.len() * 4);
    }

    #[test]
    fn degenerate_single_point_grid_stays_in_bounds() {
        let mut nucs = small_set();
        // A pathological one-point nuclide: the builder must not underflow
        // and every stored bound must stay 0.
        let mut one = nucs[0].clone();
        one.energy = vec![1.0e-6];
        one.total = vec![1.0];
        nucs.push(one);
        let h = HashGrid::build(&nucs, 32);
        let steps = Cell::new(0u64);
        for b in 0..h.n_bins() {
            assert_eq!(h.bounds_row(b)[3], 0);
        }
        assert_eq!(h.find_in_segment(5, 3, &[1.0e-6], 1.0, &steps), 0);
        assert_eq!(steps.get(), 0);
    }

    #[test]
    fn duplicate_energies_across_nuclides_resolve_consistently() {
        // Two nuclides sharing identical grids: bounds rows must agree.
        let nucs = small_set();
        let twin = vec![nucs[0].clone(), nucs[0].clone()];
        let h = HashGrid::build(&twin, 64);
        for b in 0..h.n_bins() {
            let row = h.bounds_row(b);
            assert_eq!(row[0], row[1]);
        }
    }

    #[test]
    fn warm_start_resolves_exactly_like_binary_search() {
        // From any starting index — bin bound, previous resolution, 0,
        // end of grid — the scan must land on the same lower bound.
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 128);
        let steps = Cell::new(0u64);
        let mut e = 1.7e-11;
        while e < 25.0 {
            for (k, n) in nucs.iter().enumerate() {
                let want = lower_bound_index(&n.energy, e);
                for start in [0, want / 2, want, want + 3, n.energy.len() * 2] {
                    let got = h.find_in_segment_from(start, &n.energy, e, &steps) as usize;
                    assert_eq!(got, want, "e={e} k={k} start={start}");
                }
            }
            e *= 1.61;
        }
    }

    #[test]
    fn warm_start_near_answer_takes_fewer_steps() {
        let nucs = small_set();
        let h = HashGrid::build(&nucs, 64);
        let e = 1.0e-3;
        let seg = &nucs[0].energy;
        let want = lower_bound_index(seg, e);
        let cold = Cell::new(0u64);
        h.find_in_segment_from(0, seg, e, &cold);
        let warm = Cell::new(0u64);
        h.find_in_segment_from(want, seg, e, &warm);
        assert_eq!(warm.get(), 0);
        assert!(cold.get() > 0);
    }

    #[test]
    fn one_nuclide_library_builds() {
        let nucs = vec![small_set().remove(2)];
        let h = HashGrid::build(&nucs, 16);
        assert_eq!(h.n_nuclides(), 1);
        let steps = Cell::new(0u64);
        let e = 1.0e-3;
        let got = h.find_in_segment(h.bin_of(e), 0, &nucs[0].energy, e, &steps) as usize;
        assert_eq!(got, lower_bound_index(&nucs[0].energy, e));
    }
}
