//! S(α,β) thermal-scattering treatment (substitute).
//!
//! Below a few eV, neutrons scatter off hydrogen *bound* in water, not free
//! protons; OpenMC corrects the elastic cross section and the outgoing
//! energy/angle via S(α,β) table lookups (§II-A3). The paper's point about
//! this physics is structural: it is a *branchy, table-driven* adjustment
//! (temperature branch, elastic/inelastic branch, discrete β-bin sampling)
//! that defeated vectorization and had to be stripped from the banked
//! micro-benchmarks.
//!
//! This module synthesizes a table with the same structure: a tabulated
//! enhancement factor on the bound-atom cross section, two temperature
//! grids requiring an interpolation branch, and a discrete-bin outgoing
//! energy sampler with per-sample conditionals.

use mcs_rng::Philox4x32;

/// Upper energy bound of thermal treatment: 4 eV, in MeV.
pub const SAB_CUTOFF: f64 = 4.0e-6;

/// A synthesized S(α,β) table for one bound nuclide.
#[derive(Debug, Clone)]
pub struct SabTable {
    /// Energy grid (MeV), ascending, spanning (0, SAB_CUTOFF].
    pub energy: Vec<f64>,
    /// Bound-enhancement factor on elastic scattering per (temperature,
    /// energy): `factor[t][i]` multiplies the free-atom σ_s.
    pub factor: Vec<Vec<f64>>,
    /// Temperatures (K) for the temperature branch.
    pub temperatures: Vec<f64>,
    /// Discrete outgoing-energy bin boundaries (fractions of incident E).
    pub beta_bins: Vec<f64>,
    /// CDF over the β bins, per energy point: `beta_cdf[i][b]`.
    pub beta_cdf: Vec<Vec<f64>>,
}

impl SabTable {
    /// Synthesize a water-hydrogen-like table. Deterministic in `seed`.
    pub fn synthesize(seed: u64) -> Self {
        let mut rng = Philox4x32::new(seed ^ 0x5ab_5ab);
        let n_e = 48;
        let temperatures = vec![293.6, 600.0];

        // Log-spaced grid from 1e-11 MeV to the cutoff.
        let lo = 1.0e-11f64.ln();
        let hi = SAB_CUTOFF.ln();
        let energy: Vec<f64> = (0..n_e)
            .map(|i| (lo + (hi - lo) * i as f64 / (n_e - 1) as f64).exp())
            .collect();

        // Bound enhancement: large at the lowest energies (~4x for H in
        // H2O), decaying to 1 at the cutoff; hotter table slightly flatter.
        let factor: Vec<Vec<f64>> = temperatures
            .iter()
            .enumerate()
            .map(|(t, _)| {
                energy
                    .iter()
                    .map(|&e| {
                        let x = (e / SAB_CUTOFF).ln() / (lo - hi); // 0 at cutoff → 1 at floor
                        let peak = if t == 0 { 3.0 } else { 2.4 };
                        1.0 + peak * x.clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();

        // Outgoing energy: 8 discrete bins of E_out/E_in in [0, 2.5]
        // (up-scatter possible in thermal range), CDFs roughened per
        // energy point so sampling branches are data-dependent.
        let beta_bins: Vec<f64> = (0..=8).map(|b| b as f64 * 2.5 / 8.0).collect();
        let beta_cdf: Vec<Vec<f64>> = energy
            .iter()
            .map(|_| {
                let mut w: Vec<f64> = (0..8).map(|_| 0.1 + rng.next_uniform()).collect();
                let s: f64 = w.iter().sum();
                let mut acc = 0.0;
                for v in &mut w {
                    acc += *v / s;
                    *v = acc;
                }
                *w.last_mut().unwrap() = 1.0;
                w
            })
            .collect();

        Self {
            energy,
            factor,
            temperatures,
            beta_bins,
            beta_cdf,
        }
    }

    /// Whether thermal treatment applies at `e`.
    #[inline]
    pub fn in_range(&self, e: f64) -> bool {
        e < SAB_CUTOFF
    }

    /// The elastic enhancement factor at `(e, temperature)`, with the
    /// temperature branch and linear interpolation in energy.
    pub fn elastic_factor(&self, e: f64, temperature: f64) -> f64 {
        if !self.in_range(e) {
            return 1.0;
        }
        // Temperature branch: nearest table (OpenMC interpolates or picks
        // by stochastic mixing; nearest keeps the branch).
        let t = if temperature < 0.5 * (self.temperatures[0] + self.temperatures[1]) {
            0
        } else {
            1
        };
        let i = crate::grid::lower_bound_index(&self.energy, e);
        let e0 = self.energy[i];
        let e1 = self.energy[i + 1];
        let f = ((e - e0) / (e1 - e0)).clamp(0.0, 1.0);
        self.factor[t][i] + f * (self.factor[t][i + 1] - self.factor[t][i])
    }

    /// Sample the outgoing energy fraction and scattering cosine from the
    /// discrete-bin tables (two uniforms consumed).
    pub fn sample_outgoing(&self, e: f64, xi1: f64, xi2: f64) -> (f64, f64) {
        let i = crate::grid::lower_bound_index(&self.energy, e.min(SAB_CUTOFF));
        let cdf = &self.beta_cdf[i];
        // Discrete bin search — the branchy part.
        let mut b = 0;
        while b < cdf.len() - 1 && xi1 > cdf[b] {
            b += 1;
        }
        let frac_lo = self.beta_bins[b];
        let frac_hi = self.beta_bins[b + 1];
        // Uniform within the bin for the energy fraction; angle coupled to
        // the bin parity (a stand-in for the (α,β) correlation).
        let frac = frac_lo + (frac_hi - frac_lo) * ((xi1 - prev_cdf(cdf, b)) / bin_w(cdf, b));
        let mu = if b % 2 == 0 {
            2.0 * xi2 - 1.0
        } else {
            xi2.mul_add(1.0, -0.5).clamp(-1.0, 1.0)
        };
        let e_out = (frac * e).max(1e-12);
        (e_out, mu)
    }
}

#[inline]
fn prev_cdf(cdf: &[f64], b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        cdf[b - 1]
    }
}

#[inline]
fn bin_w(cdf: &[f64], b: usize) -> f64 {
    (cdf[b] - prev_cdf(cdf, b)).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_one_above_cutoff() {
        let t = SabTable::synthesize(1);
        assert_eq!(t.elastic_factor(1.0e-5, 293.6), 1.0);
        assert_eq!(t.elastic_factor(1.0, 293.6), 1.0);
    }

    #[test]
    fn factor_grows_toward_low_energy() {
        let t = SabTable::synthesize(1);
        let near_cutoff = t.elastic_factor(3.9e-6, 293.6);
        let cold = t.elastic_factor(1.0e-10, 293.6);
        assert!(cold > near_cutoff);
        assert!(cold > 2.0 && cold < 5.0, "cold factor = {cold}");
    }

    #[test]
    fn temperature_branch_changes_result() {
        let t = SabTable::synthesize(1);
        let lo_t = t.elastic_factor(1.0e-9, 293.6);
        let hi_t = t.elastic_factor(1.0e-9, 600.0);
        assert_ne!(lo_t, hi_t);
    }

    #[test]
    fn outgoing_samples_cover_bins_and_stay_physical() {
        let t = SabTable::synthesize(2);
        let e = 1.0e-7;
        let mut rng = mcs_rng::Philox4x32::new(99);
        let mut saw_up = false;
        let mut saw_down = false;
        for _ in 0..500 {
            let (e_out, mu) = t.sample_outgoing(e, rng.next_uniform(), rng.next_uniform());
            assert!(e_out > 0.0);
            assert!((-1.0..=1.0).contains(&mu));
            assert!(e_out <= 2.5 * e + 1e-12);
            if e_out > e {
                saw_up = true;
            }
            if e_out < e {
                saw_down = true;
            }
        }
        // Thermal range: both up- and down-scatter must occur.
        assert!(saw_up && saw_down);
    }

    #[test]
    fn synthesis_deterministic() {
        let a = SabTable::synthesize(5);
        let b = SabTable::synthesize(5);
        assert_eq!(a.beta_cdf, b.beta_cdf);
    }
}
