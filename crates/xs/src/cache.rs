//! Process-wide cache of constructed [`XsContext`] data.
//!
//! Grid-index construction (unionized index maps in particular) dominates
//! setup time for the H.M. models, and both mcs-check and the bench
//! harnesses build the *same* library + backend combination many times per
//! process — once per invariant step, once per ablation cell. This module
//! memoizes the fully assembled context behind an
//! `Arc<XsContext>` keyed by `(model hash, backend kind)` so identical
//! indices are built exactly once.
//!
//! Callers receive a *clone* of the cached context, not the `Arc` itself:
//! [`XsContext`]'s `Clone` resets the instrumentation atomics, so every
//! problem keeps independent counters while sharing nothing mutable with
//! other users. The clone copies the heavyweight data (library, layouts,
//! grid index) — that copy is a `memcpy`-style traversal, orders of
//! magnitude cheaper than re-synthesizing nuclides and rebuilding indices.
//!
//! The cache is bounded: a small FIFO of recently built models. Eviction
//! only drops the cache's own `Arc`; outstanding clones are unaffected.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::context::{GridBackendKind, XsContext};
use crate::library::{LibrarySpec, NuclideLibrary};

/// Cache capacity: distinct `(model, backend)` cells kept alive. The full
/// ablation sweep uses 2 models × 3 backends = 6 cells.
const CAPACITY: usize = 6;

struct ContextCache {
    map: HashMap<(u64, GridBackendKind), Arc<XsContext>>,
    /// Insertion order for FIFO eviction.
    order: Vec<(u64, GridBackendKind)>,
}

fn cache() -> &'static Mutex<ContextCache> {
    static CACHE: OnceLock<Mutex<ContextCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(ContextCache {
            map: HashMap::new(),
            order: Vec::new(),
        })
    })
}

impl LibrarySpec {
    /// Stable hash of every field that determines the built library (and
    /// hence the grid indices). Floats hash via `to_bits`, so two specs
    /// collide iff [`NuclideLibrary::build`] would produce identical data.
    pub fn cache_key(&self) -> u64 {
        // FNV-1a over the field bits: no_std-simple, stable across runs.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.n_fuel_nuclides as u64);
        mix(self.grid_density.to_bits());
        mix(self.fuel_temperature_k.to_bits());
        mix(self.seed);
        h
    }
}

/// Fetch (or build and cache) the context for `(key, kind)`, returning a
/// counter-fresh clone. `build` runs only on a miss, outside the cache
/// lock, so concurrent misses on *different* cells build in parallel.
/// (Concurrent misses on the same cell may race to build; the first insert
/// wins and the loser's work is dropped — correctness is unaffected
/// because builds are deterministic in the key.)
pub fn context_for(
    key: u64,
    kind: GridBackendKind,
    build: impl FnOnce() -> NuclideLibrary,
) -> XsContext {
    if let Some(hit) = cache().lock().unwrap().map.get(&(key, kind)) {
        return hit.as_ref().clone();
    }
    let built = Arc::new(XsContext::new(build(), kind));
    let out = built.as_ref().clone();
    let mut c = cache().lock().unwrap();
    if !c.map.contains_key(&(key, kind)) {
        if c.order.len() >= CAPACITY {
            let oldest = c.order.remove(0);
            c.map.remove(&oldest);
        }
        c.order.push((key, kind));
        c.map.insert((key, kind), built);
    }
    out
}

/// Fetch (or build and cache) the context for a [`LibrarySpec`] — the
/// common entry point: key derivation and library construction both come
/// from the spec.
pub fn context_for_spec(spec: &LibrarySpec, kind: GridBackendKind) -> XsContext {
    context_for(spec.cache_key(), kind, || NuclideLibrary::build(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;

    #[test]
    fn cache_key_separates_specs_and_is_stable() {
        let a = LibrarySpec::tiny();
        assert_eq!(a.cache_key(), LibrarySpec::tiny().cache_key());
        assert_ne!(a.cache_key(), LibrarySpec::hm_small().cache_key());
        assert_ne!(
            a.cache_key(),
            LibrarySpec::tiny().with_grid_density(2.0).cache_key()
        );
        assert_ne!(
            a.cache_key(),
            LibrarySpec::tiny().with_fuel_temperature(900.0).cache_key()
        );
        let reseeded = LibrarySpec {
            seed: 43,
            ..LibrarySpec::tiny()
        };
        assert_ne!(a.cache_key(), reseeded.cache_key());
    }

    #[test]
    fn cached_contexts_share_data_but_not_counters() {
        let spec = LibrarySpec::tiny();
        let a = context_for_spec(&spec, GridBackendKind::HashBinned);
        let fuel = Material::hm_fuel(a.lib());
        a.macro_xs(&fuel, 1.0e-3);
        assert!(a.lookups() > 0);
        // A second fetch is a cache hit with fresh counters and
        // bit-identical data.
        let b = context_for_spec(&spec, GridBackendKind::HashBinned);
        assert_eq!(b.lookups(), 0);
        let xa = a.macro_xs(&fuel, 2.0e-6);
        let xb = b.macro_xs(&fuel, 2.0e-6);
        assert_eq!(xa.total.to_bits(), xb.total.to_bits());
    }

    #[test]
    fn distinct_backends_occupy_distinct_cells() {
        let spec = LibrarySpec::tiny();
        let u = context_for_spec(&spec, GridBackendKind::Unionized);
        let h = context_for_spec(&spec, GridBackendKind::HashBinned);
        assert_ne!(u.backend_kind(), h.backend_kind());
    }
}
