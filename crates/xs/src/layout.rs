//! AoS and SoA flattenings of a nuclide library.
//!
//! The paper's single most important MIC optimization (§III-A1) is the
//! transformation of arrays of Fortran derived types into isolated arrays
//! ("AoS to SoA"). Both layouts are implemented so the ablation benchmark
//! can measure exactly that transform:
//!
//! * [`AosLibrary`] — one array of [`GridPoint`] records per library
//!   (energy + 5 reactions packed in 48 bytes). A scalar lookup touches one
//!   or two cache lines; a vector gather of one reaction across nuclides
//!   touches eight.
//! * [`SoaLibrary`] — six flat, 64-byte-aligned arrays. A vector gather of
//!   one reaction across nuclides touches only that reaction's array.

use mcs_simd::AVec64;

use crate::library::NuclideLibrary;

/// One pointwise record in the AoS layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct GridPoint {
    /// Energy (MeV).
    pub energy: f64,
    /// Total cross section (barns).
    pub total: f64,
    /// Elastic cross section.
    pub elastic: f64,
    /// Inelastic cross section.
    pub inelastic: f64,
    /// Absorption cross section.
    pub absorption: f64,
    /// Fission cross section.
    pub fission: f64,
}

// The AoS record layout the ablation measures: energy + 5 reactions,
// 6 × 8 = 48 bytes, no padding.
const _: () = assert!(std::mem::size_of::<GridPoint>() == 48);

/// Array-of-structs flattening: all nuclides' points concatenated.
#[derive(Debug, Clone)]
pub struct AosLibrary {
    /// `offsets[k]..offsets[k+1]` is nuclide `k`'s range in `points`.
    pub offsets: Vec<u32>,
    /// All grid points.
    pub points: Vec<GridPoint>,
}

impl AosLibrary {
    /// Flatten a library.
    pub fn build(lib: &NuclideLibrary) -> Self {
        let mut offsets = Vec::with_capacity(lib.len() + 1);
        let mut points = Vec::with_capacity(lib.total_points());
        let mut off = 0u32;
        for n in &lib.nuclides {
            offsets.push(off);
            for i in 0..n.n_points() {
                points.push(GridPoint {
                    energy: n.energy[i],
                    total: n.total[i],
                    elastic: n.elastic[i],
                    inelastic: n.inelastic[i],
                    absorption: n.absorption[i],
                    fission: n.fission[i],
                });
            }
            off += n.n_points() as u32;
        }
        offsets.push(off);
        Self { offsets, points }
    }

    /// Nuclide `k`'s points.
    #[inline]
    pub fn nuclide_points(&self, k: usize) -> &[GridPoint] {
        &self.points[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Size of the flattened data in bytes.
    pub fn data_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<GridPoint>()
    }
}

/// Struct-of-arrays flattening: five parallel flat arrays.
#[derive(Debug, Clone)]
pub struct SoaLibrary {
    /// `offsets[k]..offsets[k+1]` is nuclide `k`'s range in each array.
    pub offsets: Vec<u32>,
    /// Energies (MeV).
    pub energy: AVec64,
    /// Total cross sections.
    pub total: AVec64,
    /// Elastic cross sections.
    pub elastic: AVec64,
    /// Inelastic cross sections.
    pub inelastic: AVec64,
    /// Absorption cross sections.
    pub absorption: AVec64,
    /// Fission cross sections.
    pub fission: AVec64,
}

impl SoaLibrary {
    /// Flatten a library.
    pub fn build(lib: &NuclideLibrary) -> Self {
        let total_pts = lib.total_points();
        let mut offsets = Vec::with_capacity(lib.len() + 1);
        let mut energy = AVec64::zeros(total_pts);
        let mut total = AVec64::zeros(total_pts);
        let mut elastic = AVec64::zeros(total_pts);
        let mut inelastic = AVec64::zeros(total_pts);
        let mut absorption = AVec64::zeros(total_pts);
        let mut fission = AVec64::zeros(total_pts);

        let mut off = 0usize;
        for n in &lib.nuclides {
            offsets.push(off as u32);
            let m = n.n_points();
            energy.as_mut_slice()[off..off + m].copy_from_slice(&n.energy);
            total.as_mut_slice()[off..off + m].copy_from_slice(&n.total);
            elastic.as_mut_slice()[off..off + m].copy_from_slice(&n.elastic);
            inelastic.as_mut_slice()[off..off + m].copy_from_slice(&n.inelastic);
            absorption.as_mut_slice()[off..off + m].copy_from_slice(&n.absorption);
            fission.as_mut_slice()[off..off + m].copy_from_slice(&n.fission);
            off += m;
        }
        offsets.push(off as u32);

        Self {
            offsets,
            energy,
            total,
            elastic,
            inelastic,
            absorption,
            fission,
        }
    }

    /// Number of nuclides.
    #[inline]
    pub fn n_nuclides(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of the flattened data in bytes.
    pub fn data_bytes(&self) -> usize {
        6 * self.energy.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibrarySpec;

    fn lib() -> NuclideLibrary {
        NuclideLibrary::build(&LibrarySpec::tiny())
    }

    #[test]
    fn aos_preserves_values() {
        let l = lib();
        let aos = AosLibrary::build(&l);
        for (k, n) in l.nuclides.iter().enumerate() {
            let pts = aos.nuclide_points(k);
            assert_eq!(pts.len(), n.n_points());
            assert_eq!(pts[0].energy, n.energy[0]);
            let last = pts.len() - 1;
            assert_eq!(pts[last].total, n.total[last]);
        }
    }

    #[test]
    fn soa_preserves_values() {
        let l = lib();
        let soa = SoaLibrary::build(&l);
        assert_eq!(soa.n_nuclides(), l.len());
        for (k, n) in l.nuclides.iter().enumerate() {
            let off = soa.offsets[k] as usize;
            for i in (0..n.n_points()).step_by(17) {
                assert_eq!(soa.energy[off + i], n.energy[i]);
                assert_eq!(soa.absorption[off + i], n.absorption[i]);
            }
        }
    }

    #[test]
    fn layouts_have_equal_data_volume() {
        let l = lib();
        let aos = AosLibrary::build(&l);
        let soa = SoaLibrary::build(&l);
        assert_eq!(aos.data_bytes(), soa.data_bytes());
        assert_eq!(aos.data_bytes(), l.data_bytes());
    }

    #[test]
    fn gridpoint_is_48_bytes() {
        assert_eq!(std::mem::size_of::<GridPoint>(), 48);
    }

    #[test]
    fn soa_arrays_are_aligned() {
        let soa = SoaLibrary::build(&lib());
        assert_eq!(soa.total.as_slice().as_ptr() as usize % 64, 0);
    }
}
