//! The unified cross-section lookup context.
//!
//! [`XsContext`] owns the nuclide library, both flattened layouts, and one
//! [`GridBackend`] — the structure that resolves, for an energy, each
//! nuclide's bracketing grid interval. Three backends are provided:
//!
//! * [`GridBackendKind::PerNuclideBinary`] — one binary search per nuclide
//!   per lookup (the pre-Leppänen baseline the grid ablation measures).
//! * [`GridBackendKind::Unionized`] — the paper's unionized energy grid
//!   ([`UnionGrid`]): one binary search total, then O(1) per-nuclide index
//!   rows, at an index-map cost of `n_union_points × n_nuclides` `u32`s.
//! * [`GridBackendKind::HashBinned`] — the XSBench-style hash grid
//!   ([`HashGrid`]): O(1) bin hash plus a short in-bin scan, with an index
//!   table of only `n_bins × n_nuclides` `u32`s.
//!
//! Every backend resolves exactly the index a per-nuclide binary search
//! would, and every path funnels into the shared kernels of
//! [`crate::kernel`], so for any material and energy the scalar path, the
//! SIMD path, and all three backends produce **bit-identical** cross
//! sections. That is what allows the transport drivers to treat the
//! backend as a pure performance knob without touching the repo's
//! determinism contract.
//!
//! The context also instruments itself: `xs.lookups` (macroscopic lookups
//! served), `xs.bin_scan_steps` (hash-grid scan steps),
//! `xs.gather_span_bytes` / `xs.gather_span_pairs` (the byte distance
//! between the index rows touched by consecutive lookups of one batch
//! call — the gather-locality proxy the event queueing ablation reads),
//! and `xs.index_bytes` (resident index-structure size) are kept in
//! relaxed atomics and exported into [`mcs_prof::Counters`] via
//! [`XsContext::export_counters`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::grid::{lower_bound_index, UnionGrid};
use crate::hash::HashGrid;
use crate::kernel::{
    batch_outer_simd_with, macro_xs_aos_seq, macro_xs_lanes_scalar, macro_xs_lanes_simd,
    macro_xs_seq, MacroXs, NuclideIndexer,
};
use crate::layout::{AosLibrary, SoaLibrary};
use crate::library::NuclideLibrary;
use crate::material::Material;

/// Which grid backend an [`XsContext`] should build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GridBackendKind {
    /// One binary search per nuclide per lookup (no index structure).
    PerNuclideBinary,
    /// Unionized energy grid with per-nuclide index maps (the default;
    /// the paper's configuration).
    #[default]
    Unionized,
    /// Log-spaced hash bins with per-nuclide bin bounds and a bounded
    /// in-bin scan.
    HashBinned,
}

impl GridBackendKind {
    /// All backends, in ablation order.
    pub const ALL: [GridBackendKind; 3] = [
        GridBackendKind::PerNuclideBinary,
        GridBackendKind::Unionized,
        GridBackendKind::HashBinned,
    ];

    /// Stable lowercase name (used in CSV rows and JSON results).
    pub fn name(&self) -> &'static str {
        match self {
            GridBackendKind::PerNuclideBinary => "binary",
            GridBackendKind::Unionized => "unionized",
            GridBackendKind::HashBinned => "hash",
        }
    }

    /// Parse a [`Self::name`] back (for CLI/env plumbing).
    pub fn from_name(s: &str) -> Option<GridBackendKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A built grid backend: the index structures behind one strategy.
#[derive(Debug, Clone)]
pub enum GridBackend {
    /// No index structure; every lookup binary-searches each nuclide.
    PerNuclideBinary,
    /// The unionized grid and its index maps.
    Unionized(UnionGrid),
    /// The hash-binned grid and its bounds table.
    HashBinned(HashGrid),
}

impl GridBackend {
    /// Which kind this backend is.
    pub fn kind(&self) -> GridBackendKind {
        match self {
            GridBackend::PerNuclideBinary => GridBackendKind::PerNuclideBinary,
            GridBackend::Unionized(_) => GridBackendKind::Unionized,
            GridBackend::HashBinned(_) => GridBackendKind::HashBinned,
        }
    }
}

/// Unified cross-section lookup context: library + layouts + grid backend
/// behind one API surface, with built-in instrumentation.
#[derive(Debug)]
pub struct XsContext {
    lib: NuclideLibrary,
    aos: AosLibrary,
    soa: SoaLibrary,
    backend: GridBackend,
    lookups: AtomicU64,
    bin_scan_steps: AtomicU64,
    gather_span_bytes: AtomicU64,
    gather_span_pairs: AtomicU64,
}

impl Clone for XsContext {
    /// Clones the data structures; the instrumentation counters of the
    /// clone start from zero.
    fn clone(&self) -> Self {
        Self {
            lib: self.lib.clone(),
            aos: self.aos.clone(),
            soa: self.soa.clone(),
            backend: self.backend.clone(),
            lookups: AtomicU64::new(0),
            bin_scan_steps: AtomicU64::new(0),
            gather_span_bytes: AtomicU64::new(0),
            gather_span_pairs: AtomicU64::new(0),
        }
    }
}

/// Gather-locality tracker for one batch-driver call: accumulates the
/// byte distance between the backend index rows touched by *consecutive*
/// lookups (union grid point rows, hash bin bounds rows; the per-nuclide
/// binary backend has no shared index and contributes nothing).
///
/// One tracker lives per driver call, so spans never straddle unrelated
/// call sites; the totals flush into the context's relaxed atomics when
/// the call completes. The mean span per pair is the cache-miss proxy the
/// event-queueing ablation reports: energy-ordered banks walk adjacent
/// rows, unordered banks jump across the whole index.
struct SpanTracker {
    primed: Cell<bool>,
    last: Cell<u64>,
    bytes: Cell<u64>,
    pairs: Cell<u64>,
}

impl SpanTracker {
    fn new() -> Self {
        Self {
            primed: Cell::new(false),
            last: Cell::new(0),
            bytes: Cell::new(0),
            pairs: Cell::new(0),
        }
    }

    /// Record that a lookup touched index row `pos` (row stride
    /// `row_bytes`).
    #[inline]
    fn observe(&self, pos: u64, row_bytes: u64) {
        if self.primed.get() {
            let prev = self.last.get();
            let d = pos.abs_diff(prev);
            self.bytes.set(self.bytes.get() + d * row_bytes);
            self.pairs.set(self.pairs.get() + 1);
        }
        self.primed.set(true);
        self.last.set(pos);
    }
}

// ---------------------------------------------------------------------
// Index resolvers (one per backend), monomorphized into the kernels.
// ---------------------------------------------------------------------

struct UnionIx<'a> {
    row: &'a [u32],
}

impl NuclideIndexer for UnionIx<'_> {
    #[inline(always)]
    fn index(&self, k: usize) -> u32 {
        self.row[k]
    }
}

struct BinaryIx<'a> {
    soa: &'a SoaLibrary,
    e: f64,
}

impl NuclideIndexer for BinaryIx<'_> {
    #[inline(always)]
    fn index(&self, k: usize) -> u32 {
        let lo = self.soa.offsets[k] as usize;
        let hi = self.soa.offsets[k + 1] as usize;
        let seg = &self.soa.energy.as_slice()[lo..hi];
        if seg.len() < 2 {
            return 0;
        }
        lower_bound_index(seg, self.e) as u32
    }
}

struct HashIx<'a> {
    hash: &'a HashGrid,
    soa: &'a SoaLibrary,
    e: f64,
    bin: usize,
    steps: &'a Cell<u64>,
}

impl NuclideIndexer for HashIx<'_> {
    #[inline(always)]
    fn index(&self, k: usize) -> u32 {
        let lo = self.soa.offsets[k] as usize;
        let hi = self.soa.offsets[k + 1] as usize;
        let seg = &self.soa.energy.as_slice()[lo..hi];
        self.hash
            .find_in_segment(self.bin, k, seg, self.e, self.steps)
    }
}

/// Per-energy index resolver handed out to the physics layer (one
/// resolution context per collision, replacing `grid.find` + row walks).
///
/// Hash-grid scan steps accumulate locally and flush into the owning
/// context's counters when the indexer drops.
pub struct EnergyIndexer<'a> {
    inner: IxInner<'a>,
}

enum IxInner<'a> {
    Union(&'a [u32]),
    Binary {
        soa: &'a SoaLibrary,
        e: f64,
    },
    Hash {
        hash: &'a HashGrid,
        soa: &'a SoaLibrary,
        e: f64,
        bin: usize,
        steps: Cell<u64>,
        sink: &'a AtomicU64,
    },
}

impl EnergyIndexer<'_> {
    /// Interval index into nuclide `k`'s grid for this indexer's energy —
    /// exactly what a per-nuclide binary search would return.
    #[inline]
    pub fn index(&self, k: usize) -> u32 {
        match &self.inner {
            IxInner::Union(row) => row[k],
            IxInner::Binary { soa, e } => BinaryIx { soa, e: *e }.index(k),
            IxInner::Hash {
                hash,
                soa,
                e,
                bin,
                steps,
                ..
            } => HashIx {
                hash,
                soa,
                e: *e,
                bin: *bin,
                steps,
            }
            .index(k),
        }
    }
}

impl Drop for EnergyIndexer<'_> {
    fn drop(&mut self) {
        if let IxInner::Hash { steps, sink, .. } = &self.inner {
            let n = steps.get();
            if n > 0 {
                sink.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Warm-start hash resolver for energy-ordered banks: per nuclide, the
/// scan restarts from the previous lookup's resolved index whenever the
/// energy hashes to the same bin (otherwise from the bin's stored bound,
/// like [`HashIx`]). The bidirectional scan resolves the exact lower
/// bound from any start, so this only changes `bin_scan_steps`, never
/// the cross sections.
struct HashWarmIx<'a> {
    hash: &'a HashGrid,
    soa: &'a SoaLibrary,
    e: f64,
    bin: usize,
    steps: &'a Cell<u64>,
    cursor: &'a [Cell<u32>],
    cursor_bin: &'a [Cell<u32>],
}

impl NuclideIndexer for HashWarmIx<'_> {
    #[inline(always)]
    fn index(&self, k: usize) -> u32 {
        let lo = self.soa.offsets[k] as usize;
        let hi = self.soa.offsets[k + 1] as usize;
        let seg = &self.soa.energy.as_slice()[lo..hi];
        let i = if self.cursor_bin[k].get() == self.bin as u32 {
            self.hash
                .find_in_segment_from(self.cursor[k].get() as usize, seg, self.e, self.steps)
        } else {
            self.hash
                .find_in_segment(self.bin, k, seg, self.e, self.steps)
        };
        self.cursor[k].set(i);
        self.cursor_bin[k].set(self.bin as u32);
        i
    }
}

/// Dispatch to the backend-specific resolver, binding it as `$ix` in
/// `$body`. `$steps` is a `Cell<u64>` collecting hash scan steps;
/// `$span` is the call's [`SpanTracker`] observing which index row the
/// lookup touches (no observation for the index-free binary backend).
macro_rules! with_resolver {
    ($self:ident, $e:expr, $steps:ident, $span:ident, $ix:ident => $body:expr) => {
        match &$self.backend {
            GridBackend::Unionized(g) => {
                let u = g.find($e);
                $span.observe(u as u64, (g.n_nuclides() * 4) as u64);
                let $ix = UnionIx {
                    row: g.index_row(u),
                };
                $body
            }
            GridBackend::PerNuclideBinary => {
                let $ix = BinaryIx {
                    soa: &$self.soa,
                    e: $e,
                };
                $body
            }
            GridBackend::HashBinned(h) => {
                let bin = h.bin_of($e);
                $span.observe(bin as u64, (h.n_nuclides() * 4) as u64);
                let $ix = HashIx {
                    hash: h,
                    soa: &$self.soa,
                    e: $e,
                    bin,
                    steps: &$steps,
                };
                $body
            }
        }
    };
}

impl XsContext {
    /// Build a context over `lib` with the given backend (hash backend
    /// gets [`HashGrid::default_bins`]).
    pub fn new(lib: NuclideLibrary, kind: GridBackendKind) -> Self {
        match kind {
            GridBackendKind::HashBinned => {
                let bins = HashGrid::default_bins(lib.total_points());
                Self::with_hash_bins(lib, bins)
            }
            GridBackendKind::Unionized => {
                let grid = UnionGrid::build(&lib.nuclides);
                Self::assemble(lib, GridBackend::Unionized(grid))
            }
            GridBackendKind::PerNuclideBinary => Self::assemble(lib, GridBackend::PerNuclideBinary),
        }
    }

    /// Build a hash-binned context with an explicit bin count.
    pub fn with_hash_bins(lib: NuclideLibrary, n_bins: usize) -> Self {
        let hash = HashGrid::build(&lib.nuclides, n_bins);
        Self::assemble(lib, GridBackend::HashBinned(hash))
    }

    fn assemble(lib: NuclideLibrary, backend: GridBackend) -> Self {
        let aos = AosLibrary::build(&lib);
        let soa = SoaLibrary::build(&lib);
        Self {
            lib,
            aos,
            soa,
            backend,
            lookups: AtomicU64::new(0),
            bin_scan_steps: AtomicU64::new(0),
            gather_span_bytes: AtomicU64::new(0),
            gather_span_pairs: AtomicU64::new(0),
        }
    }

    // -- accessors ----------------------------------------------------

    /// The nuclide library.
    #[inline]
    pub fn lib(&self) -> &NuclideLibrary {
        &self.lib
    }

    /// The SoA flattening (the vector kernels' data).
    #[inline]
    pub fn soa(&self) -> &SoaLibrary {
        &self.soa
    }

    /// The AoS flattening (layout-ablation data).
    #[inline]
    pub fn aos(&self) -> &AosLibrary {
        &self.aos
    }

    /// The grid backend.
    #[inline]
    pub fn backend(&self) -> &GridBackend {
        &self.backend
    }

    /// Which backend kind is active.
    #[inline]
    pub fn backend_kind(&self) -> GridBackendKind {
        self.backend.kind()
    }

    /// The unionized grid, if that backend is active (device/offload
    /// models size transfers from it).
    pub fn union_grid(&self) -> Option<&UnionGrid> {
        match &self.backend {
            GridBackend::Unionized(g) => Some(g),
            _ => None,
        }
    }

    /// Number of nuclides.
    #[inline]
    pub fn n_nuclides(&self) -> usize {
        self.lib.len()
    }

    /// Size of the search structure one lookup traverses: union points,
    /// hash bins, or the mean per-nuclide grid length — the machine
    /// models' "grid points" input.
    pub fn search_points(&self) -> usize {
        match &self.backend {
            GridBackend::Unionized(g) => g.n_points(),
            GridBackend::HashBinned(h) => h.n_bins(),
            GridBackend::PerNuclideBinary => self.lib.total_points() / self.lib.len().max(1),
        }
    }

    /// Bytes of backend index structures (union energies + index map,
    /// hash bounds table, or zero for per-nuclide binary search).
    pub fn index_bytes(&self) -> usize {
        match &self.backend {
            GridBackend::Unionized(g) => g.data_bytes(),
            GridBackend::HashBinned(h) => h.index_bytes(),
            GridBackend::PerNuclideBinary => 0,
        }
    }

    /// Bytes of pointwise cross-section data (the SoA arrays the kernels
    /// gather from).
    pub fn data_bytes(&self) -> usize {
        self.soa.data_bytes()
    }

    // -- single-energy lookups ----------------------------------------

    /// Scalar macroscopic lookup (bit-identical to [`Self::macro_xs_simd`]).
    pub fn macro_xs(&self, mat: &Material, e: f64) -> MacroXs {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        let out = with_resolver!(self, e, steps, span, ix => macro_xs_lanes_scalar(&self.soa, mat, e, &ix));
        self.flush_steps(&steps);
        out
    }

    /// Vectorized macroscopic lookup: inner loop over nuclides 8-wide
    /// with gathers (the paper's fastest configuration).
    pub fn macro_xs_simd(&self, mat: &Material, e: f64) -> MacroXs {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        let out = self.macro_xs_simd_inner(mat, e, &steps, &span);
        self.flush_steps(&steps);
        out
    }

    #[inline]
    fn macro_xs_simd_inner(
        &self,
        mat: &Material,
        e: f64,
        steps: &Cell<u64>,
        span: &SpanTracker,
    ) -> MacroXs {
        with_resolver!(self, e, steps, span, ix => macro_xs_lanes_simd(&self.soa, mat, e, &ix))
    }

    /// Reference lookup: per-nuclide binary search regardless of the
    /// active backend (the pre-Leppänen baseline). Bit-identical to
    /// [`Self::macro_xs`] under every backend.
    pub fn macro_xs_direct(&self, mat: &Material, e: f64) -> MacroXs {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        macro_xs_lanes_scalar(&self.soa, mat, e, &BinaryIx { soa: &self.soa, e })
    }

    /// Sequential scalar lookup over the AoS layout (layout-ablation
    /// baseline; agrees with the canonical paths to rounding, not bits).
    pub fn macro_xs_aos(&self, mat: &Material, e: f64) -> MacroXs {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        let out =
            with_resolver!(self, e, steps, span, ix => macro_xs_aos_seq(&self.aos, mat, e, &ix));
        self.flush_steps(&steps);
        out
    }

    // -- whole-bank drivers -------------------------------------------

    /// Whole-bank scalar driver (the history-style reference for Fig. 2).
    pub fn batch_macro_xs(&self, mat: &Material, energies: &[f64], out: &mut [MacroXs]) {
        assert_eq!(energies.len(), out.len());
        self.lookups
            .fetch_add(energies.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        for (e, o) in energies.iter().zip(out.iter_mut()) {
            *o = with_resolver!(self, *e, steps, span, ix => macro_xs_lanes_scalar(&self.soa, mat, *e, &ix));
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    /// Whole-bank sequential driver — the paper's history-method
    /// `calculate_xs()` loop: one nuclide at a time through the
    /// per-nuclide structs, a single accumulator chain. This is Fig. 2's
    /// measured "history/CPU" baseline; it agrees with the lane-striped
    /// paths to rounding, not bits (use [`Self::batch_macro_xs`] for the
    /// bit-identity scalar).
    pub fn batch_macro_xs_seq(&self, mat: &Material, energies: &[f64], out: &mut [MacroXs]) {
        assert_eq!(energies.len(), out.len());
        self.lookups
            .fetch_add(energies.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        for (e, o) in energies.iter().zip(out.iter_mut()) {
            *o = with_resolver!(self, *e, steps, span, ix => macro_xs_seq(&self.lib, mat, *e, &ix));
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    /// Whole-bank driver with the inner (nuclide) loop vectorized — the
    /// banked-lookup configuration the paper measures in Fig. 2.
    pub fn batch_macro_xs_simd(&self, mat: &Material, energies: &[f64], out: &mut [MacroXs]) {
        assert_eq!(energies.len(), out.len());
        self.lookups
            .fetch_add(energies.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        for (e, o) in energies.iter().zip(out.iter_mut()) {
            *o = self.macro_xs_simd_inner(mat, *e, &steps, &span);
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    /// Banked-lookup driver addressing the bank through gather indices:
    /// lane `k` computes the cross section at `energy[indices[k]]` and
    /// writes it to `out[k]`.
    ///
    /// The event loop's XS stage buckets live particles by material,
    /// which leaves each bucket a sorted-but-non-contiguous subset of the
    /// bank. This driver gathers those energies through a stack-resident
    /// staging tile, so no heap copy of the bucket's energies is ever
    /// materialized. Per element the result is exactly
    /// [`Self::macro_xs_simd`].
    pub fn batch_macro_xs_simd_indexed(
        &self,
        mat: &Material,
        energy: &[f64],
        indices: &[u32],
        out: &mut [MacroXs],
    ) {
        assert_eq!(indices.len(), out.len());
        self.lookups
            .fetch_add(indices.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        const TILE: usize = 64;
        let mut tile = [0.0f64; TILE];
        for (idx_tile, out_tile) in indices.chunks(TILE).zip(out.chunks_mut(TILE)) {
            let m = idx_tile.len();
            for (slot, &i) in tile[..m].iter_mut().zip(idx_tile) {
                *slot = energy[i as usize];
            }
            for (e, o) in tile[..m].iter().zip(out_tile.iter_mut()) {
                *o = self.macro_xs_simd_inner(mat, *e, &steps, &span);
            }
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    /// [`Self::batch_macro_xs_simd_indexed`] for *energy-ordered* index
    /// lists (the event queueing's `material+energy` buckets, where
    /// consecutive energies fall in the same or adjacent log-E bins).
    ///
    /// On the hash backend each nuclide keeps a scan cursor: whenever two
    /// consecutive lookups hash to the same bin, the in-bin scan
    /// warm-starts from the previous resolved index instead of the bin's
    /// lower-edge bound, cutting `bin_scan_steps` when the caller really
    /// did sort by energy. Other backends (and the cross sections under
    /// every backend) are exactly `batch_macro_xs_simd_indexed` — the
    /// scan converges to the same lower bound from any starting point,
    /// so ordering is a pure locality knob.
    pub fn batch_macro_xs_simd_indexed_binned(
        &self,
        mat: &Material,
        energy: &[f64],
        indices: &[u32],
        out: &mut [MacroXs],
    ) {
        let h = match &self.backend {
            GridBackend::HashBinned(h) => h,
            _ => return self.batch_macro_xs_simd_indexed(mat, energy, indices, out),
        };
        assert_eq!(indices.len(), out.len());
        self.lookups
            .fetch_add(indices.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        let nk = h.n_nuclides();
        let cursor: Vec<Cell<u32>> = (0..nk).map(|_| Cell::new(0)).collect();
        let cursor_bin: Vec<Cell<u32>> = (0..nk).map(|_| Cell::new(u32::MAX)).collect();
        const TILE: usize = 64;
        let mut tile = [0.0f64; TILE];
        for (idx_tile, out_tile) in indices.chunks(TILE).zip(out.chunks_mut(TILE)) {
            let m = idx_tile.len();
            for (slot, &i) in tile[..m].iter_mut().zip(idx_tile) {
                *slot = energy[i as usize];
            }
            for (e, o) in tile[..m].iter().zip(out_tile.iter_mut()) {
                let bin = h.bin_of(*e);
                span.observe(bin as u64, (nk * 4) as u64);
                let ix = HashWarmIx {
                    hash: h,
                    soa: &self.soa,
                    e: *e,
                    bin,
                    steps: &steps,
                    cursor: &cursor,
                    cursor_bin: &cursor_bin,
                };
                *o = macro_xs_lanes_simd(&self.soa, mat, *e, &ix);
            }
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    /// Whole-bank driver vectorized across the *outer* (particle) loop —
    /// the variant the paper found slower, kept for the ablation.
    pub fn batch_macro_xs_outer_simd(&self, mat: &Material, energies: &[f64], out: &mut [MacroXs]) {
        assert_eq!(energies.len(), out.len());
        self.lookups
            .fetch_add(energies.len() as u64, Ordering::Relaxed);
        let steps = Cell::new(0u64);
        let span = SpanTracker::new();
        match &self.backend {
            GridBackend::Unionized(g) => {
                batch_outer_simd_with(&self.soa, mat, energies, out, |e| {
                    let u = g.find(e);
                    span.observe(u as u64, (g.n_nuclides() * 4) as u64);
                    UnionIx {
                        row: g.index_row(u),
                    }
                })
            }
            GridBackend::PerNuclideBinary => {
                batch_outer_simd_with(&self.soa, mat, energies, out, |e| BinaryIx {
                    soa: &self.soa,
                    e,
                })
            }
            GridBackend::HashBinned(h) => {
                batch_outer_simd_with(&self.soa, mat, energies, out, |e| {
                    let bin = h.bin_of(e);
                    span.observe(bin as u64, (h.n_nuclides() * 4) as u64);
                    HashIx {
                        hash: h,
                        soa: &self.soa,
                        e,
                        bin,
                        steps: &steps,
                    }
                })
            }
        }
        self.flush_steps(&steps);
        self.flush_gather(&span);
    }

    // -- physics-layer index resolution -------------------------------

    /// One per-energy resolver for the physics layer (a collision
    /// resolves indices for several nuclides of one material at one
    /// energy).
    pub fn indexer(&self, e: f64) -> EnergyIndexer<'_> {
        let inner = match &self.backend {
            GridBackend::Unionized(g) => IxInner::Union(g.index_row(g.find(e))),
            GridBackend::PerNuclideBinary => IxInner::Binary { soa: &self.soa, e },
            GridBackend::HashBinned(h) => IxInner::Hash {
                hash: h,
                soa: &self.soa,
                e,
                bin: h.bin_of(e),
                steps: Cell::new(0),
                sink: &self.bin_scan_steps,
            },
        };
        EnergyIndexer { inner }
    }

    /// Interval index into nuclide `k`'s grid at energy `e` (a one-shot
    /// [`Self::indexer`]).
    #[inline]
    pub fn nuclide_index(&self, e: f64, k: usize) -> u32 {
        self.indexer(e).index(k)
    }

    // -- instrumentation ----------------------------------------------

    #[inline]
    fn flush_steps(&self, steps: &Cell<u64>) {
        let n = steps.get();
        if n > 0 {
            self.bin_scan_steps.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    fn flush_gather(&self, span: &SpanTracker) {
        let pairs = span.pairs.get();
        if pairs > 0 {
            self.gather_span_bytes
                .fetch_add(span.bytes.get(), Ordering::Relaxed);
            self.gather_span_pairs.fetch_add(pairs, Ordering::Relaxed);
        }
    }

    /// Macroscopic lookups served since construction (or counter reset).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Hash-grid in-bin scan steps taken (0 for other backends).
    pub fn bin_scan_steps(&self) -> u64 {
        self.bin_scan_steps.load(Ordering::Relaxed)
    }

    /// Total byte distance between the index rows touched by consecutive
    /// lookups of the batch drivers (0 for the index-free binary
    /// backend). Divide by [`Self::gather_span_pairs`] for the mean span.
    pub fn gather_span_bytes(&self) -> u64 {
        self.gather_span_bytes.load(Ordering::Relaxed)
    }

    /// Number of consecutive-lookup pairs behind
    /// [`Self::gather_span_bytes`].
    pub fn gather_span_pairs(&self) -> u64 {
        self.gather_span_pairs.load(Ordering::Relaxed)
    }

    /// Mean gather span in bytes per consecutive-lookup pair (the
    /// cache-miss proxy the queueing ablation reports; 0.0 when no batch
    /// lookups ran).
    pub fn mean_gather_span_bytes(&self) -> f64 {
        let pairs = self.gather_span_pairs();
        if pairs == 0 {
            0.0
        } else {
            self.gather_span_bytes() as f64 / pairs as f64
        }
    }

    /// Reset the instrumentation counters to zero.
    pub fn reset_counters(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.bin_scan_steps.store(0, Ordering::Relaxed);
        self.gather_span_bytes.store(0, Ordering::Relaxed);
        self.gather_span_pairs.store(0, Ordering::Relaxed);
    }

    /// Export `xs.lookups`, `xs.bin_scan_steps`, `xs.gather_span_bytes`,
    /// `xs.gather_span_pairs`, and `xs.index_bytes` into a profiling
    /// counter set.
    pub fn export_counters(&self, c: &mut mcs_prof::Counters) {
        c.add("xs.lookups", self.lookups());
        c.add("xs.bin_scan_steps", self.bin_scan_steps());
        c.add("xs.gather_span_bytes", self.gather_span_bytes());
        c.add("xs.gather_span_pairs", self.gather_span_pairs());
        c.add("xs.index_bytes", self.index_bytes() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibrarySpec;

    fn contexts() -> Vec<XsContext> {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        GridBackendKind::ALL
            .iter()
            .map(|&k| XsContext::new(lib.clone(), k))
            .collect()
    }

    fn probe_energies() -> Vec<f64> {
        let mut es = Vec::new();
        let mut e = 2.3e-11;
        while e < 19.0 {
            es.push(e);
            e *= 1.9;
        }
        es
    }

    fn assert_bits_eq(a: &MacroXs, b: &MacroXs, what: &str) {
        for (x, y) in [
            (a.total, b.total),
            (a.elastic, b.elastic),
            (a.inelastic, b.inelastic),
            (a.absorption, b.absorption),
            (a.fission, b.fission),
            (a.nu_fission, b.nu_fission),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn all_backends_bitwise_equal_direct() {
        let ctxs = contexts();
        for ctx in &ctxs {
            let fuel = Material::hm_fuel(ctx.lib());
            let water = Material::hm_water(ctx.lib());
            for &e in &probe_energies() {
                for mat in [&fuel, &water] {
                    let direct = ctx.macro_xs_direct(mat, e);
                    let scalar = ctx.macro_xs(mat, e);
                    let simd = ctx.macro_xs_simd(mat, e);
                    let name = ctx.backend_kind().name();
                    assert_bits_eq(&scalar, &direct, &format!("{name} scalar vs direct e={e}"));
                    assert_bits_eq(&simd, &scalar, &format!("{name} simd vs scalar e={e}"));
                }
            }
        }
    }

    #[test]
    fn backends_bitwise_equal_each_other() {
        let ctxs = contexts();
        let fuel = Material::hm_fuel(ctxs[0].lib());
        for &e in &probe_energies() {
            let reference = ctxs[0].macro_xs(&fuel, e);
            for ctx in &ctxs[1..] {
                let got = ctx.macro_xs(&fuel, e);
                assert_bits_eq(
                    &got,
                    &reference,
                    &format!("{} e={e}", ctx.backend_kind().name()),
                );
            }
        }
    }

    #[test]
    fn batch_drivers_agree() {
        for ctx in &contexts() {
            let fuel = Material::hm_fuel(ctx.lib());
            let es = probe_energies();
            let mut a = vec![MacroXs::default(); es.len()];
            let mut b = vec![MacroXs::default(); es.len()];
            let mut c = vec![MacroXs::default(); es.len()];
            ctx.batch_macro_xs(&fuel, &es, &mut a);
            ctx.batch_macro_xs_simd(&fuel, &es, &mut b);
            ctx.batch_macro_xs_outer_simd(&fuel, &es, &mut c);
            for i in 0..es.len() {
                assert_bits_eq(&a[i], &b[i], &format!("scalar vs simd i={i}"));
                assert!(a[i].max_rel_diff(&c[i]) < 1e-12, "outer i={i}");
            }
        }
    }

    #[test]
    fn indexed_driver_matches_elementwise_simd() {
        for ctx in &contexts() {
            let fuel = Material::hm_fuel(ctx.lib());
            let energy: Vec<f64> = (0..150).map(|i| 2.3e-11 * 1.18f64.powi(i)).collect();
            let indices: Vec<u32> = (0..150u32).map(|k| (k * 67 + 13) % 150).collect();
            let mut out = vec![MacroXs::default(); indices.len()];
            ctx.batch_macro_xs_simd_indexed(&fuel, &energy, &indices, &mut out);
            for (k, &i) in indices.iter().enumerate() {
                let want = ctx.macro_xs_simd(&fuel, energy[i as usize]);
                assert_eq!(out[k], want, "k={k}");
            }
        }
    }

    #[test]
    fn binned_indexed_driver_is_bitwise_identical_to_indexed() {
        for ctx in &contexts() {
            let fuel = Material::hm_fuel(ctx.lib());
            // Energy-sorted, reverse-sorted, and shuffled index orders:
            // the warm-start path must be a pure locality knob.
            let energy: Vec<f64> = (0..200).map(|i| 2.3e-11 * 1.14f64.powi(i)).collect();
            let sorted: Vec<u32> = (0..200u32).collect();
            let reversed: Vec<u32> = (0..200u32).rev().collect();
            let shuffled: Vec<u32> = (0..200u32).map(|k| (k * 73 + 31) % 200).collect();
            for indices in [&sorted, &reversed, &shuffled] {
                let mut plain = vec![MacroXs::default(); indices.len()];
                let mut binned = vec![MacroXs::default(); indices.len()];
                ctx.batch_macro_xs_simd_indexed(&fuel, &energy, indices, &mut plain);
                ctx.batch_macro_xs_simd_indexed_binned(&fuel, &energy, indices, &mut binned);
                for (k, (a, b)) in plain.iter().zip(&binned).enumerate() {
                    assert_bits_eq(a, b, &format!("{} k={k}", ctx.backend_kind().name()));
                }
            }
        }
    }

    #[test]
    fn binned_driver_cuts_scan_steps_on_sorted_banks() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let ctx = XsContext::new(lib, GridBackendKind::HashBinned);
        let fuel = Material::hm_fuel(ctx.lib());
        let energy: Vec<f64> = (0..512).map(|i| 2.3e-11 * 1.055f64.powi(i)).collect();
        let sorted: Vec<u32> = (0..512u32).collect();
        let mut out = vec![MacroXs::default(); sorted.len()];
        ctx.reset_counters();
        ctx.batch_macro_xs_simd_indexed(&fuel, &energy, &sorted, &mut out);
        let cold = ctx.bin_scan_steps();
        ctx.reset_counters();
        ctx.batch_macro_xs_simd_indexed_binned(&fuel, &energy, &sorted, &mut out);
        let warm = ctx.bin_scan_steps();
        assert!(
            warm < cold,
            "warm-start took {warm} steps vs {cold} cold on a sorted bank"
        );
    }

    #[test]
    fn gather_span_tracks_batch_locality() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let ctx = XsContext::new(lib.clone(), GridBackendKind::Unionized);
        let fuel = Material::hm_fuel(ctx.lib());
        // A strictly ascending sweep touches adjacent union rows; the
        // same energies interleaved low/high jump across the whole grid.
        let sorted: Vec<f64> = (0..256).map(|i| 2.3e-11 * 1.11f64.powi(i)).collect();
        let mut interleaved = Vec::with_capacity(sorted.len());
        for i in 0..sorted.len() / 2 {
            interleaved.push(sorted[i]);
            interleaved.push(sorted[sorted.len() - 1 - i]);
        }
        let mut out = vec![MacroXs::default(); sorted.len()];
        ctx.reset_counters();
        ctx.batch_macro_xs_simd(&fuel, &sorted, &mut out);
        assert_eq!(ctx.gather_span_pairs(), sorted.len() as u64 - 1);
        let near = ctx.mean_gather_span_bytes();
        ctx.reset_counters();
        ctx.batch_macro_xs_simd(&fuel, &interleaved, &mut out);
        let far = ctx.mean_gather_span_bytes();
        assert!(
            near < far,
            "sorted sweep span {near} not below interleaved span {far}"
        );
        // Single-energy lookups form no pairs; the binary backend has no
        // shared index rows to span.
        ctx.reset_counters();
        ctx.macro_xs(&fuel, 1.0e-3);
        assert_eq!(ctx.gather_span_pairs(), 0);
        let binary = XsContext::new(lib, GridBackendKind::PerNuclideBinary);
        binary.batch_macro_xs_simd(&fuel, &sorted, &mut out);
        assert_eq!(binary.gather_span_bytes(), 0);
        // Counters export alongside the existing ones.
        let mut c = mcs_prof::Counters::new();
        ctx.export_counters(&mut c);
        assert_eq!(c.get("xs.gather_span_bytes"), ctx.gather_span_bytes());
        assert_eq!(c.get("xs.gather_span_pairs"), ctx.gather_span_pairs());
    }

    #[test]
    fn aos_agrees_within_rounding() {
        for ctx in &contexts() {
            let fuel = Material::hm_fuel(ctx.lib());
            for &e in &probe_energies() {
                let r = ctx.macro_xs(&fuel, e);
                let aos = ctx.macro_xs_aos(&fuel, e);
                assert!(r.max_rel_diff(&aos) < 1e-12, "e={e}");
            }
        }
    }

    #[test]
    fn nuclide_index_matches_binary_search() {
        for ctx in &contexts() {
            for &e in &probe_energies() {
                let ix = ctx.indexer(e);
                for k in 0..ctx.n_nuclides() {
                    let nuc = ctx.lib().nuclide(k as u32);
                    let want = lower_bound_index(&nuc.energy, e) as u32;
                    assert_eq!(
                        ix.index(k),
                        want,
                        "{} e={e} k={k}",
                        ctx.backend_kind().name()
                    );
                    assert_eq!(ctx.nuclide_index(e, k), want);
                }
            }
        }
    }

    #[test]
    fn macro_xs_is_positive_and_total_consistent() {
        for ctx in &contexts() {
            let fuel = Material::hm_fuel(ctx.lib());
            for &e in &probe_energies() {
                let m = ctx.macro_xs(&fuel, e);
                assert!(m.total > 0.0);
                assert!(m.fission >= 0.0);
                assert!(m.absorption >= m.fission - 1e-15);
                let sum = m.elastic + m.inelastic + m.absorption;
                assert!((m.total - sum).abs() < 1e-9 * m.total);
            }
        }
    }

    #[test]
    fn soa_micro_total_matches_nuclide() {
        let ctx = &contexts()[1];
        for k in 0..ctx.lib().len() {
            let e = 1.3e-4;
            let via_soa = crate::kernel::soa_micro_total(ctx.soa(), k, e);
            let via_nuc = ctx.lib().nuclide(k as u32).micro_at(e).total;
            assert!((via_soa - via_nuc).abs() < 1e-12 * via_nuc.max(1.0));
        }
    }

    #[test]
    fn counters_instrument_lookups_and_scans() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let ctx = XsContext::new(lib.clone(), GridBackendKind::HashBinned);
        let fuel = Material::hm_fuel(ctx.lib());
        assert_eq!(ctx.lookups(), 0);
        ctx.macro_xs(&fuel, 1.0e-6);
        let es = probe_energies();
        let mut out = vec![MacroXs::default(); es.len()];
        ctx.batch_macro_xs_simd(&fuel, &es, &mut out);
        assert_eq!(ctx.lookups(), 1 + es.len() as u64);

        let mut c = mcs_prof::Counters::new();
        ctx.export_counters(&mut c);
        assert_eq!(c.get("xs.lookups"), ctx.lookups());
        assert_eq!(c.get("xs.index_bytes"), ctx.index_bytes() as u64);

        // The union backend takes no in-bin scan steps.
        let union = XsContext::new(lib, GridBackendKind::Unionized);
        union.macro_xs(&fuel, 1.0e-6);
        assert_eq!(union.bin_scan_steps(), 0);

        ctx.reset_counters();
        assert_eq!(ctx.lookups(), 0);
    }

    #[test]
    fn hash_index_is_much_smaller_than_unionized() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let union = XsContext::new(lib.clone(), GridBackendKind::Unionized);
        let hash = XsContext::new(lib.clone(), GridBackendKind::HashBinned);
        let binary = XsContext::new(lib, GridBackendKind::PerNuclideBinary);
        assert_eq!(binary.index_bytes(), 0);
        assert!(hash.index_bytes() > 0);
        assert!(
            (hash.index_bytes() as f64) < 0.25 * union.index_bytes() as f64,
            "hash {} vs union {}",
            hash.index_bytes(),
            union.index_bytes()
        );
    }

    #[test]
    fn clone_resets_counters_but_keeps_data() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let ctx = XsContext::new(lib, GridBackendKind::Unionized);
        let fuel = Material::hm_fuel(ctx.lib());
        let a = ctx.macro_xs(&fuel, 2.0e-7);
        let cloned = ctx.clone();
        assert_eq!(cloned.lookups(), 0);
        let b = cloned.macro_xs(&fuel, 2.0e-7);
        assert_bits_eq(&a, &b, "clone");
    }

    #[test]
    fn backend_kind_names_roundtrip() {
        for k in GridBackendKind::ALL {
            assert_eq!(GridBackendKind::from_name(k.name()), Some(k));
        }
        assert_eq!(GridBackendKind::from_name("nope"), None);
        assert_eq!(GridBackendKind::default(), GridBackendKind::Unionized);
    }

    #[test]
    fn edge_energies_stay_bitwise_consistent() {
        let ctxs = contexts();
        let fuel = Material::hm_fuel(ctxs[0].lib());
        // Below the first grid point, above the last, and exactly on a
        // tabulated point.
        let on_point = ctxs[0].lib().nuclide(0).energy[17];
        for e in [
            crate::E_MIN / 3.0,
            crate::E_MAX * 2.0,
            on_point,
            crate::E_MIN,
            crate::E_MAX,
        ] {
            let reference = ctxs[0].macro_xs_direct(&fuel, e);
            for ctx in &ctxs {
                let name = ctx.backend_kind().name();
                assert_bits_eq(
                    &ctx.macro_xs(&fuel, e),
                    &reference,
                    &format!("{name} e={e}"),
                );
                assert_bits_eq(
                    &ctx.macro_xs_simd(&fuel, e),
                    &reference,
                    &format!("{name} simd e={e}"),
                );
            }
        }
    }
}
