//! Unresolved-resonance-range (URR) probability tables.
//!
//! Above the resolved range, resonances overlap experimentally and only
//! their *statistics* are known; Levitt's probability-table method (the
//! paper's ref. \[9\]) replaces the pointwise lookup by: find the energy
//! band, draw ξ, walk the band's CDF to pick a cross-section band, and
//! scale the smooth cross sections by that band's factors. Like S(α,β),
//! the per-particle CDF walk is the conditional-heavy code the paper had
//! to strip from the vectorized kernels.

use mcs_rng::Philox4x32;

use crate::nuclide::MicroXs;

/// Lower bound of the URR, in MeV (≈ 2.25 keV, matching Fig. 1's
/// "around 10⁻² MeV" remark for the upper resolved range).
pub const URR_E_LO: f64 = 2.25e-3;
/// Upper bound of the URR, in MeV.
pub const URR_E_HI: f64 = 2.5e-2;

/// Multiplicative band factors drawn from a probability table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UrrFactors {
    /// Factor on elastic scattering.
    pub elastic: f64,
    /// Factor on capture (absorption − fission).
    pub capture: f64,
    /// Factor on fission.
    pub fission: f64,
}

impl UrrFactors {
    /// Identity factors (no adjustment).
    pub const UNIT: UrrFactors = UrrFactors {
        elastic: 1.0,
        capture: 1.0,
        fission: 1.0,
    };

    /// Apply to a microscopic lookup, rebuilding absorption and total.
    #[inline]
    pub fn apply(&self, m: MicroXs) -> MicroXs {
        let capture = (m.absorption - m.fission) * self.capture;
        let fission = m.fission * self.fission;
        let elastic = m.elastic * self.elastic;
        MicroXs {
            elastic,
            inelastic: m.inelastic, // competitive channel left smooth
            fission,
            absorption: capture + fission,
            total: elastic + m.inelastic + capture + fission,
        }
    }
}

/// A probability table for one nuclide.
#[derive(Debug, Clone)]
pub struct UrrTable {
    /// Energy grid inside [URR_E_LO, URR_E_HI].
    pub energy: Vec<f64>,
    /// Number of probability bands per energy.
    pub n_bands: usize,
    /// Band CDF per energy: `cdf[ie * n_bands + b]`, last entry 1.0.
    pub cdf: Vec<f64>,
    /// Band factors per energy/band, same indexing.
    pub factors: Vec<UrrFactors>,
}

impl UrrTable {
    /// Synthesize a table with `n_bands` bands whose factors are mean-one
    /// (so the URR adjustment is unbiased relative to the smooth data).
    /// Deterministic in `seed`.
    pub fn synthesize(seed: u64, n_bands: usize) -> Self {
        assert!(n_bands >= 2);
        let mut rng = Philox4x32::new(seed ^ 0x0_44_88);
        let n_e = 16;
        let lo = URR_E_LO.ln();
        let hi = URR_E_HI.ln();
        let energy: Vec<f64> = (0..n_e)
            .map(|i| (lo + (hi - lo) * i as f64 / (n_e - 1) as f64).exp())
            .collect();

        let mut cdf = Vec::with_capacity(n_e * n_bands);
        let mut factors = Vec::with_capacity(n_e * n_bands);
        for _ in 0..n_e {
            // Band probabilities.
            let mut w: Vec<f64> = (0..n_bands).map(|_| 0.2 + rng.next_uniform()).collect();
            let s: f64 = w.iter().sum();
            for v in &mut w {
                *v /= s;
            }
            // Raw factors: lognormal-ish spread over bands.
            let mut raw: Vec<(f64, f64, f64)> = (0..n_bands)
                .map(|_| {
                    (
                        0.3 + 2.0 * rng.next_uniform(),
                        0.2 + 2.5 * rng.next_uniform(),
                        0.3 + 2.0 * rng.next_uniform(),
                    )
                })
                .collect();
            // Normalize each reaction's probability-weighted mean to 1.
            let mean = |sel: fn(&(f64, f64, f64)) -> f64, raw: &[(f64, f64, f64)], w: &[f64]| {
                raw.iter().zip(w).map(|(r, &p)| sel(r) * p).sum::<f64>()
            };
            let me = mean(|r| r.0, &raw, &w);
            let mc = mean(|r| r.1, &raw, &w);
            let mf = mean(|r| r.2, &raw, &w);
            for r in &mut raw {
                r.0 /= me;
                r.1 /= mc;
                r.2 /= mf;
            }

            let mut acc = 0.0;
            for b in 0..n_bands {
                acc += w[b];
                cdf.push(if b == n_bands - 1 { 1.0 } else { acc });
                factors.push(UrrFactors {
                    elastic: raw[b].0,
                    capture: raw[b].1,
                    fission: raw[b].2,
                });
            }
        }

        Self {
            energy,
            n_bands,
            cdf,
            factors,
        }
    }

    /// Whether the URR treatment applies at `e`.
    #[inline]
    pub fn in_range(&self, e: f64) -> bool {
        (URR_E_LO..URR_E_HI).contains(&e)
    }

    /// Sample band factors at `e` with uniform `xi` (the CDF walk).
    pub fn sample(&self, e: f64, xi: f64) -> UrrFactors {
        if !self.in_range(e) {
            return UrrFactors::UNIT;
        }
        let ie = crate::grid::lower_bound_index(&self.energy, e);
        let row = &self.cdf[ie * self.n_bands..(ie + 1) * self.n_bands];
        let mut b = 0;
        while b < self.n_bands - 1 && xi > row[b] {
            b += 1;
        }
        self.factors[ie * self.n_bands + b]
    }

    /// Probability-weighted mean factors at `e` (used to verify
    /// unbiasedness and by the deterministic vector path).
    pub fn mean_factors(&self, e: f64) -> UrrFactors {
        if !self.in_range(e) {
            return UrrFactors::UNIT;
        }
        let ie = crate::grid::lower_bound_index(&self.energy, e);
        let mut acc = UrrFactors {
            elastic: 0.0,
            capture: 0.0,
            fission: 0.0,
        };
        let mut prev = 0.0;
        for b in 0..self.n_bands {
            let i = ie * self.n_bands + b;
            let p = self.cdf[i] - prev;
            prev = self.cdf[i];
            acc.elastic += p * self.factors[i].elastic;
            acc.capture += p * self.factors[i].capture;
            acc.fission += p * self.factors[i].fission;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_is_identity() {
        let t = UrrTable::synthesize(1, 8);
        assert_eq!(t.sample(1.0e-6, 0.3), UrrFactors::UNIT);
        assert_eq!(t.sample(0.5, 0.3), UrrFactors::UNIT);
    }

    #[test]
    fn cdf_rows_end_at_one_and_ascend() {
        let t = UrrTable::synthesize(2, 8);
        for ie in 0..t.energy.len() {
            let row = &t.cdf[ie * t.n_bands..(ie + 1) * t.n_bands];
            assert_eq!(*row.last().unwrap(), 1.0);
            for w in row.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn factors_are_mean_one() {
        let t = UrrTable::synthesize(3, 8);
        let e = 5.0e-3;
        let m = t.mean_factors(e);
        assert!((m.elastic - 1.0).abs() < 1e-12);
        assert!((m.capture - 1.0).abs() < 1e-12);
        assert!((m.fission - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_unbiased_statistically() {
        let t = UrrTable::synthesize(4, 8);
        let e = 1.0e-2;
        let mut rng = Philox4x32::new(321);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += t.sample(e, rng.next_uniform()).capture;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean capture factor {mean}");
    }

    #[test]
    fn apply_preserves_consistency() {
        let f = UrrFactors {
            elastic: 1.2,
            capture: 0.8,
            fission: 1.5,
        };
        let m = MicroXs {
            total: 10.5,
            elastic: 6.0,
            inelastic: 0.5,
            absorption: 4.0,
            fission: 1.0,
        };
        let out = f.apply(m);
        assert!((out.total - (out.elastic + out.inelastic + out.absorption)).abs() < 1e-12);
        assert!((out.fission - 1.5).abs() < 1e-12);
        assert!((out.elastic - 7.2).abs() < 1e-12);
        assert!((out.absorption - (3.0 * 0.8 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn different_bands_give_different_factors() {
        let t = UrrTable::synthesize(5, 8);
        let e = 5.0e-3;
        let a = t.sample(e, 0.01);
        let b = t.sample(e, 0.99);
        assert_ne!(a, b);
    }
}
