//! Materials: nuclide mixtures with atomic densities.
//!
//! A material is the unit over which the macroscopic cross section
//! `Σ_t = Σ_n N_n σ_t(n, E)` is accumulated (the paper's Algorithm 1).
//! Densities are in atoms/(barn·cm) so `Σ` comes out in 1/cm.

use crate::library::NuclideLibrary;

/// A homogeneous material.
#[derive(Debug, Clone)]
pub struct Material {
    /// Display name.
    pub name: String,
    /// Indices into the library's nuclide list.
    pub nuclides: Vec<u32>,
    /// Atomic densities, atoms/(barn·cm), parallel to `nuclides`.
    pub densities: Vec<f64>,
    /// `density · ν` per nuclide (zero for non-fissile), parallel to
    /// `nuclides`; lets the kernels accumulate `νΣ_f` with no extra gather.
    pub densities_nu: Vec<f64>,
}

impl Material {
    /// Build from `(nuclide index, density)` pairs (ν weights zero; call
    /// [`Material::with_nu`] to fill them from a library).
    pub fn new(name: &str, pairs: &[(u32, f64)]) -> Self {
        Self {
            name: name.to_string(),
            nuclides: pairs.iter().map(|&(n, _)| n).collect(),
            densities: pairs.iter().map(|&(_, d)| d).collect(),
            densities_nu: vec![0.0; pairs.len()],
        }
    }

    /// Fill `densities_nu` from the library's per-nuclide ν.
    pub fn with_nu(mut self, lib: &NuclideLibrary) -> Self {
        self.densities_nu = self
            .nuclides
            .iter()
            .zip(&self.densities)
            .map(|(&k, &d)| d * lib.nuclide(k).nu)
            .collect();
        self
    }

    /// Number of constituent nuclides.
    #[inline]
    pub fn len(&self) -> usize {
        self.nuclides.len()
    }

    /// True if the material has no constituents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nuclides.is_empty()
    }

    /// UO₂ fuel spread across *all* fuel nuclides of the library: the major
    /// actinides carry realistic densities, the filler inventory shares a
    /// small tail (minor actinides + fission products in depleted fuel).
    /// This is what makes H.M. Large lookups expensive: every one of the
    /// 320 nuclides contributes to `Σ_t`.
    pub fn hm_fuel(lib: &NuclideLibrary) -> Self {
        Self::hm_fuel_enriched(lib, 1.0)
    }

    /// [`Material::hm_fuel`] with the fissile (U-235) number density
    /// scaled by `enrichment`. `enrichment = 1.0` is the HM baseline and
    /// multiplies by the exact constant 1.0, so the baseline inventory is
    /// bit-identical to the historic `hm_fuel` — the model catalog's
    /// zone-0 fuel reproduces every golden result.
    pub fn hm_fuel_enriched(lib: &NuclideLibrary, enrichment: f64) -> Self {
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(lib.n_fuel + 1);
        // atoms/(barn·cm): ~2.2e-2 heavy metal total in UO2.
        pairs.push((lib.known.u235, 1.15e-3 * enrichment)); // 1.0 → ~5% enrichment
        pairs.push((lib.known.u238, 2.20e-2));
        pairs.push((2, 1.5e-4)); // Pu239
        pairs.push((3, 6.0e-5)); // Pu240
        let n_filler = lib.n_fuel - 4;
        if n_filler > 0 {
            // Split ~2e-3 across the filler inventory.
            let each = 2.0e-3 / n_filler as f64;
            for i in 4..lib.n_fuel {
                pairs.push((i as u32, each));
            }
        }
        // Oxygen in the oxide.
        pairs.push((lib.known.o16, 4.6e-2));
        Self::new("fuel", &pairs).with_nu(lib)
    }

    /// Borated light water coolant/moderator.
    pub fn hm_water(lib: &NuclideLibrary) -> Self {
        Self::new(
            "water",
            &[
                (lib.known.h1, 4.95e-2),
                (lib.known.o16, 2.48e-2),
                // ~1,700 ppm-equivalent soluble boron, set so the H.M. Large core
                // sits near criticality (k ≈ 1.00) with the full physics
                // stack (free-gas thermal motion included).
                (lib.known.b10, 3.0e-6),
            ],
        )
        .with_nu(lib)
    }

    /// Natural-zirconium cladding.
    pub fn hm_clad(lib: &NuclideLibrary) -> Self {
        Self::new("clad", &[(lib.known.zr, 4.3e-2)]).with_nu(lib)
    }

    /// Control-rod absorber: a B-10-rich column (B₄C-like) with a
    /// structural zirconium balance. Strongly absorbing, never fissile.
    pub fn hm_absorber(lib: &NuclideLibrary) -> Self {
        Self::new(
            "absorber",
            &[(lib.known.b10, 2.2e-2), (lib.known.zr, 2.0e-2)],
        )
        .with_nu(lib)
    }

    /// True if any constituent contributes to `νΣ_f` — the fuel/non-fuel
    /// split used by the event engine's queueing layer.
    #[inline]
    pub fn is_fissionable(&self) -> bool {
        self.densities_nu.iter().any(|&d| d > 0.0)
    }

    /// Iterate `(nuclide index, density)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.nuclides
            .iter()
            .copied()
            .zip(self.densities.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibrarySpec;

    #[test]
    fn fuel_uses_every_fuel_nuclide() {
        let lib = NuclideLibrary::build(&LibrarySpec::hm_small());
        let fuel = Material::hm_fuel(&lib);
        assert_eq!(fuel.len(), lib.n_fuel + 1); // + oxygen
        assert!(fuel.densities.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn water_is_h2o_ish() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let w = Material::hm_water(&lib);
        let h = w.densities[0];
        let o = w.densities[1];
        assert!((h / o - 2.0).abs() < 0.01);
    }

    #[test]
    fn fissionability_follows_nu_weights() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        assert!(Material::hm_fuel(&lib).is_fissionable());
        assert!(!Material::hm_water(&lib).is_fissionable());
        assert!(!Material::hm_clad(&lib).is_fissionable());
        assert!(!Material::hm_absorber(&lib).is_fissionable());
        assert!(!Material::new("bare", &[(0, 1.0)]).is_fissionable());
    }

    #[test]
    fn unit_enrichment_is_bit_identical_to_baseline_fuel() {
        let lib = NuclideLibrary::build(&LibrarySpec::hm_small());
        let base = Material::hm_fuel(&lib);
        let unit = Material::hm_fuel_enriched(&lib, 1.0);
        assert_eq!(base.nuclides, unit.nuclides);
        for (a, b) in base.densities.iter().zip(&unit.densities) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in base.densities_nu.iter().zip(&unit.densities_nu) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A real enrichment bump moves only the fissile density.
        let hot = Material::hm_fuel_enriched(&lib, 1.25);
        assert!(hot.densities[0] > base.densities[0]);
        assert_eq!(hot.densities[1].to_bits(), base.densities[1].to_bits());
    }

    #[test]
    fn iter_pairs_match_fields() {
        let m = Material::new("m", &[(3, 0.1), (7, 0.2)]);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![(3, 0.1), (7, 0.2)]);
    }
}
