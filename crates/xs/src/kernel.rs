//! Macroscopic cross-section kernels — the paper's bottleneck computation.
//!
//! This module holds the *arithmetic* of a macroscopic lookup; *index
//! resolution* (which grid structure finds each nuclide's bracketing
//! interval) is abstracted behind the crate-private `NuclideIndexer`
//! trait and supplied by [`crate::context::XsContext`], which is the
//! public API surface. The kernels come in two shapes:
//!
//! * `macro_xs_lanes_simd` — the banked kernel's heart: the inner loop
//!   over nuclides vectorized 8-wide with gathers (Algorithm 2 lines
//!   11–14, the configuration the paper found fastest).
//! * `macro_xs_lanes_scalar` — a scalar transcription of the *same*
//!   lane-striped accumulation: 8 lane accumulators per component, the
//!   identical pairwise reduction tree, the identical scalar remainder.
//!   Because every floating-point operation matches the vector kernel
//!   lane for lane, scalar and SIMD results are bit-identical — the
//!   repo's determinism contract extended down into the lookup layer.
//!
//! Cross-backend bit-identity then follows from index equality alone:
//! every `NuclideIndexer` resolves the same interval index that a
//! per-nuclide binary search would, so the interpolation arithmetic —
//! shared here — sees identical inputs regardless of backend.

use mcs_simd::F64x8;

use crate::grid::lower_bound_index;
use crate::layout::{AosLibrary, SoaLibrary};
use crate::library::NuclideLibrary;
use crate::material::Material;

/// Macroscopic cross sections (1/cm) of a material at one energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MacroXs {
    /// Total Σ_t.
    pub total: f64,
    /// Elastic scattering Σ_s.
    pub elastic: f64,
    /// Inelastic scattering Σ_inl.
    pub inelastic: f64,
    /// Absorption Σ_a (capture + fission).
    pub absorption: f64,
    /// Fission Σ_f.
    pub fission: f64,
    /// Fission-neutron production νΣ_f.
    pub nu_fission: f64,
}

impl MacroXs {
    /// Accumulate `density * σ` (and `density·ν · σ_f` into `nu_fission`).
    #[inline(always)]
    pub fn accumulate(&mut self, density: f64, density_nu: f64, micro: crate::nuclide::MicroXs) {
        self.total += density * micro.total;
        self.elastic += density * micro.elastic;
        self.inelastic += density * micro.inelastic;
        self.absorption += density * micro.absorption;
        self.fission += density * micro.fission;
        self.nu_fission += density_nu * micro.fission;
    }

    /// Max relative difference across components vs `other` (for tests).
    pub fn max_rel_diff(&self, other: &MacroXs) -> f64 {
        let d = |a: f64, b: f64| {
            let denom = a.abs().max(b.abs()).max(1e-300);
            (a - b).abs() / denom
        };
        d(self.total, other.total)
            .max(d(self.elastic, other.elastic))
            .max(d(self.inelastic, other.inelastic))
            .max(d(self.absorption, other.absorption))
            .max(d(self.fission, other.fission))
            .max(d(self.nu_fission, other.nu_fission))
    }
}

/// Resolves, for one fixed energy, the bracketing interval index of each
/// nuclide's grid (the value a per-nuclide binary search would return,
/// clamped to the last interval). Implementations are the grid backends'
/// inner loops, monomorphized into the kernels below.
pub(crate) trait NuclideIndexer {
    /// Interval index into nuclide `k`'s grid segment.
    fn index(&self, k: usize) -> u32;
}

#[inline(always)]
pub(crate) fn lerp_interval(e: f64, e0: f64, e1: f64) -> f64 {
    ((e - e0) / (e1 - e0)).clamp(0.0, 1.0)
}

/// Pairwise reduction tree identical to [`F64x8::reduce_sum`].
#[inline(always)]
fn reduce8(mut acc: [f64; 8]) -> f64 {
    let mut width = 4;
    while width >= 1 {
        for i in 0..width {
            acc[i] += acc[i + width];
        }
        width /= 2;
    }
    acc[0]
}

/// Scalar transcription of [`macro_xs_lanes_simd`]: identical lane
/// striping, identical reduction tree, identical remainder — so the two
/// agree to the bit for every backend.
#[allow(clippy::needless_range_loop)] // explicit lane indices mirror the vector kernel
pub(crate) fn macro_xs_lanes_scalar<I: NuclideIndexer>(
    soa: &SoaLibrary,
    mat: &Material,
    e: f64,
    ix: &I,
) -> MacroXs {
    let n = mat.len();

    let energy = soa.energy.as_slice();
    let total = soa.total.as_slice();
    let elastic = soa.elastic.as_slice();
    let inelastic = soa.inelastic.as_slice();
    let absorption = soa.absorption.as_slice();
    let fission = soa.fission.as_slice();

    let mut acc_t = [0.0f64; 8];
    let mut acc_s = [0.0f64; 8];
    let mut acc_i = [0.0f64; 8];
    let mut acc_a = [0.0f64; 8];
    let mut acc_f = [0.0f64; 8];
    let mut acc_nf = [0.0f64; 8];

    let full = n / 8 * 8;
    let mut j = 0;
    while j < full {
        for l in 0..8 {
            let k = mat.nuclides[j + l] as usize;
            let i = (soa.offsets[k] + ix.index(k)) as usize;
            let e0 = energy[i];
            let e1 = energy[i + 1];
            let f = ((e - e0) / (e1 - e0)).clamp(0.0, 1.0);
            let d = mat.densities[j + l];
            acc_t[l] += d * (total[i] + f * (total[i + 1] - total[i]));
            acc_s[l] += d * (elastic[i] + f * (elastic[i + 1] - elastic[i]));
            acc_i[l] += d * (inelastic[i] + f * (inelastic[i + 1] - inelastic[i]));
            acc_a[l] += d * (absorption[i] + f * (absorption[i + 1] - absorption[i]));
            let sig_f = fission[i] + f * (fission[i + 1] - fission[i]);
            acc_f[l] += d * sig_f;
            acc_nf[l] += mat.densities_nu[j + l] * sig_f;
        }
        j += 8;
    }

    let mut acc = MacroXs {
        total: reduce8(acc_t),
        elastic: reduce8(acc_s),
        inelastic: reduce8(acc_i),
        absorption: reduce8(acc_a),
        fission: reduce8(acc_f),
        nu_fission: reduce8(acc_nf),
    };

    for jj in full..n {
        let k = mat.nuclides[jj] as usize;
        let i = (soa.offsets[k] + ix.index(k)) as usize;
        let f = lerp_interval(e, energy[i], energy[i + 1]);
        let d = mat.densities[jj];
        let sig_f = fission[i] + f * (fission[i + 1] - fission[i]);
        acc.total += d * (total[i] + f * (total[i + 1] - total[i]));
        acc.elastic += d * (elastic[i] + f * (elastic[i + 1] - elastic[i]));
        acc.inelastic += d * (inelastic[i] + f * (inelastic[i + 1] - inelastic[i]));
        acc.absorption += d * (absorption[i] + f * (absorption[i + 1] - absorption[i]));
        acc.fission += d * sig_f;
        acc.nu_fission += mat.densities_nu[jj] * sig_f;
    }
    acc
}

/// Vectorized lookup: the inner loop over nuclides processed 8 at a time
/// with gathers from the SoA arrays (the paper's `#pragma simd` on
/// Algorithm 2 line 11, the choice that beat outer-loop vectorization).
#[allow(clippy::needless_range_loop)] // explicit lane indices mirror the intrinsic style
pub(crate) fn macro_xs_lanes_simd<I: NuclideIndexer>(
    soa: &SoaLibrary,
    mat: &Material,
    e: f64,
    ix: &I,
) -> MacroXs {
    let n = mat.len();

    let ev = F64x8::splat(e);
    let mut acc_t = F64x8::zero();
    let mut acc_s = F64x8::zero();
    let mut acc_i = F64x8::zero();
    let mut acc_a = F64x8::zero();
    let mut acc_f = F64x8::zero();
    let mut acc_nf = F64x8::zero();

    let energy = soa.energy.as_slice();
    let total = soa.total.as_slice();
    let elastic = soa.elastic.as_slice();
    let inelastic = soa.inelastic.as_slice();
    let absorption = soa.absorption.as_slice();
    let fission = soa.fission.as_slice();

    let full = n / 8 * 8;
    let mut j = 0;
    while j < full {
        // Per-lane flat indices: offsets[nuclide] + resolved interval.
        let mut idx = [0u32; 8];
        for l in 0..8 {
            let k = mat.nuclides[j + l] as usize;
            idx[l] = soa.offsets[k] + ix.index(k);
        }
        let mut idx1 = [0u32; 8];
        for l in 0..8 {
            idx1[l] = idx[l] + 1;
        }

        let e0 = F64x8::gather(energy, idx);
        let e1 = F64x8::gather(energy, idx1);
        let f = ((ev - e0) / (e1 - e0))
            .max(F64x8::zero())
            .min(F64x8::splat(1.0));

        let dens = F64x8::from_slice(&mat.densities[j..]);

        let t0 = F64x8::gather(total, idx);
        let t1 = F64x8::gather(total, idx1);
        acc_t += dens * (t0 + f * (t1 - t0));

        let s0 = F64x8::gather(elastic, idx);
        let s1 = F64x8::gather(elastic, idx1);
        acc_s += dens * (s0 + f * (s1 - s0));

        let i0 = F64x8::gather(inelastic, idx);
        let i1 = F64x8::gather(inelastic, idx1);
        acc_i += dens * (i0 + f * (i1 - i0));

        let a0 = F64x8::gather(absorption, idx);
        let a1 = F64x8::gather(absorption, idx1);
        acc_a += dens * (a0 + f * (a1 - a0));

        let f0 = F64x8::gather(fission, idx);
        let f1 = F64x8::gather(fission, idx1);
        let sig_f = f0 + f * (f1 - f0);
        acc_f += dens * sig_f;
        let dens_nu = F64x8::from_slice(&mat.densities_nu[j..]);
        acc_nf += dens_nu * sig_f;

        j += 8;
    }

    let mut acc = MacroXs {
        total: acc_t.reduce_sum(),
        elastic: acc_s.reduce_sum(),
        inelastic: acc_i.reduce_sum(),
        absorption: acc_a.reduce_sum(),
        fission: acc_f.reduce_sum(),
        nu_fission: acc_nf.reduce_sum(),
    };

    // Scalar remainder.
    for jj in full..n {
        let k = mat.nuclides[jj] as usize;
        let i = (soa.offsets[k] + ix.index(k)) as usize;
        let f = lerp_interval(e, energy[i], energy[i + 1]);
        let d = mat.densities[jj];
        let sig_f = fission[i] + f * (fission[i + 1] - fission[i]);
        acc.total += d * (total[i] + f * (total[i + 1] - total[i]));
        acc.elastic += d * (elastic[i] + f * (elastic[i + 1] - elastic[i]));
        acc.inelastic += d * (inelastic[i] + f * (inelastic[i + 1] - inelastic[i]));
        acc.absorption += d * (absorption[i] + f * (absorption[i + 1] - absorption[i]));
        acc.fission += d * sig_f;
        acc.nu_fission += mat.densities_nu[jj] * sig_f;
    }
    acc
}

/// Sequential scalar lookup over the AoS layout (layout-ablation
/// baseline; not part of the bit-identity contract).
pub(crate) fn macro_xs_aos_seq<I: NuclideIndexer>(
    aos: &AosLibrary,
    mat: &Material,
    e: f64,
    ix: &I,
) -> MacroXs {
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let base = aos.offsets[k as usize] as usize;
        let i = base + ix.index(k as usize) as usize;
        let p0 = &aos.points[i];
        let p1 = &aos.points[i + 1];
        let f = lerp_interval(e, p0.energy, p1.energy);
        let fission = p0.fission + f * (p1.fission - p0.fission);
        acc.total += density * (p0.total + f * (p1.total - p0.total));
        acc.elastic += density * (p0.elastic + f * (p1.elastic - p0.elastic));
        acc.inelastic += density * (p0.inelastic + f * (p1.inelastic - p0.inelastic));
        acc.absorption += density * (p0.absorption + f * (p1.absorption - p0.absorption));
        acc.fission += density * fission;
        acc.nu_fission += mat.densities_nu[j] * fission;
    }
    acc
}

/// Sequential history-style lookup — the paper's `calculate_xs()` loop:
/// one nuclide at a time through the per-nuclide structs, accumulated in
/// material order with a single accumulator chain. This is the measured
/// "history method" baseline of Fig. 2; transport uses the lane-striped
/// paths above, which trade the sequential order for scalar/SIMD
/// bit-identity (the two agree to rounding, not bits).
pub(crate) fn macro_xs_seq<I: NuclideIndexer>(
    lib: &NuclideLibrary,
    mat: &Material,
    e: f64,
    ix: &I,
) -> MacroXs {
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let nuc = lib.nuclide(k);
        acc.accumulate(
            density,
            mat.densities_nu[j],
            nuc.micro_at_index(ix.index(k as usize) as usize, e),
        );
    }
    acc
}

/// Whole-bank driver vectorized across the *outer* (particle) loop:
/// 8 particles per lane, inner loop over nuclides scalar per step. The
/// paper notes this performs worse because the inner trip counts and
/// table addresses diverge across lanes; it is kept for the ablation.
#[allow(clippy::needless_range_loop)] // explicit lane indices mirror the intrinsic style
pub(crate) fn batch_outer_simd_with<I: NuclideIndexer, F: Fn(f64) -> I>(
    soa: &SoaLibrary,
    mat: &Material,
    energies: &[f64],
    out: &mut [MacroXs],
    make_ix: F,
) {
    assert_eq!(energies.len(), out.len());
    let n = energies.len();
    let full = n / 8 * 8;

    let energy = soa.energy.as_slice();
    let total = soa.total.as_slice();
    let elastic = soa.elastic.as_slice();
    let inelastic = soa.inelastic.as_slice();
    let absorption = soa.absorption.as_slice();
    let fission = soa.fission.as_slice();

    let mut p = 0;
    while p < full {
        // Per-lane index resolution (lane-divergent work that outer
        // vectorization cannot hide — for the unionized backend this is
        // 8 scalar binary searches).
        let ixs: [I; 8] = std::array::from_fn(|l| make_ix(energies[p + l]));
        let ev = F64x8::from_slice(&energies[p..]);
        let mut acc_t = F64x8::zero();
        let mut acc_s = F64x8::zero();
        let mut acc_i = F64x8::zero();
        let mut acc_a = F64x8::zero();
        let mut acc_f = F64x8::zero();
        let mut acc_nf = F64x8::zero();

        for (j, (k, density)) in mat.iter().enumerate() {
            let k = k as usize;
            let off = soa.offsets[k];
            let mut idx = [0u32; 8];
            for l in 0..8 {
                idx[l] = off + ixs[l].index(k);
            }
            let mut idx1 = [0u32; 8];
            for l in 0..8 {
                idx1[l] = idx[l] + 1;
            }

            let e0 = F64x8::gather(energy, idx);
            let e1 = F64x8::gather(energy, idx1);
            let f = ((ev - e0) / (e1 - e0))
                .max(F64x8::zero())
                .min(F64x8::splat(1.0));
            let dv = F64x8::splat(density);

            let t0 = F64x8::gather(total, idx);
            let t1 = F64x8::gather(total, idx1);
            acc_t += dv * (t0 + f * (t1 - t0));
            let s0 = F64x8::gather(elastic, idx);
            let s1 = F64x8::gather(elastic, idx1);
            acc_s += dv * (s0 + f * (s1 - s0));
            let i0 = F64x8::gather(inelastic, idx);
            let i1 = F64x8::gather(inelastic, idx1);
            acc_i += dv * (i0 + f * (i1 - i0));
            let a0 = F64x8::gather(absorption, idx);
            let a1 = F64x8::gather(absorption, idx1);
            acc_a += dv * (a0 + f * (a1 - a0));
            let f0 = F64x8::gather(fission, idx);
            let f1 = F64x8::gather(fission, idx1);
            let sig_f = f0 + f * (f1 - f0);
            acc_f += dv * sig_f;
            acc_nf += F64x8::splat(mat.densities_nu[j]) * sig_f;
        }

        for l in 0..8 {
            out[p + l] = MacroXs {
                total: acc_t[l],
                elastic: acc_s[l],
                inelastic: acc_i[l],
                absorption: acc_a[l],
                fission: acc_f[l],
                nu_fission: acc_nf[l],
            };
        }
        p += 8;
    }
    for pp in full..n {
        out[pp] = macro_xs_lanes_scalar(soa, mat, energies[pp], &make_ix(energies[pp]));
    }
}

/// Convenience used by tests: direct binary-search micro lookup for one
/// nuclide via the flat SoA arrays (sanity cross-check of offsets).
pub fn soa_micro_total(soa: &SoaLibrary, k: usize, e: f64) -> f64 {
    let lo = soa.offsets[k] as usize;
    let hi = soa.offsets[k + 1] as usize;
    let seg = &soa.energy.as_slice()[lo..hi];
    let i = lo + lower_bound_index(seg, e);
    let f = lerp_interval(e, soa.energy[i], soa.energy[i + 1]);
    soa.total[i] + f * (soa.total[i + 1] - soa.total[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce8_matches_f64x8_reduce_sum() {
        let a = [1.5, -2.25, 3.0, 4.0, 5.5, 6.0, 7.75, 8.0];
        let scalar = reduce8(a);
        let vector = F64x8::from_slice(&a).reduce_sum();
        assert_eq!(scalar.to_bits(), vector.to_bits());
    }

    #[test]
    fn lerp_interval_clamps() {
        assert_eq!(lerp_interval(0.0, 1.0, 2.0), 0.0);
        assert_eq!(lerp_interval(1.5, 1.0, 2.0), 0.5);
        assert_eq!(lerp_interval(9.0, 1.0, 2.0), 1.0);
    }
}
