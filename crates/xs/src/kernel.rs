//! Macroscopic cross-section kernels — the paper's bottleneck computation.
//!
//! Variants, in the order the paper develops them:
//!
//! * [`macro_xs_direct`] — one binary search per nuclide (pre-Leppänen
//!   baseline for the grid ablation).
//! * [`macro_xs_union`] — scalar lookup with the unionized grid; this is
//!   `calculate_xs()` in the history-based code.
//! * [`macro_xs_union_aos`] / [`macro_xs_union_soa`] — the same lookup over
//!   the flattened AoS / SoA layouts (layout ablation).
//! * [`macro_xs_simd`] — the banked kernel's heart: the inner loop over
//!   nuclides vectorized 8-wide with gathers (Algorithm 2 lines 11–14).
//! * `batch_macro_xs_*` — whole-bank drivers for the Fig. 2
//!   micro-benchmark, including the outer-loop-vectorized variant the
//!   paper found *slower* (§III-A1).

use mcs_simd::F64x8;

use crate::grid::{lower_bound_index, UnionGrid};
use crate::layout::{AosLibrary, SoaLibrary};
use crate::library::NuclideLibrary;
use crate::material::Material;

/// Macroscopic cross sections (1/cm) of a material at one energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MacroXs {
    /// Total Σ_t.
    pub total: f64,
    /// Elastic scattering Σ_s.
    pub elastic: f64,
    /// Inelastic scattering Σ_inl.
    pub inelastic: f64,
    /// Absorption Σ_a (capture + fission).
    pub absorption: f64,
    /// Fission Σ_f.
    pub fission: f64,
    /// Fission-neutron production νΣ_f.
    pub nu_fission: f64,
}

impl MacroXs {
    /// Accumulate `density * σ` (and `density·ν · σ_f` into `nu_fission`).
    #[inline(always)]
    pub fn accumulate(&mut self, density: f64, density_nu: f64, micro: crate::nuclide::MicroXs) {
        self.total += density * micro.total;
        self.elastic += density * micro.elastic;
        self.inelastic += density * micro.inelastic;
        self.absorption += density * micro.absorption;
        self.fission += density * micro.fission;
        self.nu_fission += density_nu * micro.fission;
    }

    /// Max relative difference across components vs `other` (for tests).
    pub fn max_rel_diff(&self, other: &MacroXs) -> f64 {
        let d = |a: f64, b: f64| {
            let denom = a.abs().max(b.abs()).max(1e-300);
            (a - b).abs() / denom
        };
        d(self.total, other.total)
            .max(d(self.elastic, other.elastic))
            .max(d(self.inelastic, other.inelastic))
            .max(d(self.absorption, other.absorption))
            .max(d(self.fission, other.fission))
            .max(d(self.nu_fission, other.nu_fission))
    }
}

/// Scalar lookup, one binary search per nuclide (no union grid).
pub fn macro_xs_direct(lib: &NuclideLibrary, mat: &Material, e: f64) -> MacroXs {
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let nuc = lib.nuclide(k);
        acc.accumulate(density, mat.densities_nu[j], nuc.micro_at(e));
    }
    acc
}

/// Scalar lookup with the unionized grid (`calculate_xs()`).
pub fn macro_xs_union(lib: &NuclideLibrary, grid: &UnionGrid, mat: &Material, e: f64) -> MacroXs {
    let u = grid.find(e);
    let row = grid.index_row(u);
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let nuc = lib.nuclide(k);
        acc.accumulate(
            density,
            mat.densities_nu[j],
            nuc.micro_at_index(row[k as usize] as usize, e),
        );
    }
    acc
}

#[inline(always)]
fn lerp_interval(e: f64, e0: f64, e1: f64) -> f64 {
    ((e - e0) / (e1 - e0)).clamp(0.0, 1.0)
}

/// Scalar lookup over the AoS layout.
pub fn macro_xs_union_aos(aos: &AosLibrary, grid: &UnionGrid, mat: &Material, e: f64) -> MacroXs {
    let u = grid.find(e);
    let row = grid.index_row(u);
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let base = aos.offsets[k as usize] as usize;
        let i = base + row[k as usize] as usize;
        let p0 = &aos.points[i];
        let p1 = &aos.points[i + 1];
        let f = lerp_interval(e, p0.energy, p1.energy);
        let fission = p0.fission + f * (p1.fission - p0.fission);
        acc.total += density * (p0.total + f * (p1.total - p0.total));
        acc.elastic += density * (p0.elastic + f * (p1.elastic - p0.elastic));
        acc.inelastic += density * (p0.inelastic + f * (p1.inelastic - p0.inelastic));
        acc.absorption += density * (p0.absorption + f * (p1.absorption - p0.absorption));
        acc.fission += density * fission;
        acc.nu_fission += mat.densities_nu[j] * fission;
    }
    acc
}

/// Scalar lookup over the SoA layout.
pub fn macro_xs_union_soa(soa: &SoaLibrary, grid: &UnionGrid, mat: &Material, e: f64) -> MacroXs {
    let u = grid.find(e);
    let row = grid.index_row(u);
    let mut acc = MacroXs::default();
    for (j, (k, density)) in mat.iter().enumerate() {
        let i = soa.offsets[k as usize] as usize + row[k as usize] as usize;
        let f = lerp_interval(e, soa.energy[i], soa.energy[i + 1]);
        let lerp = |a: &[f64]| a[i] + f * (a[i + 1] - a[i]);
        let fission = lerp(soa.fission.as_slice());
        acc.total += density * lerp(soa.total.as_slice());
        acc.elastic += density * lerp(soa.elastic.as_slice());
        acc.inelastic += density * lerp(soa.inelastic.as_slice());
        acc.absorption += density * lerp(soa.absorption.as_slice());
        acc.fission += density * fission;
        acc.nu_fission += mat.densities_nu[j] * fission;
    }
    acc
}

/// Vectorized lookup: the inner loop over nuclides processed 8 at a time
/// with gathers from the SoA arrays (the paper's `#pragma simd` on
/// Algorithm 2 line 11, the choice that beat outer-loop vectorization).
#[allow(clippy::needless_range_loop)] // explicit lane indices mirror the intrinsic style
pub fn macro_xs_simd(soa: &SoaLibrary, grid: &UnionGrid, mat: &Material, e: f64) -> MacroXs {
    let u = grid.find(e);
    let row = grid.index_row(u);
    let n = mat.len();

    let ev = F64x8::splat(e);
    let mut acc_t = F64x8::zero();
    let mut acc_s = F64x8::zero();
    let mut acc_i = F64x8::zero();
    let mut acc_a = F64x8::zero();
    let mut acc_f = F64x8::zero();
    let mut acc_nf = F64x8::zero();

    let energy = soa.energy.as_slice();
    let total = soa.total.as_slice();
    let elastic = soa.elastic.as_slice();
    let inelastic = soa.inelastic.as_slice();
    let absorption = soa.absorption.as_slice();
    let fission = soa.fission.as_slice();

    let full = n / 8 * 8;
    let mut j = 0;
    while j < full {
        // Per-lane flat indices: offsets[nuclide] + row[nuclide].
        let mut idx = [0u32; 8];
        for l in 0..8 {
            let k = mat.nuclides[j + l] as usize;
            idx[l] = soa.offsets[k] + row[k];
        }
        let mut idx1 = [0u32; 8];
        for l in 0..8 {
            idx1[l] = idx[l] + 1;
        }

        let e0 = F64x8::gather(energy, idx);
        let e1 = F64x8::gather(energy, idx1);
        let f = ((ev - e0) / (e1 - e0))
            .max(F64x8::zero())
            .min(F64x8::splat(1.0));

        let dens = F64x8::from_slice(&mat.densities[j..]);

        let t0 = F64x8::gather(total, idx);
        let t1 = F64x8::gather(total, idx1);
        acc_t += dens * (t0 + f * (t1 - t0));

        let s0 = F64x8::gather(elastic, idx);
        let s1 = F64x8::gather(elastic, idx1);
        acc_s += dens * (s0 + f * (s1 - s0));

        let i0 = F64x8::gather(inelastic, idx);
        let i1 = F64x8::gather(inelastic, idx1);
        acc_i += dens * (i0 + f * (i1 - i0));

        let a0 = F64x8::gather(absorption, idx);
        let a1 = F64x8::gather(absorption, idx1);
        acc_a += dens * (a0 + f * (a1 - a0));

        let f0 = F64x8::gather(fission, idx);
        let f1 = F64x8::gather(fission, idx1);
        let sig_f = f0 + f * (f1 - f0);
        acc_f += dens * sig_f;
        let dens_nu = F64x8::from_slice(&mat.densities_nu[j..]);
        acc_nf += dens_nu * sig_f;

        j += 8;
    }

    let mut acc = MacroXs {
        total: acc_t.reduce_sum(),
        elastic: acc_s.reduce_sum(),
        inelastic: acc_i.reduce_sum(),
        absorption: acc_a.reduce_sum(),
        fission: acc_f.reduce_sum(),
        nu_fission: acc_nf.reduce_sum(),
    };

    // Scalar remainder.
    for jj in full..n {
        let k = mat.nuclides[jj] as usize;
        let i = soa.offsets[k] as usize + row[k] as usize;
        let f = lerp_interval(e, energy[i], energy[i + 1]);
        let d = mat.densities[jj];
        let sig_f = fission[i] + f * (fission[i + 1] - fission[i]);
        acc.total += d * (total[i] + f * (total[i + 1] - total[i]));
        acc.elastic += d * (elastic[i] + f * (elastic[i + 1] - elastic[i]));
        acc.inelastic += d * (inelastic[i] + f * (inelastic[i + 1] - inelastic[i]));
        acc.absorption += d * (absorption[i] + f * (absorption[i + 1] - absorption[i]));
        acc.fission += d * sig_f;
        acc.nu_fission += mat.densities_nu[jj] * sig_f;
    }
    acc
}

/// Whole-bank driver, scalar (the history-style reference for Fig. 2).
pub fn batch_macro_xs_scalar(
    lib: &NuclideLibrary,
    grid: &UnionGrid,
    mat: &Material,
    energies: &[f64],
    out: &mut [MacroXs],
) {
    assert_eq!(energies.len(), out.len());
    for (e, o) in energies.iter().zip(out.iter_mut()) {
        *o = macro_xs_union(lib, grid, mat, *e);
    }
}

/// Whole-bank driver with the inner (nuclide) loop vectorized — the
/// banked-lookup configuration the paper measures in Fig. 2.
pub fn batch_macro_xs_simd(
    soa: &SoaLibrary,
    grid: &UnionGrid,
    mat: &Material,
    energies: &[f64],
    out: &mut [MacroXs],
) {
    assert_eq!(energies.len(), out.len());
    for (e, o) in energies.iter().zip(out.iter_mut()) {
        *o = macro_xs_simd(soa, grid, mat, *e);
    }
}

/// Banked-lookup driver addressing the bank through gather indices: lane
/// `k` computes the cross section at `energy[indices[k]]` and writes it to
/// `out[k]`.
///
/// The event loop's XS stage buckets live particles by material, which
/// leaves each bucket a sorted-but-non-contiguous subset of the bank.
/// This driver gathers those energies through a stack-resident staging
/// tile and feeds the contiguous tile to [`batch_macro_xs_simd`], so no
/// heap copy of the bucket's energies is ever materialized. Per element
/// the result is exactly `macro_xs_simd(soa, grid, mat, energy[indices[k]])`.
pub fn batch_macro_xs_simd_indexed(
    soa: &SoaLibrary,
    grid: &UnionGrid,
    mat: &Material,
    energy: &[f64],
    indices: &[u32],
    out: &mut [MacroXs],
) {
    assert_eq!(indices.len(), out.len());
    const TILE: usize = 64;
    let mut tile = [0.0f64; TILE];
    for (idx_tile, out_tile) in indices.chunks(TILE).zip(out.chunks_mut(TILE)) {
        let m = idx_tile.len();
        for (slot, &i) in tile[..m].iter_mut().zip(idx_tile) {
            *slot = energy[i as usize];
        }
        batch_macro_xs_simd(soa, grid, mat, &tile[..m], out_tile);
    }
}

/// Whole-bank driver vectorized across the *outer* (particle) loop:
/// 8 particles per lane, inner loop over nuclides scalar per step. The
/// paper notes this performs worse because the inner trip counts and
/// table addresses diverge across lanes; it is kept for the ablation.
#[allow(clippy::needless_range_loop)] // explicit lane indices mirror the intrinsic style
pub fn batch_macro_xs_outer_simd(
    soa: &SoaLibrary,
    grid: &UnionGrid,
    mat: &Material,
    energies: &[f64],
    out: &mut [MacroXs],
) {
    assert_eq!(energies.len(), out.len());
    let n = energies.len();
    let n_nuc = grid.n_nuclides();
    let full = n / 8 * 8;

    let energy = soa.energy.as_slice();
    let total = soa.total.as_slice();
    let elastic = soa.elastic.as_slice();
    let inelastic = soa.inelastic.as_slice();
    let absorption = soa.absorption.as_slice();
    let fission = soa.fission.as_slice();

    let mut p = 0;
    while p < full {
        // Per-lane union interval (scalar binary searches — lane-divergent
        // work that outer vectorization cannot hide).
        let mut u = [0usize; 8];
        for l in 0..8 {
            u[l] = grid.find(energies[p + l]);
        }
        let ev = F64x8::from_slice(&energies[p..]);
        let mut acc_t = F64x8::zero();
        let mut acc_s = F64x8::zero();
        let mut acc_i = F64x8::zero();
        let mut acc_a = F64x8::zero();
        let mut acc_f = F64x8::zero();
        let mut acc_nf = F64x8::zero();

        for (j, (k, density)) in mat.iter().enumerate() {
            let k = k as usize;
            let off = soa.offsets[k];
            let mut idx = [0u32; 8];
            for l in 0..8 {
                idx[l] = off + grid.index_row(u[l])[k];
            }
            let mut idx1 = [0u32; 8];
            for l in 0..8 {
                idx1[l] = idx[l] + 1;
            }
            let _ = n_nuc;

            let e0 = F64x8::gather(energy, idx);
            let e1 = F64x8::gather(energy, idx1);
            let f = ((ev - e0) / (e1 - e0))
                .max(F64x8::zero())
                .min(F64x8::splat(1.0));
            let dv = F64x8::splat(density);

            let t0 = F64x8::gather(total, idx);
            let t1 = F64x8::gather(total, idx1);
            acc_t += dv * (t0 + f * (t1 - t0));
            let s0 = F64x8::gather(elastic, idx);
            let s1 = F64x8::gather(elastic, idx1);
            acc_s += dv * (s0 + f * (s1 - s0));
            let i0 = F64x8::gather(inelastic, idx);
            let i1 = F64x8::gather(inelastic, idx1);
            acc_i += dv * (i0 + f * (i1 - i0));
            let a0 = F64x8::gather(absorption, idx);
            let a1 = F64x8::gather(absorption, idx1);
            acc_a += dv * (a0 + f * (a1 - a0));
            let f0 = F64x8::gather(fission, idx);
            let f1 = F64x8::gather(fission, idx1);
            let sig_f = f0 + f * (f1 - f0);
            acc_f += dv * sig_f;
            acc_nf += F64x8::splat(mat.densities_nu[j]) * sig_f;
        }

        for l in 0..8 {
            out[p + l] = MacroXs {
                total: acc_t[l],
                elastic: acc_s[l],
                inelastic: acc_i[l],
                absorption: acc_a[l],
                fission: acc_f[l],
                nu_fission: acc_nf[l],
            };
        }
        p += 8;
    }
    for pp in full..n {
        out[pp] = macro_xs_union_soa(soa, grid, mat, energies[pp]);
    }
}

/// Convenience used by tests: direct binary-search micro lookup for one
/// nuclide via the flat SoA arrays (sanity cross-check of offsets).
pub fn soa_micro_total(soa: &SoaLibrary, k: usize, e: f64) -> f64 {
    let lo = soa.offsets[k] as usize;
    let hi = soa.offsets[k + 1] as usize;
    let seg = &soa.energy.as_slice()[lo..hi];
    let i = lo + lower_bound_index(seg, e);
    let f = lerp_interval(e, soa.energy[i], soa.energy[i + 1]);
    soa.total[i] + f * (soa.total[i + 1] - soa.total[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{LibrarySpec, NuclideLibrary};

    struct Fixture {
        lib: NuclideLibrary,
        grid: UnionGrid,
        soa: SoaLibrary,
        aos: AosLibrary,
        fuel: Material,
        water: Material,
    }

    fn fixture() -> Fixture {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let grid = UnionGrid::build(&lib.nuclides);
        let soa = SoaLibrary::build(&lib);
        let aos = AosLibrary::build(&lib);
        let fuel = Material::hm_fuel(&lib);
        let water = Material::hm_water(&lib);
        Fixture {
            lib,
            grid,
            soa,
            aos,
            fuel,
            water,
        }
    }

    fn probe_energies() -> Vec<f64> {
        let mut es = Vec::new();
        let mut e = 2.3e-11;
        while e < 19.0 {
            es.push(e);
            e *= 1.9;
        }
        es
    }

    #[test]
    fn union_equals_direct() {
        let fx = fixture();
        for &e in &probe_energies() {
            let a = macro_xs_direct(&fx.lib, &fx.fuel, e);
            let b = macro_xs_union(&fx.lib, &fx.grid, &fx.fuel, e);
            assert!(a.max_rel_diff(&b) < 1e-14, "e={e}");
        }
    }

    #[test]
    fn layouts_agree_with_reference() {
        let fx = fixture();
        for &e in &probe_energies() {
            let r = macro_xs_union(&fx.lib, &fx.grid, &fx.fuel, e);
            let aos = macro_xs_union_aos(&fx.aos, &fx.grid, &fx.fuel, e);
            let soa = macro_xs_union_soa(&fx.soa, &fx.grid, &fx.fuel, e);
            assert!(r.max_rel_diff(&aos) < 1e-14);
            assert!(r.max_rel_diff(&soa) < 1e-14);
        }
    }

    #[test]
    fn simd_matches_scalar_within_reassociation() {
        let fx = fixture();
        for &e in &probe_energies() {
            let r = macro_xs_union(&fx.lib, &fx.grid, &fx.fuel, e);
            let v = macro_xs_simd(&fx.soa, &fx.grid, &fx.fuel, e);
            assert!(r.max_rel_diff(&v) < 1e-12, "e={e} scalar={r:?} simd={v:?}");
        }
    }

    #[test]
    fn simd_handles_materials_smaller_than_vector_width() {
        let fx = fixture();
        // Water has 3 nuclides, all remainder.
        for &e in &probe_energies() {
            let r = macro_xs_union(&fx.lib, &fx.grid, &fx.water, e);
            let v = macro_xs_simd(&fx.soa, &fx.grid, &fx.water, e);
            assert!(r.max_rel_diff(&v) < 1e-12);
        }
    }

    #[test]
    fn batch_drivers_agree() {
        let fx = fixture();
        let es = probe_energies();
        let mut a = vec![MacroXs::default(); es.len()];
        let mut b = vec![MacroXs::default(); es.len()];
        let mut c = vec![MacroXs::default(); es.len()];
        batch_macro_xs_scalar(&fx.lib, &fx.grid, &fx.fuel, &es, &mut a);
        batch_macro_xs_simd(&fx.soa, &fx.grid, &fx.fuel, &es, &mut b);
        batch_macro_xs_outer_simd(&fx.soa, &fx.grid, &fx.fuel, &es, &mut c);
        for i in 0..es.len() {
            assert!(a[i].max_rel_diff(&b[i]) < 1e-12, "i={i}");
            assert!(a[i].max_rel_diff(&c[i]) < 1e-12, "i={i}");
        }
    }

    #[test]
    fn indexed_driver_matches_elementwise_simd() {
        let fx = fixture();
        // An energy table larger than one staging tile, addressed by a
        // scrambled, repeating index set (as material buckets are).
        let energy: Vec<f64> = (0..150).map(|i| 2.3e-11 * 1.18f64.powi(i)).collect();
        let indices: Vec<u32> = (0..150u32).map(|k| (k * 67 + 13) % 150).collect();
        let mut out = vec![MacroXs::default(); indices.len()];
        batch_macro_xs_simd_indexed(&fx.soa, &fx.grid, &fx.fuel, &energy, &indices, &mut out);
        for (k, &i) in indices.iter().enumerate() {
            let want = macro_xs_simd(&fx.soa, &fx.grid, &fx.fuel, energy[i as usize]);
            assert_eq!(out[k], want, "k={k}");
        }
    }

    #[test]
    fn macro_xs_is_positive_and_total_consistent() {
        let fx = fixture();
        for &e in &probe_energies() {
            let m = macro_xs_union(&fx.lib, &fx.grid, &fx.fuel, e);
            assert!(m.total > 0.0);
            assert!(m.fission >= 0.0);
            assert!(m.absorption >= m.fission - 1e-15);
            let sum = m.elastic + m.inelastic + m.absorption;
            assert!((m.total - sum).abs() < 1e-9 * m.total);
        }
    }

    #[test]
    fn soa_micro_total_matches_nuclide() {
        let fx = fixture();
        for k in 0..fx.lib.len() {
            let e = 1.3e-4;
            let via_soa = soa_micro_total(&fx.soa, k, e);
            let via_nuc = fx.lib.nuclide(k as u32).micro_at(e).total;
            assert!((via_soa - via_nuc).abs() < 1e-12 * via_nuc.max(1.0));
        }
    }
}
