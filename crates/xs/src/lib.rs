//! Continuous-energy neutron cross-section data and lookup kernels.
//!
//! This crate is the stand-in for OpenMC's cross-section machinery plus the
//! evaluated nuclear data it reads (ACE libraries). Since evaluated data
//! cannot ship with a reproduction, every nuclide is *synthesized* from a
//! seeded single-level Breit–Wigner resonance ladder
//! ([`nuclide::Nuclide::synthesize`]): the result has the computational
//! character that drives the paper's measurements — thousands of pointwise
//! energy grid entries per nuclide, a resonance forest in the eV–keV range
//! (compare Fig. 1), smooth 1/v behaviour at thermal energies, and
//! memory-bound random-access lookups.
//!
//! The pieces, bottom to top:
//!
//! * [`nuclide`] — one nuclide's pointwise data, SLBW synthesis.
//! * [`library`] — nuclide collections; the H.M. Small (34 fuel nuclides)
//!   and H.M. Large (320 fuel nuclides) libraries from the paper §III.
//! * [`material`] — nuclide mixtures with atomic densities.
//! * [`grid`] — per-nuclide binary search and the *unionized energy grid*
//!   (Leppänen's algorithm, the paper's ref. \[13\]) with per-nuclide index
//!   maps.
//! * [`hash`] — the hash-binned energy grid (the XSBench-style
//!   memory-frugal alternative: log-spaced bins + bounded in-bin scan).
//! * [`layout`] — AoS and SoA flattenings of the library (the paper's most
//!   important MIC optimization is the AoS→SoA transform, §III-A1).
//! * [`kernel`] — the shared macroscopic lookup arithmetic: lane-striped
//!   scalar and vectorized banked kernels (inner-loop-over-nuclides, as
//!   the paper found fastest, plus the outer-loop variant for the
//!   ablation).
//! * [`context`] — [`XsContext`], the one public lookup surface: library +
//!   layouts + a pluggable [`GridBackend`], instrumented, with all
//!   backends and both scalar/SIMD paths bit-identical.
//! * [`cache`] — process-wide memoization of built contexts keyed by
//!   model hash × backend, so harnesses stop rebuilding identical grid
//!   indices.
//! * [`sab`] — S(α,β) thermal-scattering adjustment (branchy physics the
//!   paper had to strip to vectorize; kept optional here).
//! * [`urr`] — unresolved-resonance-range probability tables (Levitt's
//!   method, the paper's ref. \[9\]).

//! ```
//! use mcs_xs::{GridBackendKind, LibrarySpec, Material, NuclideLibrary, XsContext};
//!
//! let lib = NuclideLibrary::build(&LibrarySpec::tiny());
//! let ctx = XsContext::new(lib, GridBackendKind::Unionized);
//! let fuel = Material::hm_fuel(ctx.lib());
//! let xs = ctx.macro_xs(&fuel, 1.0e-6); // 1 eV
//! assert!(xs.total > 0.0);
//! assert!((xs.total - (xs.elastic + xs.absorption)).abs() < 1e-9 * xs.total);
//! // Every backend and the SIMD path return bit-identical results.
//! assert_eq!(xs, ctx.macro_xs_simd(&fuel, 1.0e-6));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod context;
pub mod grid;
pub mod hash;
pub mod kernel;
pub mod layout;
pub mod library;
pub mod material;
pub mod nuclide;
pub mod sab;
pub mod urr;

pub use context::{EnergyIndexer, GridBackend, GridBackendKind, XsContext};
pub use grid::UnionGrid;
pub use hash::HashGrid;
pub use kernel::MacroXs;
pub use layout::{AosLibrary, SoaLibrary};
pub use library::{LibrarySpec, NuclideLibrary};
pub use material::Material;
pub use nuclide::Nuclide;

/// Lowest tabulated energy, in MeV (1e-11 MeV = 0.01 meV).
pub const E_MIN: f64 = 1.0e-11;
/// Highest tabulated energy, in MeV.
pub const E_MAX: f64 = 20.0;
