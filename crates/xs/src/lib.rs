//! Continuous-energy neutron cross-section data and lookup kernels.
//!
//! This crate is the stand-in for OpenMC's cross-section machinery plus the
//! evaluated nuclear data it reads (ACE libraries). Since evaluated data
//! cannot ship with a reproduction, every nuclide is *synthesized* from a
//! seeded single-level Breit–Wigner resonance ladder
//! ([`nuclide::Nuclide::synthesize`]): the result has the computational
//! character that drives the paper's measurements — thousands of pointwise
//! energy grid entries per nuclide, a resonance forest in the eV–keV range
//! (compare Fig. 1), smooth 1/v behaviour at thermal energies, and
//! memory-bound random-access lookups.
//!
//! The pieces, bottom to top:
//!
//! * [`nuclide`] — one nuclide's pointwise data, SLBW synthesis.
//! * [`library`] — nuclide collections; the H.M. Small (34 fuel nuclides)
//!   and H.M. Large (320 fuel nuclides) libraries from the paper §III.
//! * [`material`] — nuclide mixtures with atomic densities.
//! * [`grid`] — per-nuclide binary search and the *unionized energy grid*
//!   (Leppänen's algorithm, the paper's ref. \[13\]) with per-nuclide index
//!   maps.
//! * [`layout`] — AoS and SoA flattenings of the library (the paper's most
//!   important MIC optimization is the AoS→SoA transform, §III-A1).
//! * [`kernel`] — macroscopic cross-section kernels: scalar history-style
//!   lookups and vectorized banked lookups (inner-loop-over-nuclides, as
//!   the paper found fastest, plus the outer-loop variant for the
//!   ablation).
//! * [`sab`] — S(α,β) thermal-scattering adjustment (branchy physics the
//!   paper had to strip to vectorize; kept optional here).
//! * [`urr`] — unresolved-resonance-range probability tables (Levitt's
//!   method, the paper's ref. \[9\]).

//! ```
//! use mcs_xs::{LibrarySpec, Material, NuclideLibrary, UnionGrid};
//! use mcs_xs::kernel::macro_xs_union;
//!
//! let lib = NuclideLibrary::build(&LibrarySpec::tiny());
//! let grid = UnionGrid::build(&lib.nuclides);
//! let fuel = Material::hm_fuel(&lib);
//! let xs = macro_xs_union(&lib, &grid, &fuel, 1.0e-6); // 1 eV
//! assert!(xs.total > 0.0);
//! assert!((xs.total - (xs.elastic + xs.absorption)).abs() < 1e-9 * xs.total);
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod kernel;
pub mod layout;
pub mod library;
pub mod material;
pub mod nuclide;
pub mod sab;
pub mod urr;

pub use grid::UnionGrid;
pub use kernel::MacroXs;
pub use layout::{AosLibrary, SoaLibrary};
pub use library::{LibrarySpec, NuclideLibrary};
pub use material::Material;
pub use nuclide::Nuclide;

/// Lowest tabulated energy, in MeV (1e-11 MeV = 0.01 meV).
pub const E_MIN: f64 = 1.0e-11;
/// Highest tabulated energy, in MeV.
pub const E_MAX: f64 = 20.0;
