//! Energy-grid searches: per-nuclide binary search and the unionized grid.
//!
//! The unionized energy grid (Leppänen 2009, the paper's ref. \[13\]) is the
//! key algorithmic optimization both measured codes share: instead of one
//! binary search per nuclide per lookup (`O(N_nuc · log n_grid)`), a single
//! binary search on the point-wise union of all nuclide grids yields, via a
//! precomputed per-nuclide index map, each nuclide's bracketing interval in
//! O(1). For 320-nuclide fuel this removes ~320 binary searches per
//! lookup — and, critically for the paper, it makes the inner loop over
//! nuclides *data-independent*, which is what lets `#pragma simd`
//! (here: [`crate::kernel`]'s gather-based kernels) vectorize it.

use crate::nuclide::Nuclide;

/// Index `i` of the interval `[a[i], a[i+1])` containing `x`, clamped to
/// `[0, a.len()-2]`. `a` must be sorted ascending with length ≥ 2.
#[inline]
pub fn lower_bound_index(a: &[f64], x: f64) -> usize {
    debug_assert!(a.len() >= 2);
    // partition_point returns the count of elements <= x ... we want the
    // last i with a[i] <= x.
    let n = a.partition_point(|&e| e <= x);
    n.saturating_sub(1).min(a.len() - 2)
}

/// The unionized energy grid with per-nuclide index maps.
///
/// `index_map` is stored *union-point-major* (`[u * n_nuclides + n]`), so
/// the vectorized kernels can load 8 consecutive nuclides' indices with
/// one contiguous vector load — part of the AoS→SoA story.
#[derive(Debug, Clone)]
pub struct UnionGrid {
    energy: Vec<f64>,
    index_map: Vec<u32>,
    n_nuclides: usize,
}

impl UnionGrid {
    /// Build the union of all nuclide grids and the index maps.
    pub fn build(nuclides: &[Nuclide]) -> Self {
        assert!(!nuclides.is_empty());
        // Union of all energy points.
        let total: usize = nuclides.iter().map(|n| n.energy.len()).sum();
        let mut energy = Vec::with_capacity(total);
        for n in nuclides {
            energy.extend_from_slice(&n.energy);
        }
        energy.sort_by(|a, b| a.partial_cmp(b).unwrap());
        energy.dedup();

        let n_nuclides = nuclides.len();
        let mut index_map = vec![0u32; energy.len() * n_nuclides];
        // March a cursor through each nuclide's grid: O(total) overall.
        let mut cursors = vec![0usize; n_nuclides];
        for (u, &e) in energy.iter().enumerate() {
            for (k, nuc) in nuclides.iter().enumerate() {
                let g = &nuc.energy;
                let mut c = cursors[k];
                while c + 1 < g.len() - 1 && g[c + 1] <= e {
                    c += 1;
                }
                cursors[k] = c;
                index_map[u * n_nuclides + k] = c as u32;
            }
        }
        Self {
            energy,
            index_map,
            n_nuclides,
        }
    }

    /// Number of union grid points.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.energy.len()
    }

    /// Number of nuclides covered by the index map.
    #[inline]
    pub fn n_nuclides(&self) -> usize {
        self.n_nuclides
    }

    /// Union energies.
    #[inline]
    pub fn energies(&self) -> &[f64] {
        &self.energy
    }

    /// One binary search on the union grid.
    #[inline]
    pub fn find(&self, e: f64) -> usize {
        lower_bound_index(&self.energy, e)
    }

    /// Index into nuclide `k`'s grid for union interval `u`.
    #[inline]
    pub fn nuclide_index(&self, u: usize, k: usize) -> u32 {
        self.index_map[u * self.n_nuclides + k]
    }

    /// The contiguous row of per-nuclide indices for union interval `u`
    /// (length `n_nuclides`); this is the vector-loadable view.
    #[inline]
    pub fn index_row(&self, u: usize) -> &[u32] {
        &self.index_map[u * self.n_nuclides..(u + 1) * self.n_nuclides]
    }

    /// In-memory size of the grid structures in bytes (the paper's
    /// "energy grid size transferred" row in Table II).
    pub fn data_bytes(&self) -> usize {
        self.energy.len() * std::mem::size_of::<f64>()
            + self.index_map.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nuclide::NuclideSpec;

    fn small_set() -> Vec<Nuclide> {
        vec![
            Nuclide::synthesize(&NuclideSpec::heavy("A", 230.0, false, 11)),
            Nuclide::synthesize(&NuclideSpec::heavy("B", 235.0, true, 22)),
            Nuclide::synthesize(&NuclideSpec::light("H", 1.0, 20.0, 0.3, 33)),
        ]
    }

    #[test]
    fn lower_bound_basics() {
        let a = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(lower_bound_index(&a, -5.0), 0);
        assert_eq!(lower_bound_index(&a, 0.0), 0);
        assert_eq!(lower_bound_index(&a, 0.5), 0);
        assert_eq!(lower_bound_index(&a, 1.0), 1);
        assert_eq!(lower_bound_index(&a, 2.999), 2);
        assert_eq!(lower_bound_index(&a, 3.0), 2); // clamped to last interval
        assert_eq!(lower_bound_index(&a, 99.0), 2);
    }

    #[test]
    fn union_contains_all_nuclide_points() {
        let nucs = small_set();
        let g = UnionGrid::build(&nucs);
        for n in &nucs {
            for &e in &n.energy {
                assert!(g
                    .energies()
                    .binary_search_by(|p| p.partial_cmp(&e).unwrap())
                    .is_ok());
            }
        }
    }

    #[test]
    fn index_map_matches_direct_binary_search() {
        let nucs = small_set();
        let g = UnionGrid::build(&nucs);
        // Probe energies strictly inside union intervals.
        let es = g.energies();
        for u in (0..es.len() - 1).step_by(97) {
            let e = 0.5 * (es[u] + es[u + 1]);
            let u_found = g.find(e);
            assert_eq!(u_found, u);
            for (k, n) in nucs.iter().enumerate() {
                let direct = lower_bound_index(&n.energy, e);
                let mapped = g.nuclide_index(u, k) as usize;
                assert_eq!(direct, mapped, "u={u} k={k} e={e}");
            }
        }
    }

    #[test]
    fn interpolated_xs_identical_via_both_paths() {
        let nucs = small_set();
        let g = UnionGrid::build(&nucs);
        let mut e = 1.07e-9;
        while e < 19.0 {
            let u = g.find(e);
            for (k, n) in nucs.iter().enumerate() {
                let via_union = n.micro_at_index(g.nuclide_index(u, k) as usize, e);
                let via_search = n.micro_at(e);
                assert_eq!(via_union, via_search, "e={e} k={k}");
            }
            e *= 3.7;
        }
    }

    #[test]
    fn index_row_is_contiguous_per_union_point() {
        let nucs = small_set();
        let g = UnionGrid::build(&nucs);
        let u = g.n_points() / 2;
        let row = g.index_row(u);
        assert_eq!(row.len(), nucs.len());
        for (k, &i) in row.iter().enumerate() {
            assert_eq!(i, g.nuclide_index(u, k));
        }
    }

    #[test]
    fn degenerate_single_point_grids_stay_in_bounds() {
        let mut nucs = small_set();
        let mut one = nucs[0].clone();
        one.energy = vec![1.0e-6];
        one.total = vec![1.0];
        nucs.push(one);
        let g = UnionGrid::build(&nucs);
        // The one-point nuclide's index must stay 0 at every union point.
        for u in 0..g.n_points() {
            assert_eq!(g.nuclide_index(u, 3), 0);
        }
        // And the regular nuclides' indices must stay within the last
        // interpolable interval.
        for u in 0..g.n_points() {
            for (k, n) in nucs.iter().take(3).enumerate() {
                assert!((g.nuclide_index(u, k) as usize) <= n.energy.len() - 2);
            }
        }
    }

    #[test]
    fn duplicate_energies_across_nuclides_dedup() {
        let nucs = small_set();
        let twin = vec![nucs[0].clone(), nucs[0].clone()];
        let g = UnionGrid::build(&twin);
        // Identical grids merge to one copy of the points...
        assert_eq!(g.n_points(), nucs[0].energy.len());
        // ...and both nuclides share every index row entry.
        for u in 0..g.n_points() {
            assert_eq!(g.nuclide_index(u, 0), g.nuclide_index(u, 1));
        }
    }

    #[test]
    fn one_nuclide_library_builds_and_maps_identity() {
        let nucs = vec![small_set().remove(1)];
        let g = UnionGrid::build(&nucs);
        assert_eq!(g.n_nuclides(), 1);
        assert_eq!(g.n_points(), nucs[0].energy.len());
        for u in 0..g.n_points() {
            let i = g.nuclide_index(u, 0) as usize;
            assert!(i <= nucs[0].energy.len() - 2);
            assert_eq!(i, u.min(nucs[0].energy.len() - 2));
        }
    }

    #[test]
    fn data_bytes_scales_with_points_and_nuclides() {
        let nucs = small_set();
        let g = UnionGrid::build(&nucs);
        assert_eq!(
            g.data_bytes(),
            g.n_points() * 8 + g.n_points() * nucs.len() * 4
        );
    }
}
