//! Nuclide libraries: the H.M. Small and H.M. Large fuel inventories.
//!
//! The Hoogenboom–Martin performance benchmark (the paper's ref. \[11\])
//! defines fuel as a mix of actinides, minor actinides, and fission
//! products: 34 nuclides in the original model ("H.M. Small"), 320 in the
//! higher-fidelity variant ("H.M. Large"). The specific isotopic identities
//! matter less for performance than the *count* and the data volume per
//! nuclide, so the library synthesizes: a handful of named major actinides,
//! then filler minor actinides / fission products with masses and ladders
//! drawn from seeded distributions.

use rayon::prelude::*;

use crate::nuclide::{Nuclide, NuclideSpec};

/// How large a library to build.
#[derive(Debug, Clone)]
pub struct LibrarySpec {
    /// Number of fuel nuclides (34 = H.M. Small, 320 = H.M. Large).
    pub n_fuel_nuclides: usize,
    /// Grid density multiplier: 1.0 ⇒ a few hundred points per nuclide
    /// (test scale); raise for bench-scale data volumes.
    pub grid_density: f64,
    /// Fuel temperature (K) for Doppler-broadened fuel-nuclide data;
    /// `0.0` = unbroadened (the calibrated baseline).
    pub fuel_temperature_k: f64,
    /// Master seed.
    pub seed: u64,
}

impl LibrarySpec {
    /// The 34-nuclide "H.M. Small" model.
    pub fn hm_small() -> Self {
        Self {
            n_fuel_nuclides: 34,
            grid_density: 1.0,
            fuel_temperature_k: 0.0,
            seed: 0x484d_5f53, // "HM_S"
        }
    }

    /// The 320-nuclide "H.M. Large" model.
    pub fn hm_large() -> Self {
        Self {
            n_fuel_nuclides: 320,
            grid_density: 1.0,
            fuel_temperature_k: 0.0,
            seed: 0x484d_5f4c, // "HM_L"
        }
    }

    /// A tiny library for unit tests.
    pub fn tiny() -> Self {
        Self {
            n_fuel_nuclides: 4,
            grid_density: 0.5,
            fuel_temperature_k: 0.0,
            seed: 42,
        }
    }

    /// Scale the per-nuclide grid point count.
    pub fn with_grid_density(mut self, d: f64) -> Self {
        self.grid_density = d;
        self
    }

    /// Doppler-broaden the fuel nuclides to `t_k` kelvin.
    pub fn with_fuel_temperature(mut self, t_k: f64) -> Self {
        self.fuel_temperature_k = t_k;
        self
    }
}

/// Indices of the well-known nuclides inside a built library.
#[derive(Debug, Clone, Copy)]
pub struct KnownNuclides {
    /// U-235 (fissile).
    pub u235: u32,
    /// U-238 (fertile).
    pub u238: u32,
    /// H-1 (water).
    pub h1: u32,
    /// O-16 (water + oxide fuel).
    pub o16: u32,
    /// B-10 (soluble absorber).
    pub b10: u32,
    /// Natural Zr (cladding).
    pub zr: u32,
}

/// A built nuclide library.
#[derive(Debug, Clone)]
pub struct NuclideLibrary {
    /// All nuclides; fuel nuclides first, then the fixed moderator /
    /// structural set.
    pub nuclides: Vec<Nuclide>,
    /// Number of fuel nuclides (prefix of `nuclides`).
    pub n_fuel: usize,
    /// Indices of well-known nuclides.
    pub known: KnownNuclides,
}

impl NuclideLibrary {
    /// Build the library for a spec. Nuclide synthesis is parallel and
    /// deterministic in the spec.
    pub fn build(spec: &LibrarySpec) -> Self {
        let d = spec.grid_density;
        let scale = |n: usize| ((n as f64 * d).round() as usize).max(8);

        let mut specs: Vec<NuclideSpec> = Vec::new();

        // Major actinides first (always present, fissile U-235 / Pu-239).
        let heavy = |name: &str, awr: f64, fissile: bool, seed: u64| {
            let mut s = NuclideSpec::heavy(name, awr, fissile, seed);
            s.n_base_grid = scale(s.n_base_grid);
            s.temperature_k = spec.fuel_temperature_k;
            s
        };
        specs.push(heavy("U235", 233.02, true, spec.seed ^ 92_235));
        specs.push(heavy("U238", 236.01, false, spec.seed ^ 92_238));
        specs.push(heavy("Pu239", 236.99, true, spec.seed ^ 94_239));
        specs.push(heavy("Pu240", 237.98, false, spec.seed ^ 94_240));

        // Filler: minor actinides and fission products up to n_fuel.
        let n_filler = spec.n_fuel_nuclides.saturating_sub(specs.len());
        for i in 0..n_filler {
            let seed = spec.seed ^ (0x1000 + i as u64);
            // Alternate heavy (actinide-like) and mid-mass (fission
            // product) character.
            let mut s = if i % 3 == 0 {
                NuclideSpec::heavy(&format!("MA{i:03}"), 230.0 + (i % 20) as f64, false, seed)
            } else {
                let mut fp =
                    NuclideSpec::structural(&format!("FP{i:03}"), 80.0 + (i % 80) as f64, seed);
                fp.n_resonances = 20;
                fp.thermal_capture = 2.0 + (i % 20) as f64;
                // Fission products: moderate resonance absorbers.
                fp.resonance_strength = 0.2;
                fp
            };
            s.n_base_grid = scale(s.n_base_grid);
            s.temperature_k = spec.fuel_temperature_k;
            specs.push(s);
        }
        let n_fuel = specs.len();

        // Fixed moderator/structural set, after the fuel prefix.
        let light = |name: &str, awr: f64, pot: f64, cap: f64, seed: u64| {
            let mut s = NuclideSpec::light(name, awr, pot, cap, seed);
            s.n_base_grid = scale(s.n_base_grid);
            s
        };
        let h1 = specs.len() as u32;
        specs.push(light("H1", 0.9992, 20.4, 0.332, spec.seed ^ 1_001));
        let o16 = specs.len() as u32;
        specs.push(light("O16", 15.858, 3.9, 0.00019, spec.seed ^ 8_016));
        let b10 = specs.len() as u32;
        specs.push(light("B10", 9.927, 2.1, 3_837.0, spec.seed ^ 5_010));
        let zr = specs.len() as u32;
        {
            let mut s = NuclideSpec::structural("ZrNat", 90.44, spec.seed ^ 40_000);
            s.n_base_grid = scale(s.n_base_grid);
            specs.push(s);
        }

        let nuclides: Vec<Nuclide> = specs.par_iter().map(Nuclide::synthesize).collect();

        Self {
            nuclides,
            n_fuel,
            known: KnownNuclides {
                u235: 0,
                u238: 1,
                h1,
                o16,
                b10,
                zr,
            },
        }
    }

    /// Total number of nuclides.
    #[inline]
    pub fn len(&self) -> usize {
        self.nuclides.len()
    }

    /// True if empty (never, for a built library).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nuclides.is_empty()
    }

    /// A nuclide by index.
    #[inline]
    pub fn nuclide(&self, i: u32) -> &Nuclide {
        &self.nuclides[i as usize]
    }

    /// Sum of all pointwise data sizes in bytes.
    pub fn data_bytes(&self) -> usize {
        self.nuclides.iter().map(|n| n.data_bytes()).sum()
    }

    /// Total grid points across nuclides.
    pub fn total_points(&self) -> usize {
        self.nuclides.iter().map(|n| n.n_points()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hm_small_has_34_fuel_nuclides() {
        let lib = NuclideLibrary::build(&LibrarySpec::hm_small());
        assert_eq!(lib.n_fuel, 34);
        assert!(lib.len() > 34); // plus moderator/structural
    }

    #[test]
    fn tiny_library_builds_fast_and_known_indices_resolve() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        assert_eq!(lib.nuclide(lib.known.u235).name, "U235");
        assert_eq!(lib.nuclide(lib.known.h1).name, "H1");
        assert_eq!(lib.nuclide(lib.known.zr).name, "ZrNat");
        assert!(lib.nuclide(lib.known.u235).fissile());
        assert!(!lib.nuclide(lib.known.u238).fissile());
    }

    #[test]
    fn build_is_deterministic() {
        let a = NuclideLibrary::build(&LibrarySpec::tiny());
        let b = NuclideLibrary::build(&LibrarySpec::tiny());
        for (x, y) in a.nuclides.iter().zip(&b.nuclides) {
            assert_eq!(x.total, y.total);
        }
    }

    #[test]
    fn grid_density_scales_points() {
        let lo = NuclideLibrary::build(&LibrarySpec::tiny().with_grid_density(0.5));
        let hi = NuclideLibrary::build(&LibrarySpec::tiny().with_grid_density(2.0));
        assert!(hi.total_points() > lo.total_points());
    }

    #[test]
    fn hot_fuel_library_is_broadened() {
        let cold = NuclideLibrary::build(&LibrarySpec::tiny());
        let hot = NuclideLibrary::build(&LibrarySpec::tiny().with_fuel_temperature(1800.0));
        // Fuel nuclide peaks drop...
        let r = *cold.nuclide(1).resonances.last().unwrap();
        let p_cold = cold.nuclide(1).micro_at(r.e0).absorption;
        let p_hot = hot.nuclide(1).micro_at(r.e0).absorption;
        assert!(p_hot < p_cold, "{p_hot} !< {p_cold}");
        // ...while the (cold) moderator nuclides are untouched.
        let h_cold = cold.nuclide(cold.known.h1).micro_at(1e-6);
        let h_hot = hot.nuclide(hot.known.h1).micro_at(1e-6);
        assert_eq!(h_cold, h_hot);
    }

    #[test]
    fn boron_is_a_strong_absorber() {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        let b10 = lib.nuclide(lib.known.b10);
        let thermal = b10.micro_at(2.53e-8); // 0.0253 eV in MeV
        assert!(thermal.absorption > 1_000.0);
    }
}
