//! Property tests for the cross-section substrate.

use std::sync::OnceLock;

use mcs_xs::grid::lower_bound_index;
use mcs_xs::nuclide::{Nuclide, NuclideSpec};
use mcs_xs::{GridBackendKind, LibrarySpec, Material, NuclideLibrary, XsContext};
use proptest::prelude::*;

/// One context per backend over the shared tiny library, built once.
fn contexts() -> &'static [XsContext; 3] {
    static CTXS: OnceLock<[XsContext; 3]> = OnceLock::new();
    CTXS.get_or_init(|| {
        let lib = NuclideLibrary::build(&LibrarySpec::tiny());
        [
            XsContext::new(lib.clone(), GridBackendKind::PerNuclideBinary),
            XsContext::new(lib.clone(), GridBackendKind::Unionized),
            XsContext::new(lib, GridBackendKind::HashBinned),
        ]
    })
}

fn assert_bits_eq(a: &mcs_xs::MacroXs, b: &mcs_xs::MacroXs) -> Result<(), TestCaseError> {
    for (x, y) in [
        (a.total, b.total),
        (a.elastic, b.elastic),
        (a.inelastic, b.inelastic),
        (a.absorption, b.absorption),
        (a.fission, b.fission),
        (a.nu_fission, b.nu_fission),
    ] {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
    }
    Ok(())
}

/// A random material over the tiny library: random nuclide multiset
/// (repeats allowed, order scrambled) with random densities.
fn random_material() -> impl Strategy<Value = Material> {
    let n_nuclides = contexts()[0].lib().len() as u32;
    prop::collection::vec((0..n_nuclides, 1.0e-6..10.0f64), 1..24)
        .prop_map(|pairs| Material::new("prop", &pairs).with_nu(contexts()[0].lib()))
}

/// Energies spanning the tabulated range plus out-of-range extremes and
/// exactly-on-grid-point values (the vendored proptest has no
/// `prop_oneof`, so a selector integer picks the case class).
fn probe_energy() -> impl Strategy<Value = f64> {
    (0u32..8, 0u32..4, 0usize..4096, (-25.3f64)..3.0).prop_map(|(sel, k, i, loge)| {
        match sel {
            // Below the first tabulated point.
            0 => mcs_xs::E_MIN / 7.0,
            // Above the last tabulated point.
            1 => mcs_xs::E_MAX * 3.0,
            // The exact range endpoints.
            2 => mcs_xs::E_MIN,
            3 => mcs_xs::E_MAX,
            // Exactly on a tabulated grid point of some nuclide.
            4 | 5 => {
                let nuc = contexts()[0].lib().nuclide(k);
                nuc.energy[i % nuc.energy.len()]
            }
            // Log-uniform inside (and slightly beyond) the range.
            _ => loge.exp(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole contract: for any material, densities, and energy —
    /// including out-of-range and exactly-on-grid-point energies — every
    /// backend's `macro_xs` agrees *bitwise* with `macro_xs_direct`, and
    /// the SIMD path agrees bitwise with the scalar path per backend.
    #[test]
    fn all_backends_bitwise_equal_direct(mat in random_material(), e in probe_energy()) {
        let reference = contexts()[0].macro_xs_direct(&mat, e);
        for ctx in contexts() {
            let scalar = ctx.macro_xs(&mat, e);
            let simd = ctx.macro_xs_simd(&mat, e);
            assert_bits_eq(&scalar, &reference)?;
            assert_bits_eq(&simd, &scalar)?;
        }
    }

    #[test]
    fn lookup_is_positive_and_consistent(loge in (-25.3f64)..3.0) {
        let e = loge.exp();
        let fuel = Material::hm_fuel(contexts()[0].lib());
        let a = contexts()[1].macro_xs(&fuel, e);
        prop_assert!(a.total > 0.0);
        prop_assert!(
            (a.total - (a.elastic + a.inelastic + a.absorption)).abs() < 1e-9 * a.total
        );
    }

    #[test]
    fn interpolation_is_between_grid_values(i_frac in 0.0..1.0f64, t in 0.001..0.999f64) {
        // At any point inside an interval, each reaction is between the
        // endpoint values (linear interpolation property).
        let nuc = Nuclide::synthesize(&NuclideSpec::heavy("X", 235.0, true, 5));
        let i = ((nuc.n_points() - 2) as f64 * i_frac) as usize;
        let e = nuc.energy[i] + t * (nuc.energy[i + 1] - nuc.energy[i]);
        let m = nuc.micro_at(e);
        let lo = nuc.total[i].min(nuc.total[i + 1]);
        let hi = nuc.total[i].max(nuc.total[i + 1]);
        prop_assert!(m.total >= lo - 1e-12 && m.total <= hi + 1e-12);
    }

    #[test]
    fn every_backend_resolves_binary_search_indices(e in probe_energy()) {
        for ctx in contexts() {
            let ix = ctx.indexer(e);
            for (k, n) in ctx.lib().nuclides.iter().enumerate() {
                let direct = lower_bound_index(&n.energy, e);
                prop_assert_eq!(ix.index(k) as usize, direct, "{} k={} e={}",
                    ctx.backend_kind().name(), k, e);
            }
        }
    }

    #[test]
    fn urr_sampling_never_produces_negative_xs(xi in 0.0..1.0f64, loge in (-6.1f64)..(-3.7)) {
        use mcs_xs::urr::UrrTable;
        use mcs_xs::nuclide::MicroXs;
        let e = loge.exp();
        let t = UrrTable::synthesize(3, 8);
        let f = t.sample(e, xi);
        let m = MicroXs { total: 20.5, elastic: 12.0, inelastic: 0.5, absorption: 8.0, fission: 3.0 };
        let out = f.apply(m);
        prop_assert!(out.total > 0.0);
        prop_assert!(out.elastic > 0.0);
        prop_assert!(out.absorption >= out.fission);
        prop_assert!(
            (out.total - (out.elastic + out.inelastic + out.absorption)).abs()
                < 1e-12 * out.total
        );
    }

    #[test]
    fn sab_outgoing_state_is_physical(
        loge in (-23.0f64)..(-12.5), // below the 4 eV cutoff
        xi1 in 0.0..1.0f64,
        xi2 in 0.0..1.0f64,
    ) {
        use mcs_xs::sab::SabTable;
        let e = loge.exp();
        let t = SabTable::synthesize(4);
        let (e_out, mu) = t.sample_outgoing(e, xi1, xi2);
        prop_assert!(e_out > 0.0);
        prop_assert!(e_out <= 2.5 * e + 1e-15);
        prop_assert!((-1.0..=1.0).contains(&mu));
        let f = t.elastic_factor(e, 293.6);
        prop_assert!((1.0..=5.0).contains(&f));
    }
}

#[test]
fn library_data_volumes_scale_with_nuclide_count() {
    let small = NuclideLibrary::build(&LibrarySpec::hm_small());
    // A mid-size build instead of full Large to keep the test quick.
    let mid = NuclideLibrary::build(&LibrarySpec {
        n_fuel_nuclides: 100,
        grid_density: 1.0,
        fuel_temperature_k: 0.0,
        seed: LibrarySpec::hm_large().seed,
    });
    assert!(mid.data_bytes() > 2 * small.data_bytes());
    assert!(mid.total_points() > 2 * small.total_points());
}

#[test]
fn union_grid_size_bounded_by_sum_of_parts() {
    let ctx = &contexts()[1];
    let grid = ctx.union_grid().expect("unionized context");
    assert!(grid.n_points() <= ctx.lib().total_points());
    assert!(
        grid.n_points()
            >= ctx
                .lib()
                .nuclides
                .iter()
                .map(|n| n.n_points())
                .max()
                .unwrap()
    );
}

#[test]
fn hash_index_bytes_stay_under_quarter_of_unionized() {
    let union = contexts()[1].index_bytes();
    let hash = contexts()[2].index_bytes();
    assert!(hash > 0);
    assert!(
        (hash as f64) < 0.25 * union as f64,
        "hash {hash} union {union}"
    );
}
