//! Property tests for the cross-section substrate.

use mcs_xs::grid::lower_bound_index;
use mcs_xs::kernel::{macro_xs_direct, macro_xs_simd, macro_xs_union};
use mcs_xs::nuclide::{Nuclide, NuclideSpec};
use mcs_xs::{LibrarySpec, Material, NuclideLibrary, SoaLibrary, UnionGrid};
use proptest::prelude::*;

fn fixture() -> (NuclideLibrary, UnionGrid, SoaLibrary, Material) {
    let lib = NuclideLibrary::build(&LibrarySpec::tiny());
    let grid = UnionGrid::build(&lib.nuclides);
    let soa = SoaLibrary::build(&lib);
    let fuel = Material::hm_fuel(&lib);
    (lib, grid, soa, fuel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lookup_paths_agree_at_any_energy(loge in (-25.3f64)..3.0) {
        let e = loge.exp();
        let (lib, grid, soa, fuel) = fixture();
        let a = macro_xs_direct(&lib, &fuel, e);
        let b = macro_xs_union(&lib, &grid, &fuel, e);
        let c = macro_xs_simd(&soa, &grid, &fuel, e);
        prop_assert!(a.max_rel_diff(&b) < 1e-13);
        prop_assert!(a.max_rel_diff(&c) < 1e-11);
        prop_assert!(a.total > 0.0);
        prop_assert!(
            (a.total - (a.elastic + a.inelastic + a.absorption)).abs() < 1e-9 * a.total
        );
    }

    #[test]
    fn interpolation_is_between_grid_values(i_frac in 0.0..1.0f64, t in 0.001..0.999f64) {
        // At any point inside an interval, each reaction is between the
        // endpoint values (linear interpolation property).
        let nuc = Nuclide::synthesize(&NuclideSpec::heavy("X", 235.0, true, 5));
        let i = ((nuc.n_points() - 2) as f64 * i_frac) as usize;
        let e = nuc.energy[i] + t * (nuc.energy[i + 1] - nuc.energy[i]);
        let m = nuc.micro_at(e);
        let lo = nuc.total[i].min(nuc.total[i + 1]);
        let hi = nuc.total[i].max(nuc.total[i + 1]);
        prop_assert!(m.total >= lo - 1e-12 && m.total <= hi + 1e-12);
    }

    #[test]
    fn union_grid_index_map_consistent_at_random_points(loge in (-25.0f64)..2.9) {
        let e = loge.exp();
        let (lib, grid, _, _) = fixture();
        let u = grid.find(e);
        for (k, n) in lib.nuclides.iter().enumerate() {
            let mapped = grid.nuclide_index(u, k) as usize;
            let direct = lower_bound_index(&n.energy, e);
            prop_assert_eq!(mapped, direct, "k={} e={}", k, e);
        }
    }

    #[test]
    fn urr_sampling_never_produces_negative_xs(xi in 0.0..1.0f64, loge in (-6.1f64)..(-3.7)) {
        use mcs_xs::urr::UrrTable;
        use mcs_xs::nuclide::MicroXs;
        let e = loge.exp();
        let t = UrrTable::synthesize(3, 8);
        let f = t.sample(e, xi);
        let m = MicroXs { total: 20.5, elastic: 12.0, inelastic: 0.5, absorption: 8.0, fission: 3.0 };
        let out = f.apply(m);
        prop_assert!(out.total > 0.0);
        prop_assert!(out.elastic > 0.0);
        prop_assert!(out.absorption >= out.fission);
        prop_assert!(
            (out.total - (out.elastic + out.inelastic + out.absorption)).abs()
                < 1e-12 * out.total
        );
    }

    #[test]
    fn sab_outgoing_state_is_physical(
        loge in (-23.0f64)..(-12.5), // below the 4 eV cutoff
        xi1 in 0.0..1.0f64,
        xi2 in 0.0..1.0f64,
    ) {
        use mcs_xs::sab::SabTable;
        let e = loge.exp();
        let t = SabTable::synthesize(4);
        let (e_out, mu) = t.sample_outgoing(e, xi1, xi2);
        prop_assert!(e_out > 0.0);
        prop_assert!(e_out <= 2.5 * e + 1e-15);
        prop_assert!((-1.0..=1.0).contains(&mu));
        let f = t.elastic_factor(e, 293.6);
        prop_assert!((1.0..=5.0).contains(&f));
    }
}

#[test]
fn library_data_volumes_scale_with_nuclide_count() {
    let small = NuclideLibrary::build(&LibrarySpec::hm_small());
    // A mid-size build instead of full Large to keep the test quick.
    let mid = NuclideLibrary::build(&LibrarySpec {
        n_fuel_nuclides: 100,
        grid_density: 1.0,
        fuel_temperature_k: 0.0,
        seed: LibrarySpec::hm_large().seed,
    });
    assert!(mid.data_bytes() > 2 * small.data_bytes());
    assert!(mid.total_points() > 2 * small.total_points());
}

#[test]
fn union_grid_size_bounded_by_sum_of_parts() {
    let lib = NuclideLibrary::build(&LibrarySpec::tiny());
    let grid = UnionGrid::build(&lib.nuclides);
    assert!(grid.n_points() <= lib.total_points());
    assert!(grid.n_points() >= lib.nuclides.iter().map(|n| n.n_points()).max().unwrap());
}
