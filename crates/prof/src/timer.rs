//! Per-thread scoped timers with a region stack.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::report::{Profile, RegionStats};

struct Frame {
    name: &'static str,
    start: Instant,
    /// Total inclusive time of direct children, subtracted to get this
    /// frame's exclusive time.
    child_time: Duration,
}

struct Inner {
    stack: Vec<Frame>,
    stats: HashMap<&'static str, RegionStats>,
    /// TAU-style call-path statistics, keyed by "a => b => c".
    path_stats: HashMap<String, RegionStats>,
}

/// A per-thread profiler. Create one per worker, instrument with
/// [`ThreadProfiler::enter`], and [`ThreadProfiler::finish`] into a
/// [`Profile`] to merge with other threads.
pub struct ThreadProfiler {
    inner: RefCell<Inner>,
}

impl Default for ThreadProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadProfiler {
    /// Fresh profiler with no recorded regions.
    pub fn new() -> Self {
        Self {
            inner: RefCell::new(Inner {
                stack: Vec::with_capacity(8),
                stats: HashMap::new(),
                path_stats: HashMap::new(),
            }),
        }
    }

    /// Enter a named region; the region ends when the returned guard drops.
    ///
    /// Regions may nest. Direct recursion is attributed like TAU's default:
    /// each activation adds its full inclusive time, so a recursive
    /// region's inclusive time can exceed wall time.
    #[inline]
    pub fn enter(&self, name: &'static str) -> RegionGuard<'_> {
        self.inner.borrow_mut().stack.push(Frame {
            name,
            start: Instant::now(),
            child_time: Duration::ZERO,
        });
        RegionGuard { profiler: self }
    }

    /// Record an already-measured duration against a region without timing
    /// it here (used when a kernel's time comes from a device model rather
    /// than a host clock).
    pub fn record_external(&self, name: &'static str, elapsed: Duration) {
        let mut inner = self.inner.borrow_mut();
        let entry = inner.stats.entry(name).or_default();
        entry.calls += 1;
        entry.inclusive += elapsed;
        entry.exclusive += elapsed;
    }

    fn exit(&self) {
        let now = Instant::now();
        let mut inner = self.inner.borrow_mut();
        let frame = inner
            .stack
            .pop()
            .expect("RegionGuard dropped with empty stack");
        let elapsed = now.duration_since(frame.start);
        let exclusive = elapsed.saturating_sub(frame.child_time);
        let entry = inner.stats.entry(frame.name).or_default();
        entry.calls += 1;
        entry.inclusive += elapsed;
        entry.exclusive += exclusive;
        // Call-path attribution: "<ancestors> => <name>".
        let mut path = String::new();
        for f in &inner.stack {
            path.push_str(f.name);
            path.push_str(" => ");
        }
        path.push_str(frame.name);
        let pe = inner.path_stats.entry(path).or_default();
        pe.calls += 1;
        pe.inclusive += elapsed;
        pe.exclusive += exclusive;
        if let Some(parent) = inner.stack.last_mut() {
            parent.child_time += elapsed;
        }
    }

    /// Consume the profiler, producing its merged [`Profile`].
    ///
    /// Panics if any region guard is still alive.
    pub fn finish(self) -> Profile {
        let inner = self.inner.into_inner();
        assert!(
            inner.stack.is_empty(),
            "ThreadProfiler::finish called with {} open region(s)",
            inner.stack.len()
        );
        Profile::from_stats_with_paths(inner.stats, inner.path_stats)
    }
}

/// RAII guard for an open region; closing happens on drop.
pub struct RegionGuard<'p> {
    profiler: &'p ThreadProfiler,
}

impl Drop for RegionGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.profiler.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profiler_finishes_empty() {
        let p = ThreadProfiler::new().finish();
        assert!(p.regions().next().is_none());
    }

    #[test]
    fn sequential_regions_accumulate_calls() {
        let tp = ThreadProfiler::new();
        for _ in 0..5 {
            let _g = tp.enter("r");
        }
        let p = tp.finish();
        assert_eq!(p.get("r").unwrap().calls, 5);
    }

    #[test]
    fn exclusive_never_exceeds_inclusive() {
        let tp = ThreadProfiler::new();
        {
            let _a = tp.enter("a");
            {
                let _b = tp.enter("b");
                {
                    let _c = tp.enter("c");
                }
            }
        }
        let p = tp.finish();
        for (_, s) in p.regions() {
            assert!(s.exclusive <= s.inclusive);
        }
    }

    #[test]
    fn external_records_count_as_calls() {
        let tp = ThreadProfiler::new();
        tp.record_external("kernel", Duration::from_millis(7));
        tp.record_external("kernel", Duration::from_millis(3));
        let p = tp.finish();
        let s = p.get("kernel").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.inclusive, Duration::from_millis(10));
    }

    #[test]
    fn call_paths_distinguish_contexts() {
        // The same leaf region under two parents shows up as two paths.
        let tp = ThreadProfiler::new();
        {
            let _a = tp.enter("transport");
            let _x = tp.enter("calculate_xs");
        }
        {
            let _b = tp.enter("source_sampling");
            let _x = tp.enter("calculate_xs");
        }
        let p = tp.finish();
        assert_eq!(p.get("calculate_xs").unwrap().calls, 2);
        assert_eq!(p.path("transport => calculate_xs").unwrap().calls, 1);
        assert_eq!(p.path("source_sampling => calculate_xs").unwrap().calls, 1);
        assert!(p.path("nonexistent => path").is_none());
        // Sorted paths include the roots.
        let paths = p.sorted_paths();
        assert!(paths.iter().any(|(k, _)| *k == "transport"));
    }

    #[test]
    #[should_panic(expected = "open region")]
    fn finish_with_open_region_panics() {
        let tp = ThreadProfiler::new();
        let g = tp.enter("oops");
        // Leak the guard so it never closes, then finish.
        std::mem::forget(g);
        let _ = tp.finish();
    }
}
