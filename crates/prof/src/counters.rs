//! Named event counters (errors, retries, fault events).
//!
//! The region timers in this crate answer "where did the time go"; the
//! counters answer "how often did X happen" — PCIe retry attempts,
//! corrupted transfers, exhausted backoff loops. Keys are ordered
//! (`BTreeMap`) so reports and JSON renders are deterministic.

use std::collections::BTreeMap;

/// A set of named monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Fold another counter set into this one (summing shared keys).
    pub fn merge(&mut self, other: &Counters) {
        for (k, &v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Render as a stable JSON object (keys sorted).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("pcie.retries"), 0);
        c.incr("pcie.retries");
        c.add("pcie.retries", 2);
        assert_eq!(c.get("pcie.retries"), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 10);
        let mut b = Counters::new();
        b.add("y", 5);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 15);
        assert_eq!(a.get("z"), 7);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        assert_eq!(c.to_json(), "{\"a\": 1, \"b\": 2}");
        assert_eq!(Counters::new().to_json(), "{}");
    }

    #[test]
    fn iter_in_key_order() {
        let mut c = Counters::new();
        c.add("zz", 1);
        c.add("aa", 2);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }
}
